//! Exit-code taxonomy and degraded-input behaviour of the `lpr` CLI.
//!
//! A demo campaign is corrupted with `lpr-chaos` at the byte level and
//! fed back through `classify`/`stats`: strict mode must fail cleanly,
//! `--keep-going` must complete with the success-with-quarantine status
//! and telemetry that reconciles with the printed summary, and
//! `--fail-fast` must turn the degradation into a hard error.

use lpr_cli::{run, write_demo_files, RunStatus};

struct Tmp(std::path::PathBuf);

impl Tmp {
    fn new(tag: &str) -> Tmp {
        let dir =
            std::env::temp_dir().join(format!("lpr-degraded-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Tmp(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Tmp {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

/// Writes the demo campaign plus a byte-corrupted copy; returns
/// `(clean.warts, corrupt.warts, rib.txt)`.
fn corrupted_demo(tmp: &Tmp, seed: u64, rate: f64) -> (String, String, String) {
    let (bytes, rib) = write_demo_files();
    let (corrupted, counts) = lpr_chaos::corrupt_warts_bytes(&bytes, seed, rate);
    assert!(counts.total() > 0, "corruption must land for the test to mean anything");
    let clean = tmp.path("clean.warts");
    let bad = tmp.path("corrupt.warts");
    let ribf = tmp.path("rib.txt");
    std::fs::write(&clean, &bytes).unwrap();
    std::fs::write(&bad, &corrupted).unwrap();
    std::fs::write(&ribf, rib).unwrap();
    (clean, bad, ribf)
}

#[test]
fn clean_input_exits_clean() {
    let tmp = Tmp::new("clean");
    let (clean, _, rib) = corrupted_demo(&tmp, 11, 0.2);
    let mut buf = Vec::new();
    let status = run(&s(&["classify", "--rib", &rib, &clean]), &mut buf).unwrap();
    assert_eq!(status, RunStatus::Clean);
    assert_eq!(status.exit_code(), 0);
    assert!(!String::from_utf8(buf).unwrap().contains("input degraded"));
}

#[test]
fn corrupt_input_is_fatal_in_strict_mode() {
    let tmp = Tmp::new("strict");
    let (_, bad, rib) = corrupted_demo(&tmp, 12, 0.3);
    let mut buf = Vec::new();
    let e = run(&s(&["classify", "--rib", &rib, &bad]), &mut buf).unwrap_err();
    assert!(e.to_string().contains("corrupt.warts"), "{e}");
}

#[test]
fn keep_going_completes_with_quarantine_status() {
    let tmp = Tmp::new("keepgoing");
    let (_, bad, rib) = corrupted_demo(&tmp, 13, 0.25);
    let mut buf = Vec::new();
    let status =
        run(&s(&["classify", "--rib", &rib, &bad, "--keep-going"]), &mut buf).unwrap();
    assert_eq!(status, RunStatus::Degraded);
    assert_eq!(status.exit_code(), 3);
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("input degraded (exit code 3)"), "{text}");
    assert!(text.contains("skipped records:"), "{text}");
}

#[test]
fn fail_fast_makes_degradation_fatal() {
    let tmp = Tmp::new("failfast");
    let (_, bad, rib) = corrupted_demo(&tmp, 13, 0.25);
    // The same corruption that --keep-going survives: strict decode
    // already errors here, so exercise --fail-fast through stats too.
    let mut buf = Vec::new();
    let e = run(&s(&["stats", "--rib", &rib, &bad, "--fail-fast"]), &mut buf).unwrap_err();
    assert!(!e.to_string().is_empty());
}

#[test]
fn keep_going_and_fail_fast_conflict() {
    let mut buf = Vec::new();
    let e = run(
        &s(&["classify", "--rib", "r", "x.warts", "--keep-going", "--fail-fast"]),
        &mut buf,
    )
    .unwrap_err();
    assert!(e.to_string().contains("contradict"), "{e}");
}

#[test]
fn keep_going_on_clean_input_is_clean_and_identical() {
    let tmp = Tmp::new("lenient-clean");
    let (clean, _, rib) = corrupted_demo(&tmp, 14, 0.2);
    let render = |extra: &[&str]| {
        let mut args = s(&["classify", "--rib", &rib, &clean]);
        args.extend(s(extra));
        let mut buf = Vec::new();
        let status = run(&args, &mut buf).unwrap();
        (status, String::from_utf8(buf).unwrap())
    };
    let (strict_status, strict_out) = render(&[]);
    let (lenient_status, lenient_out) = render(&["--keep-going"]);
    assert_eq!(strict_status, RunStatus::Clean);
    assert_eq!(lenient_status, RunStatus::Clean);
    assert_eq!(strict_out, lenient_out, "lenient mode is a no-op on clean input");
}

#[test]
fn lenient_telemetry_reconciles_with_skip_summary() {
    let tmp = Tmp::new("telemetry");
    let (_, bad, rib) = corrupted_demo(&tmp, 15, 0.25);
    let metrics = tmp.path("telemetry.json");
    let mut buf = Vec::new();
    let status = run(
        &s(&["classify", "--rib", &rib, &bad, "--keep-going", "--metrics", &metrics]),
        &mut buf,
    )
    .unwrap();
    assert_eq!(status, RunStatus::Degraded);

    let telemetry =
        lpr_obs::RunTelemetry::from_json(&std::fs::read_to_string(&metrics).unwrap()).unwrap();

    // Per-reason warts.skip.* counters sum to warts.malformed_records,
    // and the same numbers drive the run's degraded status.
    let per_reason: u64 =
        warts::SkipReason::ALL.iter().map(|r| telemetry.counter(r.counter_name())).sum();
    assert!(per_reason > 0, "corruption at 25% must skip something");
    assert_eq!(per_reason, telemetry.counter("warts.malformed_records"));
    assert_eq!(per_reason, telemetry.counter_sum("warts.skip."));

    // Decoded trace records reconcile with what the pipeline ingested:
    // every converted trace is either kept or quarantined.
    let ingested = telemetry.counter("pipeline.traces_kept")
        + telemetry.counter("pipeline.traces_quarantined");
    assert_eq!(ingested + telemetry.counter("cli.convert_failures"), telemetry.counter("warts.traces"));
    assert_eq!(ingested, telemetry.counter("pipeline.traces"));
}

#[test]
fn lenient_decode_is_deterministic_across_thread_counts() {
    let tmp = Tmp::new("lenient-threads");
    let (_, bad, rib) = corrupted_demo(&tmp, 16, 0.2);
    let render = |threads: &str| {
        let mut buf = Vec::new();
        let status = run(
            &s(&["classify", "--rib", &rib, &bad, "--keep-going", "--threads", threads]),
            &mut buf,
        )
        .unwrap();
        (status, String::from_utf8(buf).unwrap())
    };
    let (seq_status, seq_out) = render("1");
    for threads in ["2", "4", "8"] {
        let (st, out) = render(threads);
        assert_eq!(st, seq_status, "--threads {threads}");
        assert_eq!(out, seq_out, "--threads {threads}");
    }
}
