//! End-to-end tests of the `lpr` CLI against generated demo files.

use lpr_cli::{run, write_demo_files};

struct Tmp(std::path::PathBuf);

impl Tmp {
    fn new(tag: &str) -> Tmp {
        let dir = std::env::temp_dir().join(format!("lpr-cli-test-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Tmp(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for Tmp {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

fn demo_files(tmp: &Tmp) -> (String, String) {
    let (bytes, rib) = write_demo_files();
    let warts = tmp.path("demo.warts");
    let ribf = tmp.path("rib.txt");
    std::fs::write(&warts, bytes).unwrap();
    std::fs::write(&ribf, rib).unwrap();
    (warts, ribf)
}

#[test]
fn demo_subcommand_writes_files() {
    let tmp = Tmp::new("demo");
    let out = tmp.path("d.warts");
    let rib = tmp.path("d.rib");
    let mut buf = Vec::new();
    run(&s(&["demo", "--out", &out, "--rib-out", &rib]), &mut buf).unwrap();
    assert!(std::fs::metadata(&out).unwrap().len() > 0);
    assert!(std::fs::metadata(&rib).unwrap().len() > 0);
    assert!(String::from_utf8(buf).unwrap().contains("wrote"));
}

#[test]
fn info_reports_record_inventory() {
    let tmp = Tmp::new("info");
    let (warts, _) = demo_files(&tmp);
    let mut buf = Vec::new();
    run(&s(&["info", &warts]), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("trace(s)"), "{text}");
    assert!(text.contains("MPLS extensions"), "{text}");
}

#[test]
fn tunnels_dumps_explicit_tunnels() {
    let tmp = Tmp::new("tunnels");
    let (warts, _) = demo_files(&tmp);
    let mut buf = Vec::new();
    run(&s(&["tunnels", &warts]), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("explicit tunnels"), "{text}");
    assert!(text.contains("ingress="), "{text}");
}

#[test]
fn classify_produces_iotp_summary() {
    let tmp = Tmp::new("classify");
    let (warts, rib) = demo_files(&tmp);
    let mut buf = Vec::new();
    run(&s(&["classify", "--rib", &rib, &warts, "--per-as", "--trees"]), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("total"), "{text}");
    assert!(text.contains("per-AS classification"), "{text}");
    assert!(text.contains("LSP-trees"), "{text}");
    assert!(text.contains("AS65000"), "{text}");
}

#[test]
fn stats_prints_filter_survival() {
    let tmp = Tmp::new("stats");
    let (warts, rib) = demo_files(&tmp);
    let mut buf = Vec::new();
    // The same file as its own persistence snapshot: everything
    // persists.
    run(&s(&["stats", "--rib", &rib, &warts, "--next", &warts]), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("after Persistence"), "{text}");
    assert!(text.contains("(1.000)"), "{text}");
}

#[test]
fn missing_rib_is_a_clean_error() {
    let tmp = Tmp::new("norib");
    let (warts, _) = demo_files(&tmp);
    let mut buf = Vec::new();
    let e = run(&s(&["classify", &warts]), &mut buf).unwrap_err();
    assert!(e.to_string().contains("--rib"), "{e}");
}

#[test]
fn nonexistent_file_is_a_clean_error() {
    let mut buf = Vec::new();
    let e = run(&s(&["info", "/definitely/not/here.warts"]), &mut buf).unwrap_err();
    assert!(e.to_string().contains("not/here.warts"), "{e}");
}

#[test]
fn dump_renders_text() {
    let tmp = Tmp::new("dump");
    let (warts, _) = demo_files(&tmp);
    let mut buf = Vec::new();
    run(&s(&["dump", &warts]), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("traceroute from"), "{text}");
    assert!(text.contains("MPLS Label"), "{text}");
    assert!(text.contains("cycle"), "{text}");
}

#[test]
fn serve_once_ingests_the_spool_and_exits_clean() {
    let tmp = Tmp::new("serve");
    let (bytes, rib) = write_demo_files();
    let spool = tmp.0.join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    std::fs::write(spool.join("c0.warts"), bytes).unwrap();
    let ribf = tmp.path("rib.txt");
    std::fs::write(&ribf, rib).unwrap();

    let mut buf = Vec::new();
    let status = run(
        &s(&[
            "serve",
            "--spool",
            &spool.to_string_lossy(),
            "--rib",
            &ribf,
            "--once",
            "2",
            "--tick-ms",
            "25",
            "--threads",
            "1",
        ]),
        &mut buf,
    )
    .unwrap();
    assert_eq!(status, lpr_cli::RunStatus::Clean);
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("lpr serve: listening on http://"), "{text}");
}

#[test]
fn serve_flag_parsing_rejects_bad_input() {
    let mut buf = Vec::new();
    let e = run(&s(&["serve", "--rib", "rib.txt"]), &mut buf).unwrap_err();
    assert!(e.to_string().contains("--spool"), "{e}");
    let e = run(&s(&["serve", "--spool", "x", "--rib", "r", "--window", "zero"]), &mut buf)
        .unwrap_err();
    assert!(e.to_string().contains("--window"), "{e}");
    let e = run(&s(&["serve", "--spool", "x", "--rib", "r", "--bogus"]), &mut buf).unwrap_err();
    assert!(e.to_string().contains("--bogus"), "{e}");
}
