//! End-to-end over the exported synthetic dataset: render a
//! longitudinal cycle, export it as warts + RIB files, and drive the
//! `lpr` CLI over them exactly the way a user of real Ark data would.

use ark_dataset::campaign::{generate_cycle, CampaignOptions};
use ark_dataset::{export_cycle, standard_world};

fn s(v: &[String]) -> Vec<String> {
    v.to_vec()
}

#[test]
fn cli_classifies_an_exported_cycle() {
    let world = standard_world();
    let opts = CampaignOptions::default();
    let data = generate_cycle(&world, 40, &opts);
    let dir = std::env::temp_dir().join(format!("lpr-cli-export-{}", std::process::id()));
    let exported = export_cycle(&world, &data, &dir).unwrap();

    let mut args = vec![
        "classify".to_string(),
        "--rib".to_string(),
        exported.rib.to_string_lossy().into_owned(),
        exported.snapshots[0].to_string_lossy().into_owned(),
    ];
    for next in &exported.snapshots[1..] {
        args.push("--next".to_string());
        args.push(next.to_string_lossy().into_owned());
    }
    args.push("--per-as".to_string());

    let mut buf = Vec::new();
    lpr_cli::run(&s(&args), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();

    // The featured ASes appear with their signature usages at cycle 40:
    // Vodafone dynamic + Multi-FEC, Tata Mono-FEC, Level3 present.
    assert!(text.contains("AS1273"), "{text}");
    assert!(text.contains("AS6453"), "{text}");
    assert!(text.contains("AS3356"), "{text}");
    assert!(text.contains("dynamic ASes"), "{text}");
    assert!(text.contains("AS1273"), "{text}");
    assert!(text.contains("Multi-FEC"), "{text}");
    assert!(text.contains("Mono-FEC (parallel links)"), "{text}");
    // Vendor fingerprints surface in the per-AS section.
    assert!(text.contains("JuniperLike") || text.contains("CiscoLike"), "{text}");

    // `stats` over the same files shows every filter level.
    let mut args = vec![
        "stats".to_string(),
        "--rib".to_string(),
        exported.rib.to_string_lossy().into_owned(),
        exported.snapshots[0].to_string_lossy().into_owned(),
        "--next".to_string(),
        exported.snapshots[1].to_string_lossy().into_owned(),
        "--next".to_string(),
        exported.snapshots[2].to_string_lossy().into_owned(),
    ];
    args.push("--j".to_string());
    args.push("2".to_string());
    let mut buf = Vec::new();
    lpr_cli::run(&s(&args), &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert!(text.contains("after Persistence"), "{text}");
    assert!(text.contains("classified IOTPs:"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}
