//! # lpr-cli — the `lpr` command-line tool
//!
//! Runs the LPR analysis on scamper **warts** dumps, the way the paper
//! does on CAIDA Archipelago data:
//!
//! ```text
//! lpr classify --rib rib.txt cycleX.warts [--next cycleX+1.warts]...
//!              [--j N] [--alias-rescue] [--trees] [--per-as]
//! lpr stats    --rib rib.txt cycleX.warts [--next ...]   filter survival
//! lpr tunnels  cycleX.warts                              dump explicit tunnels
//! lpr dump     file.warts                                scamper-style text dump
//! lpr info     file.warts                                record inventory
//! lpr demo     --out demo.warts --rib-out rib.txt        generate sample data
//! lpr help
//! ```
//!
//! The RIB file is the plain `prefix asn` snapshot format of the
//! `ip2as` crate (one routed prefix per line, `#` comments).
//!
//! The library entry point ([`run`]) takes the argument vector and a
//! writer, so the whole CLI is unit-testable without spawning
//! processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lpr_core::prelude::*;
use std::collections::BTreeSet;
use std::fmt;
use std::io::Write;

mod commands;

pub use commands::demo::{write_demo_files, write_demo_files_with};

/// A CLI failure, printable to the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<warts::WartsError> for CliError {
    fn from(e: warts::WartsError) -> Self {
        CliError(format!("warts: {e}"))
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// How a successful run ended — the CLI's exit-code taxonomy.
///
/// | status | exit code | meaning |
/// |---|---|---|
/// | `Clean` | 0 | every record decoded, every trace entered the pipeline |
/// | `Degraded` | 3 | the run completed, but some input was skipped or quarantined |
///
/// Fatal errors (bad arguments, unreadable files, strict-mode decode
/// failures, `--fail-fast` degradation) exit 1 via [`CliError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// Full success: nothing skipped, nothing quarantined.
    Clean,
    /// Success with quarantine: results are valid over the surviving
    /// input, and the degradation is itemised on stdout.
    Degraded,
}

impl RunStatus {
    /// The process exit code for this status.
    pub fn exit_code(self) -> i32 {
        match self {
            RunStatus::Clean => 0,
            RunStatus::Degraded => 3,
        }
    }
}

/// What the warts loading stage skipped or dropped.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Trace records successfully decoded and converted.
    pub traces: u64,
    /// Records skipped by the lenient decoder, per reason.
    pub skipped: std::collections::BTreeMap<warts::SkipReason, u64>,
    /// Garbage bytes discarded while resynchronising on record magics.
    pub resync_bytes: u64,
    /// Records that decoded but failed trace conversion (dropped).
    pub convert_failures: u64,
}

impl LoadReport {
    /// Total records skipped by the decoder.
    pub fn skipped_total(&self) -> u64 {
        self.skipped.values().sum()
    }

    /// Whether nothing was skipped or dropped.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty() && self.convert_failures == 0
    }
}

/// Everything [`run_pipeline`] produced: the loaded traces, the
/// pipeline output (with its quarantine accounting) and the load-stage
/// degradation report.
#[derive(Debug)]
pub struct PipelineArtifacts {
    /// Traces loaded from the input files (post conversion). Empty in
    /// out-of-core mode, where traces stream through the pipeline
    /// without being materialised.
    pub traces: Vec<Trace>,
    /// Traces that entered the pipeline (`traces.len()` when they were
    /// materialised).
    pub trace_count: u64,
    /// Of those, traces crossing at least one explicit MPLS tunnel.
    pub mpls_traces: u64,
    /// The classified pipeline output.
    pub output: PipelineOutput,
    /// What loading skipped (empty in strict mode — skips are fatal
    /// there).
    pub load: LoadReport,
}

impl PipelineArtifacts {
    /// Whether any input was skipped or quarantined anywhere.
    pub fn is_degraded(&self) -> bool {
        !self.load.is_clean() || !self.output.degraded.is_clean()
    }

    /// The [`RunStatus`] this run ends with.
    pub fn status(&self) -> RunStatus {
        if self.is_degraded() {
            RunStatus::Degraded
        } else {
            RunStatus::Clean
        }
    }
}

/// Parsed command-line options shared by the analysis subcommands.
#[derive(Debug, Default)]
pub struct Options {
    /// Input warts files (the cycle to classify).
    pub inputs: Vec<String>,
    /// Follow-up snapshot files for the Persistence filter.
    pub next: Vec<String>,
    /// RIB snapshot path.
    pub rib: Option<String>,
    /// Persistence window (defaults to the number of `--next` files).
    pub j: Option<usize>,
    /// Enable the §5 alias rescue.
    pub alias_rescue: bool,
    /// Also run the egress-rooted LSP-tree analysis.
    pub trees: bool,
    /// Print per-AS tallies.
    pub per_as: bool,
    /// Aggregate IOTPs at the router level via label-based alias
    /// resolution (§5).
    pub router_level: bool,
    /// Write machine-readable run telemetry (stage timings, counters)
    /// to this path as JSON.
    pub metrics: Option<String>,
    /// Write a Chrome `trace_event` JSON span trace of the run
    /// (`run → cycle → stage → shard`) to this path; load it in
    /// `chrome://tracing` or Perfetto.
    pub trace_out: Option<String>,
    /// Minimum level journaled by `--trace-out`
    /// (debug/info/warn/error; default info).
    pub trace_level: Option<lpr_obs::Level>,
    /// Write a Prometheus-style text exposition of the run's
    /// counter/gauge/histogram registry to this path.
    pub prom_out: Option<String>,
    /// Print per-stage progress lines to stderr as the run finishes.
    pub progress: bool,
    /// Worker threads for the parallel pipeline (`None` = the machine's
    /// available parallelism; `1` forces the sequential path). The
    /// output is byte-identical for every value.
    pub threads: Option<usize>,
    /// Decode warts input leniently: skip corrupt records (resyncing on
    /// the magic) and drop traces that fail conversion, instead of
    /// aborting. The run then reports what was skipped and exits with
    /// the success-with-quarantine code.
    pub keep_going: bool,
    /// Treat any degradation — skipped records, failed conversions,
    /// quarantined traces — as fatal instead of quarantining it.
    pub fail_fast: bool,
    /// Memory-map and index the inputs (`.lpridx` caches next to each
    /// file) and stream traces through the pipeline without
    /// materialising them: bounded memory at paper scale, byte-identical
    /// output.
    pub out_of_core: bool,
    /// Spill the Persistence window's key sets to sorted files under
    /// this directory instead of holding them in memory (out-of-core
    /// mode only).
    pub spill_dir: Option<String>,
}

impl Options {
    /// Parses `args` after the subcommand name.
    pub fn parse(args: &[String]) -> Result<Options, CliError> {
        let mut o = Options::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--rib" => o.rib = Some(take(&mut it, "--rib")?),
                "--next" => o.next.push(take(&mut it, "--next")?),
                "--j" => {
                    o.j = Some(
                        take(&mut it, "--j")?
                            .parse()
                            .map_err(|_| err("--j wants an integer"))?,
                    )
                }
                "--alias-rescue" => o.alias_rescue = true,
                "--keep-going" => o.keep_going = true,
                "--fail-fast" => o.fail_fast = true,
                "--out-of-core" => o.out_of_core = true,
                "--spill-dir" => o.spill_dir = Some(take(&mut it, "--spill-dir")?),
                "--trees" => o.trees = true,
                "--per-as" => o.per_as = true,
                "--router-level" => o.router_level = true,
                "--metrics" => o.metrics = Some(take(&mut it, "--metrics")?),
                "--trace-out" => o.trace_out = Some(take(&mut it, "--trace-out")?),
                "--trace-level" => {
                    let level = take(&mut it, "--trace-level")?;
                    o.trace_level = Some(lpr_obs::Level::parse(&level).ok_or_else(|| {
                        err("--trace-level wants debug, info, warn or error")
                    })?);
                }
                "--prom-out" => o.prom_out = Some(take(&mut it, "--prom-out")?),
                "--progress" => o.progress = true,
                "--threads" => {
                    let n: usize = take(&mut it, "--threads")?
                        .parse()
                        .map_err(|_| err("--threads wants an integer"))?;
                    if n == 0 {
                        return Err(err("--threads wants at least 1"));
                    }
                    o.threads = Some(n);
                }
                flag if flag.starts_with("--") => {
                    return Err(err(format!("unknown flag {flag}")))
                }
                path => o.inputs.push(path.to_string()),
            }
        }
        if o.keep_going && o.fail_fast {
            return Err(err("--keep-going and --fail-fast contradict each other"));
        }
        if o.spill_dir.is_some() && !o.out_of_core {
            return Err(err("--spill-dir needs --out-of-core"));
        }
        Ok(o)
    }
}

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, CliError> {
    it.next().cloned().ok_or_else(|| err(format!("{flag} wants a value")))
}

/// Loads every trace from a list of warts files.
pub fn load_traces(paths: &[String]) -> Result<Vec<Trace>, CliError> {
    load_traces_par(paths, 1)
}

/// [`load_traces`] with parallel record→trace conversion: the stateful
/// warts record decode stays sequential (the format carries a file-wide
/// address dictionary), the per-record conversion shards across
/// `threads` workers, preserving record order.
pub fn load_traces_par(paths: &[String], threads: usize) -> Result<Vec<Trace>, CliError> {
    let mut traces = Vec::new();
    for path in paths {
        let bytes = std::fs::read(path)
            .map_err(|e| err(format!("{path}: {e}")))?;
        let records = warts::WartsReader::new(&bytes)
            .traces()
            .map_err(|e| err(format!("{path}: {e}")))?;
        traces.extend(
            warts::traces_to_core_par(&records, threads)
                .map_err(|e| err(format!("{path}: {e}")))?,
        );
    }
    Ok(traces)
}

/// Lenient warts loading (`--keep-going`): corrupt records are skipped
/// (resyncing on the next plausible record header), traces that fail
/// conversion are dropped, and both are tallied in the returned
/// [`LoadReport`]. Only IO failures are fatal. When a `recorder` is
/// given, the decoder's `warts.*` counters (per-[`warts::SkipReason`]
/// skips included) land in its registry.
pub fn load_traces_lenient(
    paths: &[String],
    recorder: Option<&lpr_obs::Recorder>,
) -> Result<(Vec<Trace>, LoadReport), CliError> {
    let mut traces = Vec::new();
    let mut report = LoadReport::default();
    for path in paths {
        let bytes = std::fs::read(path).map_err(|e| err(format!("{path}: {e}")))?;
        let mut reader = warts::WartsStreamReader::new(bytes.as_slice()).lenient();
        if let Some(rec) = recorder {
            reader = reader.with_metrics(warts::StreamMetrics::from_recorder(rec));
        }
        loop {
            match reader.next_record() {
                Ok(Some(warts::Record::Trace(t))) => match warts::trace_to_core(&t) {
                    Ok(Some(trace)) => {
                        report.traces += 1;
                        traces.push(trace);
                    }
                    Ok(None) => {}
                    Err(_) => report.convert_failures += 1,
                },
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => return Err(err(format!("{path}: {e}"))),
            }
        }
        for (reason, n) in reader.skip_counts() {
            *report.skipped.entry(*reason).or_default() += n;
        }
        report.resync_bytes += reader.resync_bytes();
    }
    if let Some(rec) = recorder {
        rec.counter(lpr_obs::names::CLI_CONVERT_FAILURES).add(report.convert_failures);
    }
    Ok((traces, report))
}

/// Loads the RIB snapshot into a longest-prefix-match trie.
pub fn load_rib(path: &str) -> Result<ip2as::Ip2AsTrie, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| err(format!("{path}: {e}")))?;
    ip2as::parse_rib(&text).map_err(|e| err(format!("{path}: {e}")))
}

/// Runs the analysis pipeline an analysis subcommand needs.
pub fn run_pipeline(o: &Options) -> Result<PipelineArtifacts, CliError> {
    run_pipeline_recorded(o, None)
}

/// [`run_pipeline`] with instrumentation: loading and every pipeline
/// stage land in `recorder` (see `lpr_obs`).
pub fn run_pipeline_recorded(
    o: &Options,
    recorder: Option<&lpr_obs::Recorder>,
) -> Result<PipelineArtifacts, CliError> {
    if o.inputs.is_empty() {
        return Err(err("no input warts files (see `lpr help`)"));
    }
    let rib_path = o.rib.as_ref().ok_or_else(|| err("--rib <file> is required"))?;
    let rib = load_rib(rib_path)?;
    let threads = o.threads.unwrap_or_else(lpr_par::available_threads);
    if o.out_of_core {
        return run_pipeline_out_of_core(o, &rib, threads, recorder);
    }
    // One classify/stats invocation processes one cycle; its span nests
    // under the subcommand's `run:` root and everything the pipeline
    // opens (stage, shard spans) nests under it in turn.
    let disabled = lpr_obs::Tracer::disabled();
    let tracer = recorder.map_or(&disabled, |r| r.tracer());
    let outer_parent = tracer.default_parent();
    let cycle_span = tracer.span("cycle");
    tracer.set_default_parent(cycle_span.context());
    let sw = lpr_obs::Stopwatch::start();
    let load_span = tracer.span("stage:LoadTraces");
    let (traces, load) = if o.keep_going {
        load_traces_lenient(&o.inputs, recorder)?
    } else {
        (load_traces_par(&o.inputs, threads)?, LoadReport::default())
    };
    drop(load_span);
    if let Some(rec) = recorder {
        rec.record_stage(
            "LoadTraces",
            sw.elapsed_us(),
            o.inputs.len() as u64,
            traces.len() as u64,
        );
        let bytes: u64 = o
            .inputs
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();
        rec.counter(lpr_obs::names::CLI_INPUT_BYTES).add(bytes);
        rec.counter(lpr_obs::names::CLI_INPUT_FILES).add(o.inputs.len() as u64);
    }
    let future: Vec<BTreeSet<LspKey>> = o
        .next
        .iter()
        .map(|p| {
            load_traces_par(std::slice::from_ref(p), threads)
                .map(|t| Pipeline::snapshot_keys_par(&t, threads))
        })
        .collect::<Result<_, _>>()?;
    let j = o.j.unwrap_or(future.len());
    let mut pipeline =
        Pipeline::new(FilterConfig { persistence_window: j, ..Default::default() });
    if o.alias_rescue {
        pipeline = pipeline.with_alias_rescue();
    }
    let output = pipeline.run_par_recorded(&traces, &rib, &future, threads, recorder);
    tracer.set_default_parent(outer_parent);
    drop(cycle_span);
    let trace_count = traces.len() as u64;
    let mpls_traces = traces.iter().filter(|t| t.has_mpls()).count() as u64;
    let artifacts = PipelineArtifacts { traces, trace_count, mpls_traces, output, load };
    if o.fail_fast && artifacts.is_degraded() {
        return Err(err(format!(
            "--fail-fast: input degraded ({} records skipped, {} conversions failed, {} traces quarantined)",
            artifacts.load.skipped_total(),
            artifacts.load.convert_failures,
            artifacts.output.degraded.quarantined_total(),
        )));
    }
    Ok(artifacts)
}

/// The `--out-of-core` pipeline: inputs are memory-mapped and indexed
/// ([`lpr_corpus::Corpus`]), trace records decode sharded straight out
/// of the mappings, and each trace streams through ingest without ever
/// being materialised in a list. `--next` snapshots become either
/// in-memory key sets or (`--spill-dir`) sorted on-disk spill files.
/// The [`PipelineOutput`] is byte-identical to the in-memory path at
/// every thread count.
///
/// The indexed decode is inherently lenient (the index records what a
/// lenient scan salvaged); without `--keep-going`, any skipped record
/// or failed conversion is promoted to a fatal error, mirroring the
/// strict loader.
fn run_pipeline_out_of_core(
    o: &Options,
    rib: &ip2as::Ip2AsTrie,
    threads: usize,
    recorder: Option<&lpr_obs::Recorder>,
) -> Result<PipelineArtifacts, CliError> {
    use lpr_corpus::{ingest_cycle, snapshot_keys, spill_snapshot_keys, Corpus, IngestOptions};
    let disabled = lpr_obs::Tracer::disabled();
    let tracer = recorder.map_or(&disabled, |r| r.tracer());
    let outer_parent = tracer.default_parent();
    let cycle_span = tracer.span("cycle");
    tracer.set_default_parent(cycle_span.context());

    // Startup hygiene: clear crash leftovers (orphaned `.lpridx.tmp`
    // writes next to the inputs, stale spill files) before touching
    // any index cache.
    let mut sweep_dirs: Vec<std::path::PathBuf> = o
        .inputs
        .iter()
        .filter_map(|p| std::path::Path::new(p).parent().map(|d| d.to_path_buf()))
        .collect();
    if let Some(dir) = &o.spill_dir {
        sweep_dirs.push(std::path::PathBuf::from(dir));
    }
    sweep_dirs.sort();
    sweep_dirs.dedup();
    for dir in &sweep_dirs {
        let _ = lpr_corpus::sweep_stale(dir, recorder);
    }

    let sw = lpr_obs::Stopwatch::start();
    let load_span = tracer.span("stage:CorpusIngest");
    let corpus = Corpus::open_with(&o.inputs, true, recorder)?;
    let (ingest, report) = ingest_cycle(&corpus, rib, IngestOptions::new(threads), recorder);
    drop(load_span);
    let load = LoadReport {
        traces: ingest.traces_in,
        skipped: report.skipped.clone(),
        resync_bytes: report.resync_bytes,
        convert_failures: report.convert_failures,
    };
    if let Some(rec) = recorder {
        rec.record_stage("CorpusIngest", sw.elapsed_us(), o.inputs.len() as u64, ingest.traces_in);
        rec.counter(lpr_obs::names::CLI_INPUT_BYTES).add(corpus.total_bytes());
        rec.counter(lpr_obs::names::CLI_INPUT_FILES).add(o.inputs.len() as u64);
        rec.counter(lpr_obs::names::CLI_CONVERT_FAILURES).add(report.convert_failures);
    }
    if !o.keep_going && (load.skipped_total() > 0 || load.convert_failures > 0) {
        return Err(err(format!(
            "corpus degraded: {} records skipped, {} conversions failed (use --keep-going to accept)",
            load.skipped_total(),
            load.convert_failures,
        )));
    }
    if !o.keep_going && !corpus.skipped_files.is_empty() {
        let first = &corpus.skipped_files[0];
        return Err(err(format!(
            "{} input file(s) set aside ({}: {}); use --keep-going to accept",
            corpus.skipped_files.len(),
            first.path.display(),
            first.reason,
        )));
    }

    let j = o.j.unwrap_or(o.next.len());
    let mut pipeline =
        Pipeline::new(FilterConfig { persistence_window: j, ..Default::default() });
    if o.alias_rescue {
        pipeline = pipeline.with_alias_rescue();
    }
    let shard = lpr_par::ShardOptions::new(threads);
    let open_next = |path: &String| -> Result<Corpus, CliError> {
        Corpus::open_with(std::slice::from_ref(path), true, recorder)
            .map_err(|e| err(format!("{path}: {e}")))
    };
    let (trace_count, mpls_traces) = (ingest.traces_in, report.mpls_traces);
    let output = if let Some(dir) = &o.spill_dir {
        let mut spilled = Vec::with_capacity(o.next.len());
        for (i, path) in o.next.iter().enumerate() {
            let next = open_next(path)?;
            spilled.push(spill_snapshot_keys(
                &next,
                std::path::Path::new(dir),
                &format!("next{i}"),
                threads,
                recorder,
            )?);
        }
        pipeline.finish_stages_windowed(
            ingest,
            lpr_core::pipeline::PersistenceWindow::Spilled(&spilled),
            recorder,
            shard,
        )?
    } else {
        let mut keys = Vec::with_capacity(o.next.len());
        for path in &o.next {
            keys.push(snapshot_keys(&open_next(path)?, threads));
        }
        pipeline.finish_stages_windowed(
            ingest,
            lpr_core::pipeline::PersistenceWindow::Mem(&keys),
            recorder,
            shard,
        )?
    };
    tracer.set_default_parent(outer_parent);
    drop(cycle_span);
    let artifacts =
        PipelineArtifacts { traces: Vec::new(), trace_count, mpls_traces, output, load };
    if o.fail_fast && artifacts.is_degraded() {
        return Err(err(format!(
            "--fail-fast: input degraded ({} records skipped, {} conversions failed, {} traces quarantined)",
            artifacts.load.skipped_total(),
            artifacts.load.convert_failures,
            artifacts.output.degraded.quarantined_total(),
        )));
    }
    Ok(artifacts)
}

/// Writes the human-readable degradation summary an analysis subcommand
/// prints when a run ends [`RunStatus::Degraded`].
pub fn write_degradation_summary(
    artifacts: &PipelineArtifacts,
    w: &mut dyn Write,
) -> Result<(), CliError> {
    if !artifacts.is_degraded() {
        return Ok(());
    }
    writeln!(w, "\ninput degraded (exit code 3):")?;
    if artifacts.load.skipped_total() > 0 {
        let detail: Vec<String> = artifacts
            .load
            .skipped
            .iter()
            .map(|(r, n)| format!("{}={}", r.name(), n))
            .collect();
        writeln!(
            w,
            "  skipped records: {} [{}] ({} resync bytes)",
            artifacts.load.skipped_total(),
            detail.join(" "),
            artifacts.load.resync_bytes,
        )?;
    }
    if artifacts.load.convert_failures > 0 {
        writeln!(w, "  failed conversions: {}", artifacts.load.convert_failures)?;
    }
    let degraded = &artifacts.output.degraded;
    if degraded.quarantined_total() > 0 {
        let detail: Vec<String> =
            degraded.quarantined.iter().map(|(r, n)| format!("{}={}", r.name(), n)).collect();
        writeln!(
            w,
            "  quarantined traces: {} of {} [{}]",
            degraded.quarantined_total(),
            degraded.ingested(),
            detail.join(" "),
        )?;
    }
    Ok(())
}

/// Builds the recorder an analysis subcommand needs — `Some` only when
/// `--metrics`, `--progress`, `--trace-out` or `--prom-out` asked for
/// one. With `--trace-out` the recorder carries an enabled tracer at
/// the `--trace-level` threshold (default info).
pub fn recorder_for(o: &Options, label: &str) -> Option<lpr_obs::Recorder> {
    let wanted =
        o.metrics.is_some() || o.progress || o.trace_out.is_some() || o.prom_out.is_some();
    wanted.then(|| {
        let mut rec = lpr_obs::Recorder::new(label);
        if o.trace_out.is_some() {
            let level = o.trace_level.unwrap_or(lpr_obs::Level::Info);
            rec = rec.with_tracer(lpr_obs::Tracer::new(level));
        }
        rec
    })
}

/// Opens the root `run` span of a traced invocation and makes it the
/// tracer's default parent, so every span the pipeline opens nests
/// under it. Returns `None` (and journals nothing) without a recorder
/// or tracer.
pub fn open_run_span(recorder: Option<&lpr_obs::Recorder>, name: &str) -> Option<lpr_obs::Span> {
    let rec = recorder?;
    if !rec.tracer().is_enabled() {
        return None;
    }
    let span = rec.tracer().span(format!("run:{name}"));
    rec.tracer().set_default_parent(span.context());
    Some(span)
}

/// Finalises telemetry: prints `--progress` stage lines to stderr and
/// writes the `--metrics` JSON, `--trace-out` Chrome trace and
/// `--prom-out` exposition files.
pub fn emit_telemetry(o: &Options, recorder: Option<lpr_obs::Recorder>) -> Result<(), CliError> {
    let Some(recorder) = recorder else { return Ok(()) };
    let tracer = recorder.tracer().clone();
    let telemetry = recorder.finish();
    if o.progress {
        for s in &telemetry.stages {
            eprintln!(
                "[lpr] {:<18} {:>8} -> {:<8} {:>8} us",
                s.name, s.input, s.output, s.wall_us,
            );
        }
        eprintln!("[lpr] total {} us", telemetry.total_wall_us);
    }
    if let Some(path) = &o.metrics {
        std::fs::write(path, telemetry.to_json())
            .map_err(|e| err(format!("{path}: {e}")))?;
    }
    if let Some(path) = &o.trace_out {
        let snapshot = tracer.snapshot();
        if snapshot.dropped > 0 {
            eprintln!(
                "[lpr] trace journal wrapped: {} oldest events overwritten",
                snapshot.dropped
            );
        }
        std::fs::write(path, lpr_obs::export::chrome_trace(&snapshot))
            .map_err(|e| err(format!("{path}: {e}")))?;
    }
    if let Some(path) = &o.prom_out {
        std::fs::write(path, lpr_obs::export::prometheus_text(&telemetry))
            .map_err(|e| err(format!("{path}: {e}")))?;
    }
    Ok(())
}

/// Validates `--trace-out` files: parses each as the canonical Chrome
/// `trace_event` document, checks the round trip is byte-identical,
/// and prints an event census — the CI smoke test for trace emission.
fn trace_check(paths: &[String], w: &mut dyn Write) -> Result<(), CliError> {
    if paths.is_empty() {
        return Err(err("trace-check wants at least one trace file"));
    }
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| err(format!("{path}: {e}")))?;
        let trace = lpr_obs::export::ChromeTrace::parse(&text)
            .map_err(|e| err(format!("{path}: not a canonical trace document: {e}")))?;
        if trace.to_json() != text {
            return Err(err(format!("{path}: round trip is not byte-identical")));
        }
        let spans = trace.events.iter().filter(|e| e.ph == "X").count();
        let instants = trace.events.iter().filter(|e| e.ph == "i").count();
        writeln!(w, "{path}: ok ({spans} spans, {instants} events)")?;
    }
    Ok(())
}

/// Entry point: dispatches a full argument vector. `Ok` carries the
/// [`RunStatus`] whose [`RunStatus::exit_code`] the process should exit
/// with; `Err` means exit code 1.
pub fn run(args: &[String], w: &mut dyn Write) -> Result<RunStatus, CliError> {
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("help", &[] as &[String]),
    };
    match cmd {
        "classify" => commands::classify::run(&Options::parse(rest)?, w),
        "stats" => commands::stats::run(&Options::parse(rest)?, w),
        "tunnels" => commands::tunnels::run(&Options::parse(rest)?, w).map(|()| RunStatus::Clean),
        "info" => commands::info::run(&Options::parse(rest)?, w).map(|()| RunStatus::Clean),
        "dump" => commands::dump::run(&Options::parse(rest)?, w).map(|()| RunStatus::Clean),
        "demo" => commands::demo::run(rest, w).map(|()| RunStatus::Clean),
        "serve" => commands::serve::run(rest, w).map(|_code| RunStatus::Clean),
        "trace-check" => trace_check(rest, w).map(|()| RunStatus::Clean),
        "help" | "--help" | "-h" => {
            writeln!(w, "{}", HELP)?;
            Ok(RunStatus::Clean)
        }
        other => Err(err(format!("unknown command `{other}` (try `lpr help`)"))),
    }
}

const HELP: &str = "\
lpr — MPLS transit path diversity classification (IMC'15 LPR algorithm)

USAGE:
  lpr classify --rib <rib.txt> <cycle.warts>... [--next <snap.warts>]...
               [--j N] [--alias-rescue] [--trees] [--per-as] [--router-level]
               [--metrics <out.json>] [--progress] [--threads N]
               [--trace-out <trace.json>] [--trace-level <level>]
               [--prom-out <metrics.prom>] [--keep-going | --fail-fast]
               [--out-of-core [--spill-dir <dir>]]
  lpr stats    --rib <rib.txt> <cycle.warts>... [--next <snap.warts>]...
               [--metrics <out.json>] [--progress] [--threads N]
               [--trace-out <trace.json>] [--trace-level <level>]
               [--prom-out <metrics.prom>] [--keep-going | --fail-fast]
               [--out-of-core [--spill-dir <dir>]]
  lpr tunnels  <cycle.warts>...
  lpr dump     <file.warts>...
  lpr info     <file.warts>...
  lpr demo     --out <demo.warts> --rib-out <rib.txt>
               [--tunnel-visibility explicit:F,implicit:F,invisible:F,opaque:F]
  lpr serve    --spool <dir> --rib <rib.txt> [--addr HOST:PORT] [--window N]
               [--threads N] [--tick-ms MS] [--ingest-timeout-ms MS]
               [--retries N] [--backoff-ms MS] [--backoff-cap-ms MS]
               [--growing-grace N] [--once TICKS]
  lpr trace-check <trace.json>...
  lpr help

The RIB file maps prefixes to origin ASes, one `prefix asn` per line
(Routeviews-style). `--next` snapshots feed the Persistence filter
(paper default: two, i.e. --j 2).

`--metrics <out.json>` writes machine-readable run telemetry (per-stage
wall time and LSP counts matching the Table 1 funnel, plus ingest
counters); `--progress` prints the same stage lines to stderr.

`--trace-out <trace.json>` writes a hierarchical span trace
(run -> cycle -> stage -> shard, plus quarantine/skip events) as Chrome
trace_event JSON — open it in chrome://tracing or Perfetto, or validate
it with `lpr trace-check`. `--trace-level` sets the event threshold
(debug/info/warn/error; default info). `--prom-out` writes the final
counter/gauge/histogram registry as Prometheus-style text.

`--threads N` shards the pipeline across N worker threads (default: the
machine's available parallelism). Results are byte-identical for every
thread count; `--threads 1` forces the sequential path.

`--out-of-core` memory-maps the input corpus, builds (and caches, as
`.lpridx` siblings) a per-file record index, decodes record ranges
sharded straight out of the mappings and streams every trace through
the pipeline without materialising the trace list — bounded memory at
paper scale, byte-identical output. `--spill-dir <dir>` additionally
spills the Persistence window's key sets to sorted files under <dir>
instead of holding them in memory.

`serve` runs the continuous-measurement daemon: it watches the spool
directory for dropped `*.warts` files, ingests each as one cycle of a
sliding window (`--window` cycles wide), and serves `/healthz`,
`/readyz`, `/snapshot`, `/report/per-as` and `/metrics` over HTTP at
`--addr` (default 127.0.0.1:0; the bound address is printed on start).
Corrupt or repeatedly-failing drops are quarantined to
`<spool>/quarantine/` with a structured reason file; the daemon keeps
serving with `degraded: true` and never answers 5xx. SIGTERM/SIGINT
shut it down gracefully with exit code 0. `--once N` exits after N
reconcile ticks (smoke tests).

Degraded input (classify/stats): structurally broken traces are
quarantined rather than fatal, `--keep-going` additionally skips corrupt
warts records (resyncing on the next record magic) and drops traces
that fail conversion, and `--fail-fast` turns any degradation into a
hard error.

EXIT CODES:
  0  clean success — nothing skipped, nothing quarantined
  3  success with quarantine — results valid over the surviving input,
     degradation itemised on stdout
  1  fatal error (bad arguments, unreadable input, strict-mode decode
     failure, --fail-fast degradation)";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_options() {
        let o = Options::parse(&s(&[
            "a.warts",
            "--rib",
            "rib.txt",
            "--next",
            "b.warts",
            "--next",
            "c.warts",
            "--j",
            "2",
            "--alias-rescue",
            "--per-as",
        ]))
        .unwrap();
        assert_eq!(o.inputs, vec!["a.warts"]);
        assert_eq!(o.next.len(), 2);
        assert_eq!(o.rib.as_deref(), Some("rib.txt"));
        assert_eq!(o.j, Some(2));
        assert!(o.alias_rescue && o.per_as && !o.trees && !o.router_level);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(Options::parse(&s(&["--bogus"])).is_err());
        assert!(Options::parse(&s(&["--rib"])).is_err());
        assert!(Options::parse(&s(&["--j", "x"])).is_err());
    }

    #[test]
    fn help_prints() {
        let mut out = Vec::new();
        run(&s(&["help"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut out = Vec::new();
        assert!(run(&s(&["frobnicate"]), &mut out).is_err());
    }

    #[test]
    fn classify_requires_inputs() {
        let mut out = Vec::new();
        assert!(run(&s(&["classify"]), &mut out).is_err());
    }

    #[test]
    fn parse_metrics_and_progress_flags() {
        let o = Options::parse(&s(&["a.warts", "--metrics", "t.json", "--progress"])).unwrap();
        assert_eq!(o.metrics.as_deref(), Some("t.json"));
        assert!(o.progress);
        assert!(Options::parse(&s(&["--metrics"])).is_err());
    }

    #[test]
    fn parse_degradation_flags() {
        let o = Options::parse(&s(&["a.warts", "--keep-going"])).unwrap();
        assert!(o.keep_going && !o.fail_fast);
        let o = Options::parse(&s(&["a.warts", "--fail-fast"])).unwrap();
        assert!(o.fail_fast && !o.keep_going);
        assert!(Options::parse(&s(&["a.warts", "--keep-going", "--fail-fast"])).is_err());
    }

    #[test]
    fn parse_out_of_core_flags() {
        let o = Options::parse(&s(&["a.warts", "--out-of-core"])).unwrap();
        assert!(o.out_of_core && o.spill_dir.is_none());
        let o =
            Options::parse(&s(&["a.warts", "--out-of-core", "--spill-dir", "/tmp/x"])).unwrap();
        assert_eq!(o.spill_dir.as_deref(), Some("/tmp/x"));
        assert!(Options::parse(&s(&["a.warts", "--spill-dir", "/tmp/x"])).is_err());
        assert!(Options::parse(&s(&["a.warts", "--out-of-core", "--spill-dir"])).is_err());
    }

    #[test]
    fn out_of_core_output_matches_in_memory() {
        let dir = std::env::temp_dir().join(format!("lpr-ooc-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();
        let spill_dir = dir.join("spill").to_string_lossy().into_owned();

        let render = |cmd: &str, extra: &[&str]| {
            let mut args =
                s(&[cmd, "--rib", &rib_path, &warts_path, "--next", &warts_path, "--threads", "2"]);
            args.extend(extra.iter().map(|x| x.to_string()));
            let mut out = Vec::new();
            let status = run(&args, &mut out).unwrap();
            (String::from_utf8(out).unwrap(), status)
        };
        for cmd in ["classify", "stats"] {
            let reference = render(cmd, &[]);
            assert_eq!(render(cmd, &["--out-of-core"]), reference, "{cmd} --out-of-core");
            assert_eq!(
                render(cmd, &["--out-of-core", "--spill-dir", &spill_dir]),
                reference,
                "{cmd} with spilled persistence window"
            );
        }
        // The second pass onward reused the .lpridx caches; a cached
        // open still matches.
        assert!(dir.join("demo.warts.lpridx").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn demo_tunnel_visibility_flag() {
        let dir = std::env::temp_dir().join(format!("lpr-demo-vis-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let mut out = Vec::new();
        run(
            &s(&[
                "demo",
                "--out",
                &warts_path,
                "--rib-out",
                &rib_path,
                "--tunnel-visibility",
                "explicit:0.0,implicit:0.0,invisible:1.0,opaque:0.0",
            ]),
            &mut out,
        )
        .unwrap();
        // An all-invisible deployment hides every label from the demo
        // campaign, so its bytes cannot match the explicit demo's.
        let hidden = std::fs::read(&warts_path).unwrap();
        let (explicit, _) = write_demo_files();
        assert_ne!(hidden, explicit, "--tunnel-visibility had no effect on the campaign");
        // A malformed mix is rejected at the flag, not deep in netsim.
        assert!(run(
            &s(&["demo", "--out", &warts_path, "--rib-out", &rib_path, "--tunnel-visibility", "bogus"]),
            &mut Vec::new(),
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_threads_flag() {
        let o = Options::parse(&s(&["a.warts", "--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        assert_eq!(Options::parse(&s(&["a.warts"])).unwrap().threads, None);
        assert!(Options::parse(&s(&["--threads"])).is_err());
        assert!(Options::parse(&s(&["--threads", "0"])).is_err());
        assert!(Options::parse(&s(&["--threads", "x"])).is_err());
    }

    #[test]
    fn classify_output_is_identical_for_any_thread_count() {
        let dir = std::env::temp_dir().join(format!("lpr-threads-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();

        let render = |threads: &str| {
            let mut out = Vec::new();
            run(
                &s(&["classify", "--rib", &rib_path, &warts_path, "--threads", threads]),
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        let seq = render("1");
        for threads in ["2", "3", "4"] {
            assert_eq!(render(threads), seq, "--threads {threads}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classify_metrics_reconcile_with_filter_report() {
        let dir = std::env::temp_dir().join(format!("lpr-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let metrics_path = dir.join("telemetry.json").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();

        let mut out = Vec::new();
        run(
            &s(&["classify", "--rib", &rib_path, &warts_path, "--metrics", &metrics_path]),
            &mut out,
        )
        .unwrap();

        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let telemetry = lpr_obs::RunTelemetry::from_json(&text).unwrap();

        // The same run without telemetry is the reference: stage counts
        // in the JSON must chain exactly through the FilterReport.
        let o = Options {
            inputs: vec![warts_path],
            rib: Some(rib_path),
            ..Default::default()
        };
        let reference = run_pipeline(&o).unwrap().output;
        let mut input = reference.report.input as u64;
        for stage in FilterStage::ALL {
            let st = telemetry.stage(stage.name()).unwrap_or_else(|| panic!("{}", stage.name()));
            assert_eq!(st.input, input, "{} input", stage.name());
            assert_eq!(
                st.output,
                reference.report.remaining[&stage] as u64,
                "{} output",
                stage.name()
            );
            input = st.output;
        }
        assert_eq!(
            telemetry.counter("pipeline.iotps_classified"),
            reference.iotps.len() as u64
        );
        assert!(telemetry.stage("LoadTraces").is_some());
        assert!(telemetry.counter("cli.input_bytes") > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Runs a traced classify in-process and returns the journal plus
    /// the finished telemetry.
    fn traced_classify(
        threads: usize,
        warts_paths: &[String],
        rib_path: &str,
    ) -> (lpr_obs::TraceSnapshot, lpr_obs::RunTelemetry) {
        let recorder = lpr_obs::Recorder::new("lpr classify")
            .with_tracer(lpr_obs::Tracer::new(lpr_obs::Level::Debug));
        let run_span = open_run_span(Some(&recorder), "classify");
        let o = Options {
            inputs: warts_paths.to_vec(),
            rib: Some(rib_path.to_string()),
            threads: Some(threads),
            ..Default::default()
        };
        run_pipeline_recorded(&o, Some(&recorder)).unwrap();
        drop(run_span);
        let snapshot = recorder.tracer().snapshot();
        (snapshot, recorder.finish())
    }

    /// Span records reconstructed from a journal: `id -> (name, parent,
    /// begin, end)`.
    fn span_table(
        snapshot: &lpr_obs::TraceSnapshot,
    ) -> std::collections::BTreeMap<u64, (String, u64, u64, u64)> {
        let mut spans = std::collections::BTreeMap::new();
        for ev in &snapshot.events {
            match ev {
                lpr_obs::TraceEvent::SpanBegin { id, parent, name, ts_us, .. } => {
                    spans.insert(*id, (name.clone(), *parent, *ts_us, u64::MAX));
                }
                lpr_obs::TraceEvent::SpanEnd { id, ts_us } => {
                    spans.get_mut(id).expect("end without begin").3 = *ts_us;
                }
                lpr_obs::TraceEvent::Event { .. } => {}
            }
        }
        spans
    }

    /// Root-to-leaf name paths, with per-shard spans pruned (shard
    /// count varies with input size, not thread count, but pruning them
    /// keeps the invariant independent of both).
    fn span_skeleton(snapshot: &lpr_obs::TraceSnapshot) -> Vec<String> {
        let spans = span_table(snapshot);
        let mut paths: Vec<String> = spans
            .values()
            .filter(|(name, ..)| !name.starts_with("shard"))
            .map(|(name, parent, ..)| {
                let mut path = vec![name.clone()];
                let mut up = *parent;
                while let Some((pname, pparent, ..)) = spans.get(&up) {
                    path.push(pname.clone());
                    up = *pparent;
                }
                path.reverse();
                path.join("/")
            })
            .collect();
        paths.sort();
        paths
    }

    #[test]
    fn span_structure_is_identical_across_thread_counts() {
        let dir = std::env::temp_dir().join(format!("lpr-span-det-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();

        let (seq, _) = traced_classify(1, std::slice::from_ref(&warts_path), &rib_path);
        let reference = span_skeleton(&seq);
        assert!(
            reference.iter().any(|p| p == "run:classify/cycle/stage:Ingest"),
            "skeleton misses the ingest stage: {reference:?}"
        );
        for threads in [2usize, 8] {
            let (snap, _) = traced_classify(threads, std::slice::from_ref(&warts_path), &rib_path);
            assert_eq!(span_skeleton(&snap), reference, "--threads {threads}");
            // Every opened span must close, whatever the schedule.
            for (id, (name, _, _, end)) in span_table(&snap) {
                assert_ne!(end, u64::MAX, "span {id} ({name}) never ended");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_spans_and_events_reconcile_with_telemetry() {
        let dir = std::env::temp_dir().join(format!("lpr-span-rec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let bad_path = dir.join("bad.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();

        // A second input whose only trace quotes an impossibly deep
        // label stack (the codec carries it verbatim; structural
        // validation at ingest quarantines it), so exactly one trace
        // lands in quarantine.
        let deep: Vec<lpr_core::label::Lse> =
            (0..40).map(|i| lpr_core::label::Lse::transit(i, 254)).collect();
        let mut bad = lpr_core::trace::Trace::new(
            std::net::Ipv4Addr::new(10, 9, 0, 1),
            std::net::Ipv4Addr::new(10, 9, 0, 2),
        );
        bad.push_hop(lpr_core::trace::Hop::labelled(
            1,
            std::net::Ipv4Addr::new(10, 9, 0, 3),
            &deep,
        ));
        let mut w = warts::WartsWriter::new();
        w.trace(&warts::trace_to_record(&bad, 1, 1)).unwrap();
        std::fs::write(&bad_path, w.into_bytes()).unwrap();

        let inputs = vec![warts_path, bad_path];
        let (snapshot, telemetry) = traced_classify(4, &inputs, &rib_path);
        assert_eq!(snapshot.dropped, 0, "journal must not wrap on the demo input");
        let spans = span_table(&snapshot);

        // Shard spans nest inside their stage span, and their summed
        // duration accounts for the stage wall time: at most `threads`
        // lanes deep, and the stage span itself must agree with the
        // StageGuard's wall_us up to scheduling noise.
        const TOLERANCE_US: u64 = 5_000;
        for stage in ["Ingest", "Persistence", "Classification"] {
            let (stage_id, &(_, _, stage_begin, stage_end)) = spans
                .iter()
                .find(|(_, (name, ..))| name == &format!("stage:{stage}"))
                .unwrap_or_else(|| panic!("no stage:{stage} span"));
            assert_ne!(stage_end, u64::MAX, "stage:{stage} never ended");
            let stage_dur = stage_end - stage_begin;

            // Ingest has no aggregate telemetry row (its wall is split
            // between TunnelExtraction and LabelAttribution); the two
            // StageGuard-backed stages must agree with their span.
            if stage != "Ingest" {
                let wall = telemetry.stage(stage).unwrap_or_else(|| panic!("{stage}")).wall_us;
                assert!(
                    stage_dur.abs_diff(wall) <= TOLERANCE_US + wall,
                    "stage:{stage} span {stage_dur}us vs telemetry wall {wall}us"
                );
            }

            let mut shard_sum = 0u64;
            for (name, parent, begin, end) in spans.values() {
                if parent == stage_id && name.starts_with("shard") {
                    assert!(
                        *begin >= stage_begin && *end <= stage_end,
                        "shard span escapes stage:{stage}"
                    );
                    shard_sum += end - begin;
                }
            }
            assert!(
                shard_sum <= 4 * stage_dur + TOLERANCE_US,
                "stage:{stage} shard sum {shard_sum}us exceeds 4 lanes of {stage_dur}us"
            );
        }

        // Quarantine warn events carry an `n` field per reason; their
        // sum is exactly the quarantined counter.
        let mut event_total = 0u64;
        for ev in &snapshot.events {
            if let lpr_obs::TraceEvent::Event { level, name, fields, .. } = ev {
                if name == "quarantine" {
                    assert_eq!(*level, lpr_obs::Level::Warn);
                    let n = fields
                        .iter()
                        .find_map(|(k, v)| match (k.as_str(), v) {
                            ("n", lpr_obs::FieldValue::U64(n)) => Some(*n),
                            _ => None,
                        })
                        .expect("quarantine event without n");
                    event_total += n;
                }
            }
        }
        assert_eq!(event_total, telemetry.counter("pipeline.traces_quarantined"));
        assert_eq!(event_total, 1, "the deep-stack trace must be quarantined");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_emitted_counter_is_in_the_names_vocabulary() {
        let dir = std::env::temp_dir().join(format!("lpr-names-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();

        let (_, telemetry) = traced_classify(2, std::slice::from_ref(&warts_path), &rib_path);
        for name in telemetry.counters.keys() {
            assert!(
                lpr_obs::names::is_known_counter(name),
                "counter {name} is not in lpr_obs::names::ALL_COUNTERS"
            );
        }
        for name in telemetry.histograms.keys() {
            assert!(
                lpr_obs::names::is_known_histogram(name),
                "histogram {name} is not in lpr_obs::names::ALL_HISTOGRAMS"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
