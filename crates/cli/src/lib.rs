//! # lpr-cli — the `lpr` command-line tool
//!
//! Runs the LPR analysis on scamper **warts** dumps, the way the paper
//! does on CAIDA Archipelago data:
//!
//! ```text
//! lpr classify --rib rib.txt cycleX.warts [--next cycleX+1.warts]...
//!              [--j N] [--alias-rescue] [--trees] [--per-as]
//! lpr stats    --rib rib.txt cycleX.warts [--next ...]   filter survival
//! lpr tunnels  cycleX.warts                              dump explicit tunnels
//! lpr dump     file.warts                                scamper-style text dump
//! lpr info     file.warts                                record inventory
//! lpr demo     --out demo.warts --rib-out rib.txt        generate sample data
//! lpr help
//! ```
//!
//! The RIB file is the plain `prefix asn` snapshot format of the
//! `ip2as` crate (one routed prefix per line, `#` comments).
//!
//! The library entry point ([`run`]) takes the argument vector and a
//! writer, so the whole CLI is unit-testable without spawning
//! processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lpr_core::prelude::*;
use std::collections::BTreeSet;
use std::fmt;
use std::io::Write;

mod commands;

pub use commands::demo::write_demo_files;

/// A CLI failure, printable to the user.
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

impl From<warts::WartsError> for CliError {
    fn from(e: warts::WartsError) -> Self {
        CliError(format!("warts: {e}"))
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parsed command-line options shared by the analysis subcommands.
#[derive(Debug, Default)]
pub struct Options {
    /// Input warts files (the cycle to classify).
    pub inputs: Vec<String>,
    /// Follow-up snapshot files for the Persistence filter.
    pub next: Vec<String>,
    /// RIB snapshot path.
    pub rib: Option<String>,
    /// Persistence window (defaults to the number of `--next` files).
    pub j: Option<usize>,
    /// Enable the §5 alias rescue.
    pub alias_rescue: bool,
    /// Also run the egress-rooted LSP-tree analysis.
    pub trees: bool,
    /// Print per-AS tallies.
    pub per_as: bool,
    /// Aggregate IOTPs at the router level via label-based alias
    /// resolution (§5).
    pub router_level: bool,
    /// Write machine-readable run telemetry (stage timings, counters)
    /// to this path as JSON.
    pub metrics: Option<String>,
    /// Print per-stage progress lines to stderr as the run finishes.
    pub progress: bool,
    /// Worker threads for the parallel pipeline (`None` = the machine's
    /// available parallelism; `1` forces the sequential path). The
    /// output is byte-identical for every value.
    pub threads: Option<usize>,
}

impl Options {
    /// Parses `args` after the subcommand name.
    pub fn parse(args: &[String]) -> Result<Options, CliError> {
        let mut o = Options::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--rib" => o.rib = Some(take(&mut it, "--rib")?),
                "--next" => o.next.push(take(&mut it, "--next")?),
                "--j" => {
                    o.j = Some(
                        take(&mut it, "--j")?
                            .parse()
                            .map_err(|_| err("--j wants an integer"))?,
                    )
                }
                "--alias-rescue" => o.alias_rescue = true,
                "--trees" => o.trees = true,
                "--per-as" => o.per_as = true,
                "--router-level" => o.router_level = true,
                "--metrics" => o.metrics = Some(take(&mut it, "--metrics")?),
                "--progress" => o.progress = true,
                "--threads" => {
                    let n: usize = take(&mut it, "--threads")?
                        .parse()
                        .map_err(|_| err("--threads wants an integer"))?;
                    if n == 0 {
                        return Err(err("--threads wants at least 1"));
                    }
                    o.threads = Some(n);
                }
                flag if flag.starts_with("--") => {
                    return Err(err(format!("unknown flag {flag}")))
                }
                path => o.inputs.push(path.to_string()),
            }
        }
        Ok(o)
    }
}

fn take(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, CliError> {
    it.next().cloned().ok_or_else(|| err(format!("{flag} wants a value")))
}

/// Loads every trace from a list of warts files.
pub fn load_traces(paths: &[String]) -> Result<Vec<Trace>, CliError> {
    load_traces_par(paths, 1)
}

/// [`load_traces`] with parallel record→trace conversion: the stateful
/// warts record decode stays sequential (the format carries a file-wide
/// address dictionary), the per-record conversion shards across
/// `threads` workers, preserving record order.
pub fn load_traces_par(paths: &[String], threads: usize) -> Result<Vec<Trace>, CliError> {
    let mut traces = Vec::new();
    for path in paths {
        let bytes = std::fs::read(path)
            .map_err(|e| err(format!("{path}: {e}")))?;
        let records = warts::WartsReader::new(&bytes)
            .traces()
            .map_err(|e| err(format!("{path}: {e}")))?;
        traces.extend(
            warts::traces_to_core_par(&records, threads)
                .map_err(|e| err(format!("{path}: {e}")))?,
        );
    }
    Ok(traces)
}

/// Loads the RIB snapshot into a longest-prefix-match trie.
pub fn load_rib(path: &str) -> Result<ip2as::Ip2AsTrie, CliError> {
    let text = std::fs::read_to_string(path).map_err(|e| err(format!("{path}: {e}")))?;
    ip2as::parse_rib(&text).map_err(|e| err(format!("{path}: {e}")))
}

/// Runs the analysis pipeline an analysis subcommand needs.
pub fn run_pipeline(o: &Options) -> Result<(Vec<Trace>, PipelineOutput), CliError> {
    run_pipeline_recorded(o, None)
}

/// [`run_pipeline`] with instrumentation: loading and every pipeline
/// stage land in `recorder` (see `lpr_obs`).
pub fn run_pipeline_recorded(
    o: &Options,
    recorder: Option<&lpr_obs::Recorder>,
) -> Result<(Vec<Trace>, PipelineOutput), CliError> {
    if o.inputs.is_empty() {
        return Err(err("no input warts files (see `lpr help`)"));
    }
    let rib_path = o.rib.as_ref().ok_or_else(|| err("--rib <file> is required"))?;
    let rib = load_rib(rib_path)?;
    let threads = o.threads.unwrap_or_else(lpr_par::available_threads);
    let sw = lpr_obs::Stopwatch::start();
    let traces = load_traces_par(&o.inputs, threads)?;
    if let Some(rec) = recorder {
        rec.record_stage(
            "LoadTraces",
            sw.elapsed_us(),
            o.inputs.len() as u64,
            traces.len() as u64,
        );
        let bytes: u64 = o
            .inputs
            .iter()
            .filter_map(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .sum();
        rec.counter("cli.input_bytes").add(bytes);
        rec.counter("cli.input_files").add(o.inputs.len() as u64);
    }
    let future: Vec<BTreeSet<LspKey>> = o
        .next
        .iter()
        .map(|p| {
            load_traces_par(std::slice::from_ref(p), threads)
                .map(|t| Pipeline::snapshot_keys_par(&t, threads))
        })
        .collect::<Result<_, _>>()?;
    let j = o.j.unwrap_or(future.len());
    let mut pipeline =
        Pipeline::new(FilterConfig { persistence_window: j, ..Default::default() });
    if o.alias_rescue {
        pipeline = pipeline.with_alias_rescue();
    }
    let out = pipeline.run_par_recorded(&traces, &rib, &future, threads, recorder);
    Ok((traces, out))
}

/// Builds the recorder an analysis subcommand needs — `Some` only when
/// `--metrics` or `--progress` asked for one.
pub fn recorder_for(o: &Options, label: &str) -> Option<lpr_obs::Recorder> {
    (o.metrics.is_some() || o.progress).then(|| lpr_obs::Recorder::new(label))
}

/// Finalises telemetry: prints `--progress` stage lines to stderr and
/// writes the `--metrics` JSON file.
pub fn emit_telemetry(o: &Options, recorder: Option<lpr_obs::Recorder>) -> Result<(), CliError> {
    let Some(recorder) = recorder else { return Ok(()) };
    let telemetry = recorder.finish();
    if o.progress {
        for s in &telemetry.stages {
            eprintln!(
                "[lpr] {:<18} {:>8} -> {:<8} {:>8} us",
                s.name, s.input, s.output, s.wall_us,
            );
        }
        eprintln!("[lpr] total {} us", telemetry.total_wall_us);
    }
    if let Some(path) = &o.metrics {
        std::fs::write(path, telemetry.to_json())
            .map_err(|e| err(format!("{path}: {e}")))?;
    }
    Ok(())
}

/// Entry point: dispatches a full argument vector.
pub fn run(args: &[String], w: &mut dyn Write) -> Result<(), CliError> {
    let (cmd, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => ("help", &[] as &[String]),
    };
    match cmd {
        "classify" => commands::classify::run(&Options::parse(rest)?, w),
        "stats" => commands::stats::run(&Options::parse(rest)?, w),
        "tunnels" => commands::tunnels::run(&Options::parse(rest)?, w),
        "info" => commands::info::run(&Options::parse(rest)?, w),
        "dump" => commands::dump::run(&Options::parse(rest)?, w),
        "demo" => commands::demo::run(rest, w),
        "help" | "--help" | "-h" => {
            writeln!(w, "{}", HELP)?;
            Ok(())
        }
        other => Err(err(format!("unknown command `{other}` (try `lpr help`)"))),
    }
}

const HELP: &str = "\
lpr — MPLS transit path diversity classification (IMC'15 LPR algorithm)

USAGE:
  lpr classify --rib <rib.txt> <cycle.warts>... [--next <snap.warts>]...
               [--j N] [--alias-rescue] [--trees] [--per-as] [--router-level]
               [--metrics <out.json>] [--progress] [--threads N]
  lpr stats    --rib <rib.txt> <cycle.warts>... [--next <snap.warts>]...
               [--metrics <out.json>] [--progress] [--threads N]
  lpr tunnels  <cycle.warts>...
  lpr dump     <file.warts>...
  lpr info     <file.warts>...
  lpr demo     --out <demo.warts> --rib-out <rib.txt>
  lpr help

The RIB file maps prefixes to origin ASes, one `prefix asn` per line
(Routeviews-style). `--next` snapshots feed the Persistence filter
(paper default: two, i.e. --j 2).

`--metrics <out.json>` writes machine-readable run telemetry (per-stage
wall time and LSP counts matching the Table 1 funnel, plus ingest
counters); `--progress` prints the same stage lines to stderr.

`--threads N` shards the pipeline across N worker threads (default: the
machine's available parallelism). Results are byte-identical for every
thread count; `--threads 1` forces the sequential path.";

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_options() {
        let o = Options::parse(&s(&[
            "a.warts",
            "--rib",
            "rib.txt",
            "--next",
            "b.warts",
            "--next",
            "c.warts",
            "--j",
            "2",
            "--alias-rescue",
            "--per-as",
        ]))
        .unwrap();
        assert_eq!(o.inputs, vec!["a.warts"]);
        assert_eq!(o.next.len(), 2);
        assert_eq!(o.rib.as_deref(), Some("rib.txt"));
        assert_eq!(o.j, Some(2));
        assert!(o.alias_rescue && o.per_as && !o.trees && !o.router_level);
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(Options::parse(&s(&["--bogus"])).is_err());
        assert!(Options::parse(&s(&["--rib"])).is_err());
        assert!(Options::parse(&s(&["--j", "x"])).is_err());
    }

    #[test]
    fn help_prints() {
        let mut out = Vec::new();
        run(&s(&["help"]), &mut out).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("USAGE"));
    }

    #[test]
    fn unknown_command_errors() {
        let mut out = Vec::new();
        assert!(run(&s(&["frobnicate"]), &mut out).is_err());
    }

    #[test]
    fn classify_requires_inputs() {
        let mut out = Vec::new();
        assert!(run(&s(&["classify"]), &mut out).is_err());
    }

    #[test]
    fn parse_metrics_and_progress_flags() {
        let o = Options::parse(&s(&["a.warts", "--metrics", "t.json", "--progress"])).unwrap();
        assert_eq!(o.metrics.as_deref(), Some("t.json"));
        assert!(o.progress);
        assert!(Options::parse(&s(&["--metrics"])).is_err());
    }

    #[test]
    fn parse_threads_flag() {
        let o = Options::parse(&s(&["a.warts", "--threads", "4"])).unwrap();
        assert_eq!(o.threads, Some(4));
        assert_eq!(Options::parse(&s(&["a.warts"])).unwrap().threads, None);
        assert!(Options::parse(&s(&["--threads"])).is_err());
        assert!(Options::parse(&s(&["--threads", "0"])).is_err());
        assert!(Options::parse(&s(&["--threads", "x"])).is_err());
    }

    #[test]
    fn classify_output_is_identical_for_any_thread_count() {
        let dir = std::env::temp_dir().join(format!("lpr-threads-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();

        let render = |threads: &str| {
            let mut out = Vec::new();
            run(
                &s(&["classify", "--rib", &rib_path, &warts_path, "--threads", threads]),
                &mut out,
            )
            .unwrap();
            String::from_utf8(out).unwrap()
        };
        let seq = render("1");
        for threads in ["2", "3", "4"] {
            assert_eq!(render(threads), seq, "--threads {threads}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn classify_metrics_reconcile_with_filter_report() {
        let dir = std::env::temp_dir().join(format!("lpr-metrics-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let warts_path = dir.join("demo.warts").to_string_lossy().into_owned();
        let rib_path = dir.join("rib.txt").to_string_lossy().into_owned();
        let metrics_path = dir.join("telemetry.json").to_string_lossy().into_owned();
        let (bytes, rib) = write_demo_files();
        std::fs::write(&warts_path, &bytes).unwrap();
        std::fs::write(&rib_path, rib).unwrap();

        let mut out = Vec::new();
        run(
            &s(&["classify", "--rib", &rib_path, &warts_path, "--metrics", &metrics_path]),
            &mut out,
        )
        .unwrap();

        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let telemetry = lpr_obs::RunTelemetry::from_json(&text).unwrap();

        // The same run without telemetry is the reference: stage counts
        // in the JSON must chain exactly through the FilterReport.
        let o = Options {
            inputs: vec![warts_path],
            rib: Some(rib_path),
            ..Default::default()
        };
        let (_, reference) = run_pipeline(&o).unwrap();
        let mut input = reference.report.input as u64;
        for stage in FilterStage::ALL {
            let st = telemetry.stage(stage.name()).expect(stage.name());
            assert_eq!(st.input, input, "{} input", stage.name());
            assert_eq!(
                st.output,
                reference.report.remaining[&stage] as u64,
                "{} output",
                stage.name()
            );
            input = st.output;
        }
        assert_eq!(
            telemetry.counter("pipeline.iotps_classified"),
            reference.iotps.len() as u64
        );
        assert!(telemetry.stage("LoadTraces").is_some());
        assert!(telemetry.counter("cli.input_bytes") > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
