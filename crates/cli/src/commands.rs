//! The `lpr` subcommands.

use crate::{CliError, Options};
use std::io::Write;

pub mod classify {
    //! `lpr classify` — run the full LPR pipeline and print the
    //! per-IOTP classification.

    use super::*;
    use crate::RunStatus;
    use lpr_core::metrics::IotpMetrics;

    /// Executes the subcommand.
    pub fn run(o: &Options, w: &mut dyn Write) -> Result<RunStatus, CliError> {
        let recorder = crate::recorder_for(o, "lpr classify");
        let run_span = crate::open_run_span(recorder.as_ref(), "classify");
        let artifacts = crate::run_pipeline_recorded(o, recorder.as_ref())?;
        let out = &artifacts.output;

        for (iotp, cls) in &out.iotps {
            let m = IotpMetrics::of(iotp);
            writeln!(
                w,
                "{}\t<{} ; {}>\t{}\twidth={} length={} symmetry={}",
                iotp.key.asn,
                iotp.key.ingress,
                iotp.key.egress,
                cls.class,
                m.width,
                m.length,
                m.symmetry,
            )?;
        }

        let c = out.class_counts();
        writeln!(
            w,
            "\ntotal {} IOTPs: {} Mono-LSP | {} Multi-FEC | {} Mono-FEC ({} parallel links, {} routers disjoint) | {} unclassified",
            c.total(),
            c.mono_lsp,
            c.multi_fec,
            c.mono_fec(),
            c.mono_fec_parallel,
            c.mono_fec_disjoint,
            c.unclassified,
        )?;
        if !out.dynamic_ases.is_empty() {
            let names: Vec<String> =
                out.dynamic_ases.iter().map(|a| a.to_string()).collect();
            writeln!(w, "dynamic ASes (labels churn between snapshots): {}", names.join(" "))?;
        }

        if o.per_as {
            writeln!(w, "\nper-AS classification:")?;
            for asn in out.ases() {
                let c = out.class_counts_for(asn);
                let vendors = lpr_core::fingerprint::infer_vendors(
                    out.iotps.iter().filter(|(i, _)| i.key.asn == asn).map(|(i, _)| i),
                );
                let vendor = vendors
                    .get(&asn)
                    .map(|(_, v)| format!("{v:?}"))
                    .unwrap_or_else(|| "n/a".into());
                writeln!(
                    w,
                    "  {asn}: {} IOTPs [mono_lsp={} multi_fec={} mono_fec={} unclassified={}] platform: {vendor}",
                    c.total(),
                    c.mono_lsp,
                    c.multi_fec,
                    c.mono_fec(),
                    c.unclassified,
                )?;
            }
        }

        if o.router_level {
            run_router_level(out, w)?;
        }

        if o.trees {
            run_trees(o, w)?;
        }
        crate::write_degradation_summary(&artifacts, w)?;
        drop(run_span);
        crate::emit_telemetry(o, recorder)?;
        Ok(artifacts.status())
    }

    fn run_router_level(
        out: &lpr_core::pipeline::PipelineOutput,
        w: &mut dyn Write,
    ) -> Result<(), CliError> {
        use lpr_core::aliasres::{infer_aliases, merge_router_level};
        let iotps: Vec<_> = out.iotps.iter().map(|(i, _)| i.clone()).collect();
        let aliases = infer_aliases(iotps.iter());
        let sets = aliases.sets();
        writeln!(w, "
label-inferred alias sets ({}):", sets.len())?;
        for set in &sets {
            let addrs: Vec<String> = set.iter().map(|a| a.to_string()).collect();
            writeln!(w, "  {{{}}}", addrs.join(", "))?;
        }
        let merged = merge_router_level(&iotps, &aliases);
        writeln!(
            w,
            "router-level IOTPs: {} (from {} address-level IOTPs)",
            merged.len(),
            iotps.len(),
        )?;
        for (iotp, absorbed) in merged.iter().filter(|(_, n)| *n > 1) {
            let c = lpr_core::classify::classify_iotp(iotp);
            writeln!(
                w,
                "  {} <{} ; {}>  absorbed {}  {}",
                iotp.key.asn, iotp.key.ingress, iotp.key.egress, absorbed, c.class,
            )?;
        }
        Ok(())
    }

    fn run_trees(o: &Options, w: &mut dyn Write) -> Result<(), CliError> {
        // Recompute the attributed LSPs (tree analysis skips the
        // TransitDiversity filter on purpose, §5).
        let rib = crate::load_rib(o.rib.as_ref().expect("checked by run_pipeline"))?;
        let traces = crate::load_traces(&o.inputs)?;
        let tunnels: Vec<_> =
            traces.iter().flat_map(lpr_core::tunnel::extract_tunnels).collect();
        let lsps = lpr_core::filter::attribute_and_filter(&tunnels, &rib).lsps;
        let trees = lpr_core::tree::build_fec_trees(&lsps);
        writeln!(w, "\negress-rooted LSP-trees ({}):", trees.len())?;
        for tree in &trees {
            writeln!(
                w,
                "  {} egress {}  ingresses={} branches={}  {:?}",
                tree.asn,
                tree.egress,
                tree.ingresses.len(),
                tree.branches.width(),
                lpr_core::tree::classify_tree(tree),
            )?;
        }
        Ok(())
    }
}

pub mod stats {
    //! `lpr stats` — filter-survival accounting (the Table 1 view).

    use super::*;
    use crate::RunStatus;
    use lpr_core::prelude::*;

    /// Executes the subcommand.
    pub fn run(o: &Options, w: &mut dyn Write) -> Result<RunStatus, CliError> {
        let recorder = crate::recorder_for(o, "lpr stats");
        let run_span = crate::open_run_span(recorder.as_ref(), "stats");
        let artifacts = crate::run_pipeline_recorded(o, recorder.as_ref())?;
        let out = &artifacts.output;
        writeln!(
            w,
            "traces: {} ({} crossing explicit MPLS tunnels)",
            artifacts.trace_count, artifacts.mpls_traces,
        )?;
        writeln!(w, "extracted LSPs: {}", out.report.input)?;
        for stage in FilterStage::ALL {
            writeln!(
                w,
                "  after {:<18} {:>8}   ({:.3})",
                stage.name(),
                out.report.remaining.get(&stage).copied().unwrap_or(0),
                out.report.proportion_after(stage),
            )?;
        }
        writeln!(w, "classified IOTPs: {}", out.iotps.len())?;
        crate::write_degradation_summary(&artifacts, w)?;
        drop(run_span);
        crate::emit_telemetry(o, recorder)?;
        Ok(artifacts.status())
    }
}

pub mod tunnels {
    //! `lpr tunnels` — dump every explicit tunnel found in the input.

    use super::*;
    use lpr_core::tunnel::extract_tunnels;

    /// Executes the subcommand.
    pub fn run(o: &Options, w: &mut dyn Write) -> Result<(), CliError> {
        if o.inputs.is_empty() {
            return Err(CliError("no input warts files".into()));
        }
        let traces = crate::load_traces(&o.inputs)?;
        let mut total = 0usize;
        for trace in &traces {
            for t in extract_tunnels(trace) {
                total += 1;
                let status = match t.incomplete {
                    None => "complete".to_string(),
                    Some(e) => format!("incomplete ({e})"),
                };
                let lsrs: Vec<String> =
                    t.lsrs.iter().map(|(a, s)| format!("{a}{s:?}")).collect();
                writeln!(
                    w,
                    "{} -> {}  ingress={} egress={}  [{}]  {}",
                    trace.src,
                    trace.dst,
                    t.ingress.map(|a| a.to_string()).unwrap_or_else(|| "?".into()),
                    t.egress.map(|a| a.to_string()).unwrap_or_else(|| "?".into()),
                    lsrs.join(" "),
                    status,
                )?;
            }
        }
        writeln!(w, "\n{total} explicit tunnels in {} traces", traces.len())?;
        Ok(())
    }
}

pub mod dump {
    //! `lpr dump` — scamper-style text rendering of warts records.

    use super::*;
    use warts::Record;

    /// Executes the subcommand.
    pub fn run(o: &Options, w: &mut dyn Write) -> Result<(), CliError> {
        if o.inputs.is_empty() {
            return Err(CliError("no input warts files".into()));
        }
        for path in &o.inputs {
            for rec in warts::read_path(path)
                .map_err(|e| CliError(format!("{path}: {e}")))?
            {
                match rec {
                    Record::Trace(t) => write!(w, "{}", warts::trace_to_text(&t))?,
                    Record::Ping(p) => write!(w, "{}", warts::ping_to_text(&p))?,
                    Record::List(l) => writeln!(w, "list {} ({})", l.list_id, l.name)?,
                    Record::CycleStart(c) => {
                        writeln!(w, "cycle {} start {}", c.cycle_id, c.start)?
                    }
                    Record::CycleStop(c) => writeln!(w, "cycle stop {}", c.stop)?,
                    Record::Unsupported { record_type, body } => {
                        writeln!(w, "unsupported record type {record_type:#04x} ({} bytes)", body.len())?
                    }
                }
            }
        }
        Ok(())
    }
}

pub mod info {
    //! `lpr info` — record inventory of warts files.

    use super::*;
    use warts::Record;

    /// Executes the subcommand.
    pub fn run(o: &Options, w: &mut dyn Write) -> Result<(), CliError> {
        if o.inputs.is_empty() {
            return Err(CliError("no input warts files".into()));
        }
        for path in &o.inputs {
            let bytes =
                std::fs::read(path).map_err(|e| CliError(format!("{path}: {e}")))?;
            let mut lists = 0usize;
            let mut cycles = 0usize;
            let mut traces = 0usize;
            let mut pings = 0usize;
            let mut hops = 0usize;
            let mut mpls_hops = 0usize;
            let mut unsupported = 0usize;
            let mut reader = warts::WartsReader::new(&bytes);
            while let Some(rec) = reader.next_record().map_err(|e| CliError(format!("{path}: {e}")))? {
                match rec {
                    Record::List(_) => lists += 1,
                    Record::CycleStart(_) | Record::CycleStop(_) => cycles += 1,
                    Record::Trace(t) => {
                        traces += 1;
                        hops += t.hops.len();
                        mpls_hops +=
                            t.hops.iter().filter(|h| !h.icmp_exts.is_empty()).count();
                    }
                    Record::Ping(_) => pings += 1,
                    Record::Unsupported { .. } => unsupported += 1,
                }
            }
            writeln!(
                w,
                "{path}: {} bytes, {lists} list(s), {cycles} cycle record(s), {traces} trace(s), {pings} ping(s), {hops} hop(s) ({mpls_hops} with MPLS extensions), {unsupported} unsupported record(s)",
                bytes.len(),
            )?;
        }
        Ok(())
    }
}

pub mod serve {
    //! `lpr serve` — the continuous-measurement daemon: watch a spool
    //! directory for warts drops, ingest them into a windowed pipeline
    //! state, and serve snapshots/reports/metrics over HTTP.

    use super::*;
    use lpr_serve::{Server, ServeConfig};
    use std::path::PathBuf;
    use std::time::Duration;

    /// Parses the subcommand's own flags into a [`ServeConfig`].
    /// Returns the config plus whether `--once` was given (run a
    /// bounded number of ticks and exit — for smoke tests).
    pub fn parse(args: &[String]) -> Result<(ServeConfig, Option<u64>), CliError> {
        let mut spool = None;
        let mut rib = None;
        let mut cfg_overrides: Vec<(String, String)> = Vec::new();
        let mut once = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut take = |flag: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError(format!("{flag} wants a value")))
            };
            match a.as_str() {
                "--spool" => spool = Some(take("--spool")?),
                "--rib" => rib = Some(take("--rib")?),
                "--addr" | "--window" | "--threads" | "--tick-ms" | "--ingest-timeout-ms"
                | "--retries" | "--backoff-ms" | "--backoff-cap-ms" | "--growing-grace" => {
                    let v = take(a)?;
                    cfg_overrides.push((a.clone(), v));
                }
                "--once" => {
                    let v = take("--once")?;
                    once = Some(v.parse().map_err(|_| {
                        CliError(format!("--once wants a tick count, got `{v}`"))
                    })?);
                }
                other => return Err(CliError(format!("unknown serve flag {other}"))),
            }
        }
        let spool = spool.ok_or(CliError("--spool <dir> required".into()))?;
        let rib = rib.ok_or(CliError("--rib <rib.txt> required".into()))?;
        let mut cfg = ServeConfig::new(PathBuf::from(spool), PathBuf::from(rib));
        for (flag, v) in cfg_overrides {
            let num = || {
                v.parse::<u64>()
                    .map_err(|_| CliError(format!("{flag} wants a number, got `{v}`")))
            };
            match flag.as_str() {
                "--addr" => cfg.addr = v.clone(),
                "--window" => cfg.window = num()? as usize,
                "--threads" => cfg.threads = num()? as usize,
                "--tick-ms" => cfg.tick = Duration::from_millis(num()?),
                "--ingest-timeout-ms" => cfg.ingest_timeout = Duration::from_millis(num()?),
                "--retries" => cfg.retries = num()? as u32,
                "--backoff-ms" => cfg.backoff_base = Duration::from_millis(num()?),
                "--backoff-cap-ms" => cfg.backoff_cap = Duration::from_millis(num()?),
                "--growing-grace" => cfg.growing_grace = num()? as u32,
                _ => unreachable!("flag list is closed"),
            }
        }
        if cfg.window == 0 {
            return Err(CliError("--window must be at least 1".into()));
        }
        Ok((cfg, once))
    }

    /// Executes the subcommand: starts the daemon and blocks until
    /// SIGTERM/SIGINT (or, with `--once N`, until N reconcile ticks
    /// have completed). The returned code is the process exit code.
    pub fn run(args: &[String], w: &mut dyn Write) -> Result<i32, CliError> {
        let (cfg, once) = parse(args)?;
        let spool = cfg.spool.display().to_string();
        let handle = Server::start(cfg).map_err(|e| CliError(format!("serve: {e}")))?;
        writeln!(w, "lpr serve: listening on http://{} (spool {spool})", handle.addr())?;
        w.flush().ok();
        match once {
            Some(ticks) => {
                while handle.ticks() < ticks {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                handle.stop();
                Ok(0)
            }
            None => Ok(handle.run_until_signal()),
        }
    }
}

pub mod demo {
    //! `lpr demo` — generate a sample warts file + RIB with the
    //! simulator, so the tool is explorable without CAIDA data.

    use super::*;
    use lpr_core::lsp::Asn;
    use netsim::{
        AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, TePathMode, Topology,
        TopologyParams, Vendor, VisibilityMix,
    };
    use std::collections::BTreeMap;
    use std::net::Ipv4Addr;

    /// Builds the demo campaign with all tunnels explicit and writes
    /// `(warts bytes, rib text)`.
    pub fn write_demo_files() -> (Vec<u8>, String) {
        write_demo_files_with(None)
    }

    /// Builds the demo campaign and writes `(warts bytes, rib text)`,
    /// hiding part of the MPLS deployment when a tunnel-visibility mix
    /// is given (`lpr demo --tunnel-visibility …`).
    pub fn write_demo_files_with(visibility: Option<VisibilityMix>) -> (Vec<u8>, String) {
        let specs = vec![
            AsSpec::transit(
                65000,
                "demo-isp",
                Vendor::Juniper,
                TopologyParams {
                    core_routers: 6,
                    border_routers: 3,
                    ecmp_diamonds: 1,
                    parallel_bundles: 1,
                    ..TopologyParams::default()
                },
            ),
            AsSpec::stub(64600, "monitors", 0, 2),
            AsSpec::stub(64700, "cust-a", 3, 0),
            AsSpec::stub(64701, "cust-b", 3, 0),
        ];
        let peerings = vec![
            Peering::new(Asn(64600), Asn(65000)).at_b(0),
            Peering::new(Asn(65000), Asn(64700)).at_a(1),
            Peering::new(Asn(65000), Asn(64701)).at_a(1),
        ];
        let topo = Topology::build_with_peerings(&specs, &peerings);
        let rib_text = ip2as::to_rib_string(&topo.rib());
        let mut configs = BTreeMap::new();
        let mut cfg = MplsConfig::with_te(0.5, 2, TePathMode::SamePath);
        if let Some(mix) = visibility {
            cfg.visibility = mix;
        }
        configs.insert(Asn(65000), cfg);
        let net = Internet::new(topo, &configs);
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<Ipv4Addr> =
            net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(1);
        let traces = prober.campaign(&vps, &dsts);

        let mut writer = warts::WartsWriter::new();
        let list = writer.list(1, "demo");
        let cycle = writer.cycle_start(list, 1, 0);
        for t in &traces {
            writer.trace(&warts::trace_to_record(t, list, cycle)).expect("encode");
        }
        writer.cycle_stop(cycle, 1);
        (writer.into_bytes(), rib_text)
    }

    /// Executes the subcommand.
    pub fn run(args: &[String], w: &mut dyn Write) -> Result<(), CliError> {
        let mut out_path = None;
        let mut rib_path = None;
        let mut visibility = None;
        let mut it = args.iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--out" => out_path = it.next().cloned(),
                "--rib-out" => rib_path = it.next().cloned(),
                "--tunnel-visibility" => {
                    let spec = it.next().ok_or(CliError(
                        "--tunnel-visibility wants \
                         explicit:F,implicit:F,invisible:F,opaque:F"
                            .into(),
                    ))?;
                    visibility = Some(VisibilityMix::parse(spec).ok_or_else(|| {
                        CliError(format!("--tunnel-visibility: cannot parse `{spec}`"))
                    })?);
                }
                other => return Err(CliError(format!("unknown demo flag {other}"))),
            }
        }
        let out_path = out_path.ok_or(CliError("--out <file> required".into()))?;
        let rib_path = rib_path.ok_or(CliError("--rib-out <file> required".into()))?;
        let (bytes, rib) = write_demo_files_with(visibility);
        std::fs::write(&out_path, &bytes)?;
        std::fs::write(&rib_path, rib)?;
        writeln!(w, "wrote {out_path} ({} bytes) and {rib_path}", bytes.len())?;
        writeln!(w, "try: lpr classify --rib {rib_path} {out_path} --per-as --trees")?;
        Ok(())
    }
}
