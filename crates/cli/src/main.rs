//! `lpr` — classify MPLS transit path diversity from warts dumps.
//!
//! See `lpr help` for usage; the heavy lifting lives in [`lpr_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lpr_cli::run(&args, &mut std::io::stdout()) {
        // 0 = clean, 3 = success with quarantine (see `lpr help`).
        Ok(status) => std::process::exit(status.exit_code()),
        Err(e) => {
            eprintln!("lpr: {e}");
            std::process::exit(1);
        }
    }
}
