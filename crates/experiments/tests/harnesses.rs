//! Smoke and sanity tests for the experiment harnesses (scaled down —
//! the full regeneration is exercised by `experiments all`).

use ark_dataset::standard_world;

#[test]
fn longitudinal_rows_are_complete() {
    let world = standard_world();
    let rows = experiments::longitudinal::run(&world, 4);
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert!(r.trace_fraction > 0.0 && r.trace_fraction <= 1.0);
        assert!(r.mpls_ips > 0);
        assert_eq!(r.per_as.len(), world.featured.len());
        assert!(r.filter.input > 0);
    }
    // Cycles come back in order.
    let cycles: Vec<usize> = rows.iter().map(|r| r.cycle).collect();
    assert_eq!(cycles, vec![1, 2, 3, 4]);
}

#[test]
fn fig6_sweep_shape() {
    let world = standard_world();
    let rows = experiments::fig6::run(&world, 4);
    assert_eq!(rows.len(), 4);
    // j = 0 keeps at least as many LSPs as any filtered variant.
    let j0 = rows[0].lsps_kept;
    for r in &rows[1..] {
        assert!(r.lsps_kept <= j0, "{rows:?}");
    }
}

#[test]
fn fig789_distributions_are_consistent() {
    let world = standard_world();
    let d = experiments::fig789::run(&world, 30);
    assert!(d.length.total() > 0);
    assert_eq!(d.length.total(), d.width.total());
    // Width 0 never happens; width 1 is exactly the Mono-LSP share.
    assert_eq!(d.width.count(0), 0);
    // Class-restricted histograms only cover their classes.
    assert!(d.width_multi_fec.total() + d.width_mono_fec.total() <= d.width.total());
}

#[test]
fn ablation_variants_behave() {
    let world = standard_world();
    let variants = experiments::ablations::run(&world, 30);
    assert_eq!(variants.len(), 4);
    let by_name: std::collections::BTreeMap<_, _> =
        variants.iter().map(|v| (v.name, v.counts)).collect();
    let baseline = by_name["baseline (paper settings)"];
    let no_div = by_name["no TransitDiversity filter"];
    assert!(no_div.total() >= baseline.total(), "dropping a filter cannot shrink the IOTP set");
    let rescued = by_name["with alias rescue (§5)"];
    assert!(rescued.unclassified <= baseline.unclassified);
    assert_eq!(rescued.total(), baseline.total());
}

#[test]
fn validation_agrees_mostly() {
    let world = standard_world();
    let result = experiments::validation::run(&world, 30, 12);
    assert!(!result.is_empty());
    let mut checked = 0usize;
    let mut agree = 0usize;
    for a in result.values() {
        checked += a.checked;
        agree += a.agree;
    }
    assert!(checked > 10, "too few IOTPs validated: {result:?}");
    assert!(
        agree * 10 >= checked * 8,
        "label/IP-level agreement below 80%: {result:?}"
    );
}

#[test]
fn summary_outcomes_hold() {
    let world = standard_world();
    let rows = experiments::longitudinal::run(&world, 6);
    let s = experiments::summary::run(&rows);
    assert!(s.totals.total() > 0);
    assert!(s.diversity_is_mostly_ecmp, "{s:?}");
    // Outcome (iii) — "TE as common as no-diversity" — only emerges
    // once the TE deployments have ramped up (the full 60-cycle run
    // checks it); the first six cycles are the pre-TE era, so here we
    // only require the tally to be internally consistent.
    assert_eq!(
        s.totals.total(),
        s.totals.mono_lsp + s.totals.multi_fec + s.totals.mono_fec() + s.totals.unclassified
    );
}
