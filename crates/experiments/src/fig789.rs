//! Figs. 7–9 — IOTP length, width and symmetry distributions on the
//! last cycle (December 2014), per §4.3.

use crate::output::{announce, f3, print_table, write_csv};
use ark_dataset::campaign::{analyze_cycle, generate_cycle, CampaignOptions};
use ark_dataset::World;
use lpr_core::classify::Class;
use lpr_core::hist::Histogram;
use lpr_core::metrics::IotpMetrics;

/// The §4.3 distributions over cycle-60 IOTPs.
#[derive(Clone, Debug, Default)]
pub struct Distributions {
    /// IOTP length PDF (Fig. 7).
    pub length: Histogram,
    /// IOTP width PDF, all classes (Fig. 8a).
    pub width: Histogram,
    /// Width PDF, Multi-FEC only (Fig. 8b).
    pub width_multi_fec: Histogram,
    /// Width PDF, Mono-FEC only (Fig. 8b).
    pub width_mono_fec: Histogram,
    /// Symmetry PDF, Multi-FEC only (Fig. 9).
    pub symmetry_multi_fec: Histogram,
    /// Symmetry PDF, Mono-FEC only (Fig. 9).
    pub symmetry_mono_fec: Histogram,
}

/// Computes the distributions on the given cycle.
pub fn run(world: &World, cycle: usize) -> Distributions {
    let opts = CampaignOptions::default();
    let data = generate_cycle(world, cycle, &opts);
    let analysis = analyze_cycle(world, &data, 2);
    let mut d = Distributions::default();
    for (iotp, cls) in &analysis.output.iotps {
        let m = IotpMetrics::of(iotp);
        d.length.add(m.length as u64);
        d.width.add(m.width as u64);
        match cls.class {
            Class::MultiFec => {
                d.width_multi_fec.add(m.width as u64);
                d.symmetry_multi_fec.add(m.symmetry as u64);
            }
            Class::MonoFec(_) => {
                d.width_mono_fec.add(m.width as u64);
                d.symmetry_mono_fec.add(m.symmetry as u64);
            }
            _ => {}
        }
    }
    d
}

fn pdf_rows(h: &Histogram, max: u64) -> Vec<Vec<String>> {
    (0..=max).map(|v| vec![v.to_string(), f3(h.pdf(v))]).collect()
}

/// Prints and writes all three figures.
pub fn emit(d: &Distributions) {
    // Fig. 7.
    let max_len = d.length.max().unwrap_or(0);
    let rows = pdf_rows(&d.length, max_len);
    print_table("Fig. 7 — IOTP length PDF", &["length", "pdf"], &rows);
    let path = write_csv("fig7_iotp_length.csv", &["length", "pdf"], &rows);
    announce("Fig. 7", &path);
    println!(
        "short tunnels (<= 3 LSRs): {}  (median length {})",
        f3(d.length.cdf(3)),
        d.length.quantile(0.5).unwrap_or(0),
    );

    // Fig. 8a / 8b — bins 0..=9 plus a ">=10" tail, as in the paper.
    let mut rows8 = Vec::new();
    for w in 0..10u64 {
        rows8.push(vec![
            w.to_string(),
            f3(d.width.pdf(w)),
            f3(d.width_multi_fec.pdf(w)),
            f3(d.width_mono_fec.pdf(w)),
        ]);
    }
    rows8.push(vec![
        ">=10".to_string(),
        f3(d.width.tail(10)),
        f3(d.width_multi_fec.tail(10)),
        f3(d.width_mono_fec.tail(10)),
    ]);
    print_table(
        "Fig. 8 — IOTP width PDF (all / Multi-FEC / Mono-FEC)",
        &["width", "all", "multi_fec", "mono_fec"],
        &rows8,
    );
    let path = write_csv("fig8_iotp_width.csv", &["width", "all", "multi_fec", "mono_fec"], &rows8);
    announce("Fig. 8a/8b", &path);
    println!("width-1 share (Mono-LSP): {}", f3(d.width.pdf(1)));

    // Fig. 9.
    let max_sym = d
        .symmetry_multi_fec
        .max()
        .unwrap_or(0)
        .max(d.symmetry_mono_fec.max().unwrap_or(0))
        .max(4);
    let rows9: Vec<Vec<String>> = (0..=max_sym)
        .map(|s| {
            vec![
                s.to_string(),
                f3(d.symmetry_multi_fec.pdf(s)),
                f3(d.symmetry_mono_fec.pdf(s)),
            ]
        })
        .collect();
    print_table(
        "Fig. 9 — IOTP symmetry PDF (Multi-FEC / Mono-FEC)",
        &["symmetry", "multi_fec", "mono_fec"],
        &rows9,
    );
    let path = write_csv("fig9_iotp_symmetry.csv", &["symmetry", "multi_fec", "mono_fec"], &rows9);
    announce("Fig. 9", &path);
    println!(
        "balanced IOTPs: multi_fec={} mono_fec={}",
        f3(d.symmetry_multi_fec.pdf(0)),
        f3(d.symmetry_mono_fec.pdf(0)),
    );
}
