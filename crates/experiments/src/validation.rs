//! The §5 validation campaign the paper proposes as ground truth:
//!
//! > "One way to do that would be to launch an extensive Paris
//! > traceroute campaign to understand if the LSPs we tag as Mono-FEC
//! > ECMP (and so using LDP) are actually also visible with such a
//! > tool. Beside, we also plan to check whether Multi-FEC LSPs are,
//! > indeed, not visible through Paris traceroute."
//!
//! For every classified IOTP we re-probe its destinations under many
//! flow identifiers (MDA) and check:
//!
//! * **Mono-FEC** IOTPs should expose **several IP paths** (the ECMP
//!   diversity is in the forwarding, so flow variation reveals it);
//! * **Multi-FEC (same-path TE)** IOTPs should expose **one IP path**
//!   (the diversity lives in the labels, invisible at the IP level);
//! * **Mono-LSP** IOTPs should expose one IP path.

use crate::output::{announce, f3, print_table, write_csv};
use ark_dataset::campaign::{analyze_cycle, generate_cycle, CampaignOptions};
use ark_dataset::World;
use lpr_core::classify::Class;
use netsim::{Internet, MdaOptions, ProbeOptions, Prober, ProbingStrategy};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Agreement tallies between the label-level class and the IP-level
/// (MDA) view.
#[derive(Clone, Copy, Debug, Default)]
pub struct Agreement {
    /// IOTPs checked.
    pub checked: usize,
    /// IOTPs whose MDA view matches the expectation.
    pub agree: usize,
}

impl Agreement {
    fn rate(&self) -> f64 {
        if self.checked == 0 {
            1.0
        } else {
            self.agree as f64 / self.checked as f64
        }
    }
}

/// Runs the validation on one cycle: LPR first, then an MDA campaign
/// over each classified IOTP's `(vp, dst)` pairs.
///
/// `flows` is the per-destination flow *budget*, not a fixed count:
/// the prober's `n_k` stopping rule quits as soon as further diversity
/// is statistically ruled out, and `flows` only caps how far it may
/// run (the old exhaustive behaviour is the cap being hit every time).
pub fn run(world: &World, cycle: usize, flows: usize) -> BTreeMap<&'static str, Agreement> {
    let opts = CampaignOptions::default();
    let data = generate_cycle(world, cycle, &opts);
    let analysis = analyze_cycle(world, &data, 2);

    let configs = ark_dataset::configs_for_cycle(cycle);
    let net = Internet::new(world.topo.clone(), &configs);
    let prober = Prober::new(&net, ProbeOptions::default());
    let vps = world.all_vps();

    // Map each IOTP to one (vp, dst) pair that revealed it: re-probe
    // the traces of the primary snapshot and match tunnels.
    let mut result: BTreeMap<&'static str, Agreement> = BTreeMap::new();
    for (iotp, cls) in &analysis.output.iotps {
        // One destination AS the IOTP serves; pick any destination
        // whose trace crosses the pair.
        let Some((vp, dst)) = find_flow_through(world, &prober, &vps, iotp) else {
            continue;
        };
        // IP-level multipath view between the IOTP's LERs, discovered
        // under the MDA-Lite stopping rule with `flows` as the budget.
        let discovery = prober.mda_discover(
            vp,
            dst,
            &MdaOptions {
                strategy: ProbingStrategy::MdaLite,
                max_flows: flows,
                ..MdaOptions::default()
            },
        );
        let distinct_between =
            distinct_subpaths(&discovery.paths, iotp.key.ingress, iotp.key.egress);

        let (bucket, expect_multi) = match cls.class {
            Class::MonoLsp => ("Mono-LSP -> single IP path", false),
            Class::MultiFec => ("Multi-FEC -> single IP path", false),
            Class::MonoFec(_) => ("Mono-FEC -> several IP paths", true),
            Class::Unclassified => continue,
        };
        let entry = result.entry(bucket).or_default();
        entry.checked += 1;
        if (distinct_between > 1) == expect_multi {
            entry.agree += 1;
        }
    }
    result
}

/// Finds a `(vp, dst)` whose trace traverses the IOTP's LER pair.
fn find_flow_through(
    world: &World,
    prober: &Prober<'_>,
    vps: &[Ipv4Addr],
    iotp: &lpr_core::lsp::Iotp,
) -> Option<(Ipv4Addr, Ipv4Addr)> {
    for &vp in vps {
        for dst in world.all_destinations(1) {
            let trace = prober.trace(vp, dst);
            let addrs: Vec<_> =
                trace.responsive_hops().map(|h| h.addr.expect("responsive")).collect();
            let has_in = addrs.contains(&iotp.key.ingress);
            let has_out = addrs.contains(&iotp.key.egress);
            if has_in && has_out {
                return Some((vp, dst));
            }
        }
    }
    None
}

/// Counts the distinct sub-paths strictly between two addresses across
/// the MDA path set (paths not containing both endpoints are ignored).
fn distinct_subpaths(paths: &[Vec<Ipv4Addr>], from: Ipv4Addr, to: Ipv4Addr) -> usize {
    let mut subs = std::collections::BTreeSet::new();
    for p in paths {
        let (Some(i), Some(j)) =
            (p.iter().position(|a| *a == from), p.iter().position(|a| *a == to))
        else {
            continue;
        };
        if i < j {
            subs.insert(p[i..=j].to_vec());
        }
    }
    subs.len()
}

/// Prints and writes the agreement table.
pub fn emit(result: &BTreeMap<&'static str, Agreement>) {
    let rows: Vec<Vec<String>> = result
        .iter()
        .map(|(name, a)| {
            vec![name.to_string(), a.checked.to_string(), a.agree.to_string(), f3(a.rate())]
        })
        .collect();
    print_table(
        "§5 validation — label classes vs Paris-MDA IP-level view",
        &["expectation", "checked", "agree", "rate"],
        &rows,
    );
    let path = write_csv(
        "validation_mda.csv",
        &["expectation", "checked", "agree", "rate"],
        &rows,
    );
    announce("§5 validation", &path);
}
