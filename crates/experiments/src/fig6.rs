//! Fig. 6 — the Persistence-window sweep (§4.2).
//!
//! The paper takes the 29 daily snapshots of December 2014 and varies
//! the persistence parameter `j` from 0 (no filter) to 29, measuring
//! (a) how many LSPs survive and (b) how the classification mix moves.
//! The expected shape: a drop from `j = 0` to `j = 1`, then stability
//! for `j ≥ 2` — which is why the paper settles on `j = 2`.

use crate::output::{announce, f3, print_table, write_csv};
use ark_dataset::{CampaignOptions, World};
use ark_dataset::campaign::generate_cycle;
use lpr_core::filter::{FilterConfig, FilterStage};
use lpr_core::pipeline::Pipeline;

/// One row of the sweep.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Persistence window.
    pub j: usize,
    /// LSP observations surviving the whole pipeline.
    pub lsps_kept: usize,
    /// Class fractions `[mono_lsp, multi_fec, mono_fec, unclassified]`.
    pub fractions: [f64; 4],
}

/// Runs the sweep over a December-2014-like month rendered with
/// `snapshots` daily snapshots.
pub fn run(world: &World, snapshots: usize) -> Vec<SweepRow> {
    let opts = CampaignOptions { snapshots, ..Default::default() };
    let data = generate_cycle(world, 60, &opts);
    // `0` threads = the machine's available parallelism; the parallel
    // pipeline is output-identical to the sequential one.
    let futures: Vec<_> =
        data.snapshots[1..].iter().map(|t| Pipeline::snapshot_keys_par(t, 0)).collect();

    let mut rows = Vec::new();
    for j in 0..snapshots {
        let pipeline =
            Pipeline::new(FilterConfig { persistence_window: j, ..Default::default() });
        let out =
            pipeline.run_par(&data.snapshots[0], world.rib(), &futures[..j.min(futures.len())], 0);
        rows.push(SweepRow {
            j,
            lsps_kept: out.report.remaining[&FilterStage::Persistence],
            fractions: out.class_counts().fractions(),
        });
    }
    rows
}

/// Prints and writes the sweep.
pub fn emit(rows: &[SweepRow]) {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.j.to_string(),
                r.lsps_kept.to_string(),
                f3(r.fractions[0]),
                f3(r.fractions[1]),
                f3(r.fractions[2]),
                f3(r.fractions[3]),
            ]
        })
        .collect();
    print_table(
        "Fig. 6 — Persistence filter impact (j sweep)",
        &["j", "lsps_kept", "mono_lsp", "multi_fec", "mono_fec", "unclassified"],
        &data,
    );
    let path = write_csv(
        "fig6_persistence_sweep.csv",
        &["j", "lsps_kept", "mono_lsp", "multi_fec", "mono_fec", "unclassified"],
        &data,
    );
    announce("Fig. 6a/6b", &path);
}
