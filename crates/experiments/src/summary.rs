//! The paper's headline conclusions, recomputed from the data.
//!
//! The abstract states three global outcomes; this harness verifies
//! each against the simulated longitudinal campaign and writes a
//! Markdown summary (`results/SUMMARY.md`):
//!
//! 1. *"the usage of MPLS has been increasing over the last five years
//!    with basic encapsulation being predominant"* — the MPLS trace
//!    fraction grows, and LDP-based classes (Mono-LSP + Mono-FEC)
//!    outweigh RSVP-TE's Multi-FEC overall;
//! 2. *"path diversity is mainly provided thanks to ECMP and LDP"* —
//!    among IOTPs with diversity, ECMP Mono-FEC outweighs Multi-FEC;
//! 3. *"TE using MPLS is as common as MPLS without path diversity"* —
//!    Multi-FEC and Mono-LSP counts are of the same order.

use crate::longitudinal::CycleRow;
use crate::output::{announce, f3, results_dir};
use lpr_core::pipeline::ClassCounts;
use std::fmt::Write as _;

/// The three verdicts plus the numbers behind them.
#[derive(Clone, Debug)]
pub struct Summary {
    /// First/last MPLS trace fractions.
    pub trace_fraction: (f64, f64),
    /// Aggregate class tallies over the whole campaign (featured ASes).
    pub totals: ClassCounts,
    /// Outcome (i): usage grew and LDP-style classes dominate.
    pub usage_grows_ldp_dominant: bool,
    /// Outcome (ii): diversity is mostly ECMP (Mono-FEC ≥ Multi-FEC).
    pub diversity_is_mostly_ecmp: bool,
    /// Outcome (iii): Multi-FEC ≈ Mono-LSP (within a factor of 3).
    pub te_as_common_as_no_diversity: bool,
}

/// Computes the summary over longitudinal rows.
pub fn run(rows: &[CycleRow]) -> Summary {
    let first = rows.first().expect("cycles");
    let last = rows.last().expect("cycles");
    let mut totals = ClassCounts::default();
    for r in rows {
        for a in r.per_as.values() {
            totals.merge(&a.counts);
        }
    }
    let ldp_classes = totals.mono_lsp + totals.mono_fec();
    let usage_grows = last.trace_fraction > first.trace_fraction;
    let (lo, hi) = if totals.multi_fec < totals.mono_lsp {
        (totals.multi_fec, totals.mono_lsp)
    } else {
        (totals.mono_lsp, totals.multi_fec)
    };
    Summary {
        trace_fraction: (first.trace_fraction, last.trace_fraction),
        totals,
        usage_grows_ldp_dominant: usage_grows && ldp_classes > totals.multi_fec,
        diversity_is_mostly_ecmp: totals.mono_fec() >= totals.multi_fec,
        te_as_common_as_no_diversity: hi <= lo.max(1) * 3,
    }
}

/// Prints and writes `results/SUMMARY.md`.
pub fn emit(s: &Summary) {
    let check = |b: bool| if b { "holds" } else { "DOES NOT HOLD" };
    let t = &s.totals;
    let mut md = String::new();
    let _ = writeln!(md, "# Headline outcomes (recomputed from the simulated campaign)\n");
    let _ = writeln!(
        md,
        "Aggregate over the featured ASes, all cycles: {} IOTP classifications \
         ({} Mono-LSP, {} Multi-FEC, {} ECMP Mono-FEC — {} parallel links / {} \
         routers disjoint, {} unclassified).\n",
        t.total(),
        t.mono_lsp,
        t.multi_fec,
        t.mono_fec(),
        t.mono_fec_parallel,
        t.mono_fec_disjoint,
        t.unclassified
    );
    let _ = writeln!(
        md,
        "1. **MPLS usage increases, basic encapsulation predominant** — {}: the \
         MPLS trace fraction moves {} → {} and LDP-style classes hold {} of {} \
         classifications.",
        check(s.usage_grows_ldp_dominant),
        f3(s.trace_fraction.0),
        f3(s.trace_fraction.1),
        t.mono_lsp + t.mono_fec(),
        t.total()
    );
    let _ = writeln!(
        md,
        "2. **Path diversity mainly via ECMP and LDP** — {}: ECMP Mono-FEC ({}) \
         ≥ Multi-FEC ({}) among diverse IOTPs.",
        check(s.diversity_is_mostly_ecmp),
        t.mono_fec(),
        t.multi_fec
    );
    let _ = writeln!(
        md,
        "3. **TE as common as MPLS without diversity** — {}: Multi-FEC ({}) and \
         Mono-LSP ({}) are the same order of magnitude.",
        check(s.te_as_common_as_no_diversity),
        t.multi_fec,
        t.mono_lsp
    );
    print!("{md}");
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("results dir");
    let path = dir.join("SUMMARY.md");
    std::fs::write(&path, md).expect("write summary");
    announce("Headline summary", &path);
}
