//! The `experiments` binary: regenerate any table or figure of the
//! paper's evaluation.
//!
//! ```text
//! experiments <command> [--cycles N] [--trace-out trace.json]
//!             [--trace-level debug|info|warn|error]
//!
//! commands:
//!   fig5      global MPLS deployment over 60 cycles (Fig. 5a/5b)
//!   table1    filter survival proportions (Table 1)
//!   fig6      persistence-window sweep (Fig. 6a/6b)
//!   fig789    IOTP length/width/symmetry (Figs. 7, 8a, 8b, 9)
//!   peras     per-AS classification series (Figs. 10-15, Fig. 13)
//!   table2    per-AS address statistics (Table 2)
//!   fig16     Level3 April 2012 daily roll-out (Fig. 16)
//!   fig17     label re-optimisation sawtooth (Fig. 17)
//!   ablations design-choice ablations (filters, §5 rescue)
//!   validation §5 Paris-MDA ground-truth check of the classes
//!   mda       MDA-Lite probes-per-destination vs diversity recall
//!   revelation TNT-style revelation A/B across visibility mixes
//!   summary   the abstract's three headline outcomes, recomputed
//!   all       everything above
//! ```
//!
//! CSV outputs land under `results/` (override with
//! `LPR_RESULTS_DIR`).
//!
//! With `--trace-out` the run records a hierarchical span journal
//! (`run:experiments` → one `exp:<name>` span per regenerator, plus a
//! `longitudinal` span for the shared 60-cycle render) and writes it
//! as Chrome trace JSON — loadable in `chrome://tracing` or Perfetto,
//! or foldable into a flamegraph via `lpr_obs::export::folded_stacks`.

use experiments::{
    ablations, fig16, fig17, fig6, fig789, longitudinal, mda_recall, revelation, summary,
    validation,
};

/// Runs one regenerator under an `exp:<name>` span so the trace shows
/// where the wall time of an `all` run actually goes.
fn with_span(tracer: &lpr_obs::Tracer, name: &str, f: impl FnOnce()) {
    let _span = tracer.span(format!("exp:{name}"));
    f();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let cycles = args
        .iter()
        .position(|a| a == "--cycles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(ark_dataset::CYCLES);
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_level = match args
        .iter()
        .position(|a| a == "--trace-level")
        .and_then(|i| args.get(i + 1))
    {
        Some(v) => lpr_obs::Level::parse(v).unwrap_or_else(|| {
            eprintln!("--trace-level `{v}` is not a level (debug|info|warn|error)");
            std::process::exit(2);
        }),
        None => lpr_obs::Level::Info,
    };
    let tracer = match &trace_out {
        Some(_) => lpr_obs::Tracer::new(trace_level),
        None => lpr_obs::Tracer::disabled(),
    };
    let run_span = tracer.span("run:experiments");
    tracer.set_default_parent(run_span.context());

    let world = ark_dataset::standard_world();
    eprintln!(
        "[world] {} ASes, {} routers, {} interfaces; {} monitors, {} destinations",
        world.topo.ases.len(),
        world.topo.routers.len(),
        world.topo.ifaces.len(),
        world.all_vps().len(),
        world.all_destinations(1).len(),
    );
    for asn in world.featured {
        let as_id = world.topo.as_by_asn(asn).expect("featured").id;
        let s = netsim::stats::as_stats(&world.topo, as_id);
        eprintln!(
            "[world]   {asn}: {} routers ({} borders), {} intra links, diameter {}, {} ECMP pairs",
            s.routers, s.borders, s.intra_links, s.diameter, s.ecmp_pairs,
        );
    }

    let needs_longitudinal =
        matches!(cmd, "fig5" | "table1" | "peras" | "table2" | "summary" | "all");
    let rows = if needs_longitudinal {
        eprintln!("[longitudinal] rendering {cycles} cycles × 3 snapshots …");
        let span = tracer.span("longitudinal");
        let rows = longitudinal::run(&world, cycles);
        drop(span);
        tracer.event(
            run_span.context(),
            lpr_obs::Level::Info,
            "longitudinal-rendered",
            vec![
                ("cycles".to_string(), lpr_obs::FieldValue::U64(cycles as u64)),
                ("rows".to_string(), lpr_obs::FieldValue::U64(rows.len() as u64)),
            ],
        );
        Some(rows)
    } else {
        None
    };

    match cmd {
        "fig5" => with_span(&tracer, "fig5", || longitudinal::emit_fig5(rows.as_ref().unwrap())),
        "table1" => {
            with_span(&tracer, "table1", || longitudinal::emit_table1(rows.as_ref().unwrap()))
        }
        "peras" => with_span(&tracer, "peras", || longitudinal::emit_per_as(rows.as_ref().unwrap())),
        "table2" => {
            with_span(&tracer, "table2", || longitudinal::emit_table2(rows.as_ref().unwrap(), &world))
        }
        "fig6" => with_span(&tracer, "fig6", || fig6::emit(&fig6::run(&world, 29))),
        "fig789" => with_span(&tracer, "fig789", || fig789::emit(&fig789::run(&world, 60))),
        "fig16" => with_span(&tracer, "fig16", || fig16::emit(&fig16::run(&world))),
        "fig17" => with_span(&tracer, "fig17", || fig17::emit(&fig17::run(&world))),
        "ablations" => with_span(&tracer, "ablations", || ablations::emit(&ablations::run(&world, 45))),
        "validation" => {
            with_span(&tracer, "validation", || validation::emit(&validation::run(&world, 45, 24)))
        }
        "mda" => with_span(&tracer, "mda", || mda_recall::emit(&mda_recall::run(&world, 40))),
        "revelation" => {
            with_span(&tracer, "revelation", || revelation::emit(&revelation::run(&world, 40)))
        }
        "summary" => {
            with_span(&tracer, "summary", || summary::emit(&summary::run(rows.as_ref().unwrap())))
        }
        "all" => {
            let rows = rows.as_ref().unwrap();
            with_span(&tracer, "fig5", || longitudinal::emit_fig5(rows));
            with_span(&tracer, "table1", || longitudinal::emit_table1(rows));
            with_span(&tracer, "peras", || longitudinal::emit_per_as(rows));
            with_span(&tracer, "table2", || longitudinal::emit_table2(rows, &world));
            with_span(&tracer, "fig6", || fig6::emit(&fig6::run(&world, 29)));
            with_span(&tracer, "fig789", || fig789::emit(&fig789::run(&world, 60)));
            with_span(&tracer, "fig16", || fig16::emit(&fig16::run(&world)));
            with_span(&tracer, "fig17", || fig17::emit(&fig17::run(&world)));
            with_span(&tracer, "ablations", || ablations::emit(&ablations::run(&world, 45)));
            with_span(&tracer, "validation", || validation::emit(&validation::run(&world, 45, 24)));
            with_span(&tracer, "mda", || mda_recall::emit(&mda_recall::run(&world, 40)));
            with_span(&tracer, "revelation", || revelation::emit(&revelation::run(&world, 40)));
            with_span(&tracer, "summary", || summary::emit(&summary::run(rows)));
        }
        other => {
            eprintln!("unknown command `{other}`; see --help in the crate docs");
            std::process::exit(2);
        }
    }

    tracer.set_default_parent(lpr_obs::SpanContext::ROOT);
    drop(run_span);
    if let Some(path) = &trace_out {
        let snapshot = tracer.snapshot();
        if snapshot.dropped > 0 {
            eprintln!(
                "warning: trace journal wrapped, {} oldest events overwritten",
                snapshot.dropped
            );
        }
        if let Err(e) = std::fs::write(path, lpr_obs::export::chrome_trace(&snapshot)) {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[trace] wrote {path}");
    }
}
