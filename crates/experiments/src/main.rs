//! The `experiments` binary: regenerate any table or figure of the
//! paper's evaluation.
//!
//! ```text
//! experiments <command> [--cycles N]
//!
//! commands:
//!   fig5      global MPLS deployment over 60 cycles (Fig. 5a/5b)
//!   table1    filter survival proportions (Table 1)
//!   fig6      persistence-window sweep (Fig. 6a/6b)
//!   fig789    IOTP length/width/symmetry (Figs. 7, 8a, 8b, 9)
//!   peras     per-AS classification series (Figs. 10-15, Fig. 13)
//!   table2    per-AS address statistics (Table 2)
//!   fig16     Level3 April 2012 daily roll-out (Fig. 16)
//!   fig17     label re-optimisation sawtooth (Fig. 17)
//!   ablations design-choice ablations (filters, §5 rescue)
//!   validation §5 Paris-MDA ground-truth check of the classes
//!   summary   the abstract's three headline outcomes, recomputed
//!   all       everything above
//! ```
//!
//! CSV outputs land under `results/` (override with
//! `LPR_RESULTS_DIR`).

use experiments::{ablations, fig16, fig17, fig6, fig789, longitudinal, summary, validation};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let cycles = args
        .iter()
        .position(|a| a == "--cycles")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(ark_dataset::CYCLES);

    let world = ark_dataset::standard_world();
    eprintln!(
        "[world] {} ASes, {} routers, {} interfaces; {} monitors, {} destinations",
        world.topo.ases.len(),
        world.topo.routers.len(),
        world.topo.ifaces.len(),
        world.all_vps().len(),
        world.all_destinations(1).len(),
    );
    for asn in world.featured {
        let as_id = world.topo.as_by_asn(asn).expect("featured").id;
        let s = netsim::stats::as_stats(&world.topo, as_id);
        eprintln!(
            "[world]   {asn}: {} routers ({} borders), {} intra links, diameter {}, {} ECMP pairs",
            s.routers, s.borders, s.intra_links, s.diameter, s.ecmp_pairs,
        );
    }

    let needs_longitudinal =
        matches!(cmd, "fig5" | "table1" | "peras" | "table2" | "summary" | "all");
    let rows = if needs_longitudinal {
        eprintln!("[longitudinal] rendering {cycles} cycles × 3 snapshots …");
        Some(longitudinal::run(&world, cycles))
    } else {
        None
    };

    match cmd {
        "fig5" => longitudinal::emit_fig5(rows.as_ref().unwrap()),
        "table1" => longitudinal::emit_table1(rows.as_ref().unwrap()),
        "peras" => longitudinal::emit_per_as(rows.as_ref().unwrap()),
        "table2" => longitudinal::emit_table2(rows.as_ref().unwrap(), &world),
        "fig6" => fig6::emit(&fig6::run(&world, 29)),
        "fig789" => fig789::emit(&fig789::run(&world, 60)),
        "fig16" => fig16::emit(&fig16::run(&world)),
        "fig17" => fig17::emit(&fig17::run(&world)),
        "ablations" => ablations::emit(&ablations::run(&world, 45)),
        "validation" => validation::emit(&validation::run(&world, 45, 24)),
        "summary" => summary::emit(&summary::run(rows.as_ref().unwrap())),
        "all" => {
            let rows = rows.as_ref().unwrap();
            longitudinal::emit_fig5(rows);
            longitudinal::emit_table1(rows);
            longitudinal::emit_per_as(rows);
            longitudinal::emit_table2(rows, &world);
            fig6::emit(&fig6::run(&world, 29));
            fig789::emit(&fig789::run(&world, 60));
            fig16::emit(&fig16::run(&world));
            fig17::emit(&fig17::run(&world));
            ablations::emit(&ablations::run(&world, 45));
            validation::emit(&validation::run(&world, 45, 24));
            summary::emit(&summary::run(rows));
        }
        other => {
            eprintln!("unknown command `{other}`; see --help in the crate docs");
            std::process::exit(2);
        }
    }
}
