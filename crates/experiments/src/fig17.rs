//! Fig. 17 — the RSVP-TE label-re-optimisation sawtooth.

use crate::output::{announce, print_table, write_csv};
use ark_dataset::dynamics::{run as run_dynamics, DynamicsOptions, LabelSample};
use ark_dataset::World;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Runs the high-frequency campaign with the paper's cadence (probe
/// every 2 minutes for 600 minutes).
pub fn run(world: &World) -> Vec<LabelSample> {
    run_dynamics(world, &DynamicsOptions::default())
}

/// One flow-selection + probe round against an already-built network:
/// the unit of work the Fig. 17 campaign repeats every two minutes
/// (exposed for the bench harness).
pub fn run_flow_probe(world: &World, net: &netsim::Internet) -> usize {
    ark_dataset::dynamics::pick_te_flow(world, net)
        .map(|(vp, dst)| {
            let prober = netsim::Prober::new(net, netsim::ProbeOptions::default());
            prober.trace(vp, dst).len()
        })
        .unwrap_or(0)
}

/// Prints and writes the per-LSR label series.
pub fn emit(samples: &[LabelSample]) {
    // Column per LSR address, in first-appearance order.
    let mut lsrs: Vec<Ipv4Addr> = Vec::new();
    for s in samples {
        for (addr, _) in &s.hops {
            if !lsrs.contains(addr) {
                lsrs.push(*addr);
            }
        }
    }
    let mut header: Vec<String> = vec!["minute".into()];
    header.extend(lsrs.iter().map(|a| format!("lsr_{a}")));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            let by_addr: BTreeMap<Ipv4Addr, u32> = s.hops.iter().copied().collect();
            let mut row = vec![s.minute.to_string()];
            for lsr in &lsrs {
                row.push(by_addr.get(lsr).map(|l| l.to_string()).unwrap_or_default());
            }
            row
        })
        .collect();
    let path = write_csv("fig17_label_dynamics.csv", &header_refs, &rows);
    announce("Fig. 17", &path);

    // Console: show a decimated view plus per-LSR consumption rates.
    let shown: Vec<Vec<String>> = rows.iter().step_by(10).cloned().collect();
    print_table("Fig. 17 — label evolution (every 20 min shown)", &header_refs, &shown);
    for (i, lsr) in lsrs.iter().enumerate() {
        let series: Vec<u32> = samples
            .iter()
            .filter_map(|s| s.hops.iter().find(|(a, _)| a == lsr).map(|(_, l)| *l))
            .collect();
        if series.len() >= 2 {
            let wraps = series.windows(2).filter(|w| w[1] < w[0]).count();
            println!(
                "LSR{} ({lsr}): labels {} -> {}, {} wrap(s)",
                i + 1,
                series.first().unwrap(),
                series.last().unwrap(),
                wraps
            );
        }
    }
}
