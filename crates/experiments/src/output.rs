//! Output helpers: CSV files under `results/` plus aligned console
//! tables.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The directory experiment outputs land in (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("LPR_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(dir)
}

/// Writes a CSV file under the results directory and returns its path.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        writeln!(f, "{}", row.join(",")).expect("write row");
    }
    path
}

/// Prints an aligned table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!("{}", fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>()));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Announces where a CSV landed.
pub fn announce(what: &str, path: &Path) {
    println!("[written] {what}: {}", path.display());
}
