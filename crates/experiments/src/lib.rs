//! # experiments — regenerating the paper's evaluation
//!
//! One harness per table/figure of §4 of *MPLS Under the Microscope*.
//! Each harness renders the simulated campaign it needs, runs LPR, and
//! returns the series the paper plots; the `experiments` binary prints
//! them and writes CSVs under `results/`.
//!
//! | harness | paper artefact |
//! |---------|----------------|
//! | [`longitudinal::run`] | Figs. 5a/5b, Table 1, Figs. 10–15 & 13, Table 2 |
//! | [`fig6::run`] | Fig. 6a/6b (Persistence-window sweep) |
//! | [`fig789::run`] | Figs. 7, 8a, 8b, 9 (length/width/symmetry) |
//! | [`fig16::run`] | Fig. 16 (April 2012 daily Level3 roll-out) |
//! | [`fig17::run`] | Fig. 17 (label re-optimisation sawtooth) |
//! | [`ablations::run`] | design-choice ablations (filters, §5 rescue) |
//! | [`validation::run`] | §5 Paris-MDA ground-truth validation |
//! | [`mda_recall::run`] | MDA-Lite probes-per-destination vs recall curve |
//! | [`revelation::run`] | TNT-style revelation A/B across visibility mixes |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod fig16;
pub mod fig17;
pub mod fig6;
pub mod fig789;
pub mod longitudinal;
pub mod mda_recall;
pub mod output;
pub mod revelation;
pub mod summary;
pub mod validation;
