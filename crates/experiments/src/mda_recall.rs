//! The MDA-Lite headline tradeoff: probes per destination vs the
//! fraction of exhaustive-oracle path diversity recovered.
//!
//! For every `(vp, dst)` pair of the cycle's probing surface we run
//! the exhaustive oracle (every flow of the budget) and the MDA-Lite
//! stopping rule under a sweep of flow caps, and report the recall of
//! the oracle's distinct IP path set — the curve arXiv:1809.10070
//! leads with. A full-MDA row shows what per-hop re-confirmation costs
//! on top.

use crate::output::{announce, f3, print_table, write_csv};
use ark_dataset::World;
use netsim::{Internet, MdaOptions, ProbeOptions, Prober, ProbingStrategy};
use std::collections::BTreeSet;

/// One point of the probes-vs-recall curve.
#[derive(Clone, Debug)]
pub struct RecallPoint {
    /// Strategy spelling (`exhaustive`, `mda`, `mda-lite`).
    pub mode: &'static str,
    /// Flow budget cap handed to the prober.
    pub max_flows: usize,
    /// Mean probe packets spent per destination.
    pub probes_per_dst: f64,
    /// Mean flow-varied walks per destination.
    pub flows_per_dst: f64,
    /// Fraction of the oracle's distinct paths recovered.
    pub path_recall: f64,
}

/// Flow-budget caps swept for the MDA-Lite curve.
pub const CAPS: &[usize] = &[2, 4, 6, 8, 11, 16, 24, 32];

/// The oracle's flow budget (and the cap for the full-MDA row).
pub const ORACLE_FLOWS: usize = 32;

/// Sweeps MDA-Lite flow caps against the exhaustive oracle on one
/// cycle's network.
pub fn run(world: &World, cycle: usize) -> Vec<RecallPoint> {
    let configs = ark_dataset::configs_for_cycle(cycle);
    let net = Internet::new(world.topo.clone(), &configs);
    let prober = Prober::new(&net, ProbeOptions::default());
    let vps = world.all_vps();
    let dsts = world.all_destinations(1);

    // The oracle: exhaustive enumeration per pair, computed once.
    let mut oracle: Vec<BTreeSet<Vec<std::net::Ipv4Addr>>> = Vec::new();
    let mut oracle_probes = 0u64;
    let mut oracle_flows = 0u64;
    let mut oracle_paths = 0usize;
    for &vp in &vps {
        for &dst in &dsts {
            let d = prober.mda_discover(
                vp,
                dst,
                &MdaOptions {
                    strategy: ProbingStrategy::Exhaustive,
                    max_flows: ORACLE_FLOWS,
                    ..MdaOptions::default()
                },
            );
            oracle_probes += d.probes_sent;
            oracle_flows += d.flows_traced;
            oracle_paths += d.paths.len();
            oracle.push(d.paths.into_iter().collect());
        }
    }
    let pairs = (vps.len() * dsts.len()).max(1) as f64;
    let mut points = vec![RecallPoint {
        mode: ProbingStrategy::Exhaustive.name(),
        max_flows: ORACLE_FLOWS,
        probes_per_dst: oracle_probes as f64 / pairs,
        flows_per_dst: oracle_flows as f64 / pairs,
        path_recall: 1.0,
    }];

    let mut sweep = |strategy: ProbingStrategy, cap: usize| {
        let (mut probes, mut flows, mut found) = (0u64, 0u64, 0usize);
        let mut i = 0usize;
        for &vp in &vps {
            for &dst in &dsts {
                let d = prober.mda_discover(
                    vp,
                    dst,
                    &MdaOptions { strategy, max_flows: cap, ..MdaOptions::default() },
                );
                probes += d.probes_sent;
                flows += d.flows_traced;
                found += d.paths.iter().filter(|p| oracle[i].contains(*p)).count();
                i += 1;
            }
        }
        points.push(RecallPoint {
            mode: strategy.name(),
            max_flows: cap,
            probes_per_dst: probes as f64 / pairs,
            flows_per_dst: flows as f64 / pairs,
            path_recall: found as f64 / oracle_paths.max(1) as f64,
        });
    };
    for &cap in CAPS {
        sweep(ProbingStrategy::MdaLite, cap);
    }
    sweep(ProbingStrategy::Mda, ORACLE_FLOWS);
    points
}

/// Prints and writes `fig_mda_recall.csv`.
pub fn emit(points: &[RecallPoint]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.mode.to_string(),
                p.max_flows.to_string(),
                f3(p.probes_per_dst),
                f3(p.flows_per_dst),
                f3(p.path_recall),
            ]
        })
        .collect();
    print_table(
        "MDA-Lite probes per destination vs diversity recall",
        &["mode", "max_flows", "probes_per_dst", "flows_per_dst", "path_recall"],
        &rows,
    );
    let path = write_csv(
        "fig_mda_recall.csv",
        &["mode", "max_flows", "probes_per_dst", "flows_per_dst", "path_recall"],
        &rows,
    );
    announce("MDA recall curve", &path);
}
