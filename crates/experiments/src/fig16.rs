//! Fig. 16 — the April 2012 daily view of Level3's MPLS roll-out.

use crate::output::{announce, print_table, write_csv};
use ark_dataset::april2012::{april_day, DayCounts, DAYS};
use ark_dataset::{CampaignOptions, World};

/// Renders every April day.
pub fn run(world: &World) -> Vec<(usize, DayCounts)> {
    let opts = CampaignOptions::default();
    (1..=DAYS).map(|day| (day, april_day(world, day, &opts))).collect()
}

/// Prints and writes the daily series.
pub fn emit(days: &[(usize, DayCounts)]) {
    let rows: Vec<Vec<String>> = days
        .iter()
        .map(|(day, c)| {
            vec![
                day.to_string(),
                c.iotps_before.to_string(),
                c.iotps_after.to_string(),
                c.lsps_before.to_string(),
                c.lsps_after.to_string(),
            ]
        })
        .collect();
    print_table(
        "Fig. 16 — Level3 April 2012 daily deployment",
        &["day", "iotps_before", "iotps_after", "lsps_before", "lsps_after"],
        &rows,
    );
    let path = write_csv(
        "fig16_level3_april2012.csv",
        &["day", "iotps_before", "iotps_after", "lsps_before", "lsps_after"],
        &rows,
    );
    announce("Fig. 16", &path);
    let first_mpls = days.iter().find(|(_, c)| c.lsps_before > 0).map(|(d, _)| *d);
    println!("first day with MPLS: {first_mpls:?} (paper: around April 15)");
}
