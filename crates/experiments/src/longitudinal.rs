//! The 60-cycle longitudinal pass: one rendering that feeds Figs. 5a,
//! 5b, 10–15, 13, Table 1 and Table 2.

use crate::output::{announce, f3, print_table, write_csv};
use ark_dataset::campaign::run_cycles;
use ark_dataset::{CampaignOptions, World, ATT, L3, NTT, TATA, VOD};
use lpr_core::filter::{FilterStage, FilterReport};
use lpr_core::lsp::Asn;
use lpr_core::pipeline::ClassCounts;
use std::collections::BTreeMap;

/// Everything one cycle contributes to the longitudinal figures.
#[derive(Clone, Debug)]
pub struct CycleRow {
    /// 1-based cycle number.
    pub cycle: usize,
    /// Fraction of traces crossing ≥1 explicit tunnel (Fig. 5a).
    pub trace_fraction: f64,
    /// Unique MPLS addresses, pre-filtering (Fig. 5b top).
    pub mpls_ips: usize,
    /// Unique non-MPLS addresses, pre-filtering (Fig. 5b bottom).
    pub non_mpls_ips: usize,
    /// LSP survival through the filters (Table 1).
    pub filter: FilterReport,
    /// Per featured-AS: classification and address stats.
    pub per_as: BTreeMap<Asn, AsRow>,
}

/// Per-AS, per-cycle numbers (Figs. 10–15, Table 2).
#[derive(Clone, Copy, Debug, Default)]
pub struct AsRow {
    /// Classified-IOTP tallies (the PDF of Figs. 10–15's upper parts).
    pub counts: ClassCounts,
    /// MPLS addresses of the AS after filtering.
    pub mpls_ips: usize,
    /// Non-MPLS addresses of the AS.
    pub non_mpls_ips: usize,
    /// Whether the AS was tagged dynamic this cycle.
    pub dynamic: bool,
}

/// Runs the longitudinal campaign over `cycles` cycles (1..=n).
pub fn run(world: &World, cycles: usize) -> Vec<CycleRow> {
    let opts = CampaignOptions::default();
    let analyses = run_cycles(world, 1..=cycles, &opts, 2);
    analyses
        .into_iter()
        .map(|(cycle, analysis)| {
            let mut per_as = BTreeMap::new();
            for asn in world.featured {
                let stats = analysis.report.per_as.get(&asn);
                per_as.insert(
                    asn,
                    AsRow {
                        counts: stats.map(|s| s.classes).unwrap_or_default(),
                        mpls_ips: stats.map(|s| s.mpls_ips).unwrap_or(0),
                        non_mpls_ips: stats.map(|s| s.non_mpls_ips).unwrap_or(0),
                        dynamic: analysis.report.dynamic_ases.contains(&asn),
                    },
                );
            }
            CycleRow {
                cycle,
                trace_fraction: analysis.report.mpls_trace_fraction(),
                mpls_ips: analysis.report.ip_usage_mpls,
                non_mpls_ips: analysis.report.ip_usage_non_mpls,
                filter: analysis.output.report,
                per_as,
            }
        })
        .collect()
}

/// Emits Fig. 5 (global deployment).
pub fn emit_fig5(rows: &[CycleRow]) {
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.cycle.to_string(),
                f3(r.trace_fraction),
                r.mpls_ips.to_string(),
                r.non_mpls_ips.to_string(),
            ]
        })
        .collect();
    let path = write_csv("fig5_global_deployment.csv", &["cycle", "trace_fraction", "mpls_ips", "non_mpls_ips"], &data);
    announce("Fig. 5a/5b", &path);
    let first = rows.first().expect("cycles");
    let last = rows.last().expect("cycles");
    println!(
        "Fig5a: traces with MPLS {} -> {} | Fig5b: MPLS IPs {} -> {} (+{:.0}%), non-MPLS {} -> {} (+{:.0}%)",
        f3(first.trace_fraction),
        f3(last.trace_fraction),
        first.mpls_ips,
        last.mpls_ips,
        (last.mpls_ips as f64 / first.mpls_ips.max(1) as f64 - 1.0) * 100.0,
        first.non_mpls_ips,
        last.non_mpls_ips,
        (last.non_mpls_ips as f64 / first.non_mpls_ips.max(1) as f64 - 1.0) * 100.0,
    );
}

/// Emits Table 1 (cumulative mean survival per filter with 95 %
/// confidence intervals).
pub fn emit_table1(rows: &[CycleRow]) {
    let mut out = Vec::new();
    for stage in FilterStage::ALL {
        let props: Vec<f64> = rows.iter().map(|r| r.filter.proportion_after(stage)).collect();
        let n = props.len() as f64;
        let mean = props.iter().sum::<f64>() / n;
        let var = props.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n;
        let ci = 1.96 * (var / n).sqrt();
        out.push(vec![stage.name().to_string(), f3(mean), format!("±{}", f3(ci))]);
    }
    print_table("Table 1 — proportion of LSPs remaining after each filter", &["filter", "mean", "95% CI"], &out);
    let path = write_csv(
        "table1_filtering.csv",
        &["filter", "mean_proportion", "ci95"],
        &out.iter().map(|r| vec![r[0].clone(), r[1].clone(), r[2].trim_start_matches('±').to_string()]).collect::<Vec<_>>(),
    );
    announce("Table 1", &path);
}

/// Emits the per-AS classification series (Figs. 10, 11, 12, 14, 15)
/// and the Tata Mono-FEC subclass split (Fig. 13).
pub fn emit_per_as(rows: &[CycleRow]) {
    let figures = [
        (VOD, "fig10_as1273_vodafone.csv", "Fig. 10 (AS1273 Vodafone)"),
        (ATT, "fig11_as7018_att.csv", "Fig. 11 (AS7018 AT&T)"),
        (TATA, "fig12_as6453_tata.csv", "Fig. 12 (AS6453 Tata)"),
        (NTT, "fig14_as2914_ntt.csv", "Fig. 14 (AS2914 NTT)"),
        (L3, "fig15_as3356_level3.csv", "Fig. 15 (AS3356 Level3)"),
    ];
    for (asn, file, title) in figures {
        let data: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                let a = r.per_as.get(&asn).copied().unwrap_or_default();
                let f = a.counts.fractions();
                vec![
                    r.cycle.to_string(),
                    a.counts.total().to_string(),
                    f3(f[0]),
                    f3(f[1]),
                    f3(f[2]),
                    f3(f[3]),
                    (a.dynamic as u8).to_string(),
                ]
            })
            .collect();
        let path = write_csv(
            file,
            &["cycle", "iotps", "mono_lsp", "multi_fec", "mono_fec", "unclassified", "dynamic"],
            &data,
        );
        announce(title, &path);
    }

    // Fig. 13: Tata's Mono-FEC split.
    let data: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let a = r.per_as.get(&TATA).copied().unwrap_or_default();
            let total = a.counts.mono_fec().max(1) as f64;
            vec![
                r.cycle.to_string(),
                f3(a.counts.mono_fec_disjoint as f64 / total),
                f3(a.counts.mono_fec_parallel as f64 / total),
            ]
        })
        .collect();
    let path = write_csv("fig13_tata_monofec_split.csv", &["cycle", "routers_disjoint", "parallel_links"], &data);
    announce("Fig. 13 (Tata Mono-FEC split)", &path);
}

/// Emits Table 2 (per-AS, per-year min/max/avg of MPLS and non-MPLS
/// addresses after filtering).
pub fn emit_table2(rows: &[CycleRow], world: &World) {
    let mut table = Vec::new();
    for asn in world.featured {
        for kind in ["non_mpls", "mpls"] {
            let mut row = vec![format!("AS{}", asn.0), kind.to_string()];
            for year in 0..(rows.len() / 12).max(1) {
                let slice: Vec<usize> = rows
                    .iter()
                    .filter(|r| (r.cycle - 1) / 12 == year)
                    .map(|r| {
                        let a = r.per_as.get(&asn).copied().unwrap_or_default();
                        if kind == "mpls" {
                            a.mpls_ips
                        } else {
                            a.non_mpls_ips
                        }
                    })
                    .collect();
                let min = slice.iter().min().copied().unwrap_or(0);
                let max = slice.iter().max().copied().unwrap_or(0);
                let avg = slice.iter().sum::<usize>() as f64 / slice.len().max(1) as f64;
                row.push(min.to_string());
                row.push(max.to_string());
                row.push(format!("{avg:.0}"));
            }
            table.push(row);
        }
    }
    let years = (rows.len() / 12).max(1);
    let mut header: Vec<String> = vec!["as".into(), "kind".into()];
    for y in 0..years {
        for m in ["min", "max", "avg"] {
            header.push(format!("{}_{}", 2010 + y, m));
        }
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("Table 2 — per-AS address statistics (after filtering)", &header_refs, &table);
    let path = write_csv("table2_as_ip_stats.csv", &header_refs, &table);
    announce("Table 2", &path);
}
