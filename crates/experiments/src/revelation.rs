//! Revelation A/B: how much transit path diversity hidden and
//! invisible tunnels conceal from LPR, and how much of it the
//! TNT-style revelation phase buys back.
//!
//! For a sweep of tunnel-visibility mixes we render one cycle, analyse
//! it twice — once plain, once with the revealed evidence applied —
//! and report the IOTP count, the Unclassified share, and what the
//! DPR re-probing cost on top of the campaign.

use crate::output::{announce, f3, print_table, write_csv};
use ark_dataset::{
    analyze_cycle, analyze_cycle_revealed, generate_cycle_with_revelation, CampaignOptions, World,
};
use lpr_core::reveal::RevelationStatus;
use netsim::{RevelationOptions, VisibilityMix};

/// One visibility-mix point of the A/B comparison.
#[derive(Clone, Debug)]
pub struct RevelationPoint {
    /// Mix label.
    pub mix: &'static str,
    /// Classified IOTPs without / with revelation.
    pub iotps_base: usize,
    /// Classified IOTPs after the revelation stage.
    pub iotps_revealed: usize,
    /// Unclassified share without revelation.
    pub unclassified_base: f64,
    /// Unclassified share with revelation.
    pub unclassified_revealed: f64,
    /// Candidates the revelation phase considered.
    pub triggers: u64,
    /// Candidates it revealed at least one interior path for.
    pub revealed: u64,
    /// Probe packets the DPR walks spent.
    pub revelation_probes: u64,
    /// Revelation probes as a fraction of the base campaign's probes.
    pub probe_overhead: f64,
}

/// The visibility mixes swept, worst-case hidden shares bracketed by
/// the all-explicit control.
pub const MIXES: &[(&str, VisibilityMix)] = &[
    ("explicit", VisibilityMix { explicit: 1.0, implicit: 0.0, invisible: 0.0, opaque: 0.0 }),
    ("implicit", VisibilityMix { explicit: 0.5, implicit: 0.5, invisible: 0.0, opaque: 0.0 }),
    ("invisible", VisibilityMix { explicit: 0.5, implicit: 0.0, invisible: 0.5, opaque: 0.0 }),
    ("opaque", VisibilityMix { explicit: 0.5, implicit: 0.0, invisible: 0.0, opaque: 0.5 }),
    ("mixed", VisibilityMix { explicit: 0.4, implicit: 0.2, invisible: 0.2, opaque: 0.2 }),
];

/// Runs the A/B sweep on one cycle's network.
pub fn run(world: &World, cycle: usize) -> Vec<RevelationPoint> {
    MIXES
        .iter()
        .map(|&(name, mix)| {
            let opts = CampaignOptions { visibility: Some(mix), ..Default::default() };
            let (data, evidence) = generate_cycle_with_revelation(
                world,
                cycle,
                &opts,
                &RevelationOptions::default(),
            );
            let base = analyze_cycle(world, &data, 2);
            let revealed = analyze_cycle_revealed(world, &data, 2, &evidence);
            let base_counts = base.output.class_counts();
            let rev_counts = revealed.output.class_counts();
            let base_probes =
                (data.budget.probes_sent - data.budget.revelation_probes).max(1);
            RevelationPoint {
                mix: name,
                iotps_base: base_counts.total(),
                iotps_revealed: rev_counts.total(),
                unclassified_base: base_counts.unclassified as f64
                    / base_counts.total().max(1) as f64,
                unclassified_revealed: rev_counts.unclassified as f64
                    / rev_counts.total().max(1) as f64,
                triggers: data.budget.revelation_triggers,
                revealed: evidence
                    .iter()
                    .filter(|e| e.status == RevelationStatus::Revealed)
                    .count() as u64,
                revelation_probes: data.budget.revelation_probes,
                probe_overhead: data.budget.revelation_probes as f64 / base_probes as f64,
            }
        })
        .collect()
}

/// Prints and writes `fig_revelation.csv`.
pub fn emit(points: &[RevelationPoint]) {
    let headers = [
        "mix",
        "iotps_base",
        "iotps_revealed",
        "unclassified_base",
        "unclassified_revealed",
        "triggers",
        "revealed",
        "revelation_probes",
        "probe_overhead",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.mix.to_string(),
                p.iotps_base.to_string(),
                p.iotps_revealed.to_string(),
                f3(p.unclassified_base),
                f3(p.unclassified_revealed),
                p.triggers.to_string(),
                p.revealed.to_string(),
                p.revelation_probes.to_string(),
                f3(p.probe_overhead),
            ]
        })
        .collect();
    print_table("Revelation A/B: diversity recovered vs probe overhead", &headers, &rows);
    let path = write_csv("fig_revelation.csv", &headers, &rows);
    announce("revelation A/B", &path);
}
