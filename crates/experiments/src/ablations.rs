//! Ablations over LPR's design choices (not a paper figure, but the
//! design decisions §3 and §5 discuss):
//!
//! * the **TransitDiversity** filter — what happens to the
//!   classification when single-destination IOTPs are kept;
//! * the **Persistence** filter — what routing noise does to the class
//!   mix when not removed;
//! * the **§5 alias rescue** — how much of the Unclassified class it
//!   recovers and where those IOTPs land.

use crate::output::{announce, f3, print_table, write_csv};
use ark_dataset::campaign::{generate_cycle, CampaignOptions};
use ark_dataset::World;
use lpr_core::filter::FilterConfig;
use lpr_core::pipeline::{ClassCounts, Pipeline};

/// One ablation variant's result.
#[derive(Clone, Debug)]
pub struct Variant {
    /// Variant label.
    pub name: &'static str,
    /// The classification tally it produces.
    pub counts: ClassCounts,
}

/// Runs every variant on one rendered cycle.
pub fn run(world: &World, cycle: usize) -> Vec<Variant> {
    let opts = CampaignOptions::default();
    let data = generate_cycle(world, cycle, &opts);
    // `0` threads = the machine's available parallelism; the parallel
    // pipeline is output-identical to the sequential one.
    let futures: Vec<_> = data.snapshots[1..]
        .iter()
        .map(|t| Pipeline::snapshot_keys_par(t, 0))
        .collect();
    let traces = &data.snapshots[0];
    let rib = world.rib();

    let base = Pipeline::new(FilterConfig { persistence_window: 2, ..Default::default() });
    let mut variants = Vec::new();

    let run_with = |p: &Pipeline, j: usize| p.run_par(traces, rib, &futures[..j], 0).class_counts();

    variants.push(Variant { name: "baseline (paper settings)", counts: run_with(&base, 2) });

    let no_persistence =
        Pipeline::new(FilterConfig { persistence_window: 0, ..Default::default() });
    variants.push(Variant { name: "no Persistence filter", counts: run_with(&no_persistence, 0) });

    let mut no_diversity = base.clone();
    no_diversity.skip_transit_diversity = true;
    variants.push(Variant { name: "no TransitDiversity filter", counts: run_with(&no_diversity, 2) });

    let rescued = base.clone().with_alias_rescue();
    variants.push(Variant { name: "with alias rescue (§5)", counts: run_with(&rescued, 2) });

    variants
}

/// Prints and writes the ablation table.
pub fn emit(variants: &[Variant]) {
    let rows: Vec<Vec<String>> = variants
        .iter()
        .map(|v| {
            let c = &v.counts;
            let f = c.fractions();
            vec![
                v.name.to_string(),
                c.total().to_string(),
                f3(f[0]),
                f3(f[1]),
                f3(f[2]),
                f3(f[3]),
            ]
        })
        .collect();
    print_table(
        "Ablations — classification under variant pipelines (cycle 45)",
        &["variant", "iotps", "mono_lsp", "multi_fec", "mono_fec", "unclassified"],
        &rows,
    );
    let path = write_csv(
        "ablations.csv",
        &["variant", "iotps", "mono_lsp", "multi_fec", "mono_fec", "unclassified"],
        &rows,
    );
    announce("Ablations", &path);
}
