//! Thread-safe metric primitives and the registry holding them.
//!
//! Metrics are keyed by `&'static str` names, dot-namespaced by
//! convention (`warts.records`, `probe.sent`). Handles are `Arc`s so a
//! hot loop can increment without re-hitting the registry lock; the
//! atomics themselves are lock-free.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (queue depths, retained LSPs).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of fixed buckets in a [`Histogram`]: values `0..=14` count
/// exactly, everything larger lands in the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 16;

/// A small-integer histogram (label-stack depths, hop counts).
///
/// Values `v < 15` are counted in bucket `v`; larger values share the
/// final overflow bucket. That fixed shape keeps observation lock-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: usize) {
        let idx = value.min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Per-bucket counts; index 15 is the `>= 15` overflow bucket.
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.snapshot().iter().sum()
    }
}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create: asking twice for the
/// same name returns handles to the same underlying atomic.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter registered under `name` (created on first use).
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("counter registry poisoned");
        Arc::clone(map.entry(name).or_default())
    }

    /// The gauge registered under `name` (created on first use).
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("gauge registry poisoned");
        Arc::clone(map.entry(name).or_default())
    }

    /// The histogram registered under `name` (created on first use).
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("histogram registry poisoned");
        Arc::clone(map.entry(name).or_default())
    }

    /// Current counter values, sorted by name.
    pub fn counter_values(&self) -> BTreeMap<String, u64> {
        let map = self.counters.lock().expect("counter registry poisoned");
        map.iter().map(|(k, v)| (k.to_string(), v.get())).collect()
    }

    /// Current gauge values, sorted by name.
    pub fn gauge_values(&self) -> BTreeMap<String, i64> {
        let map = self.gauges.lock().expect("gauge registry poisoned");
        map.iter().map(|(k, v)| (k.to_string(), v.get())).collect()
    }

    /// Current histogram buckets, sorted by name.
    pub fn histogram_values(&self) -> BTreeMap<String, Vec<u64>> {
        let map = self.histograms.lock().expect("histogram registry poisoned");
        map.iter().map(|(k, v)| (k.to_string(), v.snapshot().to_vec())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_get_or_create() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.counter_values().get("x"), Some(&3));
    }

    #[test]
    fn gauges_go_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_overflow_bucket() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(99);
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[3], 2);
        assert_eq!(snap[HISTOGRAM_BUCKETS - 1], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = Arc::clone(&reg);
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("hot");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("hot").get(), 80_000);
    }
}
