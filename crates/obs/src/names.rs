//! The registry's metric-name vocabulary, in one place.
//!
//! Every counter and histogram the workspace emits is declared here as
//! a constant and listed in [`ALL_COUNTERS`] / [`ALL_HISTOGRAMS`];
//! emission sites reference the constants, and integration tests in
//! the emitting crates assert their recorded telemetry stays inside
//! this vocabulary — so names cannot drift between code, README and
//! dashboards without a test noticing.

/// Warts records decoded successfully.
pub const WARTS_RECORDS: &str = "warts.records";
/// Warts bytes consumed, headers included.
pub const WARTS_BYTES: &str = "warts.bytes";
/// Trace records among the decoded warts records.
pub const WARTS_TRACES: &str = "warts.traces";
/// Malformed warts records skipped (sum of the `warts.skip.*` family).
pub const WARTS_MALFORMED_RECORDS: &str = "warts.malformed_records";
/// Well-formed warts records of unsupported types.
pub const WARTS_UNSUPPORTED_RECORDS: &str = "warts.unsupported_records";
/// ICMP extensions of unknown class/type.
pub const WARTS_UNKNOWN_ICMP_EXT: &str = "warts.unknown_icmp_ext";
/// Bytes discarded while resynchronizing after a bad record.
pub const WARTS_RESYNC_BYTES: &str = "warts.resync_bytes";
/// Skip reason: magic mismatch.
pub const WARTS_SKIP_BAD_MAGIC: &str = "warts.skip.bad_magic";
/// Skip reason: header shorter than the fixed prefix.
pub const WARTS_SKIP_TRUNCATED_HEADER: &str = "warts.skip.truncated_header";
/// Skip reason: declared length beyond sanity.
pub const WARTS_SKIP_INSANE_LENGTH: &str = "warts.skip.insane_length";
/// Skip reason: body shorter than the header declared.
pub const WARTS_SKIP_TRUNCATED_BODY: &str = "warts.skip.truncated_body";
/// Skip reason: record truncated mid-field.
pub const WARTS_SKIP_TRUNCATED: &str = "warts.skip.truncated";
/// Skip reason: declared and consumed lengths disagree.
pub const WARTS_SKIP_LENGTH_MISMATCH: &str = "warts.skip.length_mismatch";
/// Skip reason: unparseable address.
pub const WARTS_SKIP_BAD_ADDRESS: &str = "warts.skip.bad_address";
/// Skip reason: parameter flags inconsistent.
pub const WARTS_SKIP_PARAM_ERROR: &str = "warts.skip.param_error";
/// Skip reason: malformed RFC 4884/4950 ICMP extension.
pub const WARTS_SKIP_BAD_ICMP_EXT: &str = "warts.skip.bad_icmp_ext";
/// Skip reason: well-formed but unsupported record type.
pub const WARTS_SKIP_UNSUPPORTED: &str = "warts.skip.unsupported";

/// Traces entering the pipeline.
pub const PIPELINE_TRACES: &str = "pipeline.traces";
/// Traces surviving validation.
pub const PIPELINE_TRACES_KEPT: &str = "pipeline.traces_kept";
/// Traces quarantined (sum of the `quarantine.*` family).
pub const PIPELINE_TRACES_QUARANTINED: &str = "pipeline.traces_quarantined";
/// Tunnels extracted from kept traces.
pub const PIPELINE_TUNNELS: &str = "pipeline.tunnels";
/// IOTPs that reached classification.
pub const PIPELINE_IOTPS_CLASSIFIED: &str = "pipeline.iotps_classified";
/// ASes exhibiting dynamic (multi-class) behaviour.
pub const PIPELINE_DYNAMIC_ASES: &str = "pipeline.dynamic_ases";

/// Targeted DPR re-probe walks spent by the revelation phase.
pub const REVELATION_PROBES: &str = "revelation.probes";
/// Revelation triggers of the duplicate-IP kind (invisible tunnels).
pub const REVELATION_TRIGGER_DUP_IP: &str = "revelation.trigger.dup_ip";
/// Revelation triggers of the opaque one-hop-stack kind.
pub const REVELATION_TRIGGER_OPAQUE: &str = "revelation.trigger.opaque";
/// Revelation triggers of the u-turn RTT-quirk kind (implicit tunnels).
pub const REVELATION_TRIGGER_UTURN: &str = "revelation.trigger.uturn";
/// Revelation candidates triggered (sum of the `revelation.trigger.*`
/// family after per-pair deduplication).
pub const REVELATION_TRIGGERS: &str = "revelation.triggers";
/// IOTPs upgraded or newly created from revealed evidence.
pub const REVELATION_UPGRADED: &str = "revelation.upgraded";

/// Quarantine reason: TTL ladder longer than the cap.
pub const QUARANTINE_TOO_MANY_HOPS: &str = "quarantine.too_many_hops";
/// Quarantine reason: duplicate TTL in one trace.
pub const QUARANTINE_DUPLICATE_TTL: &str = "quarantine.duplicate_ttl";
/// Quarantine reason: TTLs out of order.
pub const QUARANTINE_NON_MONOTONIC_TTL: &str = "quarantine.non_monotonic_ttl";
/// Quarantine reason: quoted label stack deeper than the cap.
pub const QUARANTINE_EXCESS_STACK_DEPTH: &str = "quarantine.excess_stack_depth";
/// Quarantine reason: the trace's shard worker panicked.
pub const QUARANTINE_POISONED_SHARD: &str = "quarantine.poisoned_shard";

/// Shard workers that panicked and were caught.
pub const PAR_POISONED_SHARDS: &str = "par.poisoned_shards";

/// Probes sent (one per TTL step).
pub const PROBE_SENT: &str = "probe.sent";
/// Replies received.
pub const PROBE_REPLIES: &str = "probe.replies";
/// Probes lost to anonymous routers.
pub const PROBE_ANONYMOUS: &str = "probe.anonymous";
/// Host groups where the MDA stopping rule ran out of hosts before
/// settling.
pub const PROBE_BUDGET_EXHAUSTED: &str = "probe.budget.exhausted";
/// Flow-varied ladder walks that emitted campaign traces.
pub const PROBE_BUDGET_FLOWS: &str = "probe.budget.flows";
/// `(vp, dst)` pairs pruned by the MDA stopping rule.
pub const PROBE_BUDGET_PRUNED: &str = "probe.budget.pruned";
/// Host groups whose MDA stopping rule settled within the group.
pub const PROBE_BUDGET_STOPPED: &str = "probe.budget.stopped";

/// Input files that failed wholesale conversion.
pub const CLI_CONVERT_FAILURES: &str = "cli.convert_failures";
/// Input bytes read across all files.
pub const CLI_INPUT_BYTES: &str = "cli.input_bytes";
/// Input files read.
pub const CLI_INPUT_FILES: &str = "cli.input_files";

/// Warts corpus bytes memory-mapped (or read) for out-of-core ingest.
pub const CORPUS_BYTES_MAPPED: &str = "corpus.bytes_mapped";
/// Warts corpus files opened for out-of-core ingest.
pub const CORPUS_FILES_MAPPED: &str = "corpus.files_mapped";
/// Corpus files set aside at open: empty or still being written.
pub const CORPUS_FILES_SKIPPED: &str = "corpus.files_skipped";
/// Stale crash leftovers (`.lpridx.tmp`, spill files) swept at startup.
pub const CORPUS_INDEX_SWEPT: &str = "corpus.index.swept";
/// Record indexes built by a sequential scan (cache miss or stale).
pub const CORPUS_INDEX_BUILDS: &str = "corpus.index_builds";
/// Record indexes served from the on-disk `.lpridx` cache.
pub const CORPUS_INDEX_HITS: &str = "corpus.index_hits";
/// Records covered by loaded-or-built corpus indexes.
pub const CORPUS_RECORDS_INDEXED: &str = "corpus.records_indexed";
/// Indexed records whose sharded re-decode failed (should be zero).
pub const CORPUS_SHARD_DECODE_ERRORS: &str = "corpus.shard_decode_errors";

/// Bytes written to persistence-window spill files.
pub const INGEST_SPILL_BYTES: &str = "ingest.spill_bytes";
/// Unique LSP keys spilled for the persistence window.
pub const INGEST_SPILLED_KEYS: &str = "ingest.spilled_keys";
/// Traces ingested through the bounded-memory out-of-core path.
pub const INGEST_SPILLED_TRACES: &str = "ingest.spilled_traces";

/// Window cycles aged out of the serve daemon's ingest state.
pub const SERVE_CYCLES_EVICTED: &str = "serve.cycles_evicted";
/// Spool files ingested into the serve window.
pub const SERVE_FILES_INGESTED: &str = "serve.files_ingested";
/// Spool files moved to quarantine by the serve daemon.
pub const SERVE_FILES_QUARANTINED: &str = "serve.files_quarantined";
/// Per-file ingest attempts retried after a timeout or panic.
pub const SERVE_FILES_RETRIED: &str = "serve.files_retried";
/// HTTP requests answered by the serve endpoint.
pub const SERVE_HTTP_REQUESTS: &str = "serve.http_requests";
/// Reconcile-loop ticks completed by the serve daemon.
pub const SERVE_RECONCILE_TICKS: &str = "serve.reconcile_ticks";

/// RFC 4950 quoted label-stack depth per time-exceeded reply.
pub const PROBE_STACK_DEPTH: &str = "probe.stack_depth";

/// Every counter name the workspace emits, sorted.
pub const ALL_COUNTERS: &[&str] = &[
    CLI_CONVERT_FAILURES,
    CLI_INPUT_BYTES,
    CLI_INPUT_FILES,
    CORPUS_BYTES_MAPPED,
    CORPUS_FILES_MAPPED,
    CORPUS_FILES_SKIPPED,
    CORPUS_INDEX_SWEPT,
    CORPUS_INDEX_BUILDS,
    CORPUS_INDEX_HITS,
    CORPUS_RECORDS_INDEXED,
    CORPUS_SHARD_DECODE_ERRORS,
    INGEST_SPILL_BYTES,
    INGEST_SPILLED_KEYS,
    INGEST_SPILLED_TRACES,
    PAR_POISONED_SHARDS,
    PIPELINE_DYNAMIC_ASES,
    PIPELINE_IOTPS_CLASSIFIED,
    PIPELINE_TRACES,
    PIPELINE_TRACES_KEPT,
    PIPELINE_TRACES_QUARANTINED,
    PIPELINE_TUNNELS,
    PROBE_ANONYMOUS,
    PROBE_BUDGET_EXHAUSTED,
    PROBE_BUDGET_FLOWS,
    PROBE_BUDGET_PRUNED,
    PROBE_BUDGET_STOPPED,
    PROBE_REPLIES,
    PROBE_SENT,
    QUARANTINE_DUPLICATE_TTL,
    QUARANTINE_EXCESS_STACK_DEPTH,
    QUARANTINE_NON_MONOTONIC_TTL,
    QUARANTINE_POISONED_SHARD,
    QUARANTINE_TOO_MANY_HOPS,
    REVELATION_PROBES,
    REVELATION_TRIGGER_DUP_IP,
    REVELATION_TRIGGER_OPAQUE,
    REVELATION_TRIGGER_UTURN,
    REVELATION_TRIGGERS,
    REVELATION_UPGRADED,
    SERVE_CYCLES_EVICTED,
    SERVE_FILES_INGESTED,
    SERVE_FILES_QUARANTINED,
    SERVE_FILES_RETRIED,
    SERVE_HTTP_REQUESTS,
    SERVE_RECONCILE_TICKS,
    WARTS_BYTES,
    WARTS_MALFORMED_RECORDS,
    WARTS_RECORDS,
    WARTS_RESYNC_BYTES,
    WARTS_SKIP_BAD_ADDRESS,
    WARTS_SKIP_BAD_ICMP_EXT,
    WARTS_SKIP_BAD_MAGIC,
    WARTS_SKIP_INSANE_LENGTH,
    WARTS_SKIP_LENGTH_MISMATCH,
    WARTS_SKIP_PARAM_ERROR,
    WARTS_SKIP_TRUNCATED,
    WARTS_SKIP_TRUNCATED_BODY,
    WARTS_SKIP_TRUNCATED_HEADER,
    WARTS_SKIP_UNSUPPORTED,
    WARTS_TRACES,
    WARTS_UNKNOWN_ICMP_EXT,
    WARTS_UNSUPPORTED_RECORDS,
];

/// Every histogram name the workspace emits, sorted.
pub const ALL_HISTOGRAMS: &[&str] = &[PROBE_STACK_DEPTH];

/// Whether `name` is a declared counter.
pub fn is_known_counter(name: &str) -> bool {
    ALL_COUNTERS.binary_search(&name).is_ok()
}

/// Whether `name` is a declared histogram.
pub fn is_known_histogram(name: &str) -> bool {
    ALL_HISTOGRAMS.binary_search(&name).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocabulary_is_sorted_and_unique() {
        for list in [ALL_COUNTERS, ALL_HISTOGRAMS] {
            for pair in list.windows(2) {
                assert!(pair[0] < pair[1], "{} must sort before {}", pair[0], pair[1]);
            }
        }
    }

    #[test]
    fn lookups_match_membership() {
        assert!(is_known_counter(WARTS_SKIP_BAD_MAGIC));
        assert!(is_known_counter(PAR_POISONED_SHARDS));
        assert!(!is_known_counter("warts.skip.bad-magic"));
        assert!(!is_known_counter("pipeline.trace"));
        assert!(is_known_histogram(PROBE_STACK_DEPTH));
        assert!(!is_known_histogram(PROBE_SENT));
    }

    #[test]
    fn families_share_their_rollup_prefix() {
        let skips: Vec<&&str> =
            ALL_COUNTERS.iter().filter(|n| n.starts_with("warts.skip.")).collect();
        assert_eq!(skips.len(), 10, "one counter per SkipReason variant");
        let quarantines: Vec<&&str> =
            ALL_COUNTERS.iter().filter(|n| n.starts_with("quarantine.")).collect();
        assert_eq!(quarantines.len(), 5, "one counter per QuarantineReason variant");
        let budgets: Vec<&&str> =
            ALL_COUNTERS.iter().filter(|n| n.starts_with("probe.budget.")).collect();
        assert_eq!(budgets.len(), 4, "one counter per campaign budget tally");
        let triggers: Vec<&&str> =
            ALL_COUNTERS.iter().filter(|n| n.starts_with("revelation.trigger.")).collect();
        assert_eq!(triggers.len(), 3, "one counter per revelation TriggerKind");
    }
}
