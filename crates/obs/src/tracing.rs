//! Hierarchical span tracing with a fixed-capacity event journal.
//!
//! A [`Tracer`] records spans (`run → cycle → stage → shard`) and
//! leveled point events into a lock-light ring-buffer [`journal`]: the
//! enabled/level check is a single atomic load, and only events that
//! pass it take the short journal lock. A disabled tracer (the
//! default) is a no-op handle that costs one branch per call, so
//! library code can thread tracing through unconditionally.
//!
//! Span identity is an allocation-ordered `u64`; [`SpanContext`] is the
//! `Copy` handle that crosses threads — `lpr-par` passes the stage
//! span's context into shard workers so their spans parent correctly.
//!
//! [`journal`]: TraceSnapshot

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Severity of a point event ([`Tracer::event`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Fine-grained diagnostics, off by default.
    Debug = 0,
    /// Normal milestones.
    Info = 1,
    /// Degraded-but-continuing conditions (skips, quarantines).
    Warn = 2,
    /// Lost work (poisoned shards, fatal per-item failures).
    Error = 3,
}

impl Level {
    /// Every level, ascending.
    pub const ALL: [Level; 4] = [Level::Debug, Level::Info, Level::Warn, Level::Error];

    /// Lower-case name (`"debug"`, `"info"`, `"warn"`, `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses a level name as written on a `--trace-level` flag.
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Debug,
            1 => Level::Info,
            2 => Level::Warn,
            _ => Level::Error,
        }
    }
}

/// A structured field value attached to an event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// Unsigned count.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Free text (reason strings, names).
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// The `Copy` handle to a live span, safe to send across threads.
///
/// Context `0` is the root: spans opened under it have no parent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanContext {
    id: u64,
}

impl SpanContext {
    /// The root context (no parent).
    pub const ROOT: SpanContext = SpanContext { id: 0 };

    /// The span's journal identifier (0 for the root context or spans
    /// of a disabled tracer).
    pub fn id(self) -> u64 {
        self.id
    }
}

/// One journal entry.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A span opened.
    SpanBegin {
        /// Allocation-ordered span identifier (never 0).
        id: u64,
        /// Parent span id (0 = top-level).
        parent: u64,
        /// Span name (`"run"`, `"stage:Persistence"`, `"shard3"`…).
        name: String,
        /// Microseconds since the journal epoch.
        ts_us: u64,
        /// Logical lane for timeline exporters (worker index; 0 = main).
        tid: u64,
    },
    /// A span closed.
    SpanEnd {
        /// The span that closed.
        id: u64,
        /// Microseconds since the journal epoch.
        ts_us: u64,
    },
    /// A leveled point event inside a span.
    Event {
        /// Enclosing span id (0 = outside any span).
        span: u64,
        /// Severity.
        level: Level,
        /// Event name (`"quarantine"`, `"poisoned-shard"`…).
        name: String,
        /// Microseconds since the journal epoch.
        ts_us: u64,
        /// Structured payload, in recording order.
        fields: Vec<(String, FieldValue)>,
    },
}

impl TraceEvent {
    /// The entry's timestamp, microseconds since the journal epoch.
    pub fn ts_us(&self) -> u64 {
        match self {
            TraceEvent::SpanBegin { ts_us, .. }
            | TraceEvent::SpanEnd { ts_us, .. }
            | TraceEvent::Event { ts_us, .. } => *ts_us,
        }
    }
}

/// A point-in-time copy of the journal ([`Tracer::snapshot`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSnapshot {
    /// Journal entries, oldest first.
    pub events: Vec<TraceEvent>,
    /// Entries overwritten by ring-buffer wraparound (oldest lost).
    pub dropped: u64,
}

struct Ring {
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

struct Inner {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
    next_id: AtomicU64,
    level: AtomicU8,
    default_parent: AtomicU64,
}

impl Inner {
    fn now_us(&self) -> u64 {
        crate::time::duration_us(self.epoch.elapsed())
    }

    fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().expect("trace journal poisoned");
        if ring.buf.len() == self.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(event);
    }
}

/// Default journal capacity (entries), plenty for a full classify run.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1 << 16;

/// Records spans and events into a shared journal.
///
/// Cloning is cheap (an `Arc`); every clone feeds the same journal.
/// [`Tracer::disabled`] (also `Default`) is a no-op handle.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Tracer(disabled)"),
            Some(inner) => {
                write!(f, "Tracer(level={})", Level::from_u8(inner.level.load(Ordering::Relaxed)).name())
            }
        }
    }
}

impl Tracer {
    /// Starts an enabled tracer journaling events at `level` and above,
    /// with the default journal capacity.
    pub fn new(level: Level) -> Tracer {
        Tracer::with_capacity(level, DEFAULT_JOURNAL_CAPACITY)
    }

    /// [`Tracer::new`] with an explicit journal capacity (entries; at
    /// least 1).
    pub fn with_capacity(level: Level, capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                capacity,
                ring: Mutex::new(Ring { buf: VecDeque::with_capacity(capacity.min(1024)), dropped: 0 }),
                next_id: AtomicU64::new(1),
                level: AtomicU8::new(level as u8),
                default_parent: AtomicU64::new(0),
            })),
        }
    }

    /// The no-op tracer: every call is a cheap branch, nothing is
    /// journaled.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// Whether this tracer journals anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether an event at `level` would be journaled — the lock-free
    /// fast path callers may use to skip building field payloads.
    pub fn would_log(&self, level: Level) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => level as u8 >= inner.level.load(Ordering::Relaxed),
        }
    }

    /// Makes `ctx` the implicit parent of spans opened with
    /// [`Tracer::span`] — drivers set their root span here so library
    /// code nests under it without plumbing a context.
    pub fn set_default_parent(&self, ctx: SpanContext) {
        if let Some(inner) = &self.inner {
            inner.default_parent.store(ctx.id, Ordering::Relaxed);
        }
    }

    /// The current implicit parent (the root context until
    /// [`Tracer::set_default_parent`] changes it) — library code
    /// journals events under it when no span of its own is open.
    pub fn default_parent(&self) -> SpanContext {
        match &self.inner {
            None => SpanContext::ROOT,
            Some(inner) => SpanContext { id: inner.default_parent.load(Ordering::Relaxed) },
        }
    }

    /// Opens a span under the default parent (see
    /// [`Tracer::set_default_parent`]).
    pub fn span(&self, name: impl Into<String>) -> Span {
        let parent = match &self.inner {
            None => SpanContext::ROOT,
            Some(inner) => SpanContext { id: inner.default_parent.load(Ordering::Relaxed) },
        };
        self.span_on(parent, name, 0)
    }

    /// Opens a span under an explicit parent.
    pub fn span_under(&self, parent: SpanContext, name: impl Into<String>) -> Span {
        self.span_on(parent, name, 0)
    }

    /// Opens a span under an explicit parent on a logical lane (`tid`)
    /// — shard/worker spans pass their worker index so timeline
    /// exporters draw them on separate rows.
    pub fn span_on(&self, parent: SpanContext, name: impl Into<String>, tid: u64) -> Span {
        let Some(inner) = &self.inner else {
            return Span { tracer: Tracer::disabled(), id: 0 };
        };
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        inner.push(TraceEvent::SpanBegin {
            id,
            parent: parent.id,
            name: name.into(),
            ts_us: inner.now_us(),
            tid,
        });
        Span { tracer: self.clone(), id }
    }

    /// Journals a leveled point event inside `span` (use
    /// [`SpanContext::ROOT`] for none). Dropped without locking when
    /// below the tracer's level.
    pub fn event(
        &self,
        span: SpanContext,
        level: Level,
        name: impl Into<String>,
        fields: Vec<(String, FieldValue)>,
    ) {
        let Some(inner) = &self.inner else { return };
        if (level as u8) < inner.level.load(Ordering::Relaxed) {
            return;
        }
        inner.push(TraceEvent::Event {
            span: span.id,
            level,
            name: name.into(),
            ts_us: inner.now_us(),
            fields,
        });
    }

    /// Copies the journal (oldest first) and its overwrite tally.
    pub fn snapshot(&self) -> TraceSnapshot {
        match &self.inner {
            None => TraceSnapshot::default(),
            Some(inner) => {
                let ring = inner.ring.lock().expect("trace journal poisoned");
                TraceSnapshot { events: ring.buf.iter().cloned().collect(), dropped: ring.dropped }
            }
        }
    }
}

/// A live span; journals its end on drop.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    id: u64,
}

impl Span {
    /// The `Copy` handle other threads parent under.
    pub fn context(&self) -> SpanContext {
        SpanContext { id: self.id }
    }

    /// Journals a leveled event inside this span.
    pub fn event(&self, level: Level, name: impl Into<String>, fields: Vec<(String, FieldValue)>) {
        self.tracer.event(self.context(), level, name, fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(inner) = &self.tracer.inner {
            if self.id != 0 {
                inner.push(TraceEvent::SpanEnd { id: self.id, ts_us: inner.now_us() });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert!(!t.would_log(Level::Error));
        let span = t.span("run");
        span.event(Level::Error, "boom", vec![]);
        t.event(span.context(), Level::Error, "boom", vec![]);
        drop(span);
        assert_eq!(t.snapshot(), TraceSnapshot::default());
    }

    #[test]
    fn spans_nest_and_close_in_order() {
        let t = Tracer::new(Level::Debug);
        let run = t.span("run");
        t.set_default_parent(run.context());
        let stage = t.span("stage");
        let shard = t.span_on(stage.context(), "shard0", 3);
        drop(shard);
        drop(stage);
        drop(run);
        let snap = t.snapshot();
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 6);
        let TraceEvent::SpanBegin { id: run_id, parent, .. } = snap.events[0] else {
            panic!("expected begin");
        };
        assert_eq!(parent, 0);
        let TraceEvent::SpanBegin { id: stage_id, parent, .. } = snap.events[1] else {
            panic!("expected begin");
        };
        assert_eq!(parent, run_id, "default parent nests under run");
        let TraceEvent::SpanBegin { parent, tid, .. } = snap.events[2] else {
            panic!("expected begin");
        };
        assert_eq!(parent, stage_id);
        assert_eq!(tid, 3);
        assert!(matches!(snap.events[3], TraceEvent::SpanEnd { .. }));
    }

    #[test]
    fn level_filter_drops_below_threshold() {
        let t = Tracer::new(Level::Warn);
        assert!(!t.would_log(Level::Info));
        assert!(t.would_log(Level::Warn));
        t.event(SpanContext::ROOT, Level::Debug, "quiet", vec![]);
        t.event(SpanContext::ROOT, Level::Info, "quiet", vec![]);
        t.event(
            SpanContext::ROOT,
            Level::Error,
            "loud",
            vec![("n".to_string(), FieldValue::U64(2))],
        );
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        let TraceEvent::Event { level, ref fields, .. } = snap.events[0] else {
            panic!("expected event");
        };
        assert_eq!(level, Level::Error);
        assert_eq!(fields[0].1, FieldValue::U64(2));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::with_capacity(Level::Debug, 4);
        for i in 0..10u64 {
            t.event(SpanContext::ROOT, Level::Info, format!("e{i}"), vec![]);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        let TraceEvent::Event { ref name, .. } = snap.events[0] else { panic!() };
        assert_eq!(name, "e6", "oldest entries were overwritten");
    }

    #[test]
    fn contexts_cross_threads() {
        let t = Tracer::new(Level::Debug);
        let stage = t.span("stage");
        let ctx = stage.context();
        let workers: Vec<_> = (0..4u64)
            .map(|w| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let s = t.span_on(ctx, format!("shard{w}"), w);
                    s.event(Level::Info, "work", vec![("items".into(), 10u64.into())]);
                })
            })
            .collect();
        for h in workers {
            h.join().unwrap();
        }
        drop(stage);
        let snap = t.snapshot();
        let begins = snap
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SpanBegin { parent, .. } if *parent == ctx.id()))
            .count();
        assert_eq!(begins, 4, "every shard span parents under the stage");
    }

    #[test]
    fn level_parsing() {
        for l in Level::ALL {
            assert_eq!(Level::parse(l.name()), Some(l));
        }
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("loud"), None);
        assert!(Level::Debug < Level::Error);
    }
}
