//! One run's worth of telemetry: recording and the serializable result.

use crate::json::{parse, JsonError, JsonValue};
use crate::registry::Registry;
use crate::time::{duration_us, Stopwatch};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Schema version written into every telemetry document.
pub const TELEMETRY_VERSION: u64 = 1;

/// One pipeline stage's accounting.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageTelemetry {
    /// Stage name (e.g. `"TransitDiversity"`).
    pub name: String,
    /// Wall time spent in the stage, microseconds.
    pub wall_us: u64,
    /// Items entering the stage.
    pub input: u64,
    /// Items surviving the stage.
    pub output: u64,
}

impl StageTelemetry {
    /// Items the stage dropped.
    pub fn dropped(&self) -> u64 {
        self.input.saturating_sub(self.output)
    }

    /// Items per second through the stage (0 when instantaneous).
    pub fn throughput_per_s(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.input as f64 / (self.wall_us as f64 / 1e6)
    }
}

/// The machine-readable result of one instrumented run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTelemetry {
    /// Run label (subcommand, bench name…).
    pub label: String,
    /// Total wall time from [`Recorder::new`] to [`Recorder::finish`],
    /// microseconds.
    pub total_wall_us: u64,
    /// Worker threads the run executed on (1 for sequential runs; set
    /// by parallel drivers via [`Recorder::set_threads`]).
    pub threads: u64,
    /// Ordered stage accounting.
    pub stages: Vec<StageTelemetry>,
    /// Final counter values.
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Final histogram buckets (index = observed value, last bucket =
    /// overflow).
    pub histograms: BTreeMap<String, Vec<u64>>,
}

impl RunTelemetry {
    /// The stage named `name`, if recorded.
    pub fn stage(&self, name: &str) -> Option<&StageTelemetry> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// A counter's final value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Every counter whose name starts with `prefix`, in name order.
    ///
    /// Taxonomy counters — `warts.skip.*` skip reasons, `quarantine.*`
    /// trace-quarantine reasons — are written one counter per variant;
    /// this reads such a family back as a unit.
    pub fn counters_with_prefix(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, &v)| (k.as_str(), v))
            .collect()
    }

    /// Sum of every counter under `prefix` (0 when none exist), for
    /// reconciling a taxonomy family against its roll-up counter.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.starts_with(prefix)).map(|(_, &v)| v).sum()
    }

    /// The per-worker entries of a parallel stage: every stage named
    /// `worker{N}/{stage}` (see [`Recorder::record_worker_stage`]), in
    /// recording order.
    pub fn worker_stages(&self, stage: &str) -> Vec<&StageTelemetry> {
        self.stages
            .iter()
            .filter(|s| {
                s.name
                    .strip_prefix("worker")
                    .and_then(|rest| rest.split_once('/'))
                    .is_some_and(|(n, suffix)| {
                        suffix == stage && n.chars().all(|c| c.is_ascii_digit())
                    })
            })
            .collect()
    }

    /// Serializes to pretty-printed JSON (the `--metrics` file format).
    pub fn to_json(&self) -> String {
        self.to_value().render_pretty()
    }

    fn to_value(&self) -> JsonValue {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                JsonValue::Object(vec![
                    ("name".into(), JsonValue::Str(s.name.clone())),
                    ("wall_us".into(), JsonValue::Int(s.wall_us as i128)),
                    ("input".into(), JsonValue::Int(s.input as i128)),
                    ("output".into(), JsonValue::Int(s.output as i128)),
                ])
            })
            .collect();
        let histograms = JsonValue::Object(
            self.histograms
                .iter()
                .map(|(k, buckets)| {
                    (
                        k.clone(),
                        JsonValue::Array(
                            buckets.iter().map(|b| JsonValue::Int(*b as i128)).collect(),
                        ),
                    )
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("version".into(), JsonValue::Int(TELEMETRY_VERSION as i128)),
            ("label".into(), JsonValue::Str(self.label.clone())),
            ("total_wall_us".into(), JsonValue::Int(self.total_wall_us as i128)),
            ("threads".into(), JsonValue::Int(self.threads as i128)),
            ("stages".into(), JsonValue::Array(stages)),
            ("counters".into(), JsonValue::from_u64_map(&self.counters)),
            ("gauges".into(), JsonValue::from_i64_map(&self.gauges)),
            ("histograms".into(), histograms),
        ])
    }

    /// Parses a document produced by [`RunTelemetry::to_json`].
    pub fn from_json(text: &str) -> Result<RunTelemetry, JsonError> {
        let root = parse(text)?;
        let bad = |reason: &'static str| JsonError { offset: 0, reason };
        let version = root
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or(bad("missing version"))?;
        if version != TELEMETRY_VERSION {
            return Err(bad("unsupported telemetry version"));
        }
        let label = root
            .get("label")
            .and_then(|v| v.as_str())
            .ok_or(bad("missing label"))?
            .to_string();
        let total_wall_us = root
            .get("total_wall_us")
            .and_then(|v| v.as_u64())
            .ok_or(bad("missing total_wall_us"))?;
        // Absent in documents written before the parallel layer landed:
        // those runs were sequential.
        let threads = root.get("threads").and_then(|v| v.as_u64()).unwrap_or(1);
        let mut stages = Vec::new();
        for s in root.get("stages").and_then(|v| v.as_array()).ok_or(bad("missing stages"))? {
            stages.push(StageTelemetry {
                name: s
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or(bad("stage missing name"))?
                    .to_string(),
                wall_us: s
                    .get("wall_us")
                    .and_then(|v| v.as_u64())
                    .ok_or(bad("stage missing wall_us"))?,
                input: s
                    .get("input")
                    .and_then(|v| v.as_u64())
                    .ok_or(bad("stage missing input"))?,
                output: s
                    .get("output")
                    .and_then(|v| v.as_u64())
                    .ok_or(bad("stage missing output"))?,
            });
        }
        let mut counters = BTreeMap::new();
        for (k, v) in root
            .get("counters")
            .and_then(|v| v.as_object())
            .ok_or(bad("missing counters"))?
        {
            counters.insert(k.clone(), v.as_u64().ok_or(bad("bad counter value"))?);
        }
        let mut gauges = BTreeMap::new();
        for (k, v) in
            root.get("gauges").and_then(|v| v.as_object()).ok_or(bad("missing gauges"))?
        {
            gauges.insert(k.clone(), v.as_i64().ok_or(bad("bad gauge value"))?);
        }
        let mut histograms = BTreeMap::new();
        for (k, v) in root
            .get("histograms")
            .and_then(|v| v.as_object())
            .ok_or(bad("missing histograms"))?
        {
            let buckets = v
                .as_array()
                .ok_or(bad("bad histogram"))?
                .iter()
                .map(|b| b.as_u64().ok_or(bad("bad histogram bucket")))
                .collect::<Result<Vec<u64>, JsonError>>()?;
            histograms.insert(k.clone(), buckets);
        }
        Ok(RunTelemetry { label, total_wall_us, threads, stages, counters, gauges, histograms })
    }
}

/// Collects stages and metrics for one run.
///
/// The recorder is `Sync`: counters/gauges/histograms are atomics
/// behind `Arc`s, and stage recording takes a short internal lock —
/// instrument parallel workers freely.
#[derive(Debug)]
pub struct Recorder {
    label: String,
    registry: Registry,
    stages: Mutex<Vec<StageTelemetry>>,
    started: Stopwatch,
    threads: std::sync::atomic::AtomicU64,
    tracer: crate::Tracer,
}

impl Recorder {
    /// Starts a recorder (and its total-wall-time clock). Tracing is
    /// disabled until [`Recorder::with_tracer`] attaches a journal.
    pub fn new(label: impl Into<String>) -> Self {
        Recorder {
            label: label.into(),
            registry: Registry::new(),
            stages: Mutex::new(Vec::new()),
            started: Stopwatch::start(),
            threads: std::sync::atomic::AtomicU64::new(1),
            tracer: crate::Tracer::disabled(),
        }
    }

    /// Attaches a span/event journal; everything instrumented against
    /// this recorder traces into it. Keep a [`Tracer`](crate::Tracer)
    /// clone to snapshot after the run.
    pub fn with_tracer(mut self, tracer: crate::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The attached tracer (the inert no-op one by default), for
    /// opening spans and journaling events alongside stage recording.
    pub fn tracer(&self) -> &crate::Tracer {
        &self.tracer
    }

    /// Declares the worker-thread count of the run (lands in
    /// [`RunTelemetry::threads`]; defaults to 1).
    pub fn set_threads(&self, threads: u64) {
        self.threads.store(threads.max(1), std::sync::atomic::Ordering::Relaxed);
    }

    /// Records one worker's share of a parallel stage as a
    /// `worker{N}/{stage}` entry (wall time = the worker's busy time,
    /// not the region's wall-clock).
    pub fn record_worker_stage(
        &self,
        worker: usize,
        stage: &str,
        busy_us: u64,
        input: u64,
        output: u64,
    ) {
        self.record_stage(&format!("worker{worker}/{stage}"), busy_us, input, output);
    }

    /// The underlying metric registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Counter handle (get-or-create; see [`Registry::counter`]).
    pub fn counter(&self, name: &'static str) -> Arc<crate::Counter> {
        self.registry.counter(name)
    }

    /// Gauge handle.
    pub fn gauge(&self, name: &'static str) -> Arc<crate::Gauge> {
        self.registry.gauge(name)
    }

    /// Histogram handle.
    pub fn histogram(&self, name: &'static str) -> Arc<crate::Histogram> {
        self.registry.histogram(name)
    }

    /// Starts timing a stage; finish it with
    /// [`StageGuard::finish_counts`] (or drop it to record timing
    /// only).
    pub fn stage(&self, name: &'static str) -> StageGuard<'_> {
        StageGuard { recorder: self, name, sw: Stopwatch::start(), done: false }
    }

    /// Records a fully-known stage in one call.
    pub fn record_stage(&self, name: &str, wall_us: u64, input: u64, output: u64) {
        let mut stages = self.stages.lock().expect("stage log poisoned");
        stages.push(StageTelemetry { name: name.to_string(), wall_us, input, output });
    }

    /// Snapshot of the stages recorded so far.
    pub fn stages_so_far(&self) -> Vec<StageTelemetry> {
        self.stages.lock().expect("stage log poisoned").clone()
    }

    /// Stops the clock and aggregates everything recorded.
    pub fn finish(self) -> RunTelemetry {
        RunTelemetry {
            label: self.label,
            total_wall_us: self.started.elapsed_us(),
            threads: self.threads.into_inner(),
            stages: self.stages.into_inner().expect("stage log poisoned"),
            counters: self.registry.counter_values(),
            gauges: self.registry.gauge_values(),
            histograms: self.registry.histogram_values(),
        }
    }
}

/// An in-flight stage span (see [`Recorder::stage`]).
pub struct StageGuard<'r> {
    recorder: &'r Recorder,
    name: &'static str,
    sw: Stopwatch,
    done: bool,
}

impl StageGuard<'_> {
    /// Ends the span with input/output item counts; returns the wall
    /// time in microseconds.
    pub fn finish_counts(mut self, input: u64, output: u64) -> u64 {
        let wall_us = duration_us(self.sw.elapsed());
        self.recorder.record_stage(self.name, wall_us, input, output);
        self.done = true;
        wall_us
    }

    /// Ends the span with no item accounting.
    pub fn finish(self) -> u64 {
        self.finish_counts(0, 0)
    }
}

impl Drop for StageGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            let wall_us = duration_us(self.sw.elapsed());
            self.recorder.record_stage(self.name, wall_us, 0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunTelemetry {
        let rec = Recorder::new("unit");
        rec.counter("a.count").add(7);
        rec.gauge("b.gauge").set(-3);
        let h = rec.histogram("c.hist");
        h.observe(2);
        h.observe(2);
        h.observe(40);
        let s = rec.stage("first");
        s.finish_counts(100, 80);
        rec.stage("second").finish_counts(80, 80);
        rec.finish()
    }

    #[test]
    fn recorder_aggregates_everything() {
        let t = sample();
        assert_eq!(t.label, "unit");
        assert_eq!(t.stages.len(), 2);
        assert_eq!(t.stages[0].name, "first");
        assert_eq!(t.stages[0].dropped(), 20);
        assert_eq!(t.counter("a.count"), 7);
        assert_eq!(t.counter("missing"), 0);
        assert_eq!(t.gauges["b.gauge"], -3);
        let h = &t.histograms["c.hist"];
        assert_eq!(h[2], 2);
        assert_eq!(*h.last().unwrap(), 1);
    }

    #[test]
    fn prefix_family_reads_and_sums() {
        let rec = Recorder::new("unit");
        rec.counter("skip.bad_magic").add(3);
        rec.counter("skip.truncated_body").add(4);
        rec.counter("skipped_total").add(7);
        let t = rec.finish();
        assert_eq!(
            t.counters_with_prefix("skip."),
            vec![("skip.bad_magic", 3), ("skip.truncated_body", 4)]
        );
        assert_eq!(t.counter_sum("skip."), t.counter("skipped_total"));
        assert!(t.counters_with_prefix("nope.").is_empty());
        assert_eq!(t.counter_sum("nope."), 0);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let t = sample();
        let json = t.to_json();
        let back = RunTelemetry::from_json(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_roundtrip_of_empty_run() {
        let t = Recorder::new("empty").finish();
        assert_eq!(RunTelemetry::from_json(&t.to_json()).unwrap(), t);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let t = sample();
        let json = t.to_json().replace("\"version\": 1", "\"version\": 999");
        assert!(RunTelemetry::from_json(&json).is_err());
    }

    #[test]
    fn dropped_guard_records_timing_only() {
        let rec = Recorder::new("guard");
        {
            let _g = rec.stage("implicit");
        }
        let t = rec.finish();
        assert_eq!(t.stages.len(), 1);
        assert_eq!(t.stages[0].input, 0);
    }

    #[test]
    fn threads_field_roundtrips_and_defaults_to_sequential() {
        let rec = Recorder::new("par");
        rec.set_threads(8);
        rec.record_worker_stage(0, "Ingest", 40, 10, 6);
        rec.record_worker_stage(1, "Ingest", 35, 12, 7);
        let t = rec.finish();
        assert_eq!(t.threads, 8);
        let workers = t.worker_stages("Ingest");
        assert_eq!(workers.len(), 2);
        assert_eq!(workers.iter().map(|s| s.input).sum::<u64>(), 22);
        let back = RunTelemetry::from_json(&t.to_json()).unwrap();
        assert_eq!(back, t);

        // Pre-parallel documents carry no threads field: parsed as 1.
        let legacy = sample();
        let json = legacy.to_json().replace("  \"threads\": 1,\n", "");
        assert!(!json.contains("threads"));
        assert_eq!(RunTelemetry::from_json(&json).unwrap().threads, 1);
    }

    #[test]
    fn throughput_math() {
        let s = StageTelemetry { name: "x".into(), wall_us: 2_000_000, input: 100, output: 50 };
        assert!((s.throughput_per_s() - 50.0).abs() < 1e-9);
        let zero = StageTelemetry::default();
        assert_eq!(zero.throughput_per_s(), 0.0);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(Recorder::new("mt"));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let rec = std::sync::Arc::clone(&rec);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    rec.counter("shared").inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let rec = std::sync::Arc::try_unwrap(rec).expect("all threads joined");
        assert_eq!(rec.finish().counter("shared"), 4000);
    }
}
