//! Hand-rolled JSON, matching the workspace's zero-serde style.
//!
//! [`JsonValue`] is a minimal document model; [`JsonValue::render`]
//! writes canonical JSON (object keys in insertion order, integers
//! exact) and [`parse`] reads it back. Integers round-trip through
//! [`JsonValue::Int`] (i128), so u64 counter values survive untouched.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-written JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (covers u64/i64 exactly).
    Int(i128),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion-ordered pairs.
    Object(Vec<(String, JsonValue)>),
}

/// A malformed document.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Renders the value with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::Float(v) => render_float(*v, out),
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    fn render_pretty_into(&self, out: &mut String, depth: usize) {
        match self {
            JsonValue::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            JsonValue::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render_pretty_into(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.render_into(out),
        }
    }

    /// The object's pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as u64, if it is a non-negative in-range integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as i64, if it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as f64: floats verbatim, integers widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(f) => Some(*f),
            JsonValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Builds an object from string-keyed u64s.
    pub fn from_u64_map(map: &BTreeMap<String, u64>) -> JsonValue {
        JsonValue::Object(
            map.iter().map(|(k, v)| (k.clone(), JsonValue::Int(*v as i128))).collect(),
        )
    }

    /// Builds an object from string-keyed i64s.
    pub fn from_i64_map(map: &BTreeMap<String, i64>) -> JsonValue {
        JsonValue::Object(
            map.iter().map(|(k, v)| (k.clone(), JsonValue::Int(*v as i128))).collect(),
        )
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render_float(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        // Keep the float-ness visible ("3" -> "3.0") so the value
        // re-parses into the same variant.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: &'static str) -> JsonError {
        JsonError { offset: self.pos, reason }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, reason: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn literal(&mut self, lit: &str, reason: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(reason))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => {
                self.literal("null", "expected null")?;
                Ok(JsonValue::Null)
            }
            Some(b't') => {
                self.literal("true", "expected true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.literal("false", "expected false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{', "expected {")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or(self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if is_float {
            text.parse::<f64>().map(JsonValue::Float).map_err(|_| self.err("bad number"))
        } else {
            text.parse::<i128>().map(JsonValue::Int).map_err(|_| self.err("bad number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for (text, value) in [
            ("null", JsonValue::Null),
            ("true", JsonValue::Bool(true)),
            ("false", JsonValue::Bool(false)),
            ("42", JsonValue::Int(42)),
            ("-7", JsonValue::Int(-7)),
            ("18446744073709551615", JsonValue::Int(u64::MAX as i128)),
            ("\"hi\"", JsonValue::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), value, "{text}");
            assert_eq!(parse(&value.render()).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn float_roundtrips() {
        let v = JsonValue::Float(2.5);
        assert_eq!(parse(&v.render()).unwrap(), v);
        let whole = JsonValue::Float(3.0);
        assert_eq!(whole.render(), "3.0");
        assert_eq!(parse("3.0").unwrap(), JsonValue::Float(3.0));
    }

    #[test]
    fn nested_structure_roundtrips() {
        let v = JsonValue::Object(vec![
            ("name".into(), JsonValue::Str("run \"x\"\n".into())),
            (
                "stages".into(),
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("empty".into(), JsonValue::Object(vec![])),
        ]);
        assert_eq!(parse(&v.render()).unwrap(), v);
        assert_eq!(parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn escapes_survive() {
        let v = JsonValue::Str("tab\there \\ \"quote\" \u{0001}".into());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse("\"\\u0041\"").unwrap(), JsonValue::Str("A".into()));
    }

    #[test]
    fn malformed_documents_error() {
        for text in ["", "{", "[1,", "{\"a\"}", "nul", "\"abc", "1 2", "{\"a\":}"] {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = parse("{\"a\": 1, \"b\": [\"x\"]}").unwrap();
        assert_eq!(v.get("a").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("b").and_then(|x| x.as_array()).map(|a| a.len()), Some(1));
        assert!(v.get("missing").is_none());
    }
}
