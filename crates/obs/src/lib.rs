//! # lpr-obs — the workspace observability layer
//!
//! The LPR pipeline (paper Fig. 3) is a five-stage funnel whose whole
//! story is *where LSPs drop and why*; scaling it further needs a
//! measurement substrate. This crate is that substrate: a lightweight,
//! dependency-free instrumentation layer every other crate threads its
//! hot paths through.
//!
//! * [`Stopwatch`] / [`StageTimer`] — monotonic wall-clock spans;
//! * [`Counter`], [`Gauge`], [`Histogram`] — thread-safe (atomic)
//!   metrics held in a [`Registry`] keyed by static names;
//! * [`Recorder`] — one run's worth of stages + metrics, aggregated
//!   into a [`RunTelemetry`];
//! * [`RunTelemetry`] — the machine-readable result, serialized with a
//!   hand-rolled JSON writer/parser (the repo is zero-serde by design);
//! * [`Tracer`] — hierarchical spans (`run → cycle → stage → shard`)
//!   and leveled events in a fixed-capacity journal, exported by
//!   [`export`] as Chrome `trace_event` JSON, folded stacks, or
//!   Prometheus text;
//! * [`names`] — the single vocabulary of metric names the workspace
//!   emits.
//!
//! ```
//! use lpr_obs::Recorder;
//!
//! let rec = Recorder::new("demo-run");
//! let processed = rec.counter("records.processed");
//! let sw = rec.stage("parse");
//! for _ in 0..100 {
//!     processed.inc();
//! }
//! sw.finish_counts(100, 97); // input / output
//! let telemetry = rec.finish();
//! assert_eq!(telemetry.stages[0].input, 100);
//! let json = telemetry.to_json();
//! let back = lpr_obs::RunTelemetry::from_json(&json).unwrap();
//! assert_eq!(back, telemetry);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod json;
pub mod names;
pub mod registry;
pub mod telemetry;
pub mod time;
pub mod tracing;

pub use registry::{Counter, Gauge, Histogram, Registry};
pub use telemetry::{Recorder, RunTelemetry, StageGuard, StageTelemetry};
pub use time::{StageTimer, Stopwatch};
pub use tracing::{FieldValue, Level, Span, SpanContext, TraceEvent, TraceSnapshot, Tracer};
