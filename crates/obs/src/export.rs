//! Serde-free exporters for trace snapshots and run telemetry.
//!
//! Three renderings of the same observability data:
//!
//! * [`chrome_trace`] — Chrome `trace_event` JSON, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * [`folded_stacks`] — folded-stack text (`a;b;c weight` lines) for
//!   flamegraph tooling;
//! * [`prometheus_text`] — Prometheus-style text exposition of a
//!   [`RunTelemetry`]'s counter/gauge/histogram registry.
//!
//! [`ChromeTrace`] is the typed form of the first: `parse` then
//! [`ChromeTrace::to_json`] round-trips byte-identically, which is how
//! CI validates a `--trace-out` file without leaving the workspace.

use crate::json::{parse, JsonError, JsonValue};
use crate::registry::HISTOGRAM_BUCKETS;
use crate::telemetry::RunTelemetry;
use crate::tracing::{FieldValue, TraceEvent, TraceSnapshot};
use std::collections::BTreeMap;

/// One entry of a Chrome `trace_event` document.
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Phase: `"X"` (complete span) or `"i"` (instant).
    pub ph: String,
    /// Start timestamp, microseconds.
    pub ts: u64,
    /// Duration, microseconds (`"X"` events only).
    pub dur: Option<u64>,
    /// Process id (always 1 here — one pipeline, many lanes).
    pub pid: u64,
    /// Thread lane the event draws on.
    pub tid: u64,
    /// Structured arguments, in recording order; values are integers
    /// or strings.
    pub args: Vec<(String, JsonValue)>,
}

impl ChromeEvent {
    fn to_value(&self) -> JsonValue {
        let mut fields = vec![
            ("name".to_string(), JsonValue::Str(self.name.clone())),
            ("ph".to_string(), JsonValue::Str(self.ph.clone())),
            ("ts".to_string(), JsonValue::Int(self.ts as i128)),
        ];
        if let Some(dur) = self.dur {
            fields.push(("dur".to_string(), JsonValue::Int(dur as i128)));
        }
        fields.push(("pid".to_string(), JsonValue::Int(self.pid as i128)));
        fields.push(("tid".to_string(), JsonValue::Int(self.tid as i128)));
        if self.ph == "i" {
            // Instant scope: thread-scoped tick marks.
            fields.push(("s".to_string(), JsonValue::Str("t".to_string())));
        }
        if !self.args.is_empty() {
            fields.push(("args".to_string(), JsonValue::Object(self.args.clone())));
        }
        JsonValue::Object(fields)
    }

    fn from_value(v: &JsonValue) -> Result<ChromeEvent, JsonError> {
        let bad = |reason: &'static str| JsonError { offset: 0, reason };
        let name =
            v.get("name").and_then(|n| n.as_str()).ok_or(bad("event missing name"))?.to_string();
        let ph = v.get("ph").and_then(|p| p.as_str()).ok_or(bad("event missing ph"))?.to_string();
        if ph != "X" && ph != "i" {
            return Err(bad("unsupported event phase"));
        }
        let ts = v.get("ts").and_then(|t| t.as_u64()).ok_or(bad("event missing ts"))?;
        let dur = match v.get("dur") {
            None => None,
            Some(d) => Some(d.as_u64().ok_or(bad("bad event dur"))?),
        };
        if (ph == "X") != dur.is_some() {
            return Err(bad("dur is for complete events exactly"));
        }
        let pid = v.get("pid").and_then(|p| p.as_u64()).ok_or(bad("event missing pid"))?;
        let tid = v.get("tid").and_then(|t| t.as_u64()).ok_or(bad("event missing tid"))?;
        if ph == "i" && v.get("s").and_then(|s| s.as_str()) != Some("t") {
            return Err(bad("instant events are thread-scoped"));
        }
        let mut args = Vec::new();
        if let Some(a) = v.get("args") {
            let entries = a.as_object().ok_or(bad("bad event args"))?;
            if entries.is_empty() {
                return Err(bad("empty args are omitted"));
            }
            for (k, av) in entries {
                match av {
                    JsonValue::Int(_) | JsonValue::Str(_) => args.push((k.clone(), av.clone())),
                    _ => return Err(bad("args are integers or strings")),
                }
            }
        }
        Ok(ChromeEvent { name, ph, ts, dur, pid, tid, args })
    }
}

/// A typed Chrome `trace_event` document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeTrace {
    /// The `traceEvents` array, in emission order.
    pub events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// Renders the canonical JSON document ([`chrome_trace`] output).
    pub fn to_json(&self) -> String {
        JsonValue::Object(vec![(
            "traceEvents".to_string(),
            JsonValue::Array(self.events.iter().map(|e| e.to_value()).collect()),
        )])
        .render_pretty()
    }

    /// Parses a document written by [`chrome_trace`] /
    /// [`ChromeTrace::to_json`]; re-rendering the result reproduces the
    /// input byte-for-byte.
    pub fn parse(text: &str) -> Result<ChromeTrace, JsonError> {
        let root = parse(text)?;
        let bad = |reason: &'static str| JsonError { offset: 0, reason };
        let obj = root.as_object().ok_or(bad("trace document is an object"))?;
        if obj.len() != 1 {
            return Err(bad("trace document has exactly traceEvents"));
        }
        let events = root
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .ok_or(bad("missing traceEvents"))?
            .iter()
            .map(ChromeEvent::from_value)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ChromeTrace { events })
    }
}

fn field_to_json(v: &FieldValue) -> JsonValue {
    match v {
        FieldValue::U64(n) => JsonValue::Int(*n as i128),
        FieldValue::I64(n) => JsonValue::Int(*n as i128),
        FieldValue::Str(s) => JsonValue::Str(s.clone()),
    }
}

struct SpanRec {
    name: String,
    parent: u64,
    tid: u64,
    begin: u64,
    end: Option<u64>,
}

fn collect_spans(snapshot: &TraceSnapshot) -> (BTreeMap<u64, SpanRec>, u64) {
    let mut spans: BTreeMap<u64, SpanRec> = BTreeMap::new();
    let mut max_ts = 0;
    for e in &snapshot.events {
        max_ts = max_ts.max(e.ts_us());
        match e {
            TraceEvent::SpanBegin { id, parent, name, ts_us, tid } => {
                spans.insert(
                    *id,
                    SpanRec {
                        name: name.clone(),
                        parent: *parent,
                        tid: *tid,
                        begin: *ts_us,
                        end: None,
                    },
                );
            }
            TraceEvent::SpanEnd { id, ts_us } => {
                // A begin lost to ring wraparound leaves the end
                // unmatched; skip it.
                if let Some(rec) = spans.get_mut(id) {
                    rec.end = Some(*ts_us);
                }
            }
            TraceEvent::Event { .. } => {}
        }
    }
    (spans, max_ts)
}

/// Renders a snapshot as Chrome `trace_event` JSON: one `"X"` complete
/// event per span (still-open spans close at the journal's last
/// timestamp) and one thread-scoped `"i"` instant per point event,
/// carrying its level and fields as `args`.
pub fn chrome_trace(snapshot: &TraceSnapshot) -> String {
    let (spans, max_ts) = collect_spans(snapshot);
    let mut events: Vec<ChromeEvent> = spans
        .values()
        .map(|rec| ChromeEvent {
            name: rec.name.clone(),
            ph: "X".to_string(),
            ts: rec.begin,
            dur: Some(rec.end.unwrap_or(max_ts).saturating_sub(rec.begin)),
            pid: 1,
            tid: rec.tid,
            args: Vec::new(),
        })
        .collect();
    // BTreeMap iteration gave allocation order; present in timeline
    // order instead (stable across identical runs).
    events.sort_by_key(|e| e.ts);
    for e in &snapshot.events {
        if let TraceEvent::Event { span, level, name, ts_us, fields } = e {
            let mut args = vec![(
                "level".to_string(),
                JsonValue::Str(level.name().to_string()),
            )];
            args.extend(fields.iter().map(|(k, v)| (k.clone(), field_to_json(v))));
            events.push(ChromeEvent {
                name: name.clone(),
                ph: "i".to_string(),
                ts: *ts_us,
                dur: None,
                pid: 1,
                tid: spans.get(span).map_or(0, |rec| rec.tid),
                args,
            });
        }
    }
    ChromeTrace { events }.to_json()
}

/// Renders a snapshot as folded-stack lines (`run;stage;shard3 120`),
/// one per span path, weighted by *self* time (the span's duration
/// minus its children's) in microseconds, sorted and newline-
/// terminated — the input format of flamegraph tooling.
pub fn folded_stacks(snapshot: &TraceSnapshot) -> String {
    let (spans, max_ts) = collect_spans(snapshot);
    let mut child_time: BTreeMap<u64, u64> = BTreeMap::new();
    let dur = |rec: &SpanRec| rec.end.unwrap_or(max_ts).saturating_sub(rec.begin);
    for rec in spans.values() {
        if rec.parent != 0 {
            *child_time.entry(rec.parent).or_insert(0) += dur(rec);
        }
    }
    let mut lines: BTreeMap<String, u64> = BTreeMap::new();
    for (id, rec) in &spans {
        let mut path = vec![rec.name.as_str()];
        let mut cursor = rec.parent;
        // Walk to the root; a parent lost to wraparound truncates the
        // path there. Cycles cannot occur (parents precede children),
        // but the walk is bounded anyway.
        for _ in 0..spans.len() {
            match spans.get(&cursor) {
                Some(p) => {
                    path.push(p.name.as_str());
                    cursor = p.parent;
                }
                None => break,
            }
        }
        path.reverse();
        let self_us = dur(rec).saturating_sub(child_time.get(id).copied().unwrap_or(0));
        *lines.entry(path.join(";")).or_insert(0) += self_us;
    }
    let mut out = String::new();
    for (path, weight) in lines {
        out.push_str(&path);
        out.push(' ');
        out.push_str(&weight.to_string());
        out.push('\n');
    }
    out
}

fn metric_name(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
}

/// Renders a telemetry document's registry as Prometheus-style text
/// exposition: counters and gauges as single samples, histograms as
/// cumulative `le` buckets plus a `_count`, names with non-alphanumeric
/// characters mapped to underscores.
pub fn prometheus_text(t: &RunTelemetry) -> String {
    let mut out = String::new();
    let mut sample = |name: &str, kind: &str, value: String| {
        out.push_str("# TYPE ");
        out.push_str(name);
        out.push(' ');
        out.push_str(kind);
        out.push('\n');
        out.push_str(name);
        out.push(' ');
        out.push_str(&value);
        out.push('\n');
    };
    for (name, value) in &t.counters {
        sample(&metric_name(name), "counter", value.to_string());
    }
    for (name, value) in &t.gauges {
        sample(&metric_name(name), "gauge", value.to_string());
    }
    for (name, buckets) in &t.histograms {
        let name = metric_name(name);
        out.push_str("# TYPE ");
        out.push_str(&name);
        out.push_str(" histogram\n");
        let mut cumulative = 0u64;
        for (i, count) in buckets.iter().enumerate() {
            cumulative += count;
            let le = if i + 1 == HISTOGRAM_BUCKETS {
                "+Inf".to_string()
            } else {
                i.to_string()
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracing::{Level, SpanContext, Tracer};
    use crate::Recorder;

    fn sample_snapshot() -> TraceSnapshot {
        let t = Tracer::new(Level::Debug);
        let run = t.span("run");
        let stage = t.span_under(run.context(), "stage:Persistence");
        for w in 0..2u64 {
            let shard = t.span_on(stage.context(), format!("shard{w}"), w);
            shard.event(Level::Warn, "quarantine", vec![("n".into(), 3u64.into())]);
        }
        drop(stage);
        t.event(run.context(), Level::Info, "done", vec![("ok".into(), "yes".into())]);
        drop(run);
        t.snapshot()
    }

    #[test]
    fn chrome_trace_parses_and_round_trips() {
        let text = chrome_trace(&sample_snapshot());
        let parsed = ChromeTrace::parse(&text).unwrap();
        assert_eq!(parsed.to_json(), text);
        let complete = parsed.events.iter().filter(|e| e.ph == "X").count();
        let instants = parsed.events.iter().filter(|e| e.ph == "i").count();
        assert_eq!(complete, 4, "run + stage + two shards");
        assert_eq!(instants, 3, "two quarantines + done");
        let shard1 = parsed.events.iter().find(|e| e.name == "shard1").unwrap();
        assert_eq!(shard1.tid, 1);
    }

    #[test]
    fn chrome_trace_closes_open_spans_at_last_ts() {
        let t = Tracer::new(Level::Debug);
        let run = t.span("run");
        t.event(run.context(), Level::Info, "mark", vec![]);
        std::mem::forget(run); // never ends
        let text = chrome_trace(&t.snapshot());
        let parsed = ChromeTrace::parse(&text).unwrap();
        let x = parsed.events.iter().find(|e| e.ph == "X").unwrap();
        assert!(x.dur.is_some());
    }

    #[test]
    fn chrome_parse_rejects_foreign_documents() {
        assert!(ChromeTrace::parse("[]").is_err());
        assert!(ChromeTrace::parse("{\"traceEvents\": 3}").is_err());
        let missing_dur = r#"{"traceEvents": [{"name": "x", "ph": "X", "ts": 0, "pid": 1, "tid": 0}]}"#;
        assert!(ChromeTrace::parse(missing_dur).is_err());
    }

    #[test]
    fn folded_stacks_weigh_self_time() {
        let text = folded_stacks(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("run "));
        assert!(lines[1].starts_with("run;stage:Persistence "));
        assert!(lines[2].starts_with("run;stage:Persistence;shard0 "));
        assert!(lines.iter().all(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().is_ok()));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn folded_stacks_aggregate_identical_paths() {
        let t = Tracer::new(Level::Debug);
        let run = t.span("run");
        for _ in 0..3 {
            let _s = t.span_under(run.context(), "cycle");
        }
        drop(run);
        let text = folded_stacks(&t.snapshot());
        assert_eq!(text.lines().filter(|l| l.starts_with("run;cycle ")).count(), 1);
    }

    #[test]
    fn prometheus_text_exposes_the_registry() {
        let rec = Recorder::new("prom");
        rec.counter("warts.records").add(15);
        rec.gauge("pipeline.depth").set(-2);
        let h = rec.histogram("probe.stack_depth");
        h.observe(0);
        h.observe(2);
        h.observe(2);
        h.observe(99);
        let text = prometheus_text(&rec.finish());
        assert!(text.contains("# TYPE warts_records counter\nwarts_records 15\n"));
        assert!(text.contains("# TYPE pipeline_depth gauge\npipeline_depth -2\n"));
        assert!(text.contains("probe_stack_depth_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("probe_stack_depth_bucket{le=\"2\"} 3\n"));
        assert!(text.contains("probe_stack_depth_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("probe_stack_depth_count 4\n"));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = TraceSnapshot::default();
        let parsed = ChromeTrace::parse(&chrome_trace(&snap)).unwrap();
        assert!(parsed.events.is_empty());
        assert_eq!(folded_stacks(&snap), "");
        let _ = SpanContext::ROOT;
    }
}
