//! Monotonic wall-clock spans.

use std::time::{Duration, Instant};

/// A started monotonic clock.
///
/// ```
/// let sw = lpr_obs::Stopwatch::start();
/// let _work: u64 = (0..1000).sum();
/// assert!(sw.elapsed_us() < 1_000_000);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    pub fn start() -> Self {
        Stopwatch { started: Instant::now() }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Elapsed whole microseconds since start (the unit all telemetry
    /// uses; u64 microseconds cover half a million years).
    pub fn elapsed_us(&self) -> u64 {
        duration_us(self.elapsed())
    }
}

/// Clamps a [`Duration`] into u64 microseconds.
pub fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A sequence of named, non-overlapping spans — the shape of a staged
/// pipeline. Finishing one span via [`StageTimer::lap`] starts the
/// next.
///
/// ```
/// let mut timer = lpr_obs::StageTimer::start();
/// // ... stage one work ...
/// timer.lap("extract");
/// // ... stage two work ...
/// timer.lap("classify");
/// let spans = timer.into_spans();
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[0].0, "extract");
/// ```
#[derive(Clone, Debug)]
pub struct StageTimer {
    current: Instant,
    spans: Vec<(&'static str, Duration)>,
}

impl StageTimer {
    /// Starts timing the first span.
    pub fn start() -> Self {
        StageTimer { current: Instant::now(), spans: Vec::new() }
    }

    /// Ends the current span under `name` and starts the next; returns
    /// the span's duration.
    pub fn lap(&mut self, name: &'static str) -> Duration {
        let now = Instant::now();
        let d = now - self.current;
        self.current = now;
        self.spans.push((name, d));
        d
    }

    /// The finished spans, in order.
    pub fn spans(&self) -> &[(&'static str, Duration)] {
        &self.spans
    }

    /// Consumes the timer, yielding its spans.
    pub fn into_spans(self) -> Vec<(&'static str, Duration)> {
        self.spans
    }

    /// Total time across finished spans.
    pub fn total(&self) -> Duration {
        self.spans.iter().map(|(_, d)| *d).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate_in_order() {
        let mut t = StageTimer::start();
        t.lap("a");
        t.lap("b");
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].0, "a");
        assert_eq!(spans[1].0, "b");
        assert_eq!(t.total(), spans[0].1 + spans[1].1);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_us();
        let b = sw.elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn duration_us_saturates() {
        assert_eq!(duration_us(Duration::from_micros(123)), 123);
        assert_eq!(duration_us(Duration::MAX), u64::MAX);
    }
}
