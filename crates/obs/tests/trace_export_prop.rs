//! Property tests for the Chrome trace_event exporter.
//!
//! The exporter is serde-free and hand-rendered, so the invariant that
//! keeps it honest is the byte-identical round trip: any journal
//! snapshot, once exported, must parse back through the strict
//! [`ChromeTrace`] reader and re-render to exactly the same bytes.

use lpr_obs::export::{chrome_trace, ChromeTrace};
use lpr_obs::{FieldValue, Level, TraceEvent, TraceSnapshot};
use proptest::prelude::*;

/// Span/event names stress the JSON string escaper: quotes,
/// backslashes, control characters and non-ASCII all appear.
const NAME_PARTS: [&str; 13] = [
    "stage:", "shard", "run", "cycle", "q\"uote", "back\\slash", "new\nline", "tab\t", "é",
    "µs", "0", "7", "-",
];

fn arb_name() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..NAME_PARTS.len(), 1..4)
        .prop_map(|picks| picks.into_iter().map(|i| NAME_PARTS[i]).collect())
}

fn arb_field() -> impl Strategy<Value = (String, FieldValue)> {
    (arb_name(), any::<u64>(), any::<bool>()).prop_map(|(name, raw, is_str)| {
        let value = if is_str {
            FieldValue::Str(format!("v{raw:x}"))
        } else if raw % 2 == 0 {
            FieldValue::U64(raw)
        } else {
            FieldValue::I64(raw as i64)
        };
        (name, value)
    })
}

fn arb_level() -> impl Strategy<Value = Level> {
    (0usize..Level::ALL.len()).prop_map(|i| Level::ALL[i])
}

type EventSpec = (String, Level, Vec<(String, FieldValue)>);

/// One span: begin at `ts`, optionally end `dur` later. Unended spans
/// exercise the exporter's close-at-max-ts path.
#[derive(Clone, Debug)]
struct SpanSpec {
    name: String,
    ts: u64,
    dur: Option<u64>,
    tid: u64,
    events: Vec<EventSpec>,
}

prop_compose! {
    fn arb_span()(
        name in arb_name(),
        ts in 0u64..1_000_000,
        dur in proptest::option::of(0u64..500_000),
        tid in 0u64..9,
        events in proptest::collection::vec(
            (arb_name(), arb_level(), proptest::collection::vec(arb_field(), 0..3)),
            0..3,
        ),
    ) -> SpanSpec {
        SpanSpec { name, ts, dur, tid, events }
    }
}

/// Lays the specs out as a journal: begins in spec order (parent =
/// previous span, so the tree is a random-depth chain), point events
/// inside their span, ends for the spans that have one.
fn snapshot_of(specs: &[SpanSpec], dropped: u64) -> TraceSnapshot {
    let mut events = Vec::new();
    let mut ends = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let id = i as u64 + 1;
        events.push(TraceEvent::SpanBegin {
            id,
            parent: i as u64,
            name: spec.name.clone(),
            ts_us: spec.ts,
            tid: spec.tid,
        });
        for (j, (name, level, fields)) in spec.events.iter().enumerate() {
            events.push(TraceEvent::Event {
                span: id,
                level: *level,
                name: name.clone(),
                ts_us: spec.ts + j as u64,
                fields: fields.clone(),
            });
        }
        if let Some(dur) = spec.dur {
            ends.push(TraceEvent::SpanEnd { id, ts_us: spec.ts + dur });
        }
    }
    events.extend(ends);
    TraceSnapshot { events, dropped }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chrome_export_round_trips_byte_identical(
        specs in proptest::collection::vec(arb_span(), 0..12),
        dropped in 0u64..3,
    ) {
        let snapshot = snapshot_of(&specs, dropped);
        let text = chrome_trace(&snapshot);
        let parsed = ChromeTrace::parse(&text)
            .expect("exporter output must satisfy the strict parser");
        prop_assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn chrome_export_preserves_span_and_event_counts(
        specs in proptest::collection::vec(arb_span(), 0..12),
    ) {
        let snapshot = snapshot_of(&specs, 0);
        let parsed = ChromeTrace::parse(&chrome_trace(&snapshot)).expect("parse");
        let spans = parsed.events.iter().filter(|e| e.ph == "X").count();
        let instants = parsed.events.iter().filter(|e| e.ph == "i").count();
        prop_assert_eq!(spans, specs.len());
        prop_assert_eq!(instants, specs.iter().map(|s| s.events.len()).sum::<usize>());
    }
}
