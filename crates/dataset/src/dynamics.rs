//! The high-frequency label-dynamics campaign (Fig. 17, §4.5).
//!
//! The paper traces a Vodafone LSP from a Strasbourg vantage point
//! every two minutes for ten hours and watches the two LSRs' labels
//! climb (almost) periodically through Juniper's dynamic range,
//! wrapping at the top: the ingress re-optimises the LSP on a timer,
//! and each re-optimisation consumes fresh labels on every router —
//! faster on the router that carries more LSPs.
//!
//! This module replays that campaign against the simulated Vodafone:
//! between samples the AS's RSVP-TE LSPs are re-signalled
//! [`DynamicsOptions::reopt_batch`] times (the batch size models how many other tunnels
//! in the real network share the routers' label allocators).

use crate::evolution::configs_for_cycle;
use crate::world::{World, VOD};
use lpr_core::trace::Trace;
use netsim::{Internet, ProbeOptions, Prober};
use std::net::Ipv4Addr;

/// One sample of the campaign: elapsed minutes and, for every labelled
/// hop of the traced LSP, `(LSR address, label value)` in path order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LabelSample {
    /// Minutes since the campaign started.
    pub minute: u32,
    /// Labelled hops observed at this sample.
    pub hops: Vec<(Ipv4Addr, u32)>,
}

/// Campaign parameters.
#[derive(Clone, Debug)]
pub struct DynamicsOptions {
    /// Total duration in minutes (the paper's run spans ~600).
    pub minutes: u32,
    /// Sampling period in minutes (the paper probes every 2).
    pub sample_every: u32,
    /// Ingress re-optimisation period in minutes.
    pub reopt_every: u32,
    /// How many re-signalling rounds each re-optimisation performs —
    /// the stand-in for the label consumption of all the *other*
    /// tunnels sharing the routers (the real AS1273 hosts far more
    /// LSPs than our scaled-down world).
    pub reopt_batch: u32,
}

impl Default for DynamicsOptions {
    fn default() -> Self {
        DynamicsOptions { minutes: 600, sample_every: 2, reopt_every: 30, reopt_batch: 320 }
    }
}

/// Picks a `(vp, dst)` pair whose trace crosses a Vodafone TE tunnel
/// with at least two LSRs, preferring the longest.
pub fn pick_te_flow(world: &World, net: &Internet) -> Option<(Ipv4Addr, Ipv4Addr)> {
    let prober = Prober::new(net, ProbeOptions::default());
    let mut best: Option<((Ipv4Addr, Ipv4Addr), usize)> = None;
    for vp in world.all_vps() {
        for dst in world.all_destinations(1) {
            let trace = prober.trace(vp, dst);
            for tunnel in lpr_core::tunnel::extract_tunnels(&trace) {
                if !tunnel.is_complete() || tunnel.lsr_count() < 2 {
                    continue;
                }
                let asn = tunnel
                    .lsrs
                    .first()
                    .and_then(|(a, _)| world.rib().lookup(*a));
                if asn != Some(VOD) {
                    continue;
                }
                if best.is_none_or(|(_, n)| tunnel.lsr_count() > n) {
                    best = Some(((vp, dst), tunnel.lsr_count()));
                }
            }
        }
    }
    best.map(|(flow, _)| flow)
}

/// Extracts the Vodafone labelled hops of a trace.
fn vod_hops(world: &World, trace: &Trace) -> Vec<(Ipv4Addr, u32)> {
    let mut out = Vec::new();
    for tunnel in lpr_core::tunnel::extract_tunnels(trace) {
        for (addr, stack) in &tunnel.lsrs {
            if world.rib().lookup(*addr) == Some(VOD) {
                if let Some(top) = stack.top() {
                    out.push((*addr, top.label.value()));
                }
            }
        }
    }
    out
}

/// Runs the campaign: every `sample_every` minutes a Paris traceroute
/// is sent along the fixed flow; every `reopt_every` minutes Vodafone's
/// ingress re-optimises (`reopt_batch` rounds). Returns one sample per
/// probe.
pub fn run(world: &World, opts: &DynamicsOptions) -> Vec<LabelSample> {
    // Late-period Vodafone: heavy TE (Fig. 17 was measured in 2015).
    let configs = configs_for_cycle(60);
    let mut net = Internet::new(world.topo.clone(), &configs);
    let Some((vp, dst)) = pick_te_flow(world, &net) else {
        return Vec::new();
    };
    let prober_opts = ProbeOptions::default();

    let mut samples = Vec::new();
    let mut minute = 0u32;
    while minute <= opts.minutes {
        if minute > 0 && minute.is_multiple_of(opts.reopt_every) {
            for _ in 0..opts.reopt_batch {
                net.reoptimize_te(VOD);
            }
        }
        let prober = Prober::new(&net, prober_opts.clone());
        let trace = prober.trace(vp, dst);
        samples.push(LabelSample { minute, hops: vod_hops(world, &trace) });
        minute += opts.sample_every;
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::standard_world;

    #[test]
    fn labels_climb_between_reoptimisations() {
        let world = standard_world();
        let opts = DynamicsOptions { minutes: 120, sample_every: 10, reopt_every: 30, reopt_batch: 5 };
        let samples = run(&world, &opts);
        assert!(!samples.is_empty(), "no TE flow found");
        let labelled: Vec<_> = samples.iter().filter(|s| !s.hops.is_empty()).collect();
        assert!(labelled.len() >= 2, "{samples:?}");
        // Pick the first LSR address and check its label is
        // non-decreasing apart from range wraps.
        let lsr = labelled[0].hops[0].0;
        let series: Vec<u32> = labelled
            .iter()
            .filter_map(|s| s.hops.iter().find(|(a, _)| *a == lsr).map(|(_, l)| *l))
            .collect();
        assert!(series.len() >= 2);
        let mut increased = false;
        for w in series.windows(2) {
            if w[1] > w[0] {
                increased = true;
            }
        }
        assert!(increased, "labels never advanced: {series:?}");
    }

    #[test]
    fn samples_between_reopts_are_stable() {
        let world = standard_world();
        let opts = DynamicsOptions { minutes: 20, sample_every: 2, reopt_every: 100, reopt_batch: 1 };
        let samples = run(&world, &opts);
        assert!(!samples.is_empty());
        for w in samples.windows(2) {
            assert_eq!(w[0].hops, w[1].hops, "no reopt happened: labels must hold");
        }
    }
}
