//! The April 2012 daily campaign: Level3's incremental MPLS roll-out
//! (Fig. 16 of the paper).
//!
//! The paper downloads every daily Archipelago dump for the month
//! preceding cycle 29 and observes (i) MPLS appearing around April 15
//! and ramping over half a month — an incremental deployment, not a
//! flag day — and (ii) the number of *LSPs* barely affected by
//! filtering while the number of *IOTPs* is, because most LSPs are
//! shared by several IOTPs. The daily view also shows spikes/dips in
//! IOTP counts after April 25 caused by varying monitor availability.

use crate::campaign::CampaignOptions;
use crate::evolution::configs_for_cycle;
use crate::world::{World, L3};
use lpr_core::filter::FilterConfig;
use lpr_core::pipeline::Pipeline;
use netsim::internet::splitmix64;
use netsim::{Internet, MplsConfig, ProbeOptions, Prober};

/// Days rendered (the paper uses the 29 daily dumps of April 2012).
pub const DAYS: usize = 29;

/// Level3's deployed-pair fraction on a given April day (1-based):
/// zero before the 15th, then a linear ramp to full deployment at
/// month's end.
pub fn l3_ramp(day: usize) -> f64 {
    if day < 15 {
        0.0
    } else {
        ((day - 14) as f64 / 15.0).min(1.0)
    }
}

/// Monitor availability per April day: full until the 25th, then
/// fluctuating (the paper attributes the late-month spikes and drops
/// to varying vantage-point counts).
pub fn daily_vp_fraction(day: usize) -> f64 {
    if day <= 25 {
        1.0
    } else {
        let h = splitmix64(day as u64 ^ 0x0412);
        0.4 + 0.6 * (h % 1000) as f64 / 1000.0
    }
}

/// One day's counts for Fig. 16.
#[derive(Clone, Copy, Debug, Default)]
pub struct DayCounts {
    /// Level3 IOTPs before the TransitDiversity/Persistence stages
    /// (all IOTPs assembled from the day's complete intra-AS transit
    /// LSPs).
    pub iotps_before: usize,
    /// Level3 IOTPs after filtering.
    pub iotps_after: usize,
    /// Level3 LSP observations before filtering.
    pub lsps_before: usize,
    /// Level3 LSP observations after filtering.
    pub lsps_after: usize,
}

/// Renders one April day and counts Level3 tunnels before/after
/// filtering. The Persistence filter is not applied (the paper's
/// Fig. 16 does not use it: daily dumps are single snapshots).
pub fn april_day(world: &World, day: usize, opts: &CampaignOptions) -> DayCounts {
    // Start from the cycle-28 configuration and override Level3 with
    // the daily ramp.
    let mut configs = configs_for_cycle(28);
    configs.insert(
        L3,
        MplsConfig {
            deployed_pair_fraction: l3_ramp(day),
            enabled: l3_ramp(day) > 0.0,
            ecmp_fec_fraction: 0.85,
            ..MplsConfig::ldp_default()
        },
    );
    let net = Internet::new(world.topo.clone(), &configs);

    let frac = daily_vp_fraction(day);
    let all_vps = world.all_vps();
    let vps: Vec<_> = all_vps
        .iter()
        .enumerate()
        .filter(|(i, _)| ((*i as f64 + 0.5) / all_vps.len() as f64) < frac)
        .map(|(_, vp)| *vp)
        .collect();
    let dsts = world.all_destinations(opts.hosts_per_prefix);

    let prober = Prober::new(
        &net,
        ProbeOptions {
            seed: opts.seed,
            snapshot_salt: 0x0412_0000 | day as u64,
            ..ProbeOptions::default()
        },
    );
    let traces = prober.campaign(&vps, &dsts);

    // "Before filtering": every complete intra-AS transit LSP grouped
    // into IOTPs (no TransitDiversity, no Persistence).
    let before = Pipeline::new(FilterConfig { persistence_window: 0, ..Default::default() });
    let all_lsps = {
        let tunnels: Vec<_> = traces.iter().flat_map(lpr_core::tunnel::extract_tunnels).collect();
        lpr_core::filter::attribute_and_filter(&tunnels, world.rib()).lsps
    };
    let l3_lsps: Vec<_> = all_lsps.iter().filter(|l| l.asn == L3).collect();
    let iotps_before = {
        let keys: std::collections::BTreeSet<_> = l3_lsps.iter().map(|l| l.iotp_key()).collect();
        keys.len()
    };
    let lsps_before = l3_lsps.len();

    // "After filtering": the standard pipeline minus Persistence.
    let out = before.run(&traces, world.rib(), &[]);
    let iotps_after = out.iotps.iter().filter(|(i, _)| i.key.asn == L3).count();
    let lsps_after: usize = out
        .iotps
        .iter()
        .filter(|(i, _)| i.key.asn == L3)
        .map(|(i, _)| i.branches.iter().map(|b| b.observations).sum::<usize>())
        .sum();

    DayCounts { iotps_before, iotps_after, lsps_before, lsps_after }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::standard_world;

    #[test]
    fn ramp_shape() {
        assert_eq!(l3_ramp(1), 0.0);
        assert_eq!(l3_ramp(14), 0.0);
        assert!(l3_ramp(15) > 0.0);
        assert!(l3_ramp(20) < l3_ramp(25));
        assert_eq!(l3_ramp(29), 1.0);
    }

    #[test]
    fn no_mpls_before_the_15th() {
        let world = standard_world();
        let counts = april_day(&world, 5, &CampaignOptions::default());
        assert_eq!(counts.lsps_before, 0);
        assert_eq!(counts.iotps_after, 0);
    }

    #[test]
    fn deployment_grows_through_the_month() {
        let world = standard_world();
        let opts = CampaignOptions::default();
        let mid = april_day(&world, 21, &opts);
        let late = april_day(&world, 25, &opts);
        assert!(mid.lsps_before > 0, "{mid:?}");
        assert!(late.iotps_before > mid.iotps_before, "{mid:?} vs {late:?}");
        // LSP counts barely affected by filtering, IOTP counts are.
        assert!(late.lsps_after > 0);
    }
}
