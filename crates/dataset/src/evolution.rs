//! Per-cycle MPLS configuration schedules: the §4.4 stories.
//!
//! One cycle ≙ one month; cycle 1 is January 2010, cycle 60 December
//! 2014 (so cycle 29 is May 2012, right after the April 2012 Level3
//! roll-out the paper dissects in Fig. 16). Schedules are piecewise
//! linear in the cycle number and tuned so that the *shapes* of
//! Figs. 10–15 emerge from the classification; absolute counts are
//! scaled down with the world.

use crate::world::{ATT, GIN, L3, NTT, TATA, VOD};
use lpr_core::lsp::Asn;
use netsim::{MplsConfig, TePathMode};
use std::collections::BTreeMap;

/// Number of monthly cycles in the longitudinal dataset.
pub const CYCLES: usize = 60;

/// Linear interpolation of a schedule between two cycle anchor points,
/// clamped outside.
fn ramp(cycle: usize, c0: usize, v0: f64, c1: usize, v1: f64) -> f64 {
    if cycle <= c0 {
        return v0;
    }
    if cycle >= c1 {
        return v1;
    }
    v0 + (v1 - v0) * (cycle - c0) as f64 / (c1 - c0) as f64
}

/// Per-hop anonymous-router probability used by every transit AS.
pub const TRANSIT_ANON: f64 = 0.02;

fn base(anon: f64) -> MplsConfig {
    MplsConfig { anonymous_rate: anon, ..MplsConfig::ldp_default() }
}

/// Vodafone (AS1273, Fig. 10): every deployed pair runs RSVP-TE (which
/// is why the Persistence filter wipes — and reinjects — the whole AS
/// when its ingress routers re-optimise, §4.5). Early on most TE pairs
/// carry a single LSP (classified Mono-LSP: TE without diversity); the
/// multi-LSP share grows to dominance. The chain topology keeps
/// Mono-FEC invisible, as in Fig. 10.
fn vodafone(cycle: usize) -> MplsConfig {
    MplsConfig {
        deployed_pair_fraction: ramp(cycle, 1, 0.22, 60, 0.95),
        te_pair_fraction: 1.0,
        te_lsps_per_pair: 3,
        te_single_lsp_fraction: ramp(cycle, 1, 0.75, 60, 0.15),
        te_path_mode: TePathMode::SamePath,
        ..base(TRANSIT_ANON)
    }
}

/// AT&T (AS7018, Fig. 11): overall MPLS usage relatively declines
/// (deployment drop around cycle 22) while Multi-FEC displaces
/// Mono-FEC.
fn att(cycle: usize) -> MplsConfig {
    let deployed =
        if cycle < 22 { 0.95 } else { ramp(cycle, 22, 0.60, 60, 0.50) };
    MplsConfig {
        deployed_pair_fraction: deployed,
        te_pair_fraction: ramp(cycle, 18, 0.05, 60, 0.60),
        te_lsps_per_pair: 2,
        te_path_mode: TePathMode::SamePath,
        ecmp_fec_fraction: ramp(cycle, 18, 0.95, 60, 0.40),
        ..base(TRANSIT_ANON)
    }
}

/// Tata (AS6453, Figs. 12–13): pure LDP; strong but declining ECMP
/// Mono-FEC usage, mostly over parallel links.
fn tata(cycle: usize) -> MplsConfig {
    MplsConfig {
        deployed_pair_fraction: ramp(cycle, 1, 0.95, 60, 0.80),
        ecmp_fec_fraction: ramp(cycle, 1, 0.92, 60, 0.62),
        ..base(TRANSIT_ANON)
    }
}

/// NTT (AS2914, Fig. 14): Mono-LSP dominant; deployment triples the
/// IOTP count over the period; a slight Mono-FEC share appears late.
fn ntt(cycle: usize) -> MplsConfig {
    MplsConfig {
        deployed_pair_fraction: ramp(cycle, 1, 0.18, 60, 0.95),
        ecmp_fec_fraction: ramp(cycle, 1, 0.05, 60, 0.40),
        ..base(TRANSIT_ANON)
    }
}

/// Level3 (AS3356, Figs. 15–16): no MPLS before cycle 29 (the April
/// 2012 roll-out), stable LDP/ECMP usage afterwards, sharp deployment
/// decline from cycle 55.
fn level3(cycle: usize) -> MplsConfig {
    if cycle < 29 {
        return MplsConfig { enabled: false, anonymous_rate: TRANSIT_ANON, ..MplsConfig::disabled() };
    }
    let deployed = if cycle < 55 { 1.0 } else { ramp(cycle, 55, 0.45, 60, 0.06) };
    MplsConfig {
        deployed_pair_fraction: deployed,
        ecmp_fec_fraction: 0.85,
        ..base(TRANSIT_ANON)
    }
}

/// Background tier-1: a constant mixed deployment, including a little
/// BGP/MPLS-VPN traffic (whose two-entry stacks the IntraAS filter
/// removes — the reason the paper "did not observe many tunnels
/// through VPNs").
fn gin(_cycle: usize) -> MplsConfig {
    MplsConfig {
        deployed_pair_fraction: 0.7,
        te_pair_fraction: 0.25,
        te_lsps_per_pair: 3,
        // Diverse TE paths: the one AS whose LSPs spread over distinct
        // IP routes, feeding the width distribution's tail (Fig. 8).
        te_path_mode: TePathMode::Diverse,
        ecmp_fec_fraction: 0.5,
        vpn_pair_fraction: 0.02,
        ..base(TRANSIT_ANON)
    }
}

/// The per-AS configurations in force during a cycle (1-based).
pub fn configs_for_cycle(cycle: usize) -> BTreeMap<Asn, MplsConfig> {
    let mut m = BTreeMap::new();
    m.insert(VOD, vodafone(cycle));
    m.insert(ATT, att(cycle));
    m.insert(TATA, tata(cycle));
    m.insert(NTT, ntt(cycle));
    m.insert(L3, level3(cycle));
    m.insert(GIN, gin(cycle));
    m
}

/// ASes whose RSVP-TE LSPs are re-optimised between same-month
/// snapshots (tagged *dynamic* by the Persistence stage, §4.5).
pub fn dynamic_ases() -> Vec<Asn> {
    vec![VOD]
}

/// Fraction of the destination list probed during a cycle: the routed
/// address space grows over the five years (Fig. 5b's +21 % non-MPLS
/// addresses).
pub fn dest_growth(cycle: usize) -> f64 {
    ramp(cycle, 1, 0.78, 60, 1.0)
}

/// Fraction of monitors available during a cycle: the Archipelago
/// outages at cycles 23 and 58 (the two dips of Fig. 5b).
pub fn vp_availability(cycle: usize) -> f64 {
    match cycle {
        23 | 58 => 0.5,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_clamps_and_interpolates() {
        assert_eq!(ramp(0, 10, 1.0, 20, 2.0), 1.0);
        assert_eq!(ramp(30, 10, 1.0, 20, 2.0), 2.0);
        assert!((ramp(15, 10, 1.0, 20, 2.0) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn level3_timeline() {
        assert!(!level3(28).enabled);
        assert!(level3(29).enabled);
        assert!(level3(40).deployed_pair_fraction > 0.9);
        assert!(level3(60).deployed_pair_fraction < 0.1);
    }

    #[test]
    fn att_drop_at_22() {
        assert!(att(21).deployed_pair_fraction > att(22).deployed_pair_fraction + 0.2);
    }

    #[test]
    fn vodafone_multi_lsp_te_grows() {
        // All pairs are TE; the single-LSP (Mono-LSP) share shrinks.
        assert_eq!(vodafone(1).te_pair_fraction, 1.0);
        assert!(vodafone(1).te_single_lsp_fraction > vodafone(60).te_single_lsp_fraction + 0.4);
    }

    #[test]
    fn schedules_stay_in_unit_interval() {
        for cycle in 1..=CYCLES {
            for (asn, cfg) in configs_for_cycle(cycle) {
                for v in [
                    cfg.deployed_pair_fraction,
                    cfg.te_pair_fraction,
                    cfg.ecmp_fec_fraction,
                    cfg.anonymous_rate,
                ] {
                    assert!((0.0..=1.0).contains(&v), "{asn} cycle {cycle}: {v}");
                }
            }
        }
    }

    #[test]
    fn outages_only_at_23_and_58() {
        for cycle in 1..=CYCLES {
            let avail = vp_availability(cycle);
            if cycle == 23 || cycle == 58 {
                assert!(avail < 1.0);
            } else {
                assert_eq!(avail, 1.0);
            }
        }
    }
}
