//! Exporting rendered cycles as warts files + RIB snapshot.
//!
//! This is the shape in which the synthetic dataset can be shared or
//! fed to external tooling: one warts file per snapshot (list + cycle
//! records + traces, exactly like an Ark per-monitor dump, except all
//! monitors share one file) and the Routeviews-style RIB text the
//! IP2AS step needs. The `lpr` CLI consumes these files directly:
//!
//! ```text
//! lpr classify --rib rib.txt cycle030_snap0.warts \
//!     --next cycle030_snap1.warts --next cycle030_snap2.warts
//! ```

use crate::campaign::CycleData;
use crate::world::World;
use std::io;
use std::path::{Path, PathBuf};

/// The files one exported cycle produced.
#[derive(Clone, Debug)]
pub struct ExportedCycle {
    /// One warts file per snapshot, primary first.
    pub snapshots: Vec<PathBuf>,
    /// The RIB snapshot path.
    pub rib: PathBuf,
}

/// Serialises every snapshot of a rendered cycle into `dir` (created
/// if missing) and writes the world's RIB next to them.
pub fn export_cycle(world: &World, data: &CycleData, dir: &Path) -> io::Result<ExportedCycle> {
    std::fs::create_dir_all(dir)?;

    let mut snapshot_paths = Vec::with_capacity(data.snapshots.len());
    for (snap, traces) in data.snapshots.iter().enumerate() {
        let mut writer = warts::WartsWriter::new();
        let list = writer.list(1, &format!("cycle{:03}", data.cycle));
        // Synthetic timestamps: months since "cycle 0", days per snap.
        let start = (data.cycle as u32) * 2_592_000 + (snap as u32) * 86_400;
        let cycle_id = writer.cycle_start(list, data.cycle as u32, start);
        for t in traces {
            writer
                .trace(&warts::trace_to_record(t, list, cycle_id))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        }
        writer.cycle_stop(cycle_id, start + 86_000);
        let path = dir.join(format!("cycle{:03}_snap{snap}.warts", data.cycle));
        std::fs::write(&path, writer.into_bytes())?;
        snapshot_paths.push(path);
    }

    let rib_path = dir.join("rib.txt");
    std::fs::write(&rib_path, ip2as::to_rib_string(world.rib()))?;
    Ok(ExportedCycle { snapshots: snapshot_paths, rib: rib_path })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{generate_cycle, CampaignOptions};
    use crate::world::standard_world;
    use lpr_core::prelude::*;

    #[test]
    fn exported_cycle_reimports_identically() {
        let world = standard_world();
        let opts = CampaignOptions::default();
        let data = generate_cycle(&world, 35, &opts);
        let dir = std::env::temp_dir().join(format!("lpr-export-{}", std::process::id()));
        let exported = export_cycle(&world, &data, &dir).unwrap();
        assert_eq!(exported.snapshots.len(), 3);

        // Re-import the primary snapshot and compare with the original.
        let records = warts::read_path(&exported.snapshots[0]).unwrap();
        let traces: Vec<Trace> = records
            .into_iter()
            .filter_map(|r| match r {
                warts::Record::Trace(t) => warts::trace_to_core(&t).unwrap(),
                _ => None,
            })
            .collect();
        assert_eq!(traces, data.snapshots[0]);

        // The exported RIB reproduces the world's mapping.
        let rib_text = std::fs::read_to_string(&exported.rib).unwrap();
        let rib = ip2as::parse_rib(&rib_text).unwrap();
        for t in &traces {
            for h in t.responsive_hops() {
                assert_eq!(
                    rib.lookup(h.addr.unwrap()),
                    world.rib().lookup(h.addr.unwrap())
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
