//! Rendering and analysing one monthly cycle.
//!
//! A cycle consists of `1 + j` same-month snapshots: the primary one
//! that gets classified and the `j` follow-ups the Persistence filter
//! matches against (§3.1, §4.2; the paper settles on `j = 2`). Within
//! a month the control plane is stable — except for *dynamic* ASes,
//! whose TE LSPs are re-optimised between snapshots and therefore never
//! persist (§4.5).

use crate::evolution::{configs_for_cycle, dest_growth, dynamic_ases, vp_availability};
use crate::world::World;
use lpr_core::filter::FilterConfig;
use lpr_core::pipeline::{Pipeline, PipelineOutput};
use lpr_core::report::CycleReport;
use lpr_core::trace::Trace;
use lpr_core::reveal::{apply_revelations, RevealedTunnel};
use netsim::internet::splitmix64;
use netsim::{
    Internet, ProbeBudget, ProbeOptions, Prober, ProbingStrategy, RevelationOptions,
    VisibilityMix,
};
use std::net::Ipv4Addr;

/// Campaign-wide options.
#[derive(Clone, Debug)]
pub struct CampaignOptions {
    /// Snapshots rendered per cycle (primary + persistence window).
    pub snapshots: usize,
    /// Campaign seed.
    pub seed: u64,
    /// Fraction of `(vp, dst)` flows remapped between snapshots
    /// (routing noise feeding the Persistence filter).
    pub flow_churn_rate: f64,
    /// Fraction of intra-AS links whose IGP cost is perturbed in each
    /// follow-up snapshot (real re-weighting events: shortest paths —
    /// and the LSPs riding them — genuinely move).
    pub igp_perturbation: f64,
    /// Hosts probed per destination /24.
    pub hosts_per_prefix: usize,
    /// Worker threads for per-destination probing within a snapshot
    /// (`0` = available parallelism). Output is byte-identical for any
    /// value (deterministic shard-order merge). Defaults to 1: cycles
    /// are usually already sharded across threads by
    /// [`run_cycles`](crate::run_cycles), and nesting pools oversubscribes.
    pub threads: usize,
    /// Probing strategy: exhaustive every-pair walks (the default, the
    /// golden campaign shape) or the MDA/MDA-Lite stopping rules that
    /// prune each `(vp, /24)` host group once its path diversity is
    /// statistically settled.
    pub probing: ProbingStrategy,
    /// Tunnel-visibility override applied to every MPLS-enabled AS of
    /// the cycle's configuration. `None` (the default) keeps each AS's
    /// own visibility — the golden campaign shape.
    pub visibility: Option<VisibilityMix>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            snapshots: 3,
            seed: 0xA5CADA,
            flow_churn_rate: 0.08,
            igp_perturbation: 0.03,
            hosts_per_prefix: 1,
            threads: 1,
            probing: ProbingStrategy::Exhaustive,
            visibility: None,
        }
    }
}

/// One rendered cycle.
pub struct CycleData {
    /// 1-based cycle number.
    pub cycle: usize,
    /// The snapshots, primary first.
    pub snapshots: Vec<Vec<Trace>>,
    /// Probe-budget tallies summed over the snapshots.
    pub budget: ProbeBudget,
}

/// The probing list for a cycle: destinations filtered by the growth
/// schedule (stable subsets: a destination present at growth g stays
/// present for any g' ≥ g), monitors filtered by availability.
pub fn probing_list(world: &World, cycle: usize, opts: &CampaignOptions) -> (Vec<Ipv4Addr>, Vec<Ipv4Addr>) {
    let growth = dest_growth(cycle);
    let dsts: Vec<Ipv4Addr> = world
        .all_destinations(opts.hosts_per_prefix)
        .into_iter()
        .filter(|d| {
            let h = splitmix64((u32::from(*d) >> 8) as u64 ^ 0xD0_57);
            (h as f64 / u64::MAX as f64) < growth
        })
        .collect();
    let avail = vp_availability(cycle);
    let all_vps = world.all_vps();
    let fleet = all_vps.len() as f64;
    let vps: Vec<Ipv4Addr> = all_vps
        .into_iter()
        .enumerate()
        .filter(|(i, _)| ((*i as f64 + 0.5) / fleet) < avail + 1e-9)
        .map(|(_, vp)| vp)
        .collect();
    (vps, dsts)
}

/// Renders all snapshots of one cycle.
///
/// Follow-up snapshots see two kinds of routing noise: a fraction of
/// Paris flows is re-hashed (`flow_churn_rate`) and a fraction of
/// intra-AS IGP costs is perturbed (`igp_perturbation`), so some LSPs
/// of the primary snapshot genuinely vanish — the churn the
/// Persistence filter removes. Dynamic ASes additionally re-signal
/// their TE LSPs (fresh labels) between snapshots (§4.5).
pub fn generate_cycle(world: &World, cycle: usize, opts: &CampaignOptions) -> CycleData {
    let mut budget = ProbeBudget::default();
    let snapshots = (0..opts.snapshots)
        .map(|snap| {
            let (traces, b) = generate_snapshot_with_budget(world, cycle, snap, opts);
            budget.merge(&b);
            traces
        })
        .collect();
    CycleData { cycle, snapshots, budget }
}

/// Renders **one** snapshot of a cycle — the bounded-memory unit. At
/// paper scale the corpus writer consumes snapshots one at a time
/// (write or spill, then drop) instead of holding the whole cycle;
/// collecting `0..opts.snapshots` reproduces [`generate_cycle`]
/// exactly.
pub fn generate_snapshot(
    world: &World,
    cycle: usize,
    snap: usize,
    opts: &CampaignOptions,
) -> Vec<Trace> {
    generate_snapshot_with_budget(world, cycle, snap, opts).0
}

/// [`generate_snapshot`] plus the snapshot's probe-budget tally — what
/// the campaign spent and what the stopping rule pruned.
pub fn generate_snapshot_with_budget(
    world: &World,
    cycle: usize,
    snap: usize,
    opts: &CampaignOptions,
) -> (Vec<Trace>, ProbeBudget) {
    let net = snapshot_net(world, cycle, snap, opts);
    let (vps, dsts) = probing_list(world, cycle, opts);
    let prober = Prober::new(&net, snapshot_probe_opts(cycle, snap, opts));
    prober.campaign_with_budget(&vps, &dsts, opts.threads)
}

/// The simulated Internet a snapshot is probed against, with the
/// cycle's configs, the snapshot's IGP perturbation and TE
/// re-optimisations, and the campaign's visibility override applied.
fn snapshot_net(world: &World, cycle: usize, snap: usize, opts: &CampaignOptions) -> Internet {
    let mut configs = configs_for_cycle(cycle);
    if let Some(mix) = opts.visibility {
        for cfg in configs.values_mut() {
            if cfg.enabled {
                cfg.visibility = mix;
            }
        }
    }
    let topo = if snap == 0 || opts.igp_perturbation <= 0.0 {
        world.topo.clone()
    } else {
        world.topo.with_perturbed_costs(
            opts.seed ^ (cycle as u64) << 16 ^ snap as u64,
            opts.igp_perturbation,
        )
    };
    let mut net = Internet::new(topo, &configs);
    // Dynamic ASes re-signal their TE LSPs between snapshots; the
    // k-th snapshot has seen k re-optimisations.
    for asn in dynamic_ases() {
        for _ in 0..snap {
            net.reoptimize_te(asn);
        }
    }
    net
}

fn snapshot_probe_opts(cycle: usize, snap: usize, opts: &CampaignOptions) -> ProbeOptions {
    ProbeOptions {
        seed: opts.seed,
        snapshot_salt: (cycle as u64) << 8 | snap as u64,
        flow_churn_rate: if snap == 0 { 0.0 } else { opts.flow_churn_rate },
        probing: opts.probing,
        ..ProbeOptions::default()
    }
}

/// [`generate_cycle`] with the revelation phase run over the primary
/// snapshot: hidden-tunnel triggers detected in its traces are
/// re-probed with DPR walks against the primary snapshot's network.
/// Follow-up snapshots render exactly as in [`generate_cycle`], and the
/// revelation probes are folded into the cycle's budget.
pub fn generate_cycle_with_revelation(
    world: &World,
    cycle: usize,
    opts: &CampaignOptions,
    reveal_opts: &RevelationOptions,
) -> (CycleData, Vec<RevealedTunnel>) {
    let mut budget = ProbeBudget::default();
    let mut evidence = Vec::new();
    let snapshots = (0..opts.snapshots)
        .map(|snap| {
            if snap == 0 {
                let net = snapshot_net(world, cycle, snap, opts);
                let (vps, dsts) = probing_list(world, cycle, opts);
                let prober = Prober::new(&net, snapshot_probe_opts(cycle, snap, opts));
                let (traces, b, ev) =
                    prober.campaign_with_revelation(&vps, &dsts, opts.threads, reveal_opts);
                budget.merge(&b);
                evidence = ev;
                traces
            } else {
                let (traces, b) = generate_snapshot_with_budget(world, cycle, snap, opts);
                budget.merge(&b);
                traces
            }
        })
        .collect();
    (CycleData { cycle, snapshots, budget }, evidence)
}

/// A cycle's LPR results.
pub struct CycleAnalysis {
    /// The pipeline output over the primary snapshot.
    pub output: PipelineOutput,
    /// The per-AS / global aggregation (Figs. 5, 10–15, Table 2).
    pub report: CycleReport,
}

/// Runs LPR over a rendered cycle with persistence window `j`
/// (`j + 1 ≤ snapshots`; extra snapshots are ignored).
pub fn analyze_cycle(world: &World, data: &CycleData, j: usize) -> CycleAnalysis {
    let future: Vec<_> = data.snapshots[1..]
        .iter()
        .take(j)
        .map(|traces| Pipeline::snapshot_keys(traces))
        .collect();
    let pipeline = Pipeline::new(FilterConfig { persistence_window: j, ..Default::default() });
    let output = pipeline.run(&data.snapshots[0], world.rib(), &future);
    let report = CycleReport::build(&data.snapshots[0], &output, world.rib());
    CycleAnalysis { output, report }
}

/// [`analyze_cycle`] with the revelation classifier stage applied: the
/// revealed evidence upgrades Unclassified (and diversity-hiding
/// Mono-LSP) IOTPs before the per-AS report is built, so the report
/// reflects the revealed diversity.
pub fn analyze_cycle_revealed(
    world: &World,
    data: &CycleData,
    j: usize,
    evidence: &[RevealedTunnel],
) -> CycleAnalysis {
    let future: Vec<_> = data.snapshots[1..]
        .iter()
        .take(j)
        .map(|traces| Pipeline::snapshot_keys(traces))
        .collect();
    let pipeline = Pipeline::new(FilterConfig { persistence_window: j, ..Default::default() });
    let mut output = pipeline.run(&data.snapshots[0], world.rib(), &future);
    apply_revelations(&mut output, evidence, None);
    let report = CycleReport::build(&data.snapshots[0], &output, world.rib());
    CycleAnalysis { output, report }
}

/// Convenience: renders and analyses a range of cycles in parallel on
/// the workspace shard scheduler (`lpr-par`), returning analyses in
/// cycle order.
pub fn run_cycles(
    world: &World,
    cycles: std::ops::RangeInclusive<usize>,
    opts: &CampaignOptions,
    j: usize,
) -> Vec<(usize, CycleAnalysis)> {
    let cycles: Vec<usize> = cycles.collect();
    // One cycle per shard: each render+analyse is seconds of work, so
    // the chunked queue load-balances whole cycles across workers.
    let shard_opts = lpr_par::ShardOptions {
        threads: 0,
        shards_per_thread: 1,
        min_shard_len: 1,
    };
    let run = lpr_par::map_shards(&cycles, shard_opts, |_, shard| {
        shard
            .iter()
            .map(|&cycle| {
                let data = generate_cycle(world, cycle, opts);
                (cycle, analyze_cycle(world, &data, j))
            })
            .collect::<Vec<_>>()
    });
    run.outputs.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{standard_world, L3, NTT, TATA, VOD};
    use lpr_core::filter::FilterStage;

    #[test]
    fn cycle_generation_is_deterministic() {
        let world = standard_world();
        let opts = CampaignOptions { snapshots: 1, ..Default::default() };
        let a = generate_cycle(&world, 30, &opts);
        let b = generate_cycle(&world, 30, &opts);
        assert_eq!(a.snapshots[0], b.snapshots[0]);
    }

    #[test]
    fn analysis_produces_featured_iotps() {
        let world = standard_world();
        let opts = CampaignOptions::default();
        let data = generate_cycle(&world, 40, &opts);
        let analysis = analyze_cycle(&world, &data, 2);
        let out = &analysis.output;
        assert!(out.report.input > 0);
        for asn in [VOD, TATA, NTT, L3] {
            assert!(
                out.class_counts_for(asn).total() > 0,
                "{asn} has no classified IOTPs at cycle 40"
            );
        }
        // Vodafone is dynamic: its TE labels change between snapshots.
        assert!(out.dynamic_ases.contains(&VOD), "{:?}", out.dynamic_ases);
    }

    #[test]
    fn level3_dark_before_29() {
        let world = standard_world();
        let opts = CampaignOptions { snapshots: 3, ..Default::default() };
        let data = generate_cycle(&world, 20, &opts);
        let analysis = analyze_cycle(&world, &data, 2);
        assert_eq!(analysis.output.class_counts_for(L3).total(), 0);
        // But Level3 addresses are still seen as non-MPLS.
        let stats = &analysis.report.per_as[&L3];
        assert_eq!(stats.mpls_ips, 0);
        assert!(stats.non_mpls_ips > 0);
    }

    #[test]
    fn filters_remove_something_every_stage() {
        let world = standard_world();
        let opts = CampaignOptions::default();
        let data = generate_cycle(&world, 45, &opts);
        let analysis = analyze_cycle(&world, &data, 2);
        let r = &analysis.output.report;
        let after = |s| r.remaining[&s];
        assert!(after(FilterStage::IncompleteLsp) < r.input, "incomplete");
        assert!(after(FilterStage::IntraAs) < after(FilterStage::IncompleteLsp), "intraas");
        assert!(after(FilterStage::TargetAs) < after(FilterStage::IntraAs), "targetas");
        assert!(
            after(FilterStage::TransitDiversity) < after(FilterStage::TargetAs),
            "transitdiversity"
        );
        assert!(
            after(FilterStage::Persistence) < after(FilterStage::TransitDiversity),
            "persistence"
        );
    }

    #[test]
    fn tata_is_mono_fec_parallel_heavy() {
        let world = standard_world();
        let opts = CampaignOptions::default();
        let data = generate_cycle(&world, 10, &opts);
        let analysis = analyze_cycle(&world, &data, 2);
        let c = analysis.output.class_counts_for(TATA);
        assert!(c.total() > 0);
        assert!(c.mono_fec() > 0, "{c:?}");
        assert!(c.mono_fec_parallel >= c.mono_fec_disjoint, "{c:?}");
        assert_eq!(c.multi_fec, 0, "Tata runs no TE: {c:?}");
    }

    #[test]
    fn ntt_is_mono_lsp_heavy() {
        let world = standard_world();
        let opts = CampaignOptions::default();
        let data = generate_cycle(&world, 30, &opts);
        let analysis = analyze_cycle(&world, &data, 2);
        let c = analysis.output.class_counts_for(NTT);
        assert!(c.total() > 0);
        assert!(c.mono_lsp * 2 > c.total(), "Mono-LSP should dominate NTT: {c:?}");
    }
}
