//! # ark-dataset — the longitudinal campaign generator
//!
//! The paper evaluates LPR on 60 monthly CAIDA Archipelago cycles
//! (January 2010 – December 2014). This crate generates the simulated
//! equivalent: a stable multi-AS world ([`world`]) whose five featured
//! transit ISPs follow the per-cycle MPLS evolutions the paper reports
//! ([`evolution`]), probed by a fixed monitor fleet with the
//! measurement artefacts the filtering stage expects (anonymous
//! routers, routing churn between same-month snapshots, monitor
//! outages at cycles 23 and 58, growing destination lists).
//!
//! [`campaign`] renders one cycle (primary snapshot plus the `j`
//! follow-ups the Persistence filter needs) and runs LPR over it;
//! [`april2012`] renders the daily view of Level3's incremental
//! deployment (Fig. 16); [`dynamics`] renders the high-frequency
//! label-re-optimisation campaign (Fig. 17).
//!
//! Everything is seed-stable: addresses, labels and paths are identical
//! across rebuilds of the same `(cycle, snapshot)`, exactly like a real
//! network whose configuration did not change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod april2012;
pub mod campaign;
pub mod dynamics;
pub mod evolution;
pub mod export;
pub mod world;

pub use campaign::{
    analyze_cycle, analyze_cycle_revealed, generate_cycle, generate_cycle_with_revelation,
    generate_snapshot, generate_snapshot_with_budget, CampaignOptions, CycleAnalysis, CycleData,
};
pub use export::{export_cycle, ExportedCycle};
pub use evolution::{configs_for_cycle, dest_growth, vp_availability, CYCLES};
pub use world::{scale_hosts_per_prefix, scaled_world, standard_world, World, ATT, GIN, L3, NTT, TATA, VOD};
