//! The standard simulated world: six transit ISPs (the paper's five
//! featured ASes plus one background tier-1) and a fringe of stub ASes
//! hosting monitors and destinations.
//!
//! The *shape* of each featured AS encodes the diversity its real
//! counterpart exhibits in §4.4:
//!
//! | AS | name | shape | expected classes |
//! |----|------|-------|------------------|
//! | 1273 | Vodafone | plain chain, Juniper | Mono-LSP → Multi-FEC as TE ramps (Fig. 10), *dynamic* labels |
//! | 7018 | AT&T | diamonds, Cisco | Mono-FEC displaced by Multi-FEC (Fig. 11) |
//! | 6453 | Tata | parallel bundles ≫ diamonds, Cisco | Mono-FEC, 60–70 % parallel links (Figs. 12–13) |
//! | 2914 | NTT | near-chain, Cisco | Mono-LSP dominant (Fig. 14) |
//! | 3356 | Level3 | diamonds + bundles, Juniper | appears at cycle 29, Mono-FEC (Figs. 15–16) |
//! | 3549 | background tier-1 | mixed | stable mixed traffic |
//!
//! Each transit anchors: two monitor stubs (distinct ingress borders),
//! two *groups* of two destination stubs sharing one egress border
//! (giving IOTPs their ≥2-destination-AS diversity), and one lonely
//! destination stub on its own border (whose IOTPs the
//! TransitDiversity filter must remove). Transits also originate a few
//! prefixes of their own (fodder for the TargetAS filter).

use ip2as::{Ip2AsTrie, Prefix};
use lpr_core::lsp::Asn;
use netsim::internet::splitmix64;
use netsim::{AsSpec, Peering, Topology, TopologyParams, Vendor};
use std::net::Ipv4Addr;

/// Vodafone (Fig. 10).
pub const VOD: Asn = Asn(1273);
/// AT&T (Fig. 11).
pub const ATT: Asn = Asn(7018);
/// Tata Communications (Figs. 12–13).
pub const TATA: Asn = Asn(6453);
/// NTT (Fig. 14).
pub const NTT: Asn = Asn(2914);
/// Level3 (Figs. 15–16).
pub const L3: Asn = Asn(3356);
/// Background tier-1 (not featured in the paper's figures).
pub const GIN: Asn = Asn(3549);

/// Fraction of transit interface addresses whose RIB entry is noisy
/// (mapped to a bogus origin), making the tunnels crossing them look
/// inter-domain — the ~1 % the IntraAS filter removes (Table 1).
const RIB_NOISE: f64 = 0.008;

/// The built world.
pub struct World {
    /// The stable topology (identical for all 60 cycles).
    pub topo: Topology,
    /// The five featured ASes, in figure order.
    pub featured: [Asn; 5],
    rib: Ip2AsTrie,
}

/// Border-index convention per transit (border_routers = 12):
/// 0–2 monitor stubs, 3–6 destination groups, 7 lonely stub,
/// 8–11 inter-transit mesh.
const B_VPS: [usize; 3] = [0, 1, 2];
const B_GROUPS: [usize; 4] = [3, 4, 5, 6];
const B_LONELY: usize = 7;
const B_MESH0: usize = 8;
const MESH_SLOTS: usize = 4;

fn transit_spec(
    asn: Asn,
    name: &str,
    vendor: Vendor,
    core: usize,
    diamonds: usize,
    bundles: usize,
) -> AsSpec {
    let mut spec = AsSpec::transit(
        asn.0,
        name,
        vendor,
        TopologyParams {
            core_routers: core,
            border_routers: 12,
            ecmp_diamonds: diamonds,
            unbalanced_diamonds: diamonds / 4,
            parallel_bundles: bundles,
            // Bundle-heavy ASes (Tata) keep their rare diamonds at the
            // chain edges so parallel links dominate the Mono-FEC split
            // (Fig. 13).
            diamonds_at_edges: bundles > diamonds,
            parallel_width: 3,
            uniform_cost: 10,
        },
    );
    // Internal destinations: traffic towards them tunnels but fails the
    // TargetAS filter.
    spec.dest_prefixes = 10;
    spec
}

/// Builds the standard world — [`scaled_world`] at scale 1.
pub fn standard_world() -> World {
    scaled_world(1)
}

/// Integer square root (floor).
fn isqrt(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    while r * r > n {
        r -= 1;
    }
    r
}

/// Extra transit ASes beyond the standard six at `scale`: the total
/// transit count grows with `6·⌊√scale⌋ + 2`, so probed `(vp, dst)`
/// pairs — quadratic in the transit count — grow roughly linearly with
/// `scale`.
fn extra_transit_count(scale: usize) -> usize {
    if scale <= 1 {
        return 0;
    }
    6 * isqrt(scale) + 2 - 6
}

/// Hosts probed per destination /24 so that the probed pair count
/// tracks `scale` even between the quadratic jumps of the transit
/// count. The numerator carries a 3× margin: the fringe added past the
/// featured six yields fewer LSPs per trace than the standard world
/// (~0.6 vs ~1.4), so tripling the pairs keeps the *LSP* count growing
/// at least linearly with `scale` (e.g. scale 100 has 62 transits — a
/// 100× pair growth — and probes 3 hosts per prefix on top, clearing
/// half a million LSPs per snapshot).
pub fn scale_hosts_per_prefix(scale: usize) -> usize {
    if scale <= 1 {
        return 1;
    }
    let t = 6 + extra_transit_count(scale);
    let base = (t / 6) * (t / 6);
    (3 * scale).div_ceil(base.max(1))
}

/// Builds a world `scale` times the standard one (scale ≤ 1 is exactly
/// [`standard_world`]): extra background transits cycle the six
/// featured shapes, each hanging off three tier-1 cores and its
/// predecessor (linear peering — the core mesh must not grow
/// quadratically), and each anchoring the same monitor/destination
/// fringe as the featured six. Combine with [`scale_hosts_per_prefix`]
/// for the probing list.
pub fn scaled_world(scale: usize) -> World {
    let mut specs = vec![
        transit_spec(VOD, "vodafone", Vendor::Juniper, 4, 0, 0),
        transit_spec(ATT, "att", Vendor::Cisco, 7, 3, 1),
        transit_spec(TATA, "tata", Vendor::Cisco, 6, 1, 4),
        transit_spec(NTT, "ntt", Vendor::Cisco, 5, 1, 0),
        transit_spec(L3, "level3", Vendor::Juniper, 8, 2, 3),
        transit_spec(GIN, "gin", Vendor::Cisco, 5, 1, 2),
    ];

    let mut transits = vec![VOD, ATT, TATA, NTT, L3, GIN];
    const TEMPLATES: [(Vendor, usize, usize, usize); 6] = [
        (Vendor::Juniper, 4, 0, 0),
        (Vendor::Cisco, 7, 3, 1),
        (Vendor::Cisco, 6, 1, 4),
        (Vendor::Cisco, 5, 1, 0),
        (Vendor::Juniper, 8, 2, 3),
        (Vendor::Cisco, 5, 1, 2),
    ];
    for i in 0..extra_transit_count(scale) {
        let asn = Asn(20_000 + i as u32);
        let (vendor, core, diamonds, bundles) = TEMPLATES[i % TEMPLATES.len()];
        specs.push(transit_spec(asn, &format!("xt-{}", asn.0), vendor, core, diamonds, bundles));
        transits.push(asn);
    }

    let mut peerings: Vec<Peering> = Vec::new();

    // Tier-1 mesh (all pairs of the five big ones; VOD hangs off three
    // of them as a large transit customer).
    let tier1 = [ATT, TATA, NTT, L3, GIN];
    let mut mesh_cursor = vec![0usize; transits.len()];
    let slot = |asn: Asn| transits.iter().position(|&a| a == asn).unwrap();
    let mesh = |a: Asn, b: Asn, peerings: &mut Vec<Peering>, cursor: &mut Vec<usize>| {
        let (sa, sb) = (slot(a), slot(b));
        let pa = B_MESH0 + (cursor[sa] % MESH_SLOTS);
        let pb = B_MESH0 + (cursor[sb] % MESH_SLOTS);
        cursor[sa] += 1;
        cursor[sb] += 1;
        peerings.push(Peering::new(a, b).at_a(pa).at_b(pb));
    };
    for i in 0..tier1.len() {
        for j in i + 1..tier1.len() {
            mesh(tier1[i], tier1[j], &mut peerings, &mut mesh_cursor);
        }
    }
    for upstream in [ATT, TATA, L3] {
        mesh(VOD, upstream, &mut peerings, &mut mesh_cursor);
    }
    for k in 0..extra_transit_count(scale) {
        let t = transits[6 + k];
        for j in 0..3 {
            mesh(t, tier1[(k + j) % tier1.len()], &mut peerings, &mut mesh_cursor);
        }
        if k > 0 {
            mesh(t, transits[6 + k - 1], &mut peerings, &mut mesh_cursor);
        }
    }

    // Per-transit fringe: monitors, destination groups, lonely stubs.
    let mut next_src = 64600u32;
    let mut next_dst = 64700u32;
    for &t in &transits {
        for (k, &border) in B_VPS.iter().enumerate() {
            let asn = next_src;
            next_src += 1;
            specs.push(AsSpec::stub(asn, &format!("mon-{}-{k}", t.0), 0, 1));
            peerings.push(Peering::new(Asn(asn), t).at_b(border));
        }
        for &border in &B_GROUPS {
            for k in 0..2 {
                let asn = next_dst;
                next_dst += 1;
                specs.push(AsSpec::stub(asn, &format!("cust-{}-{border}-{k}", t.0), 3, 0));
                peerings.push(Peering::new(Asn(asn), t).at_b(border));
            }
        }
        let asn = next_dst;
        next_dst += 1;
        specs.push(AsSpec::stub(asn, &format!("lone-{}", t.0), 2, 0));
        peerings.push(Peering::new(Asn(asn), t).at_b(B_LONELY));
    }

    let topo = Topology::build_with_peerings(&specs, &peerings);
    let rib = build_rib(&topo);
    World { topo, featured: [VOD, ATT, TATA, NTT, L3], rib }
}

/// The Routeviews-style RIB for the world, with realistic noise: a
/// small fraction of transit interface addresses is (mis)mapped to a
/// bogus origin AS via more-specific /32 routes.
fn build_rib(topo: &Topology) -> Ip2AsTrie {
    let mut rib = topo.rib();
    for iface in &topo.ifaces {
        let as_topo = topo.as_of_router(iface.router);
        if matches!(as_topo.role, netsim::Role::Transit) {
            let h = splitmix64(u32::from(iface.addr) as u64 ^ 0x0BAD_CAFE);
            if (h as f64 / u64::MAX as f64) < RIB_NOISE {
                rib.insert(Prefix::new(iface.addr, 32), Asn(64512));
            }
        }
    }
    rib
}

impl World {
    /// The IP2AS mapper (with RIB noise applied).
    pub fn rib(&self) -> &Ip2AsTrie {
        &self.rib
    }

    /// All monitor addresses, sorted for determinism.
    pub fn all_vps(&self) -> Vec<Ipv4Addr> {
        let mut v: Vec<Ipv4Addr> =
            self.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        v.sort();
        v
    }

    /// All destination host addresses (`per_prefix` hosts per prefix).
    pub fn all_destinations(&self, per_prefix: usize) -> Vec<Ipv4Addr> {
        self.topo.destinations(per_prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_builds_and_is_stable() {
        let a = standard_world();
        let b = standard_world();
        assert_eq!(a.topo.routers.len(), b.topo.routers.len());
        assert_eq!(a.all_vps(), b.all_vps());
        assert_eq!(a.all_destinations(1), b.all_destinations(1));
    }

    #[test]
    fn featured_ases_exist_with_borders() {
        let w = standard_world();
        for asn in w.featured {
            let a = w.topo.as_by_asn(asn).expect("featured AS exists");
            assert!(a.borders.len() >= 5, "{asn} has {} borders", a.borders.len());
        }
    }

    #[test]
    fn fleet_sizes() {
        let w = standard_world();
        assert_eq!(w.all_vps().len(), 18);
        // 6 transits × (8 group stubs × 3 + 1 lonely × 2 + own 10) = 216.
        assert_eq!(w.all_destinations(1).len(), 216);
    }

    #[test]
    fn scale_one_is_the_standard_world() {
        let s = standard_world();
        let w = scaled_world(1);
        assert_eq!(w.topo.routers.len(), s.topo.routers.len());
        assert_eq!(w.all_vps(), s.all_vps());
        assert_eq!(w.all_destinations(1), s.all_destinations(1));
        assert_eq!(scale_hosts_per_prefix(1), 1);
    }

    #[test]
    fn scaled_world_grows_transits_and_fringe() {
        // scale 10: 6·⌊√10⌋ + 2 = 20 transits → 60 monitors and
        // 20 × 36 = 720 destination prefixes, at 4 hosts each
        // (⌈3·10 / 3²⌉, the 3× LSP-yield margin included).
        let w = scaled_world(10);
        assert_eq!(w.all_vps().len(), 60);
        assert_eq!(w.all_destinations(1).len(), 720);
        assert_eq!(scale_hosts_per_prefix(10), 4);
        // scale 100: 62 transits, pair growth is already ~100×; the
        // margin leaves 3 hosts per prefix.
        assert_eq!(super::extra_transit_count(100), 56);
        assert_eq!(scale_hosts_per_prefix(100), 3);
        // The featured six keep their identity and shape.
        for asn in w.featured {
            assert!(w.topo.as_by_asn(asn).is_some(), "{asn} missing at scale 10");
        }
    }

    #[test]
    fn rib_noise_is_present_but_small() {
        let w = standard_world();
        let clean = w.topo.rib();
        let mut noisy = 0usize;
        let mut total = 0usize;
        for iface in &w.topo.ifaces {
            total += 1;
            let asn = w.rib().lookup(iface.addr);
            if asn != clean.lookup(iface.addr) {
                assert_eq!(asn, Some(Asn(64512)));
                noisy += 1;
            }
        }
        assert!(noisy > 0, "expected some RIB noise");
        assert!((noisy as f64) < total as f64 * 0.05, "{noisy}/{total} too noisy");
    }
}
