//! Graceful-shutdown signal wiring.
//!
//! The second (and last) `unsafe` island of the workspace, mirroring
//! `lpr-corpus`'s mmap module: the offline shim policy rules out the
//! `libc`/`signal-hook` crates, so SIGTERM/SIGINT are installed via a
//! two-line `signal(2)` FFI. The handler only stores to a static
//! `AtomicBool` (async-signal-safe); the daemon's run loop polls it
//! and performs the actual orderly shutdown outside signal context.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// Installs the SIGTERM/SIGINT handler (unix; a no-op elsewhere).
/// Idempotent.
pub fn install() {
    #[cfg(unix)]
    sys::install();
}

/// Whether a termination signal has arrived since [`install`].
pub fn termination_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Testing hook: simulate (or clear) a delivered signal.
pub fn set_termination_requested(value: bool) {
    TERM_REQUESTED.store(value, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::TERM_REQUESTED;
    use std::ffi::c_int;
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Async-signal-safe: a single atomic store, nothing else.
        TERM_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        // SAFETY: `signal(2)` with a handler that is a plain
        // `extern "C" fn(c_int)` doing only an atomic store; return
        // value (the previous disposition) is intentionally ignored.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_roundtrip() {
        install();
        set_termination_requested(false);
        assert!(!termination_requested());
        set_termination_requested(true);
        assert!(termination_requested());
        set_termination_requested(false);
    }
}
