//! A deliberately tiny blocking HTTP/1.1 endpoint.
//!
//! The workspace is offline (no hyper/tokio), and the daemon's API is
//! five read-only GET routes — a nonblocking accept loop over
//! `std::net::TcpListener` with short per-connection read timeouts is
//! the whole server. One request per connection (`Connection: close`),
//! bodies pre-rendered by the router.
//!
//! The router never produces a 5xx status: degradation and readiness
//! are body-level fields, malformed requests get 4xx, and an unroutable
//! path gets 404. That invariant is part of the serve contract and is
//! enforced by the `lpr-bench serve` soak.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A routed response: status code plus pre-rendered body.
pub struct Response {
    /// HTTP status (the router only emits 2xx/4xx).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 JSON response.
    pub fn json(body: String) -> Self {
        Response { status: 200, content_type: "application/json", body }
    }

    /// A 200 plain-text response (Prometheus exposition format).
    pub fn text(body: String) -> Self {
        Response { status: 200, content_type: "text/plain; version=0.0.4", body }
    }

    /// A 404 for unroutable paths.
    pub fn not_found() -> Self {
        Response {
            status: 404,
            content_type: "application/json",
            body: "{\"error\":\"not found\"}".to_string(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "OK",
    }
}

/// Runs the accept loop until `stop` is set. Each accepted connection
/// is served inline (the routes are cheap pre-rendered reads); `route`
/// maps a path to a [`Response`].
pub fn serve(
    listener: TcpListener,
    stop: Arc<AtomicBool>,
    route: impl Fn(&str) -> Response,
) {
    listener.set_nonblocking(true).ok();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Connection handling is blocking with short timeouts;
                // a stalled client cannot wedge the daemon for long.
                let _ = handle(stream, &route);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle(mut stream: TcpStream, route: &impl Fn(&str) -> Response) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();

    let request = read_head(&mut stream)?;
    let response = match parse_request_line(&request) {
        Some(("GET", path)) => route(path),
        Some((_, _)) => Response {
            status: 405,
            content_type: "application/json",
            body: "{\"error\":\"method not allowed\"}".to_string(),
        },
        None => Response {
            status: 400,
            content_type: "application/json",
            body: "{\"error\":\"malformed request\"}".to_string(),
        },
    };
    write_response(&mut stream, &response)
}

/// Reads until the end of the header block (or an 8 KiB cap — the API
/// has no request bodies).
fn read_head(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// `"GET /snapshot HTTP/1.1" -> ("GET", "/snapshot")`; query strings
/// are stripped (no route takes parameters).
fn parse_request_line(request: &str) -> Option<(&str, &str)> {
    let line = request.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let path = target.split('?').next().unwrap_or(target);
    if !path.starts_with('/') {
        return None;
    }
    Some((method, path))
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// A minimal blocking GET against `addr` (test/bench helper): returns
/// `(status, body)`.
pub fn get(addr: std::net::SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: lpr\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed status line")
        })?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_line_parses_and_strips_queries() {
        assert_eq!(
            parse_request_line("GET /snapshot?x=1 HTTP/1.1\r\nHost: a\r\n\r\n"),
            Some(("GET", "/snapshot"))
        );
        assert_eq!(parse_request_line("POST / HTTP/1.1\r\n"), Some(("POST", "/")));
        assert_eq!(parse_request_line("garbage"), None);
        assert_eq!(parse_request_line(""), None);
    }

    #[test]
    fn end_to_end_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let server = std::thread::spawn(move || {
            serve(listener, stop2, |path| match path {
                "/ping" => Response::json("{\"pong\":true}".to_string()),
                _ => Response::not_found(),
            });
        });

        let (status, body) = get(addr, "/ping").unwrap();
        assert_eq!((status, body.as_str()), (200, "{\"pong\":true}"));
        let (status, _) = get(addr, "/nope").unwrap();
        assert_eq!(status, 404);

        stop.store(true, Ordering::SeqCst);
        server.join().unwrap();
    }
}
