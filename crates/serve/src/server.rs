//! The daemon: reconcile loop, windowed state, quarantine, endpoint.

use crate::http::{self, Response};
use crate::render::{per_as_json, snapshot_pipeline_json};
use crate::ServeConfig;
use lpr_core::pipeline::{IngestState, Pipeline};
use lpr_corpus::{ingest_cycle, Corpus, DecodeReport, FileSkipReason, IngestOptions};
use lpr_obs::json::JsonValue;
use lpr_obs::{names, Recorder, RunTelemetry};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything the HTTP routes read; written by the reconcile loop.
struct Shared {
    stop: Arc<AtomicBool>,
    /// First reconcile pass completed (the snapshot is meaningful).
    ready: AtomicBool,
    /// At least one spool file is quarantined.
    degraded: AtomicBool,
    ticks: AtomicU64,
    recorder: Recorder,
    /// Pre-rendered response bodies, swapped atomically per rebuild.
    snapshot: Mutex<Rendered>,
}

#[derive(Clone)]
struct Rendered {
    snapshot: String,
    per_as: String,
}

/// The daemon. [`Server::start`] binds, sweeps, spawns, and hands back
/// a [`ServerHandle`].
pub struct Server;

/// A running daemon: its bound address plus shutdown control. Dropping
/// the handle without [`ServerHandle::stop`] leaves the daemon running
/// detached for the rest of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Starts the daemon: loads the RIB, sweeps crash leftovers from
    /// the spool, binds the endpoint, and spawns the HTTP + reconcile
    /// threads.
    pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
        let rib_text = std::fs::read_to_string(&cfg.rib)?;
        let rib = ip2as::parse_rib(&rib_text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", cfg.rib.display()))
        })?;
        std::fs::create_dir_all(&cfg.spool)?;
        std::fs::create_dir_all(cfg.spool.join("quarantine"))?;

        let recorder = Recorder::new("serve");
        // Crash-leftover hygiene before any index cache is touched.
        lpr_corpus::sweep_stale(&cfg.spool, Some(&recorder))?;

        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;

        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            stop: stop.clone(),
            ready: AtomicBool::new(false),
            degraded: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            recorder,
            snapshot: Mutex::new(Rendered {
                snapshot: "{}".to_string(),
                per_as: "{}".to_string(),
            }),
        });

        let http_shared = shared.clone();
        let http_stop = stop.clone();
        let http_thread = std::thread::Builder::new()
            .name("lpr-serve-http".to_string())
            .spawn(move || {
                let shared = http_shared;
                http::serve(listener, http_stop, move |path| route(&shared, path));
            })?;

        let loop_shared = shared.clone();
        let reconcile_thread = std::thread::Builder::new()
            .name("lpr-serve-reconcile".to_string())
            .spawn(move || {
                Reconciler::new(cfg, loop_shared, Arc::new(rib)).run();
            })?;

        Ok(ServerHandle { addr, shared, threads: vec![http_thread, reconcile_thread] })
    }
}

impl ServerHandle {
    /// The endpoint's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the first reconcile pass has completed.
    pub fn ready(&self) -> bool {
        self.shared.ready.load(Ordering::SeqCst)
    }

    /// Whether any spool file is currently quarantined.
    pub fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::SeqCst)
    }

    /// Completed reconcile ticks.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stops the loops and joins both threads.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Foreground mode for the CLI: installs the SIGTERM/SIGINT
    /// handler and blocks until a signal arrives, then shuts down
    /// gracefully. Returns the process exit code (0).
    pub fn run_until_signal(self) -> i32 {
        crate::signal::install();
        while !crate::signal::termination_requested()
            && !self.shared.stop.load(Ordering::SeqCst)
        {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.stop();
        0
    }
}

fn route(shared: &Shared, path: &str) -> Response {
    shared.recorder.counter(names::SERVE_HTTP_REQUESTS).inc();
    let ready = shared.ready.load(Ordering::SeqCst);
    let degraded = shared.degraded.load(Ordering::SeqCst);
    match path {
        "/healthz" => Response::json(
            JsonValue::Object(vec![
                ("ok".into(), JsonValue::Bool(true)),
                ("ready".into(), JsonValue::Bool(ready)),
                ("degraded".into(), JsonValue::Bool(degraded)),
                (
                    "ticks".into(),
                    JsonValue::Int(shared.ticks.load(Ordering::SeqCst) as i128),
                ),
            ])
            .render(),
        ),
        // Readiness is a body-level flag: the endpoint never answers
        // 5xx, not even before the first reconcile pass.
        "/readyz" => Response::json(
            JsonValue::Object(vec![("ready".into(), JsonValue::Bool(ready))]).render(),
        ),
        "/snapshot" => {
            Response::json(shared.snapshot.lock().expect("snapshot poisoned").snapshot.clone())
        }
        "/report/per-as" => {
            Response::json(shared.snapshot.lock().expect("snapshot poisoned").per_as.clone())
        }
        "/metrics" => {
            let registry = shared.recorder.registry();
            let telemetry = RunTelemetry {
                label: "serve".to_string(),
                total_wall_us: 0,
                threads: 1,
                stages: shared.recorder.stages_so_far(),
                counters: registry.counter_values(),
                gauges: registry.gauge_values(),
                histograms: registry.histogram_values(),
            };
            Response::text(lpr_obs::export::prometheus_text(&telemetry))
        }
        _ => Response::not_found(),
    }
}

/// What one ingest attempt concluded about a spool file.
enum Attempt {
    /// Clean decode: the cycle's ingest state, ready to merge.
    Ingested(Box<IngestState>),
    /// File is empty or still growing — look again next tick.
    Defer(FileSkipReason),
    /// Decode damage: quarantine wholesale, nothing merged.
    Corrupt(DecodeReport),
    /// The file vanished or could not be read.
    Io(String),
    /// The ingest worker panicked.
    Panicked(String),
    /// The worker exceeded the ingest timeout and was abandoned.
    TimedOut,
}

/// Retry bookkeeping for a not-yet-settled spool file.
#[derive(Default)]
struct Pending {
    /// Failed attempts so far (timeout / panic / IO).
    attempts: u32,
    /// Consecutive scans spent deferred as empty / still-growing.
    grace_used: u32,
    /// Earliest instant the next attempt may run (backoff).
    not_before: Option<Instant>,
}

struct Reconciler {
    cfg: ServeConfig,
    shared: Arc<Shared>,
    rib: Arc<ip2as::Ip2AsTrie>,
    window: IngestState,
    next_cycle: u64,
    /// Files fully settled (ingested or quarantined), by file name.
    kept: Vec<String>,
    quarantined: Vec<(String, String)>,
    pending: BTreeMap<PathBuf, Pending>,
}

impl Reconciler {
    fn new(cfg: ServeConfig, shared: Arc<Shared>, rib: Arc<ip2as::Ip2AsTrie>) -> Self {
        Reconciler {
            cfg,
            shared,
            rib,
            window: IngestState::default(),
            next_cycle: 0,
            kept: Vec::new(),
            quarantined: Vec::new(),
            pending: BTreeMap::new(),
        }
    }

    fn run(mut self) {
        // Serve a (empty-window) snapshot from the very first request.
        self.rebuild_snapshot();
        while !self.shared.stop.load(Ordering::SeqCst) {
            let tick_started = Instant::now();
            self.tick();
            self.shared.ticks.fetch_add(1, Ordering::SeqCst);
            self.shared.ready.store(true, Ordering::SeqCst);
            // Sleep out the remainder of the tick, stop-aware.
            while tick_started.elapsed() < self.cfg.tick {
                if self.shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(10).min(self.cfg.tick));
            }
        }
    }

    fn tick(&mut self) {
        let tracer = self.shared.recorder.tracer();
        let _span = tracer.span("serve:tick");
        let mut changed = false;
        for path in self.scan_spool() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            changed |= self.settle_file(&path);
        }
        if changed || self.shared.ticks.load(Ordering::SeqCst) == 0 {
            self.rebuild_snapshot();
        }
        self.shared.recorder.counter(names::SERVE_RECONCILE_TICKS).inc();
    }

    /// Unsettled `*.warts` files in the spool root, in name order (the
    /// drop order convention: producers name files monotonically).
    fn scan_spool(&self) -> Vec<PathBuf> {
        let Ok(entries) = std::fs::read_dir(&self.cfg.spool) else { return Vec::new() };
        let mut files: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.is_file()
                    && p.extension().is_some_and(|e| e == "warts")
                    && !self.is_settled(p)
            })
            .collect();
        files.sort();
        files
    }

    fn is_settled(&self, path: &Path) -> bool {
        let name = file_name(path);
        self.kept.contains(&name) || self.quarantined.iter().any(|(q, _)| *q == name)
    }

    /// Drives one file one step through the attempt/defer/retry state
    /// machine. Returns true when the window changed (merge or
    /// quarantine decision).
    fn settle_file(&mut self, path: &Path) -> bool {
        let entry = self.pending.entry(path.to_path_buf()).or_default();
        if entry.not_before.is_some_and(|t| Instant::now() < t) {
            return false;
        }

        match self.attempt_with_timeout(path) {
            Attempt::Ingested(state) => {
                let mut state = *state;
                let cycle = self.next_cycle;
                self.next_cycle += 1;
                state.tag_cycle(cycle);
                self.window.merge(state);
                if self.window.cycles().len() > self.cfg.window {
                    let cutoff = cycle + 1 - self.cfg.window as u64;
                    let evicted = self.window.evict_before(cutoff);
                    self.shared
                        .recorder
                        .counter(names::SERVE_CYCLES_EVICTED)
                        .add(evicted.len() as u64);
                }
                self.kept.push(file_name(path));
                self.pending.remove(path);
                self.shared.recorder.counter(names::SERVE_FILES_INGESTED).inc();
                true
            }
            Attempt::Defer(reason) => {
                let entry = self.pending.entry(path.to_path_buf()).or_default();
                entry.grace_used += 1;
                if entry.grace_used > self.cfg.growing_grace {
                    // Never finished growing: a truncated drop, not a
                    // live write. Quarantine with the structured reason.
                    self.quarantine(path, &reason.to_string(), JsonValue::Null);
                    true
                } else {
                    false
                }
            }
            Attempt::Corrupt(report) => {
                // Decode damage is deterministic — retrying cannot
                // help. Quarantine wholesale with the skip breakdown.
                let detail = JsonValue::Object(vec![
                    (
                        "skipped".into(),
                        JsonValue::Object(
                            report
                                .skipped
                                .iter()
                                .map(|(r, &n)| (r.name().to_string(), JsonValue::Int(n as i128)))
                                .collect(),
                        ),
                    ),
                    ("resync_bytes".into(), JsonValue::Int(report.resync_bytes as i128)),
                    (
                        "convert_failures".into(),
                        JsonValue::Int(report.convert_failures as i128),
                    ),
                ]);
                self.quarantine(path, "corrupt", detail);
                true
            }
            Attempt::Io(e) => self.note_failed_attempt(path, &format!("io({e})")),
            Attempt::Panicked(msg) => {
                self.note_failed_attempt(path, &format!("panicked({msg})"))
            }
            Attempt::TimedOut => self.note_failed_attempt(path, "timeout"),
        }
    }

    /// Counts a timed-out / panicked / IO-failed attempt; quarantines
    /// after the retry budget, otherwise schedules a backed-off retry.
    fn note_failed_attempt(&mut self, path: &Path, why: &str) -> bool {
        let retries = self.cfg.retries;
        let (base, cap) = (self.cfg.backoff_base, self.cfg.backoff_cap);
        let entry = self.pending.entry(path.to_path_buf()).or_default();
        entry.attempts += 1;
        if entry.attempts > retries {
            self.quarantine(path, &format!("ingest_failed({why})"), JsonValue::Null);
            return true;
        }
        let attempts = entry.attempts;
        entry.not_before = Some(Instant::now() + backoff(base, cap, attempts, path));
        self.shared.recorder.counter(names::SERVE_FILES_RETRIED).inc();
        false
    }

    /// One ingest attempt on a worker thread, bounded by the configured
    /// timeout. A panicking worker is caught; a timed-out worker is
    /// abandoned (its result channel is dropped with it).
    fn attempt_with_timeout(&self, path: &Path) -> Attempt {
        let (tx, rx) = mpsc::channel();
        let path = path.to_path_buf();
        let rib = self.rib.clone();
        let threads = self.cfg.threads;
        let worker = std::thread::Builder::new()
            .name("lpr-serve-ingest".to_string())
            .spawn(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    attempt_ingest(&path, &rib, threads)
                }));
                let _ = tx.send(match outcome {
                    Ok(attempt) => attempt,
                    Err(payload) => Attempt::Panicked(panic_message(&payload)),
                });
            });
        match worker {
            Ok(_detached) => rx
                .recv_timeout(self.cfg.ingest_timeout)
                .unwrap_or(Attempt::TimedOut),
            Err(e) => Attempt::Io(format!("spawn: {e}")),
        }
    }

    /// Moves `path` into `spool/quarantine/` with a structured
    /// `<name>.reason.json`, and flips the daemon degraded.
    fn quarantine(&mut self, path: &Path, reason: &str, detail: JsonValue) {
        let name = file_name(path);
        let qdir = self.cfg.spool.join("quarantine");
        let _ = std::fs::create_dir_all(&qdir);
        // Rename, fall back to copy+remove (cross-device spools).
        if std::fs::rename(path, qdir.join(&name)).is_err()
            && std::fs::copy(path, qdir.join(&name)).is_ok()
        {
            let _ = std::fs::remove_file(path);
        }
        let doc = JsonValue::Object(vec![
            ("file".into(), JsonValue::Str(name.clone())),
            ("reason".into(), JsonValue::Str(reason.to_string())),
            ("detail".into(), detail),
        ]);
        let _ = std::fs::write(qdir.join(format!("{name}.reason.json")), doc.render_pretty());
        self.quarantined.push((name, reason.to_string()));
        self.pending.remove(path);
        self.shared.recorder.counter(names::SERVE_FILES_QUARANTINED).inc();
        self.shared.degraded.store(true, Ordering::SeqCst);
    }

    /// Re-runs the pipeline back half over a clone of the windowed
    /// state and swaps in freshly rendered response bodies.
    fn rebuild_snapshot(&mut self) {
        let output = Pipeline::default().finish_stages(
            self.window.clone(),
            &[],
            None,
            lpr_par::ShardOptions::new(self.cfg.threads),
        );
        let processed = self.kept.len() + self.quarantined.len();
        let doc = JsonValue::Object(vec![
            (
                "service".into(),
                JsonValue::Object(vec![
                    (
                        "ticks".into(),
                        JsonValue::Int(self.shared.ticks.load(Ordering::SeqCst) as i128),
                    ),
                    (
                        "degraded".into(),
                        JsonValue::Bool(!self.quarantined.is_empty()),
                    ),
                    (
                        "window_cycles".into(),
                        JsonValue::Array(
                            self.window
                                .cycles()
                                .into_iter()
                                .map(|c| JsonValue::Int(c as i128))
                                .collect(),
                        ),
                    ),
                    ("next_cycle".into(), JsonValue::Int(self.next_cycle as i128)),
                ]),
            ),
            (
                "files".into(),
                JsonValue::Object(vec![
                    ("processed".into(), JsonValue::Int(processed as i128)),
                    ("kept".into(), JsonValue::Int(self.kept.len() as i128)),
                    ("quarantined".into(), JsonValue::Int(self.quarantined.len() as i128)),
                    ("pending".into(), JsonValue::Int(self.pending.len() as i128)),
                ]),
            ),
            (
                "kept_files".into(),
                JsonValue::Array(self.kept.iter().map(|f| JsonValue::Str(f.clone())).collect()),
            ),
            (
                "quarantined_files".into(),
                JsonValue::Array(
                    self.quarantined
                        .iter()
                        .map(|(f, r)| {
                            JsonValue::Object(vec![
                                ("file".into(), JsonValue::Str(f.clone())),
                                ("reason".into(), JsonValue::Str(r.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("pipeline".into(), snapshot_pipeline_json(&output)),
        ]);
        let rendered =
            Rendered { snapshot: doc.render(), per_as: per_as_json(&output).render() };
        *self.shared.snapshot.lock().expect("snapshot poisoned") = rendered;
    }
}

/// The body of one ingest attempt (runs on the worker thread).
fn attempt_ingest(path: &Path, rib: &ip2as::Ip2AsTrie, threads: usize) -> Attempt {
    let corpus = match Corpus::open_with(std::slice::from_ref(&path), true, None) {
        Ok(corpus) => corpus,
        Err(e) => return Attempt::Io(e.to_string()),
    };
    if let Some(skipped) = corpus.skipped_files.first() {
        return Attempt::Defer(skipped.reason.clone());
    }
    let (state, report) = ingest_cycle(&corpus, rib, IngestOptions::new(threads), None);
    if report.skipped_total() > 0 || report.convert_failures > 0 || report.resync_bytes > 0 {
        return Attempt::Corrupt(report);
    }
    Attempt::Ingested(Box::new(state))
}

/// Exponential backoff with deterministic ±25% jitter: `base·2^(n-1)`
/// capped at `cap`, jittered by an xorshift of the file name (so
/// retry storms across files de-synchronize without any clock or RNG
/// dependency).
fn backoff(base: Duration, cap: Duration, attempt: u32, path: &Path) -> Duration {
    let exp = base.saturating_mul(1u32 << (attempt - 1).min(16)).min(cap);
    let mut seed =
        crate::render::fnv1a64(file_name(path).as_bytes()) ^ (attempt as u64).wrapping_mul(0x9e3779b97f4a7c15);
    // xorshift64
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    let jitter_pm = (seed % 51) as i64 - 25; // -25%..=+25%
    let nanos = exp.as_nanos() as i128;
    let jittered = nanos + nanos * jitter_pm as i128 / 100;
    Duration::from_nanos(jittered.max(0) as u64)
}

fn file_name(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(2);
        let p = Path::new("a.warts");
        let b1 = backoff(base, cap, 1, p);
        let b4 = backoff(base, cap, 4, p);
        assert!(b1 >= Duration::from_millis(75) && b1 <= Duration::from_millis(125), "{b1:?}");
        assert!(b4 > b1);
        assert!(backoff(base, cap, 12, p) <= Duration::from_millis(2500), "capped (+jitter)");
        assert_eq!(backoff(base, cap, 1, p), backoff(base, cap, 1, p), "deterministic");
        assert_ne!(
            backoff(base, cap, 1, Path::new("b.warts")),
            backoff(base, cap, 1, p),
            "jitter de-synchronizes distinct files"
        );
    }
}
