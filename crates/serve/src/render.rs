//! Deterministic JSON views of a [`PipelineOutput`].
//!
//! The soak harness proves serve/batch equivalence by comparing
//! rendered bytes: the daemon and `lpr-bench serve` both call
//! [`snapshot_pipeline_json`] on their respective outputs, so equal
//! pipeline results render to equal strings — including an FNV-1a
//! fingerprint over the full structural `Debug` form, which makes the
//! comparison sensitive to every field `PipelineOutput::eq` sees.

use lpr_core::pipeline::PipelineOutput;
use lpr_obs::json::JsonValue;

/// FNV-1a over `bytes` (the same construction the bench golden
/// fingerprints use).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The snapshot's `pipeline` section: classification tallies, filter
/// survival, trace accounting and a structural fingerprint.
pub fn snapshot_pipeline_json(out: &PipelineOutput) -> JsonValue {
    let counts = out.class_counts();
    let classes = JsonValue::Object(vec![
        ("mono_lsp".into(), JsonValue::Int(counts.mono_lsp as i128)),
        ("multi_fec".into(), JsonValue::Int(counts.multi_fec as i128)),
        ("mono_fec_parallel".into(), JsonValue::Int(counts.mono_fec_parallel as i128)),
        ("mono_fec_disjoint".into(), JsonValue::Int(counts.mono_fec_disjoint as i128)),
        ("unclassified".into(), JsonValue::Int(counts.unclassified as i128)),
    ]);
    let remaining = JsonValue::Object(
        out.report
            .remaining
            .iter()
            .map(|(stage, &n)| (stage.name().to_string(), JsonValue::Int(n as i128)))
            .collect(),
    );
    let quarantined = JsonValue::Object(
        out.degraded
            .quarantined
            .iter()
            .map(|(reason, &n)| (reason.name().to_string(), JsonValue::Int(n as i128)))
            .collect(),
    );
    JsonValue::Object(vec![
        (
            "fingerprint".into(),
            JsonValue::Str(format!("{:#018x}", fnv1a64(format!("{out:?}").as_bytes()))),
        ),
        ("iotps".into(), JsonValue::Int(out.iotps.len() as i128)),
        ("classes".into(), classes),
        ("ases".into(), JsonValue::Int(out.ases().len() as i128)),
        (
            "dynamic_ases".into(),
            JsonValue::Array(
                out.dynamic_ases.iter().map(|a| JsonValue::Int(a.0 as i128)).collect(),
            ),
        ),
        (
            "filter_report".into(),
            JsonValue::Object(vec![
                ("input".into(), JsonValue::Int(out.report.input as i128)),
                ("remaining".into(), remaining),
            ]),
        ),
        (
            "trace_accounting".into(),
            JsonValue::Object(vec![
                ("kept".into(), JsonValue::Int(out.degraded.kept as i128)),
                ("quarantined".into(), quarantined),
            ]),
        ),
    ])
}

/// The `/report/per-as` document: one row per AS owning classified
/// IOTPs, in AS order.
pub fn per_as_json(out: &PipelineOutput) -> JsonValue {
    let rows = out
        .ases()
        .into_iter()
        .map(|asn| {
            let counts = out.class_counts_for(asn);
            JsonValue::Object(vec![
                ("asn".into(), JsonValue::Int(asn.0 as i128)),
                ("iotps".into(), JsonValue::Int(counts.total() as i128)),
                ("mono_lsp".into(), JsonValue::Int(counts.mono_lsp as i128)),
                ("multi_fec".into(), JsonValue::Int(counts.multi_fec as i128)),
                ("mono_fec".into(), JsonValue::Int(counts.mono_fec() as i128)),
                ("unclassified".into(), JsonValue::Int(counts.unclassified as i128)),
                ("dynamic".into(), JsonValue::Bool(out.dynamic_ases.contains(&asn))),
            ])
        })
        .collect();
    JsonValue::Object(vec![("ases".into(), JsonValue::Array(rows))])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpr_core::prelude::*;
    use lpr_core::trace::Hop;
    use std::net::Ipv4Addr;

    fn mapper(addr: Ipv4Addr) -> Option<Asn> {
        match addr.octets()[0] {
            10 => Some(Asn(1)),
            192 => Some(Asn(100)),
            198 => Some(Asn(101)),
            _ => None,
        }
    }

    fn workload() -> Vec<Trace> {
        let mut traces = Vec::new();
        for i in 0..8u8 {
            let dst = if i % 2 == 0 {
                Ipv4Addr::new(192, 0, 2, 10 + i)
            } else {
                Ipv4Addr::new(198, 51, 100, 10 + i)
            };
            let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
            t.push_hop(Hop::responsive(1, Ipv4Addr::new(10, 0, 0, 1)));
            t.push_hop(Hop::labelled(
                2,
                Ipv4Addr::new(10, 0, 0, 2),
                &[Lse::transit(100, 254)],
            ));
            t.push_hop(Hop::labelled(
                3,
                Ipv4Addr::new(10, 0, 0, 3),
                &[Lse::transit(200, 253)],
            ));
            t.push_hop(Hop::responsive(4, Ipv4Addr::new(10, 0, 0, 9)));
            t.push_hop(Hop::responsive(5, dst));
            t.reached = true;
            traces.push(t);
        }
        traces
    }

    #[test]
    fn equal_outputs_render_identically_and_unequal_ones_do_not() {
        let traces = workload();
        let pipeline = Pipeline::default();
        let a = pipeline.run(&traces, &mapper, &[]);
        let b = pipeline.run(&traces, &mapper, &[]);
        assert_eq!(
            snapshot_pipeline_json(&a).render(),
            snapshot_pipeline_json(&b).render(),
            "equal outputs must render byte-identically"
        );
        let c = pipeline.run(&traces[..4], &mapper, &[]);
        assert_ne!(snapshot_pipeline_json(&a).render(), snapshot_pipeline_json(&c).render());
    }

    #[test]
    fn per_as_rows_cover_every_classified_as() {
        let out = Pipeline::default().run(&workload(), &mapper, &[]);
        let doc = per_as_json(&out);
        let rows = doc.get("ases").and_then(|v| v.as_array()).unwrap();
        assert_eq!(rows.len(), out.ases().len());
        let total: u64 =
            rows.iter().filter_map(|r| r.get("iotps").and_then(|v| v.as_u64())).sum();
        assert_eq!(total, out.iotps.len() as u64);
    }

    #[test]
    fn fingerprint_is_stable_fnv() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
