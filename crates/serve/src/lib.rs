//! # lpr-serve — the continuous-measurement daemon
//!
//! The batch pipeline answers "what did this cycle's corpus classify
//! as"; real measurement infrastructures don't stop between cycles.
//! This crate turns the pipeline into a long-running service: a
//! supervised reconcile loop watches a **spool directory** for warts
//! corpus files, ingests each new file as one measurement cycle into a
//! **windowed** [`lpr_core::IngestState`] (old cycles age out via
//! [`lpr_core::IngestState::evict_before`] — no full recompute), and
//! serves classification snapshots, per-AS reports, health and
//! Prometheus metrics over a hand-rolled blocking HTTP/1.1 endpoint
//! (the workspace is offline — no hyper, no tokio).
//!
//! ## Robustness contract
//!
//! - Every per-file ingest runs on a disposable worker thread under a
//!   **timeout**, with bounded **retries** and exponential backoff plus
//!   deterministic jitter. A panicking worker poisons only that file.
//! - Files that fail decode (corrupt bytes, failed conversions) are
//!   **quarantined wholesale** — moved to `spool/quarantine/` with a
//!   structured `*.reason.json` — and nothing from them is merged, so
//!   the served window stays byte-identical to a batch run over the
//!   clean subset.
//! - Empty and still-growing files ([`lpr_corpus::FileSkipReason`])
//!   are deferred, not failed; a file that never finishes growing is
//!   quarantined after a grace period.
//! - The endpoint **never answers 5xx**: readiness and degradation are
//!   body-level flags (`ready`, `degraded`), and the snapshot carries
//!   an exact kept/quarantined reconciliation at all times.
//!
//! `lpr serve` is the CLI front end; `lpr-bench serve` soaks a live
//! daemon against chaos-corrupted spool drops and diffs its snapshots
//! against the batch pipeline.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod render;
pub mod server;
pub mod signal;

pub use render::{fnv1a64, per_as_json, snapshot_pipeline_json};
pub use server::{Server, ServerHandle};

use std::path::PathBuf;
use std::time::Duration;

/// Daemon configuration. [`ServeConfig::new`] fills every knob with a
/// production-shaped default; benches and tests shrink the timings.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Directory watched for `*.warts` corpus drops. Quarantined files
    /// move to `<spool>/quarantine/`.
    pub spool: PathBuf,
    /// IP-to-AS mapping, as a RIB text file ([`ip2as::parse_rib`]).
    pub rib: PathBuf,
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Measurement cycles kept in the window; older cycles are evicted.
    pub window: usize,
    /// Ingest worker threads per file.
    pub threads: usize,
    /// Reconcile-loop poll interval.
    pub tick: Duration,
    /// Per-attempt ingest timeout; a worker still running after this is
    /// abandoned and the attempt counts as failed.
    pub ingest_timeout: Duration,
    /// Retries after a timed-out / panicked / I/O-failed attempt (so a
    /// file gets `retries + 1` attempts before quarantine).
    pub retries: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Scans a still-growing or empty file may sit in the spool before
    /// it is quarantined as never-finishing.
    pub growing_grace: u32,
}

impl ServeConfig {
    /// A daemon watching `spool` with the default knobs.
    pub fn new(spool: impl Into<PathBuf>, rib: impl Into<PathBuf>) -> Self {
        ServeConfig {
            spool: spool.into(),
            rib: rib.into(),
            addr: "127.0.0.1:0".to_string(),
            window: 4,
            threads: 1,
            tick: Duration::from_millis(500),
            ingest_timeout: Duration::from_secs(30),
            retries: 2,
            backoff_base: Duration::from_millis(250),
            backoff_cap: Duration::from_secs(5),
            growing_grace: 6,
        }
    }
}
