//! End-to-end daemon test: a live `lpr-serve` instance over a temp
//! spool — clean drops merge into the window and serve snapshots
//! byte-identical to the batch pipeline; corrupt and never-finishing
//! drops are quarantined with structured reasons while the endpoint
//! keeps answering (degraded, never 5xx).

use lpr_core::pipeline::{IngestState, Pipeline};
use lpr_core::prelude::*;
use lpr_core::trace::Hop;
use lpr_corpus::{ingest_cycle, Corpus, IngestOptions};
use lpr_serve::{http, snapshot_pipeline_json, ServeConfig, Server};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn rib_text() -> String {
    let mut trie = ip2as::Ip2AsTrie::new();
    for a in 1..=6u8 {
        trie.insert(ip2as::Prefix::new(Ipv4Addr::new(10, a, 0, 0), 16), Asn(a as u32));
    }
    trie.insert(ip2as::Prefix::new(Ipv4Addr::new(192, 0, 2, 0), 24), Asn(100));
    trie.insert(ip2as::Prefix::new(Ipv4Addr::new(198, 51, 100, 0), 24), Asn(101));
    trie.insert(ip2as::Prefix::new(Ipv4Addr::new(203, 0, 113, 0), 24), Asn(200));
    ip2as::to_rib_string(&trie)
}

fn cycle_traces(seed: u32) -> Vec<Trace> {
    let mut traces = Vec::new();
    for i in 0..24u32 {
        let asn = 1 + ((seed + i) % 4) as u8;
        let dst = if i % 2 == 0 {
            Ipv4Addr::new(192, 0, 2, 10 + ((seed / 2 + i) % 60) as u8)
        } else {
            Ipv4Addr::new(198, 51, 100, 10 + ((seed / 2 + i) % 60) as u8)
        };
        let label = 100 + (seed + 7 * i) % 5;
        let mut t = Trace::new(Ipv4Addr::new(203, 0, 113, 5), dst);
        t.push_hop(Hop::responsive(1, Ipv4Addr::new(10, asn, 0, 1)));
        t.push_hop(Hop::labelled(
            2,
            Ipv4Addr::new(10, asn, 0, 2),
            &[Lse::transit(label, 254)],
        ));
        t.push_hop(Hop::labelled(
            3,
            Ipv4Addr::new(10, asn, 0, 3),
            &[Lse::transit(label + 100, 253)],
        ));
        t.push_hop(Hop::responsive(4, Ipv4Addr::new(10, asn, 0, 9)));
        t.push_hop(Hop::responsive(5, dst));
        t.reached = true;
        traces.push(t);
    }
    traces
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lpr-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes one cycle's warts bytes and atomically drops them into the
/// spool under `name` (staging + rename, as a well-behaved producer
/// would).
fn drop_into_spool(staging: &Path, spool: &Path, name: &str, bytes: &[u8]) {
    let tmp = staging.join(name);
    std::fs::write(&tmp, bytes).unwrap();
    std::fs::rename(&tmp, spool.join(name)).unwrap();
}

fn cycle_bytes(staging: &Path, seed: u32) -> Vec<u8> {
    let paths =
        lpr_corpus::write_corpus_files(staging, &format!("stage{seed}"), &cycle_traces(seed), 1)
            .unwrap();
    let bytes = std::fs::read(&paths[0]).unwrap();
    std::fs::remove_file(&paths[0]).unwrap();
    let _ = std::fs::remove_file(staging.join(format!("stage{seed}.000.warts.lpridx")));
    bytes
}

/// Polls `f` until it returns true or ~5s elapse.
fn wait_for(mut f: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < deadline {
        if f() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

fn get_json(addr: std::net::SocketAddr, path: &str) -> lpr_obs::json::JsonValue {
    let (status, body) = http::get(addr, path).unwrap();
    assert!(status < 500, "no 5xx ever: {path} answered {status}");
    lpr_obs::json::parse(&body).unwrap_or(lpr_obs::json::JsonValue::Null)
}

/// The batch reference: ingest each clean file as its tagged cycle,
/// merge, run the back half, render through the shared renderer.
fn batch_pipeline_rendering(files: &[(u64, PathBuf)], rib: &ip2as::Ip2AsTrie) -> String {
    let mut window = IngestState::default();
    for (cycle, path) in files {
        let corpus = Corpus::open(std::slice::from_ref(path)).unwrap();
        let (mut state, report) = ingest_cycle(&corpus, rib, IngestOptions::new(1), None);
        assert_eq!(report.skipped_total(), 0);
        state.tag_cycle(*cycle);
        window.merge(state);
    }
    let out = Pipeline::default().finish_stages(window, &[], None, lpr_par::ShardOptions::new(1));
    snapshot_pipeline_json(&out).render()
}

#[test]
fn daemon_ingests_quarantines_and_serves_batch_identical_snapshots() {
    let root = tmp("e2e");
    let spool = root.join("spool");
    let staging = root.join("staging");
    std::fs::create_dir_all(&spool).unwrap();
    std::fs::create_dir_all(&staging).unwrap();
    let rib_path = root.join("as.rib");
    std::fs::write(&rib_path, rib_text()).unwrap();
    let rib = ip2as::parse_rib(&rib_text()).unwrap();

    // A crash leftover that must be swept at startup.
    std::fs::write(spool.join("old.warts.lpridx.tmp"), b"stale").unwrap();

    let mut cfg = ServeConfig::new(&spool, &rib_path);
    cfg.tick = Duration::from_millis(25);
    cfg.window = 2;
    cfg.growing_grace = 2;
    cfg.retries = 1;
    cfg.backoff_base = Duration::from_millis(10);
    let handle = Server::start(cfg).unwrap();
    let addr = handle.addr();

    // Startup: healthy, not degraded, leftovers swept, snapshot served
    // (empty window) from the very first request.
    assert!(wait_for(|| get_json(addr, "/healthz")
        .get("ready")
        .map(|v| *v == lpr_obs::json::JsonValue::Bool(true))
        .unwrap_or(false)));
    assert!(!spool.join("old.warts.lpridx.tmp").exists(), "startup sweep");
    let snap = get_json(addr, "/snapshot");
    assert_eq!(snap.get("files").unwrap().get("processed").unwrap().as_u64(), Some(0));

    // Drop 1: clean. It must merge and serve exactly the batch result.
    let c0 = cycle_bytes(&staging, 0);
    drop_into_spool(&staging, &spool, "c0.warts", &c0);
    assert!(wait_for(|| get_json(addr, "/snapshot")
        .get("files")
        .and_then(|f| f.get("kept"))
        .and_then(|v| v.as_u64())
        == Some(1)));
    let served = get_json(addr, "/snapshot");
    let reference = batch_pipeline_rendering(&[(0, spool.join("c0.warts"))], &rib);
    assert_eq!(served.get("pipeline").unwrap().render(), reference);

    // Drop 2: corrupt (a mid-file record header is trashed — damage
    // the index scan must notice). Quarantined wholesale with a
    // structured reason; daemon answers degraded, never 5xx.
    let mut corrupt = cycle_bytes(&staging, 1);
    let index = lpr_corpus::RecordIndex::build(&corrupt);
    let victim = index.records[index.records.len() / 2].offset as usize;
    corrupt[victim] = 0;
    corrupt[victim + 1] = 0;
    drop_into_spool(&staging, &spool, "c1-corrupt.warts", &corrupt);
    assert!(wait_for(|| get_json(addr, "/snapshot")
        .get("files")
        .and_then(|f| f.get("quarantined"))
        .and_then(|v| v.as_u64())
        == Some(1)));
    assert!(!spool.join("c1-corrupt.warts").exists(), "moved out of the spool");
    assert!(spool.join("quarantine/c1-corrupt.warts").exists());
    let reason = std::fs::read_to_string(spool.join("quarantine/c1-corrupt.warts.reason.json"))
        .unwrap();
    let reason = lpr_obs::json::parse(&reason).unwrap();
    assert_eq!(reason.get("reason").and_then(|v| v.as_str()), Some("corrupt"));
    assert!(reason.get("detail").unwrap().get("skipped").is_some());
    assert_eq!(
        get_json(addr, "/healthz").get("degraded"),
        Some(&lpr_obs::json::JsonValue::Bool(true))
    );

    // Drop 3: a truncated drop that never finishes growing — deferred
    // for the grace period, then quarantined as still-growing.
    let c2 = cycle_bytes(&staging, 2);
    drop_into_spool(&staging, &spool, "c2-stub.warts", &c2[..c2.len() - 3]);
    assert!(wait_for(|| get_json(addr, "/snapshot")
        .get("files")
        .and_then(|f| f.get("quarantined"))
        .and_then(|v| v.as_u64())
        == Some(2)));

    // Drop 4: clean again. The clean window (cycles 0 and 1) must stay
    // byte-identical to the batch pipeline over the clean subset.
    let c3 = cycle_bytes(&staging, 3);
    drop_into_spool(&staging, &spool, "c3.warts", &c3);
    assert!(wait_for(|| get_json(addr, "/snapshot")
        .get("files")
        .and_then(|f| f.get("kept"))
        .and_then(|v| v.as_u64())
        == Some(2)));
    let served = get_json(addr, "/snapshot");
    let reference = batch_pipeline_rendering(
        &[(0, spool.join("c0.warts")), (1, spool.join("c3.warts"))],
        &rib,
    );
    assert_eq!(served.get("pipeline").unwrap().render(), reference);

    // Reconciliation is exact: kept + quarantined == processed.
    let files = served.get("files").unwrap();
    assert_eq!(files.get("kept").unwrap().as_u64(), Some(2));
    assert_eq!(files.get("quarantined").unwrap().as_u64(), Some(2));
    assert_eq!(files.get("processed").unwrap().as_u64(), Some(4));

    // Per-AS report and metrics are live; unknown paths are 404.
    assert!(get_json(addr, "/report/per-as").get("ases").is_some());
    let (status, metrics) = http::get(addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(metrics.contains("serve_files_ingested 2"), "{metrics}");
    assert!(metrics.contains("serve_files_quarantined 2"), "{metrics}");
    let (status, _) = http::get(addr, "/definitely-not-a-route").unwrap();
    assert_eq!(status, 404);

    handle.stop();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn window_eviction_keeps_serving_the_recent_cycles() {
    let root = tmp("evict");
    let spool = root.join("spool");
    let staging = root.join("staging");
    std::fs::create_dir_all(&spool).unwrap();
    std::fs::create_dir_all(&staging).unwrap();
    let rib_path = root.join("as.rib");
    std::fs::write(&rib_path, rib_text()).unwrap();
    let rib = ip2as::parse_rib(&rib_text()).unwrap();

    let mut cfg = ServeConfig::new(&spool, &rib_path);
    cfg.tick = Duration::from_millis(25);
    cfg.window = 2;
    let handle = Server::start(cfg).unwrap();
    let addr = handle.addr();

    for i in 0..4u32 {
        let bytes = cycle_bytes(&staging, 10 + i);
        drop_into_spool(&staging, &spool, &format!("w{i}.warts"), &bytes);
        assert!(wait_for(|| get_json(addr, "/snapshot")
            .get("files")
            .and_then(|f| f.get("kept"))
            .and_then(|v| v.as_u64())
            == Some(i as u64 + 1)));
    }

    // Window of 2: only cycles 2 and 3 remain, equal to a batch run
    // over just those files.
    let served = get_json(addr, "/snapshot");
    let cycles: Vec<u64> = served
        .get("service")
        .unwrap()
        .get("window_cycles")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|v| v.as_u64())
        .collect();
    assert_eq!(cycles, vec![2, 3]);
    let reference = batch_pipeline_rendering(
        &[(2, spool.join("w2.warts")), (3, spool.join("w3.warts"))],
        &rib,
    );
    assert_eq!(served.get("pipeline").unwrap().render(), reference);

    handle.stop();
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn simulated_sigterm_shuts_down_cleanly() {
    let root = tmp("term");
    let spool = root.join("spool");
    std::fs::create_dir_all(&spool).unwrap();
    let rib_path = root.join("as.rib");
    std::fs::write(&rib_path, rib_text()).unwrap();

    let mut cfg = ServeConfig::new(&spool, &rib_path);
    cfg.tick = Duration::from_millis(25);
    let handle = Server::start(cfg).unwrap();
    lpr_serve::signal::set_termination_requested(true);
    let started = Instant::now();
    assert_eq!(handle.run_until_signal(), 0);
    assert!(started.elapsed() < Duration::from_secs(3), "graceful, not hung");
    lpr_serve::signal::set_termination_requested(false);
    std::fs::remove_dir_all(&root).ok();
}
