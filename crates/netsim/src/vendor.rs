//! Router vendor models.
//!
//! The paper notes (§2.2) that while the label-distribution protocols
//! are standardised, the label ranges and default behaviours are
//! vendor-specific, and that these defaults are exactly what LPR's
//! inferences lean on (e.g. the Juniper RSVP-TE re-optimisation of
//! Fig. 17, whose labels sweep the 300 000–800 000 range). The ranges
//! below follow the vendors' public documentation.

use lpr_core::label::Label;
use std::ops::Range;

/// A modelled router platform.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Vendor {
    /// Cisco IOS(-XR)-like: dynamic labels from 16 up; LDP advertises
    /// labels for all IGP prefixes by default.
    Cisco,
    /// Juniper Junos-like: dynamic labels from 299 776 up; LDP
    /// advertises loopbacks only by default; RSVP-TE re-optimisation
    /// timers commonly configured.
    Juniper,
}

impl Vendor {
    /// The dynamic label allocation range for this platform.
    pub fn label_range(&self) -> Range<u32> {
        match self {
            // Cisco: 16..100000 is the classic dynamic range floor; we
            // model the commonly observed window.
            Vendor::Cisco => 16..1_048_576,
            // Juniper dynamic labels start at 299776. The Fig. 17
            // campaign observes wrap-around near 800k, so the modelled
            // window matches that observable.
            Vendor::Juniper => 299_776..800_000,
        }
    }

    /// Whether LDP advertises labels for every IGP prefix (Cisco
    /// default) or only for loopbacks (Juniper default). Transit LSPs
    /// are built towards loopbacks either way (§2.2.1), so this only
    /// changes label-consumption rates.
    pub fn ldp_advertises_all_prefixes(&self) -> bool {
        matches!(self, Vendor::Cisco)
    }
}

/// A per-router label allocator: hands out labels sequentially from the
/// vendor's dynamic range, wrapping when exhausted (the behaviour the
/// Fig. 17 sawtooth exposes).
#[derive(Clone, Debug)]
pub struct LabelAllocator {
    range: Range<u32>,
    next: u32,
}

impl LabelAllocator {
    /// A fresh allocator for a platform.
    pub fn new(vendor: Vendor) -> Self {
        let range = vendor.label_range();
        LabelAllocator { next: range.start, range }
    }

    /// An allocator whose cursor starts `offset` labels into the range
    /// (modulo the range span).
    ///
    /// Real routers have divergent label-consumption histories — the
    /// LDP/RSVP labels two distinct LSRs hold for the same FEC
    /// essentially never coincide, which is precisely the assumption
    /// behind LPR's Parallel-Links inference ("it is unlikely that two
    /// distinct LSRs will propose the same label", §3.2). The control
    /// plane therefore staggers every router's allocator with a
    /// deterministic per-router offset.
    pub fn with_offset(vendor: Vendor, offset: u32) -> Self {
        let range = vendor.label_range();
        let span = range.end - range.start;
        LabelAllocator { next: range.start + offset % span, range }
    }

    /// Allocates the next label.
    pub fn alloc(&mut self) -> Label {
        let l = self.next;
        self.next += 1;
        if self.next >= self.range.end {
            self.next = self.range.start;
        }
        Label::new(l)
    }

    /// How many labels have been consumed since the start (modulo
    /// wrap); useful for tests.
    pub fn cursor(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_disjoint_enough_to_distinguish() {
        assert!(Vendor::Cisco.label_range().start < Vendor::Juniper.label_range().start);
        assert!(Vendor::Juniper.label_range().contains(&300_000));
    }

    #[test]
    fn allocator_is_sequential() {
        let mut a = LabelAllocator::new(Vendor::Cisco);
        assert_eq!(a.alloc().value(), 16);
        assert_eq!(a.alloc().value(), 17);
    }

    #[test]
    fn allocator_wraps() {
        let mut a = LabelAllocator::new(Vendor::Juniper);
        let range = Vendor::Juniper.label_range();
        let span = range.end - range.start;
        for _ in 0..span {
            a.alloc();
        }
        // After consuming the whole range we are back at the start.
        assert_eq!(a.alloc().value(), range.start);
    }

    #[test]
    fn labels_stay_in_range() {
        let mut a = LabelAllocator::new(Vendor::Juniper);
        for _ in 0..10_000 {
            let l = a.alloc().value();
            assert!(Vendor::Juniper.label_range().contains(&l));
        }
    }
}
