//! MDA / MDA-Lite stochastic multipath probing.
//!
//! The exhaustive way to see a destination's ECMP diversity is to walk
//! the TTL ladder under *every* flow identifier in a fixed budget —
//! what [`Prober::mda_paths`] did and what real campaigns cannot
//! afford. Paris traceroute's Multipath Detection Algorithm (MDA) and
//! its MDA-Lite successor (*Multilevel MDA-Lite Paris Traceroute*,
//! arXiv:1809.10070) replace the enumeration with a statistical
//! stopping rule built on the table-driven `n_k` thresholds: having
//! observed `k` distinct outcomes, keep probing until
//! [`nk_threshold`]`(k)` flow-varied walks have failed to show a
//! `(k+1)`-th — at which point the hypothesis "there is another
//! branch" is rejected at the configured confidence. Here the rule is
//! applied to the distinct *transit paths* a destination (or a /24
//! host group) exposes, with per-TTL interface widths driving MDA's
//! steered per-hop re-confirmation.
//!
//! Two stochastic modes are implemented on top of the same sweep:
//!
//! * [`ProbingStrategy::MdaLite`] assumes per-flow load balancing (true
//!   of this data plane and of most deployed routers): every flow-varied
//!   ladder walk gives a full vertical view, so per-TTL interface
//!   counts alone drive the stopping rule and no hop is re-confirmed.
//! * [`ProbingStrategy::Mda`] adds the classic per-hop re-confirmation:
//!   after the vertical sweep settles, each divergent hop is re-probed
//!   with flows *steered* through every ECMP index via the explicit
//!   flow-id→hash mapping ([`crate::dataplane::steering_flows`])
//!   instead of sampling the flow space blind. Costlier in probes,
//!   immune to the per-flow assumption.
//!
//! [`ProbingStrategy::Exhaustive`] remains the oracle: consume the
//! whole candidate budget. Campaign integration lives in
//! [`Prober::campaign_with_budget`], which applies the same stopping
//! rule per `(vp, /24)` host group.

use crate::dataplane::{probe_ladder, steering_flows, ProbeReply};
use crate::internet::splitmix64;
use crate::probe::{ProbeCore, Prober};
use lpr_chaos::FaultCounts;
use lpr_core::trace::Trace;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// How a campaign (or a single-destination discovery) spends probes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProbingStrategy {
    /// Probe every candidate — each `(vp, dst)` pair of the probing
    /// list, every flow of a discovery budget. The oracle the
    /// stochastic modes are measured against, and the default (it is
    /// what the paper's campaign shape pins).
    #[default]
    Exhaustive,
    /// Full MDA: stopping rule plus per-hop re-confirmation with
    /// hash-steered flows.
    Mda,
    /// MDA-Lite: stopping rule on vertical per-TTL interface counts
    /// only (assumes per-flow load balancing).
    MdaLite,
}

impl ProbingStrategy {
    /// The CLI/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            ProbingStrategy::Exhaustive => "exhaustive",
            ProbingStrategy::Mda => "mda",
            ProbingStrategy::MdaLite => "mda-lite",
        }
    }

    /// Parses the CLI spelling (`exhaustive`, `mda`, `mda-lite`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exhaustive" => Some(ProbingStrategy::Exhaustive),
            "mda" => Some(ProbingStrategy::Mda),
            "mda-lite" | "mdalite" => Some(ProbingStrategy::MdaLite),
            _ => None,
        }
    }
}

/// The stopping-rule confidence campaigns use (the paper value: rule
/// out an unseen branch at 95%).
pub const DEFAULT_CONFIDENCE: f64 = 0.95;

/// Single-destination discovery parameters.
#[derive(Clone, Debug)]
pub struct MdaOptions {
    /// Probing mode; [`ProbingStrategy::Exhaustive`] sweeps the whole
    /// `max_flows` budget and is the oracle.
    pub strategy: ProbingStrategy,
    /// Stopping-rule confidence (fraction, e.g. `0.95`).
    pub confidence: f64,
    /// Hard cap on flow-varied ladder walks per destination; the
    /// stopping rule stops earlier, the cap never lets it run longer.
    pub max_flows: usize,
}

impl Default for MdaOptions {
    fn default() -> Self {
        MdaOptions {
            strategy: ProbingStrategy::MdaLite,
            confidence: DEFAULT_CONFIDENCE,
            max_flows: 64,
        }
    }
}

/// What one multipath discovery found and what it cost.
#[derive(Clone, Debug)]
pub struct MdaDiscovery {
    /// Distinct IP paths observed (responsive-hop address sequences,
    /// sorted) — the same shape `mda_paths` returned.
    pub paths: Vec<Vec<Ipv4Addr>>,
    /// Flow-varied ladder walks traced (excluding re-confirmation).
    pub flows_traced: u64,
    /// Probe packets spent, re-confirmation included.
    pub probes_sent: u64,
    /// Steered per-hop re-confirmation walks (MDA mode only).
    pub confirmations: u64,
    /// The stopping rule wanted more flows than `max_flows` allowed.
    pub exhausted: bool,
}

/// The MDA `n_k` stopping threshold: the smallest number of probes
/// that, having shown only `k` distinct interfaces at a hop, rejects
/// the hypothesis of a `(k+1)`-th equally-balanced branch at the given
/// confidence. Computed from the exact inclusion–exclusion miss
/// probability, reproducing the published table — at 95%:
/// `n_1..=n_8 = 6, 11, 16, 21, 27, 33, 38, 44`.
pub fn nk_threshold(k: usize, confidence: f64) -> usize {
    nk_threshold_from(k, confidence, k + 1)
}

/// [`nk_threshold`] with the linear search started at `floor` (clamped
/// up to `k + 1`). `n_k` is monotone in `k`, so a sweep that already
/// knows `n_{k-1}` resumes from there instead of re-scanning — the
/// difference between O(k·n_k) and O(n_k − n_{k-1}) threshold work per
/// newly discovered path, which matters on the campaign hot path.
fn nk_threshold_from(k: usize, confidence: f64, floor: usize) -> usize {
    if k == 0 {
        return 1;
    }
    let alpha = (1.0 - confidence).clamp(1e-12, 0.5);
    let mut n = floor.max(k + 1);
    while miss_probability(k, n) >= alpha && n < 10_000 {
        n += 1;
    }
    n
}

/// P(at least one of `k + 1` uniformly-balanced interfaces is unseen
/// after `n` probes), by inclusion–exclusion.
fn miss_probability(k: usize, n: usize) -> f64 {
    let kp1 = (k + 1) as f64;
    let mut p = 0.0;
    let mut binom = 1.0; // C(k+1, i), updated incrementally
    for i in 1..=k {
        binom *= (kp1 - i as f64 + 1.0) / i as f64;
        let term = binom * ((kp1 - i as f64) / kp1).powi(n as i32);
        if i % 2 == 1 {
            p += term;
        } else {
            p -= term;
        }
    }
    p
}

/// Accumulated state of one stopping-rule sweep.
///
/// The sweep sits on the campaign's per-probe hot path, so its
/// bookkeeping is sized to cost less than the probes it saves: path
/// identity is a 64-bit FNV-1a fingerprint in a small sorted vector
/// (not a set of cloned address sequences), per-TTL interface sets are
/// maintained only when full-MDA re-confirmation will read them, and
/// the `n_k` threshold is memoised per distinct path count.
#[derive(Default)]
struct Sweep {
    traces: Vec<Trace>,
    /// Fingerprints of the distinct transit paths seen so far
    /// (responsive-hop address sequences, the destination's own echo
    /// excluded so hosts sharing a /24 don't trivially count as
    /// distinct) — what the stopping rule enumerates. Sorted; a 64-bit
    /// collision would merely stop a sweep one path early at odds far
    /// below the stopping rule's own 5% error budget.
    paths: Vec<u64>,
    /// Distinct responsive interfaces per TTL — the per-hop widths MDA
    /// re-confirmation steers against. Populated only under
    /// [`Sweep::track_widths`]; MDA-Lite never reads them.
    per_ttl: BTreeMap<u8, BTreeSet<Ipv4Addr>>,
    /// Whether [`Sweep::observe`] maintains `per_ttl` (MDA mode only).
    track_widths: bool,
    /// Per-TTL widths already re-confirmed with steered flows, so a
    /// repeat confirmation pass skips hops it has settled.
    confirmed: BTreeMap<u8, usize>,
    /// Stopping-rule confidence, fixed at construction.
    confidence: f64,
    /// Memoised `(k, n_k)` of the last [`Sweep::required`] call.
    nk_memo: (usize, usize),
    probes: u64,
    confirmations: u64,
    exhausted: bool,
}

impl Sweep {
    fn new(strategy: ProbingStrategy, confidence: f64) -> Self {
        Sweep {
            track_widths: strategy == ProbingStrategy::Mda,
            confidence,
            nk_memo: (usize::MAX, 0),
            ..Sweep::default()
        }
    }

    fn observe(&mut self, trace: &Trace) {
        let mut fp = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for h in trace.responsive_hops() {
            let addr = h.addr.expect("responsive");
            if self.track_widths {
                self.per_ttl.entry(h.probe_ttl).or_default().insert(addr);
            }
            if addr != trace.dst {
                fp = (fp ^ u64::from(u32::from(addr))).wrapping_mul(0x100_0000_01b3);
            }
        }
        if let Err(i) = self.paths.binary_search(&fp) {
            self.paths.insert(i, fp);
        }
    }

    /// Flows the stopping rule currently demands: having seen `k`
    /// distinct transit paths, `n_k` flows must fail to show a
    /// `(k+1)`-th before the enumeration is declared complete.
    fn required(&mut self) -> usize {
        let k = self.paths.len();
        if self.nk_memo.0 != k {
            // Paths only accumulate, so the previous threshold is a
            // valid floor for the next search.
            self.nk_memo = (k, nk_threshold_from(k, self.confidence, self.nk_memo.1));
        }
        self.nk_memo.1
    }
}

/// Runs one stopping-rule sweep over an ordered candidate list of
/// `(dst, flow)` ladder walks. Exhaustive consumes every candidate;
/// the stochastic modes stop once the widest hop's `n_k` threshold is
/// met (or the candidates run out — `exhausted`). MDA additionally
/// re-confirms every divergent hop with steered flows, and re-enters
/// the vertical sweep when confirmation widened a hop.
fn stopping_sweep(
    core: ProbeCore<'_>,
    vp: Ipv4Addr,
    candidates: &[(Ipv4Addr, u64)],
    strategy: ProbingStrategy,
    confidence: f64,
    injected: &mut FaultCounts,
) -> Sweep {
    let mut sw = Sweep::new(strategy, confidence);
    let mut used = 0usize;
    loop {
        loop {
            let wanted = match strategy {
                ProbingStrategy::Exhaustive => candidates.len(),
                _ => sw.required(),
            };
            if used >= wanted.min(candidates.len()) {
                sw.exhausted = wanted > candidates.len();
                break;
            }
            let (dst, flow) = candidates[used];
            let (trace, probes) = core.trace_with_flow_counted(vp, dst, flow, injected);
            sw.probes += probes;
            // The oracle consumes every candidate regardless, so it
            // skips the stopping-rule bookkeeping entirely.
            if strategy != ProbingStrategy::Exhaustive {
                sw.observe(&trace);
            }
            sw.traces.push(trace);
            used += 1;
        }
        if strategy != ProbingStrategy::Mda || candidates.is_empty() {
            break;
        }
        if !confirm_hops(core, vp, candidates[0], &mut sw) {
            break;
        }
    }
    sw
}

/// Whether a hop's current width still needs steered re-confirmation.
fn needs_confirmation(sw: &Sweep, ttl: u8, width: usize) -> bool {
    width >= 2 && width > sw.confirmed.get(&ttl).copied().unwrap_or(0)
}

/// MDA's per-hop re-confirmation: one reconnaissance walk identifies
/// the routers along the base flow's path, then every hop whose
/// *successor* TTL shows several interfaces is re-probed with flows
/// steered through each ECMP index of that router. Returns whether any
/// hop widened (the caller then re-enters the vertical sweep, because
/// a wider hop raises the stopping threshold).
fn confirm_hops(
    core: ProbeCore<'_>,
    vp: Ipv4Addr,
    base: (Ipv4Addr, u64),
    sw: &mut Sweep,
) -> bool {
    let (dst, base_flow) = base;
    let max = core.opts.max_ttl as usize;
    let mut events = Vec::new();
    let _ = probe_ladder(core.net, vp, dst, base_flow, max, &mut events, None);
    let mut grew = false;
    for (i, ev) in events.iter().enumerate() {
        let ProbeReply::TimeExceeded { router, .. } = ev else { continue };
        let next_ttl = i as u8 + 2;
        let width = sw.per_ttl.get(&next_ttl).map_or(0, |set| set.len());
        if !needs_confirmation(sw, next_ttl, width) {
            continue;
        }
        sw.confirmed.insert(next_ttl, width);
        for flow in steering_flows(base_flow, *router, width) {
            let mut walk = Vec::new();
            let _ = probe_ladder(core.net, vp, dst, flow, max, &mut walk, None);
            sw.probes += walk.len() as u64;
            sw.confirmations += 1;
            for (j, step) in walk.iter().enumerate() {
                if let ProbeReply::TimeExceeded { addr, .. } = step {
                    grew |= sw
                        .per_ttl
                        .entry(j as u8 + 1)
                        .or_default()
                        .insert(*addr);
                }
            }
        }
    }
    grew
}

/// One `(vp, /24 host group)` unit of a stochastic campaign: hosts are
/// probed in order under their own Paris flows (within a /24 the hosts
/// *are* the flow variation — same prefix FEC, different hashes) until
/// the stopping rule settles or the hosts run out. Returns the emitted
/// traces — byte-identical to what the exhaustive campaign would emit
/// for the probed pairs — plus the group's budget tallies.
pub(crate) fn probe_group(
    core: ProbeCore<'_>,
    vp: Ipv4Addr,
    hosts: &[Ipv4Addr],
    strategy: ProbingStrategy,
    injected: &mut FaultCounts,
) -> (Vec<Trace>, crate::probe::ProbeBudget) {
    let candidates: Vec<(Ipv4Addr, u64)> =
        hosts.iter().map(|&dst| (dst, core.flow(vp, dst))).collect();
    let sw = stopping_sweep(core, vp, &candidates, strategy, DEFAULT_CONFIDENCE, injected);
    let mut budget = crate::probe::ProbeBudget {
        flows_traced: sw.traces.len() as u64,
        probes_sent: sw.probes,
        confirmations: sw.confirmations,
        ..Default::default()
    };
    if sw.exhausted {
        budget.groups_exhausted = 1;
    } else {
        budget.groups_stopped = 1;
    }
    (sw.traces, budget)
}

/// Splits a destination list into runs sharing a /24 — the host groups
/// the campaign stopping rule operates on. The probing list keeps a
/// prefix's hosts adjacent, so a linear scan suffices.
pub(crate) fn prefix_groups(dsts: &[Ipv4Addr]) -> Vec<(usize, usize)> {
    let mut groups = Vec::new();
    let mut start = 0usize;
    for i in 1..=dsts.len() {
        if i == dsts.len() || u32::from(dsts[i]) >> 8 != u32::from(dsts[start]) >> 8 {
            groups.push((start, i));
            start = i;
        }
    }
    groups
}

impl Prober<'_> {
    /// MDA multipath discovery towards one destination: traces the
    /// destination under flow identifiers varied per
    /// [`mda_paths`](Prober::mda_paths)'s derivation, but stops by the
    /// [`nk_threshold`] rule instead of a fixed count (or sweeps the
    /// whole budget under [`ProbingStrategy::Exhaustive`] — the
    /// oracle). Returns the distinct IP paths plus the probe bill.
    pub fn mda_discover(
        &self,
        vp: Ipv4Addr,
        dst: Ipv4Addr,
        opts: &MdaOptions,
    ) -> MdaDiscovery {
        let core = self.core();
        let mut injected = FaultCounts::default();
        let candidates: Vec<(Ipv4Addr, u64)> = (0..opts.max_flows.max(1))
            .map(|k| {
                let flow = splitmix64(
                    (u32::from(vp) as u64)
                        ^ ((u32::from(dst) as u64) << 32)
                        ^ (k as u64) << 17,
                );
                (dst, flow)
            })
            .collect();
        let sw = stopping_sweep(
            core,
            vp,
            &candidates,
            opts.strategy,
            opts.confidence,
            &mut injected,
        );
        self.merge_injected(injected);
        let paths: BTreeSet<Vec<Ipv4Addr>> = sw
            .traces
            .iter()
            .map(|t| t.responsive_hops().map(|h| h.addr.expect("responsive")).collect())
            .collect();
        MdaDiscovery {
            paths: paths.into_iter().collect(),
            flows_traced: sw.traces.len() as u64,
            probes_sent: sw.probes,
            confirmations: sw.confirmations,
            exhausted: sw.exhausted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataplane::ecmp_index;
    use crate::internet::{Internet, MplsConfig};
    use crate::probe::{ProbeOptions, Prober};
    use crate::topology::{AsSpec, RouterId, Topology, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;

    /// A transit rich in forwarding diversity: balanced ECMP diamonds
    /// *and* parallel link bundles, so both hash domains engage.
    fn ecmp_world() -> Internet {
        let specs = vec![
            AsSpec::transit(
                1,
                "t",
                Vendor::Cisco,
                TopologyParams {
                    core_routers: 6,
                    border_routers: 2,
                    ecmp_diamonds: 2,
                    parallel_bundles: 1,
                    parallel_width: 2,
                    ..Default::default()
                },
            ),
            AsSpec::stub(100, "src", 0, 1),
            AsSpec::stub(200, "dst", 4, 0),
        ];
        let peerings = vec![(Asn(100), Asn(1), 1), (Asn(1), Asn(200), 1)];
        let topo = Topology::build(&specs, &peerings);
        let mut configs = std::collections::BTreeMap::new();
        configs.insert(Asn(1), MplsConfig::ldp_default());
        Internet::new(topo, &configs)
    }

    #[test]
    fn nk_thresholds_match_the_mda_table() {
        // The published 95%-confidence MDA table.
        let expected = [6, 11, 16, 21, 27, 33, 38, 44];
        for (k, want) in expected.iter().enumerate() {
            assert_eq!(nk_threshold(k + 1, 0.95), *want, "n_{}", k + 1);
        }
        // Higher confidence demands more probes, never fewer.
        for k in 1..=8 {
            assert!(nk_threshold(k, 0.99) > nk_threshold(k, 0.95), "k = {k}");
        }
        // Degenerate start: the first probe is always allowed.
        assert_eq!(nk_threshold(0, 0.95), 1);
    }

    #[test]
    fn steering_flows_cover_every_ecmp_index() {
        for router in [0u32, 3, 17, 41] {
            let router = RouterId(router);
            for n in 2..=5usize {
                let flows = steering_flows(0xFEED, router, n);
                assert_eq!(flows.len(), n);
                for (i, flow) in flows.iter().enumerate() {
                    assert_eq!(ecmp_index(*flow, router, n), i, "router {router:?} n {n}");
                }
            }
        }
    }

    #[test]
    fn mda_paths_shim_matches_exhaustive_mda_discover() {
        // The deprecation contract: `mda_paths(vp, dst, n)` is exactly
        // `mda_discover` under the exhaustive strategy with the old
        // count as `max_flows` — same flow derivation, same path set.
        let net = ecmp_world();
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(1);
        for &vp in &vps {
            for &dst in &dsts {
                for flows in [1usize, 4, 16] {
                    #[allow(deprecated)]
                    let old = prober.mda_paths(vp, dst, flows);
                    let new = prober.mda_discover(
                        vp,
                        dst,
                        &MdaOptions {
                            strategy: ProbingStrategy::Exhaustive,
                            max_flows: flows,
                            ..MdaOptions::default()
                        },
                    );
                    assert_eq!(old, new.paths, "shim diverged at {vp} → {dst}, {flows} flows");
                }
            }
        }
    }

    #[test]
    fn stochastic_discovery_is_a_subset_of_the_oracle_with_high_recall() {
        let net = ecmp_world();
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(1);
        let oracle_opts = MdaOptions {
            strategy: ProbingStrategy::Exhaustive,
            ..MdaOptions::default()
        };
        let (mut found, mut total) = (0usize, 0usize);
        let (mut oracle_probes, mut lite_probes, mut mda_probes) = (0u64, 0u64, 0u64);
        for &vp in &vps {
            for &dst in &dsts {
                let oracle = prober.mda_discover(vp, dst, &oracle_opts);
                let lite = prober.mda_discover(vp, dst, &MdaOptions::default());
                let mda = prober.mda_discover(
                    vp,
                    dst,
                    &MdaOptions { strategy: ProbingStrategy::Mda, ..MdaOptions::default() },
                );
                let oracle_set: std::collections::BTreeSet<_> =
                    oracle.paths.iter().collect();
                for p in lite.paths.iter().chain(&mda.paths) {
                    assert!(
                        oracle_set.contains(p),
                        "stochastic path not in the exhaustive enumeration ({vp} -> {dst})"
                    );
                }
                total += oracle.paths.len();
                found += lite.paths.iter().filter(|p| oracle_set.contains(*p)).count();
                oracle_probes += oracle.probes_sent;
                lite_probes += lite.probes_sent;
                mda_probes += mda.probes_sent;
            }
        }
        assert!(total > 0, "the diamond topology must show diversity somewhere");
        let recall = found as f64 / total as f64;
        assert!(recall >= 0.95, "MDA-Lite recall {recall:.3} below the 95% bar");
        assert!(
            lite_probes < oracle_probes,
            "the stopping rule must beat the exhaustive budget \
             ({lite_probes} vs {oracle_probes})"
        );
        assert!(
            mda_probes >= lite_probes,
            "per-hop re-confirmation cannot be free ({mda_probes} vs {lite_probes})"
        );
    }

    #[test]
    fn campaign_stopping_rule_is_deterministic_and_cheaper() {
        let net = ecmp_world();
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(32);
        let run = |strategy: ProbingStrategy, threads: usize| {
            let prober = Prober::new(
                &net,
                ProbeOptions { probing: strategy, ..ProbeOptions::default() },
            );
            prober.campaign_with_budget(&vps, &dsts, threads)
        };
        let (ex_traces, ex_budget) = run(ProbingStrategy::Exhaustive, 1);
        assert_eq!(ex_budget.pairs_probed, ex_budget.pairs_total);
        assert_eq!(ex_budget.pairs_pruned, 0);
        for strategy in [ProbingStrategy::MdaLite, ProbingStrategy::Mda] {
            let (seq, budget) = run(strategy, 1);
            for threads in [2usize, 8] {
                let (par, par_budget) = run(strategy, threads);
                assert_eq!(par, seq, "{strategy:?} diverged at {threads} threads");
                assert_eq!(par_budget, budget, "{strategy:?} budget at {threads} threads");
            }
            assert!(
                budget.pairs_pruned > 0,
                "{strategy:?} pruned nothing out of {} pairs",
                budget.pairs_total
            );
            assert!(
                budget.probes_sent < ex_budget.probes_sent,
                "{strategy:?} spent {} probes, exhaustive {}",
                budget.probes_sent,
                ex_budget.probes_sent
            );
            // Every emitted trace is exactly the exhaustive campaign's
            // trace for that pair (a filtered subset, not a variation).
            let ex_by_key: std::collections::BTreeMap<_, _> =
                ex_traces.iter().map(|t| ((t.src, t.dst), t)).collect();
            for t in &seq {
                assert_eq!(ex_by_key[&(t.src, t.dst)], t);
            }
        }
    }

    #[test]
    fn prefix_groups_split_on_slash24_boundaries() {
        let dsts: Vec<Ipv4Addr> = vec![
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
            "10.0.1.1".parse().unwrap(),
            "10.0.2.1".parse().unwrap(),
            "10.0.2.2".parse().unwrap(),
            "10.0.2.3".parse().unwrap(),
        ];
        assert_eq!(prefix_groups(&dsts), vec![(0, 2), (2, 3), (3, 6)]);
        assert_eq!(prefix_groups(&[]), Vec::<(usize, usize)>::new());
    }
}