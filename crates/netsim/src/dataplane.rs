//! The MPLS/IP data plane: one probe, one walk.
//!
//! [`probe`] injects a single traceroute probe (a TTL-limited packet)
//! at a vantage point and walks it router by router, reproducing the
//! behaviours LPR later decodes:
//!
//! * IP TTL decrement, and — inside tunnels — LSE-TTL decrement with
//!   `ttl-propagate` copying the IP TTL into the pushed entry (§2.3);
//! * label push at the ingress LER (LDP towards the BGP next-hop's
//!   loopback, or one of the pair's RSVP-TE LSPs selected per
//!   destination prefix — the *multi-FEC on destination basis* the
//!   paper singles out);
//! * label swap with per-router LDP scope, per-LSP RSVP-TE labels;
//! * penultimate-hop popping (implicit-null) or UHP (explicit-null);
//! * ECMP across equal-cost next hops **and** parallel links, hashed on
//!   the flow identifier (Paris traceroute keeps it constant per
//!   trace);
//! * RFC 4950 label-stack quoting in `time-exceeded` replies, with the
//!   reply sourced from the incoming interface.
//!
//! Invisible tunnels (`ttl-propagate` off) are modelled as a teleport:
//! interior LSRs neither decrement the IP TTL nor appear in traces.

use crate::internet::{splitmix64, Internet, TunnelVisibility};
use crate::rsvp::TeLsp;
use crate::topology::{AsId, RouterId, Topology};
use lpr_core::label::{Label, Lse};
use std::net::Ipv4Addr;

/// The outcome of one probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProbeReply {
    /// TTL expired at a router.
    TimeExceeded {
        /// The expiring router.
        router: RouterId,
        /// Reply source: the incoming interface of the probe.
        addr: Ipv4Addr,
        /// RFC 4950 quoted label stack (empty when the packet carried
        /// no labels or the router does not implement the extension).
        stack: Vec<Lse>,
        /// The reply detoured via the tunnel tail before returning
        /// (an interior LSR of an implicit tunnel cannot route the
        /// ICMP itself) — the probe layer inflates the hop's RTT by
        /// [`crate::probe::UTURN_DETOUR_US`], TNT's RTLA signature.
        uturn: bool,
    },
    /// The destination replied.
    Echo {
        /// The destination address.
        addr: Ipv4Addr,
    },
    /// No route to the destination (or unknown endpoint).
    Unreachable,
}

/// How a [`probe_ladder`] walk ended, after its recorded expiry events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum LadderEnd {
    /// The destination replies to every TTL beyond the recorded events.
    Echo {
        /// The destination address.
        addr: Ipv4Addr,
    },
    /// TTLs beyond the recorded events go unanswered (no route, or an
    /// unknown endpoint: with zero events recorded every TTL is
    /// unanswered).
    Unreachable,
    /// `max_events` expiries were recorded before any terminal.
    Truncated,
}

#[derive(Debug)]
enum TunnelKind<'a> {
    Ldp { ingress: RouterId, egress: RouterId },
    Te { lsp: &'a TeLsp, pos: usize },
    /// Only the VPN service label remains (the transport label was
    /// popped by the penultimate router): the packet is on its final
    /// hop towards the egress PE, which pops the service label.
    Service,
}

#[derive(Debug)]
struct Tunnel<'a> {
    kind: TunnelKind<'a>,
    /// The (transport) label the packet carried when arriving at the
    /// current router (what RFC 4950 would quote at the top).
    arriving: Option<Label>,
    /// The bottom-of-stack VPN service label, when the pair carries
    /// RFC 4364 traffic.
    service: Option<Label>,
    /// How this tunnel presents itself to traceroute. Anything but
    /// [`TunnelVisibility::Explicit`] comes from the pair's
    /// [`crate::internet::VisibilityMix`] assignment and alters what
    /// the expiry events show (stack suppression, u-turn RTTs, the
    /// opaque one-hop stack).
    vis: TunnelVisibility,
}

impl Tunnel<'_> {
    /// The RFC 4950 stack quoted when a probe expires here.
    ///
    /// The quoted TTL is always exactly 1: the LSE TTL is pushed as a
    /// copy of the remaining IP TTL (`ttl-propagate`) and both
    /// decrement once per visible hop, so the entry whose TTL runs out
    /// is received with TTL 1 — never 0, never more.
    fn quoted_stack(&self) -> Vec<Lse> {
        let mut stack = Vec::new();
        match self.kind {
            TunnelKind::Service => {
                if let Some(svc) = self.service {
                    stack.push(Lse::new(svc, 0, true, 1));
                }
            }
            _ => {
                if let Some(top) = self.arriving {
                    stack.push(Lse::new(top, 0, self.service.is_none(), 1));
                    if let Some(svc) = self.service {
                        stack.push(Lse::new(svc, 0, true, 1));
                    }
                }
            }
        }
        stack
    }

    /// The quirky stack an opaque tunnel's tail LSR quotes: a single
    /// entry whose LSE TTL is 255 — a *fresh*, non-propagated entry
    /// (the whole LSP collapsed into this one hop), where propagated
    /// entries always expire at exactly TTL 1. Quoted regardless of
    /// the AS's RFC 4950 knob: the implausible TTL *is* the artifact
    /// TNT keys its opaque trigger on.
    fn opaque_stack(&self) -> Vec<Lse> {
        match self.arriving {
            Some(top) => vec![Lse::new(top, 0, true, 255)],
            None => Vec::new(),
        }
    }
}

/// One hidden- or invisible-tunnel traversal a forwarding walk made —
/// ground truth the revelation property tests check against. Recorded
/// only when [`probe_ladder`] is handed an oracle sink, and only for
/// LDP tunnels whose visibility is not explicit (explicit tunnels need
/// no revelation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleTraversal {
    /// The AS the tunnel runs through.
    pub as_id: AsId,
    /// Ingress LER.
    pub ingress: RouterId,
    /// Egress LER.
    pub egress: RouterId,
    /// The address the trace shows for the ingress LER (its arrival
    /// interface) — what a revelation trigger reports as the tunnel's
    /// near end.
    pub ingress_addr: Ipv4Addr,
    /// The address the trace shows for the egress LER, once the walk
    /// arrives there (`None` when the walk ended inside the tunnel).
    pub egress_addr: Option<Ipv4Addr>,
    /// How the tunnel presented itself.
    pub visibility: TunnelVisibility,
    /// Arrival addresses of the interior LSRs this flow's LSP pins,
    /// in order (empty for an ingress adjacent to its egress).
    pub interior: Vec<Ipv4Addr>,
}

/// Flow-hash selection of one index among `n`.
fn pick(flow: u64, router: RouterId, n: usize, salt: u64) -> usize {
    debug_assert!(n > 0);
    (splitmix64(flow ^ ((router.0 as u64) << 32) ^ (salt << 56)) % n as u64) as usize
}

/// Hash-domain salt for equal-cost **next-hop** choice.
pub const ECMP_SALT: u64 = 0x22;

/// Hash-domain salt for **parallel-link** (bundle member) choice; a
/// distinct domain from [`ECMP_SALT`] so the two levels of balancing
/// decorrelate even at the same router.
pub const LINK_SALT: u64 = 0x11;

/// The explicit Paris flow-id → ECMP-hash mapping: the equal-cost
/// next-hop index a flow identifier selects at `router` when `n` next
/// hops are on offer. This *is* the function the forwarding walk
/// applies (per-flow load balancing: constant within a trace), exposed
/// so an MDA prober can steer flows deterministically towards a chosen
/// branch instead of sampling the flow space blind.
pub fn ecmp_index(flow: u64, router: RouterId, n: usize) -> usize {
    pick(flow, router, n, ECMP_SALT)
}

/// The parallel-link member index a flow identifier selects at
/// `router` across an `n`-wide bundle — the [`ecmp_index`] companion
/// for the second balancing level.
pub fn link_index(flow: u64, router: RouterId, n: usize) -> usize {
    pick(flow, router, n, LINK_SALT)
}

/// Searches the flow space around `base` for identifiers covering every
/// ECMP index at `router`: slot `i` of the result satisfies
/// `ecmp_index(flow, router, n) == i`. The search is deterministic
/// (seeded walks of `splitmix64`), and with a uniform hash the expected
/// cost is `O(n log n)` trials; a slot that stays uncovered after the
/// bounded search falls back to `base` (vanishingly unlikely for the
/// fan-outs real routers have).
pub fn steering_flows(base: u64, router: RouterId, n: usize) -> Vec<u64> {
    let mut out: Vec<Option<u64>> = vec![None; n];
    let mut found = 0usize;
    for attempt in 0..(64 * n.max(1) as u64) {
        let flow = if attempt == 0 {
            base
        } else {
            splitmix64(base ^ (attempt << 7) ^ ((router.0 as u64) << 40))
        };
        let i = ecmp_index(flow, router, n);
        if out[i].is_none() {
            out[i] = Some(flow);
            found += 1;
            if found == n {
                break;
            }
        }
    }
    out.into_iter().map(|slot| slot.unwrap_or(base)).collect()
}

/// The per-/24 selection key used for BGP tie-breaking and TE LSP
/// binding (the FEC is destination-prefix based).
pub fn prefix_key(dst: Ipv4Addr) -> u64 {
    splitmix64((u32::from(dst) >> 8) as u64)
}

/// Chooses one of the (possibly parallel) links from `cur` towards the
/// *known* adjacent router `next`; returns the chosen interface id's
/// peer-side arrival address.
fn pick_link(topo: &Topology, cur: RouterId, next: RouterId, flow: u64) -> Option<Ipv4Addr> {
    let mut ifaces: Vec<_> = topo
        .intra_neighbors(cur)
        .filter(|(_, peer)| *peer == next)
        .map(|(iface, _)| iface.id)
        .collect();
    ifaces.sort();
    if ifaces.is_empty() {
        return None;
    }
    let chosen = ifaces[pick(flow, cur, ifaces.len(), LINK_SALT)];
    Some(topo.iface(topo.iface(chosen).peer).addr)
}

/// Walks the flow's ECMP choice chain from `from` towards `to` — the
/// router sequence an LDP tunnel for this flow pins (`gate` is the
/// tunnel ingress, the ECMP gate key the data plane uses along an
/// LSP). Returns the interior routers strictly between the endpoints,
/// each with the arrival address a trace would show, or `None` when no
/// route exists.
fn flow_path_interior(
    net: &Internet,
    as_id: AsId,
    from: RouterId,
    to: RouterId,
    gate: RouterId,
    flow: u64,
) -> Option<Vec<(RouterId, Ipv4Addr)>> {
    let topo = &net.topo;
    let mut out = Vec::new();
    let mut w = from;
    loop {
        let nhs = net.ecmp_nexthops(as_id, w, to, gate);
        if nhs.is_empty() {
            return None;
        }
        let iface_id = nhs[pick(flow, w, nhs.len(), ECMP_SALT)];
        let peer_iface = topo.iface(topo.iface(iface_id).peer);
        if peer_iface.router == to {
            return Some(out);
        }
        out.push((peer_iface.router, peer_iface.addr));
        if out.len() > 4096 {
            return None; // unreachable on sane topologies
        }
        w = peer_iface.router;
    }
}

/// Sends one probe with the given TTL from a vantage point towards a
/// destination; `flow` is the Paris flow identifier (constant per
/// trace).
///
/// Implemented on the single-walk [`probe_ladder`]: since path choice
/// never depends on the TTL, the reply to TTL `t` is the `t`-th expiry
/// event of one walk (or the walk's terminal beyond the last expiry).
pub fn probe(net: &Internet, vp: Ipv4Addr, dst: Ipv4Addr, probe_ttl: u8, flow: u64) -> ProbeReply {
    // TTL 0 expires on first arrival exactly like TTL 1.
    let want = (probe_ttl as usize).max(1);
    let mut events = Vec::new();
    match probe_ladder(net, vp, dst, flow, want, &mut events, None) {
        LadderEnd::Truncated => events.pop().expect("truncated ladder recorded events"),
        LadderEnd::Echo { addr } => ProbeReply::Echo { addr },
        LadderEnd::Unreachable => ProbeReply::Unreachable,
    }
}

/// Walks the forwarding path from `vp` towards `dst` **once**, pushing
/// onto `out` the [`ProbeReply::TimeExceeded`] a probe of TTL
/// `out.len() + 1` would get — every walk step consumes exactly one TTL
/// unit, so the i-th arrival is where the i-th TTL dies. Returns how
/// the path ends for every TTL past the recorded events.
///
/// This turns the O(hops²) per-TTL re-walk of a traceroute ladder into
/// a single O(hops) pass; [`probe`] remains as the one-TTL view.
pub(crate) fn probe_ladder(
    net: &Internet,
    vp: Ipv4Addr,
    dst: Ipv4Addr,
    flow: u64,
    max_events: usize,
    out: &mut Vec<ProbeReply>,
    mut oracle: Option<&mut Vec<OracleTraversal>>,
) -> LadderEnd {
    let topo = &net.topo;
    let Some(vp_at) = net.vp_attachment(vp) else {
        return LadderEnd::Unreachable;
    };
    // Infrastructure destinations (revelation probes aimed at a router
    // address a trace exposed) are reached via the IGP and — unless the
    // AS binds infrastructure FECs — never label-switched: TNT's DPR
    // hinges on exactly this.
    let (dest_at, infra_dest) = match net.dest_attachment(dst) {
        Some(at) => (Some(at), false),
        None => match net.infra_attachment(dst) {
            Some(at) => (Some(at), true),
            None => (None, false),
        },
    };

    let mut cur = vp_at.router;
    let mut arrival = topo.router(cur).loopback;
    let mut tunnel: Option<Tunnel<'_>> = None;
    let mut entered_as = true;
    // Index into the oracle sink of the traversal whose egress the
    // walk has not reached yet (tunnels are sequential, so one slot).
    let mut pending_oracle: Option<usize> = None;

    loop {
        let as_id = topo.router(cur).as_id;
        let cfg = net.config(as_id);

        // Oracle bookkeeping: a pending traversal completes when the
        // walk arrives at its egress; record the address a trace shows.
        if let (Some(orc), Some(idx)) = (oracle.as_deref_mut(), pending_oracle) {
            if orc[idx].egress == cur {
                orc[idx].egress_addr = Some(arrival);
                pending_oracle = None;
            }
        }

        // --- TTL expiry on arrival: the probe whose last TTL unit was
        // consumed reaching this router dies here. ---------------------
        let stack = match &tunnel {
            Some(t) if t.vis == TunnelVisibility::Opaque => t.opaque_stack(),
            Some(t) if cfg.rfc4950 && t.vis != TunnelVisibility::Implicit => t.quoted_stack(),
            _ => Vec::new(),
        };
        let uturn = matches!(
            &tunnel,
            Some(t) if t.vis == TunnelVisibility::Implicit
                && matches!(t.kind, TunnelKind::Ldp { egress, .. } if egress != cur)
        );
        out.push(ProbeReply::TimeExceeded { router: cur, addr: arrival, stack, uturn });
        if out.len() >= max_events {
            return LadderEnd::Truncated;
        }

        // --- UHP: explicit-null arrives at the egress LER, which pops
        // and routes the inner packet. A lone service label (PHP'd
        // transport) is likewise popped by the egress PE.
        if let Some(t) = &tunnel {
            let at_service_end = matches!(t.kind, TunnelKind::Service);
            if t.arriving == Some(Label::IPV4_EXPLICIT_NULL) || at_service_end {
                tunnel = None;
            }
        }

        // --- Local delivery ------------------------------------------
        if tunnel.is_none() {
            if let Some(at) = dest_at {
                if at.router == cur {
                    return LadderEnd::Echo { addr: dst };
                }
            }
        }

        // --- Forwarding ----------------------------------------------
        match tunnel.take() {
            Some(Tunnel { kind: TunnelKind::Te { lsp, pos }, service, .. }) => {
                let next = lsp.path[pos + 1];
                let Some(next_arrival) = pick_link(topo, cur, next, flow) else {
                    return LadderEnd::Unreachable;
                };
                let arr = lsp.arriving_label(pos + 1);
                let at_egress = pos + 1 == lsp.path.len() - 1;
                if arr.is_none() && at_egress {
                    // PHP: the transport label pops here. Without a
                    // service label the egress receives plain IP;
                    // with one, the service entry rides the last hop.
                    if service.is_some() {
                        tunnel = Some(Tunnel {
                            kind: TunnelKind::Service,
                            arriving: None,
                            service,
                            vis: TunnelVisibility::Explicit,
                        });
                    }
                } else {
                    tunnel = Some(Tunnel {
                        kind: TunnelKind::Te { lsp, pos: pos + 1 },
                        arriving: arr,
                        service,
                        vis: TunnelVisibility::Explicit,
                    });
                }
                cur = next;
                arrival = next_arrival;
                entered_as = false;
            }
            // A lone service label is popped on arrival at the egress
            // PE (handled above); it never reaches the forwarding
            // stage.
            Some(Tunnel { kind: TunnelKind::Service, .. }) => {
                return LadderEnd::Unreachable;
            }
            Some(Tunnel { kind: TunnelKind::Ldp { ingress, egress }, service, vis, .. }) => {
                let nhs = net.ecmp_nexthops(as_id, cur, egress, ingress);
                if nhs.is_empty() {
                    return LadderEnd::Unreachable;
                }
                // An opaque tunnel's artifact is its tail LSR's single
                // quirky hop; past the tail the walk is ordinary.
                let vis = if vis == TunnelVisibility::Opaque {
                    TunnelVisibility::Explicit
                } else {
                    vis
                };
                let iface_id = nhs[pick(flow, cur, nhs.len(), ECMP_SALT)];
                let peer_iface = topo.iface(topo.iface(iface_id).peer);
                let next = peer_iface.router;
                let ldp = net.ldp(as_id).expect("LDP tunnel implies LDP state");
                tunnel = match ldp.advertised(next, egress) {
                    crate::ldp::LdpLabel::Label(l) => Some(Tunnel {
                        kind: TunnelKind::Ldp { ingress, egress },
                        arriving: Some(l),
                        service,
                        vis,
                    }),
                    crate::ldp::LdpLabel::ImplicitNull => {
                        if service.is_some() {
                            Some(Tunnel {
                                kind: TunnelKind::Service,
                                arriving: None,
                                service,
                                vis: TunnelVisibility::Explicit,
                            })
                        } else {
                            None
                        }
                    }
                    crate::ldp::LdpLabel::ExplicitNull => Some(Tunnel {
                        kind: TunnelKind::Ldp { ingress, egress },
                        arriving: Some(Label::IPV4_EXPLICIT_NULL),
                        service,
                        vis,
                    }),
                };
                cur = next;
                arrival = peer_iface.addr;
                entered_as = false;
            }
            None => {
                // Plain IP: figure out the intra-AS target.
                let internal = dest_at.filter(|at| at.as_id == as_id);
                let target = if let Some(at) = internal {
                    at.router
                } else {
                    let Some(at) = dest_at else { return LadderEnd::Unreachable };
                    let Some(opt) = net.bgp().egress_for(as_id, at.as_id, prefix_key(dst))
                    else {
                        return LadderEnd::Unreachable;
                    };
                    if opt.egress == cur {
                        // Leave the AS over the chosen peering link.
                        let peer_iface = topo.iface(topo.iface(opt.out_iface).peer);
                        cur = peer_iface.router;
                        arrival = peer_iface.addr;
                        entered_as = true;
                        continue;
                    }
                    opt.egress
                };

                // Ingress LER behaviour: push a label when this AS
                // tunnels this pair and the packet just entered.
                let may_tunnel = entered_as
                    && cfg.enabled
                    && cur != target
                    && (internal.is_none() || cfg.tunnel_internal_dests)
                    && (!infra_dest || cfg.infra_in_fec)
                    && net.pair_deployed(as_id, cur, target);

                // Per-pair visibility of the would-be LDP tunnel. TE
                // pairs stay explicit, and a legacy `ttl-propagate off`
                // AS hides every deployed pair without consulting the
                // mix.
                let legacy_invisible = !cfg.ttl_propagate;
                let vis = if may_tunnel
                    && !legacy_invisible
                    && !net.pair_te(as_id, cur, target)
                {
                    net.pair_visibility(as_id, cur, target)
                } else {
                    TunnelVisibility::Explicit
                };

                if may_tunnel && (legacy_invisible || vis != TunnelVisibility::Explicit) {
                    if let Some(orc) = oracle.as_deref_mut() {
                        let interior = flow_path_interior(net, as_id, cur, target, cur, flow)
                            .unwrap_or_default();
                        orc.push(OracleTraversal {
                            as_id,
                            ingress: cur,
                            egress: target,
                            ingress_addr: arrival,
                            egress_addr: None,
                            visibility: if legacy_invisible {
                                TunnelVisibility::Invisible
                            } else {
                                vis
                            },
                            interior: interior.into_iter().map(|(_, a)| a).collect(),
                        });
                        pending_oracle = Some(orc.len() - 1);
                    }
                }

                if may_tunnel && (legacy_invisible || vis == TunnelVisibility::Invisible) {
                    // Invisible tunnel: interior hops neither decrement
                    // the IP TTL nor reply; the packet reappears at the
                    // tunnel tail.
                    let loopback = topo.router(target).loopback;
                    if !legacy_invisible {
                        // Mix-driven invisible pair: the ingress
                        // pipelines the pop, so the egress also answers
                        // the TTL that died inside the tunnel — the
                        // duplicate-IP artifact TNT's DPR triggers on.
                        out.push(ProbeReply::TimeExceeded {
                            router: target,
                            addr: loopback,
                            stack: Vec::new(),
                            uturn: false,
                        });
                        if out.len() >= max_events {
                            return LadderEnd::Truncated;
                        }
                    }
                    cur = target;
                    arrival = loopback;
                    entered_as = false;
                    continue;
                }

                if may_tunnel && vis == TunnelVisibility::Opaque {
                    let Some(interior) =
                        flow_path_interior(net, as_id, cur, target, cur, flow)
                    else {
                        return LadderEnd::Unreachable;
                    };
                    if let Some(&(tail, tail_addr)) = interior.last() {
                        // The LSP collapses into its tail LSR: one
                        // labelled hop quoting a fresh (TTL 255) LSE,
                        // then the ordinary step to the egress.
                        let ldp = net.ldp(as_id).expect("MPLS enabled implies LDP state");
                        let label = match ldp.advertised(tail, target) {
                            crate::ldp::LdpLabel::Label(l) => Some(l),
                            crate::ldp::LdpLabel::ExplicitNull => {
                                Some(Label::IPV4_EXPLICIT_NULL)
                            }
                            crate::ldp::LdpLabel::ImplicitNull => None,
                        };
                        tunnel = Some(Tunnel {
                            kind: TunnelKind::Ldp { ingress: cur, egress: target },
                            arriving: label,
                            service: None,
                            vis: TunnelVisibility::Opaque,
                        });
                        cur = tail;
                        arrival = tail_addr;
                        entered_as = false;
                        continue;
                    }
                    // Ingress adjacent to its egress: nothing to
                    // collapse; fall through to the ordinary hop (the
                    // LDP push below sees implicit-null).
                }

                // VPN pairs stack a per-VRF service label under the
                // transport label (external destinations only: the
                // customer is identified by the destination AS).
                let service = if may_tunnel
                    && internal.is_none()
                    && net.pair_vpn(as_id, cur, target)
                {
                    dest_at.map(|at| {
                        net.service_label(target, topo.as_of(at.as_id).asn)
                    })
                } else {
                    None
                };

                if may_tunnel && net.pair_te(as_id, cur, target) {
                    let lsps = net.te_lsps(as_id, cur, target);
                    let lsp = &lsps[(prefix_key(dst) % lsps.len() as u64) as usize];
                    let next = lsp.path[1];
                    let Some(next_arrival) = pick_link(topo, cur, next, flow) else {
                        return LadderEnd::Unreachable;
                    };
                    let arr = lsp.arriving_label(1);
                    if arr.is_none() && lsp.path.len() == 2 && service.is_none() {
                        // One-hop TE tunnel with PHP: never visible.
                    } else if arr.is_none() && lsp.path.len() == 2 {
                        // One-hop tunnel, but the service label still
                        // rides to the egress PE.
                        tunnel = Some(Tunnel {
                            kind: TunnelKind::Service,
                            arriving: None,
                            service,
                            vis: TunnelVisibility::Explicit,
                        });
                    } else {
                        tunnel = Some(Tunnel {
                            kind: TunnelKind::Te { lsp, pos: 1 },
                            arriving: arr,
                            service,
                            vis: TunnelVisibility::Explicit,
                        });
                    }
                    cur = next;
                    arrival = next_arrival;
                    entered_as = false;
                    continue;
                }

                let nhs = net.ecmp_nexthops(as_id, cur, target, cur);
                if nhs.is_empty() {
                    return LadderEnd::Unreachable;
                }
                let iface_id = nhs[pick(flow, cur, nhs.len(), ECMP_SALT)];
                let peer_iface = topo.iface(topo.iface(iface_id).peer);
                let next = peer_iface.router;

                if may_tunnel {
                    // LDP push: the label is whatever the downstream
                    // router advertised for the egress FEC.
                    let ldp = net.ldp(as_id).expect("MPLS enabled implies LDP state");
                    tunnel = match ldp.advertised(next, target) {
                        crate::ldp::LdpLabel::Label(l) => Some(Tunnel {
                            kind: TunnelKind::Ldp { ingress: cur, egress: target },
                            arriving: Some(l),
                            service,
                            vis,
                        }),
                        // Adjacent egress with PHP: the transport
                        // entry is never visible, but a service label
                        // still rides the hop.
                        crate::ldp::LdpLabel::ImplicitNull => service.map(|_| Tunnel {
                            kind: TunnelKind::Service,
                            arriving: None,
                            service,
                            vis: TunnelVisibility::Explicit,
                        }),
                        crate::ldp::LdpLabel::ExplicitNull => Some(Tunnel {
                            kind: TunnelKind::Ldp { ingress: cur, egress: target },
                            arriving: Some(Label::IPV4_EXPLICIT_NULL),
                            service,
                            vis,
                        }),
                    };
                }
                cur = next;
                arrival = peer_iface.addr;
                entered_as = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::{MplsConfig, TePathMode};
    use crate::topology::{AsSpec, Topology, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;
    use std::collections::BTreeMap;

    fn build(cfg: MplsConfig) -> Internet {
        let specs = vec![
            AsSpec::transit(
                1,
                "t",
                Vendor::Juniper,
                TopologyParams { core_routers: 4, border_routers: 2, ..Default::default() },
            ),
            AsSpec::stub(100, "src", 0, 1),
            AsSpec::stub(200, "dst", 2, 0),
        ];
        let peerings = vec![(Asn(100), Asn(1), 1), (Asn(1), Asn(200), 1)];
        let topo = Topology::build(&specs, &peerings);
        let mut configs = BTreeMap::new();
        configs.insert(Asn(1), cfg);
        Internet::new(topo, &configs)
    }

    fn endpoints(net: &Internet) -> (Ipv4Addr, Ipv4Addr) {
        let vp = net.topo.vantage_points()[0].0;
        let dst = net.topo.destinations(1)[0];
        (vp, dst)
    }

    /// Runs the full TTL ladder and returns the replies.
    fn ladder(net: &Internet, vp: Ipv4Addr, dst: Ipv4Addr) -> Vec<ProbeReply> {
        let flow = 42u64;
        let mut out = Vec::new();
        for ttl in 1..=32 {
            let r = probe(net, vp, dst, ttl, flow);
            let done = matches!(r, ProbeReply::Echo { .. });
            out.push(r);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn trace_reaches_destination() {
        let net = build(MplsConfig::disabled());
        let (vp, dst) = endpoints(&net);
        let replies = ladder(&net, vp, dst);
        assert!(matches!(replies.last(), Some(ProbeReply::Echo { .. })));
        // Without MPLS no reply carries labels.
        for r in &replies {
            if let ProbeReply::TimeExceeded { stack, .. } = r {
                assert!(stack.is_empty());
            }
        }
    }

    #[test]
    fn paris_flow_is_path_stable() {
        let net = build(MplsConfig::ldp_default());
        let (vp, dst) = endpoints(&net);
        let a = ladder(&net, vp, dst);
        let b = ladder(&net, vp, dst);
        assert_eq!(a, b);
    }

    #[test]
    fn ldp_tunnel_is_visible_with_propagation() {
        let net = build(MplsConfig::ldp_default());
        let (vp, dst) = endpoints(&net);
        let replies = ladder(&net, vp, dst);
        let labelled = replies
            .iter()
            .filter(|r| matches!(r, ProbeReply::TimeExceeded { stack, .. } if !stack.is_empty()))
            .count();
        assert!(labelled >= 1, "expected labelled hops, got {replies:?}");
        assert!(matches!(replies.last(), Some(ProbeReply::Echo { .. })));
    }

    #[test]
    fn no_ttl_propagate_hides_the_tunnel() {
        let mut cfg = MplsConfig::ldp_default();
        cfg.ttl_propagate = false;
        let net = build(cfg);
        let (vp, dst) = endpoints(&net);
        let visible = ladder(&net, vp, dst);
        for r in &visible {
            if let ProbeReply::TimeExceeded { stack, .. } = r {
                assert!(stack.is_empty());
            }
        }
        // The invisible tunnel also shortens the apparent path.
        let net2 = build(MplsConfig::ldp_default());
        let full = ladder(&net2, vp, dst);
        assert!(visible.len() < full.len());
    }

    #[test]
    fn no_rfc4950_yields_implicit_tunnel() {
        let mut cfg = MplsConfig::ldp_default();
        cfg.rfc4950 = false;
        let net = build(cfg);
        let (vp, dst) = endpoints(&net);
        let replies = ladder(&net, vp, dst);
        // Hops exist (TTL propagated) but no labels are quoted.
        for r in &replies {
            if let ProbeReply::TimeExceeded { stack, .. } = r {
                assert!(stack.is_empty());
            }
        }
        let net2 = build(MplsConfig::ldp_default());
        assert_eq!(replies.len(), ladder(&net2, vp, dst).len());
    }

    #[test]
    fn php_hides_label_at_egress() {
        let net = build(MplsConfig::ldp_default());
        let (vp, dst) = endpoints(&net);
        let replies = ladder(&net, vp, dst);
        // Find the labelled run; the hop right after it must be
        // unlabelled (the egress LER after PHP).
        let mut last_labelled = None;
        for (i, r) in replies.iter().enumerate() {
            if let ProbeReply::TimeExceeded { stack, .. } = r {
                if !stack.is_empty() {
                    last_labelled = Some(i);
                }
            }
        }
        let i = last_labelled.expect("labelled hops");
        match &replies[i + 1] {
            ProbeReply::TimeExceeded { stack, .. } => assert!(stack.is_empty()),
            ProbeReply::Echo { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn uhp_shows_explicit_null_at_egress() {
        let mut cfg = MplsConfig::ldp_default();
        cfg.php = false;
        let net = build(cfg);
        let (vp, dst) = endpoints(&net);
        let replies = ladder(&net, vp, dst);
        let nulls = replies
            .iter()
            .filter(|r| {
                matches!(r, ProbeReply::TimeExceeded { stack, .. }
                    if stack.first().map(|l| l.label) == Some(Label::IPV4_EXPLICIT_NULL))
            })
            .count();
        assert_eq!(nulls, 1, "{replies:?}");
        assert!(matches!(replies.last(), Some(ProbeReply::Echo { .. })));
    }

    #[test]
    fn te_lsps_differ_in_labels_by_destination_prefix() {
        let net = build(MplsConfig::with_te(1.0, 4, TePathMode::SamePath));
        let vp = net.topo.vantage_points()[0].0;
        // Two destinations in different /24s of the same stub.
        let dests = net.topo.destinations(1);
        assert!(dests.len() >= 2);
        let mut label_seqs = std::collections::BTreeSet::new();
        for &dst in &dests[..2] {
            let labels: Vec<u32> = ladder(&net, vp, dst)
                .iter()
                .filter_map(|r| match r {
                    ProbeReply::TimeExceeded { stack, .. } if !stack.is_empty() => {
                        Some(stack[0].label.value())
                    }
                    _ => None,
                })
                .collect();
            assert!(!labels.is_empty());
            label_seqs.insert(labels);
        }
        assert_eq!(label_seqs.len(), 2, "distinct FECs must expose distinct labels");
    }

    #[test]
    fn unknown_endpoints_are_unreachable() {
        let net = build(MplsConfig::disabled());
        let (vp, dst) = endpoints(&net);
        assert_eq!(
            probe(&net, Ipv4Addr::new(1, 2, 3, 4), dst, 5, 1),
            ProbeReply::Unreachable
        );
        assert_eq!(
            probe(&net, vp, Ipv4Addr::new(1, 2, 3, 4), 5, 1),
            ProbeReply::Unreachable
        );
    }

    #[test]
    fn reply_addresses_are_interface_addresses() {
        let net = build(MplsConfig::ldp_default());
        let (vp, dst) = endpoints(&net);
        let rib = net.topo.rib();
        for r in ladder(&net, vp, dst) {
            if let ProbeReply::TimeExceeded { addr, .. } = r {
                assert!(rib.lookup(addr).is_some(), "{addr} unmapped");
            }
        }
    }
}

#[cfg(test)]
mod corner_tests {
    use super::*;
    use crate::internet::MplsConfig;
    use crate::topology::{AsSpec, Topology, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;
    use std::collections::BTreeMap;

    fn tiny() -> Internet {
        let specs = vec![
            AsSpec::transit(1, "t", Vendor::Cisco, TopologyParams::default()),
            AsSpec::stub(100, "src", 0, 1),
            AsSpec::stub(200, "dst", 1, 0),
        ];
        let peerings = vec![(Asn(100), Asn(1), 1), (Asn(1), Asn(200), 1)];
        let topo = Topology::build(&specs, &peerings);
        let mut configs = BTreeMap::new();
        configs.insert(Asn(1), MplsConfig::ldp_default());
        Internet::new(topo, &configs)
    }

    #[test]
    fn ttl_one_expires_at_the_gateway() {
        let net = tiny();
        let vp = net.topo.vantage_points()[0].0;
        let dst = net.topo.destinations(1)[0];
        match probe(&net, vp, dst, 1, 7) {
            ProbeReply::TimeExceeded { router, stack, .. } => {
                assert_eq!(router, net.vp_attachment(vp).unwrap().router);
                assert!(stack.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn huge_ttl_reaches_the_destination() {
        let net = tiny();
        let vp = net.topo.vantage_points()[0].0;
        let dst = net.topo.destinations(1)[0];
        assert_eq!(probe(&net, vp, dst, 255, 7), ProbeReply::Echo { addr: dst });
    }

    #[test]
    fn every_ttl_gets_exactly_one_terminal_answer() {
        // For each TTL the probe either expires at one router or
        // reaches the destination; once reached, every larger TTL
        // reaches too (no flapping).
        let net = tiny();
        let vp = net.topo.vantage_points()[0].0;
        let dst = net.topo.destinations(1)[0];
        let mut reached_at = None;
        for ttl in 1..=32u8 {
            match probe(&net, vp, dst, ttl, 99) {
                ProbeReply::Echo { .. } => {
                    reached_at.get_or_insert(ttl);
                }
                ProbeReply::TimeExceeded { .. } => {
                    assert!(reached_at.is_none(), "expired after reaching at {reached_at:?}");
                }
                ProbeReply::Unreachable => panic!("unreachable at ttl {ttl}"),
            }
        }
        assert!(reached_at.is_some());
    }

    #[test]
    fn distinct_flows_agree_on_hop_count_without_ecmp() {
        // The default chain has a single path: every flow must see the
        // identical hop sequence.
        let net = tiny();
        let vp = net.topo.vantage_points()[0].0;
        let dst = net.topo.destinations(1)[0];
        let path = |flow: u64| {
            let mut hops = Vec::new();
            for ttl in 1..=32u8 {
                match probe(&net, vp, dst, ttl, flow) {
                    ProbeReply::TimeExceeded { addr, .. } => hops.push(addr),
                    ProbeReply::Echo { .. } => break,
                    ProbeReply::Unreachable => panic!("unreachable"),
                }
            }
            hops
        };
        assert_eq!(path(1), path(2));
        assert_eq!(path(2), path(0xFFFF_FFFF_FFFF_FFFF));
    }
}
