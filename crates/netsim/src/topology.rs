//! Multi-AS topology model and deterministic generator.
//!
//! ## Address plan
//!
//! The `a`-th AS (in build order) owns the block `10.(a+1).0.0/16`:
//!
//! * loopbacks in `10.(a+1).0.0/24`,
//! * point-to-point interface addresses from `10.(a+1).1.0` upwards,
//! * destination prefixes (for stub ASes) `10.(a+1).200.0/24` upwards,
//! * vantage-point hosts from `10.(a+1).240.0` upwards.
//!
//! Interfaces are numbered from the block of the AS owning the router
//! they sit on — including the ends of inter-AS links — so the IntraAS
//! filter of LPR behaves as it does on real data.
//!
//! ## Intra-AS shape
//!
//! A transit AS is generated as a *core chain* with controllable
//! diversity:
//!
//! * `core_routers` form a chain with uniform link cost;
//! * `ecmp_diamonds` chain segments get an equal-cost two-hop bypass
//!   through a dedicated router (ECMP across **disjoint routers**);
//! * `parallel_bundles` chain segments get extra parallel links
//!   (ECMP across **parallel links**, the Fig. 4d pattern);
//! * `border_routers` attach to evenly spread chain positions.
//!
//! This gives precise, seed-stable control over the kind of path
//! diversity each simulated ISP exhibits — which is exactly the factor
//! the LPR classification must recover.

use crate::vendor::Vendor;
use ip2as::Prefix;
use lpr_core::lsp::Asn;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Index of an AS within a [`Topology`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AsId(pub u16);

/// Global router identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RouterId(pub u32);

/// Global interface identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IfaceId(pub u32);

/// The role an AS plays in the simulated Internet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Carries transit traffic between neighbours (may run MPLS).
    Transit,
    /// Originates destination prefixes and hosts vantage points.
    Stub,
}

/// One router.
#[derive(Clone, Debug)]
pub struct Router {
    /// Identifier.
    pub id: RouterId,
    /// Owning AS.
    pub as_id: AsId,
    /// Loopback address (the LDP FEC prefix for transit LSPs).
    pub loopback: Ipv4Addr,
    /// Whether this is a border router (has inter-AS links).
    pub border: bool,
    /// Interfaces attached to this router.
    pub ifaces: Vec<IfaceId>,
}

/// One interface: an end of a point-to-point link.
#[derive(Clone, Debug)]
pub struct Iface {
    /// Identifier.
    pub id: IfaceId,
    /// Router the interface sits on.
    pub router: RouterId,
    /// Interface address (numbered from the owning router's AS).
    pub addr: Ipv4Addr,
    /// The interface at the other end of the link.
    pub peer: IfaceId,
    /// IGP cost of the link (meaningful intra-AS only).
    pub cost: u32,
    /// Whether the link crosses an AS boundary.
    pub inter_as: bool,
}

/// A point-to-point link (kept for enumeration; forwarding uses
/// [`Iface::peer`]).
#[derive(Clone, Debug)]
pub struct Link {
    /// One end.
    pub a: IfaceId,
    /// Other end.
    pub b: IfaceId,
    /// IGP cost.
    pub cost: u32,
    /// Whether the link crosses an AS boundary.
    pub inter_as: bool,
}

/// Per-AS view of the topology.
#[derive(Clone, Debug)]
pub struct AsTopology {
    /// Index within the topology.
    pub id: AsId,
    /// AS number.
    pub asn: Asn,
    /// Human-readable name.
    pub name: String,
    /// Role.
    pub role: Role,
    /// Router vendor modelled for this AS (label ranges, defaults).
    pub vendor: Vendor,
    /// All routers of the AS.
    pub routers: Vec<RouterId>,
    /// Border routers (subset of `routers`).
    pub borders: Vec<RouterId>,
    /// The AS's covering block (`10.x.0.0/16`).
    pub block: Prefix,
    /// Destination prefixes originated (stub ASes).
    pub dest_prefixes: Vec<Prefix>,
    /// Vantage-point host addresses homed in this AS.
    pub vantage_points: Vec<Ipv4Addr>,
    /// Number of routers the builder appended as inter-AS attachment
    /// candidates (they are the trailing `border_hint` entries of
    /// `routers`).
    border_hint: usize,
}

/// Shape parameters for one AS's internal topology.
#[derive(Clone, Debug)]
pub struct TopologyParams {
    /// Chain length (transit) or router count (stub).
    pub core_routers: usize,
    /// Number of border routers.
    pub border_routers: usize,
    /// Chain segments upgraded to *balanced* equal-cost diamonds: the
    /// direct link is replaced by two disjoint one-router bypasses of
    /// the same cost and hop count (the common real-world case — §4.3
    /// finds 80 % of ECMP IOTPs balanced).
    pub ecmp_diamonds: usize,
    /// Chain segments upgraded to *unbalanced* diamonds: the direct
    /// link is kept and one equal-cost two-hop bypass is added, so the
    /// ECMP paths differ in hop count (symmetry 1).
    pub unbalanced_diamonds: usize,
    /// Chain segments upgraded to parallel-link bundles.
    pub parallel_bundles: usize,
    /// Place diamonds on the outermost chain segments instead of
    /// random ones: most border pairs then avoid them, keeping the
    /// Routers-Disjoint share low (the Tata pattern of Fig. 13).
    pub diamonds_at_edges: bool,
    /// Links per parallel bundle (including the original one).
    pub parallel_width: usize,
    /// Uniform IGP cost of chain links (must be even so a diamond
    /// bypass can split it equally).
    pub uniform_cost: u32,
}

impl Default for TopologyParams {
    fn default() -> Self {
        TopologyParams {
            core_routers: 6,
            border_routers: 3,
            ecmp_diamonds: 0,
            unbalanced_diamonds: 0,
            parallel_bundles: 0,
            diamonds_at_edges: false,
            parallel_width: 2,
            uniform_cost: 10,
        }
    }
}

/// Specification of one AS to build.
#[derive(Clone, Debug)]
pub struct AsSpec {
    /// AS number.
    pub asn: Asn,
    /// Display name.
    pub name: String,
    /// Role.
    pub role: Role,
    /// Vendor model.
    pub vendor: Vendor,
    /// Internal shape.
    pub params: TopologyParams,
    /// Destination /24 prefixes to originate (stub ASes).
    pub dest_prefixes: usize,
    /// Vantage points homed here (stub ASes).
    pub vantage_points: usize,
    /// Seed for this AS's internal shape (stable addressing across
    /// rebuilt cycles requires a stable seed).
    pub seed: u64,
}

impl AsSpec {
    /// A small stub AS with the given number of destination prefixes
    /// and vantage points.
    pub fn stub(asn: u32, name: &str, dest_prefixes: usize, vantage_points: usize) -> Self {
        AsSpec {
            asn: Asn(asn),
            name: name.to_string(),
            role: Role::Stub,
            vendor: Vendor::Cisco,
            params: TopologyParams {
                core_routers: 2,
                border_routers: 1,
                ..TopologyParams::default()
            },
            dest_prefixes,
            vantage_points,
            seed: asn as u64,
        }
    }

    /// A transit AS skeleton; tune `params` for the desired diversity.
    pub fn transit(asn: u32, name: &str, vendor: Vendor, params: TopologyParams) -> Self {
        AsSpec {
            asn: Asn(asn),
            name: name.to_string(),
            role: Role::Transit,
            vendor,
            params,
            dest_prefixes: 0,
            vantage_points: 0,
            seed: asn as u64,
        }
    }
}

/// The assembled multi-AS topology.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Per-AS data, indexed by [`AsId`].
    pub ases: Vec<AsTopology>,
    /// All routers, indexed by [`RouterId`].
    pub routers: Vec<Router>,
    /// All interfaces, indexed by [`IfaceId`].
    pub ifaces: Vec<Iface>,
    /// All links.
    pub links: Vec<Link>,
    asn_index: BTreeMap<Asn, AsId>,
}

struct Builder {
    topo: Topology,
    /// Next free interface-address offset per AS.
    iface_cursor: Vec<u32>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            topo: Topology {
                ases: Vec::new(),
                routers: Vec::new(),
                ifaces: Vec::new(),
                links: Vec::new(),
                asn_index: BTreeMap::new(),
            },
            iface_cursor: Vec::new(),
        }
    }

    /// Each AS owns a /16: the first 255 fill `10.0.0.0/8` (block 0 is
    /// `10.1.0.0/16`, unchanged from the original plan), later ones
    /// spill into `11.0.0.0/8`, `12.0.0.0/8`, … — paper-scale worlds
    /// need several hundred ASes.
    fn block_base(as_id: AsId) -> u32 {
        let id = as_id.0 as u32;
        ((10 + id / 255) << 24) | ((id % 255 + 1) << 16)
    }

    fn add_as(&mut self, spec: &AsSpec) -> AsId {
        let id = AsId(self.topo.ases.len() as u16);
        assert!(id.0 < 255 * 80, "address plan supports at most {} ASes", 255 * 80);
        let base = Self::block_base(id);
        let block = Prefix::new(Ipv4Addr::from(base), 16);
        let dest_prefixes = (0..spec.dest_prefixes)
            .map(|k| {
                assert!(k < 40, "at most 40 destination prefixes per AS");
                Prefix::new(Ipv4Addr::from(base + ((200 + k as u32) << 8)), 24)
            })
            .collect();
        let vantage_points = (0..spec.vantage_points)
            .map(|k| Ipv4Addr::from(base + (240u32 << 8) + 1 + k as u32))
            .collect();
        self.topo.ases.push(AsTopology {
            id,
            asn: spec.asn,
            name: spec.name.clone(),
            role: spec.role,
            vendor: spec.vendor,
            routers: Vec::new(),
            borders: Vec::new(),
            block,
            dest_prefixes,
            vantage_points,
            border_hint: spec.params.border_routers,
        });
        self.topo.asn_index.insert(spec.asn, id);
        self.iface_cursor.push(1 << 8); // start interface addrs at .1.0
        id
    }

    fn add_router(&mut self, as_id: AsId) -> RouterId {
        let id = RouterId(self.topo.routers.len() as u32);
        let index_in_as = self.topo.ases[as_id.0 as usize].routers.len() as u32;
        assert!(index_in_as < 254, "at most 254 routers per AS");
        let loopback = Ipv4Addr::from(Self::block_base(as_id) + index_in_as + 1);
        self.topo.routers.push(Router {
            id,
            as_id,
            loopback,
            border: false,
            ifaces: Vec::new(),
        });
        self.topo.ases[as_id.0 as usize].routers.push(id);
        id
    }

    fn alloc_iface_addr(&mut self, as_id: AsId) -> Ipv4Addr {
        let cursor = &mut self.iface_cursor[as_id.0 as usize];
        let addr = Ipv4Addr::from(Self::block_base(as_id) + *cursor);
        *cursor += 1;
        // Skip into the next /24 when approaching reserved space.
        assert!(*cursor < (200 << 8), "interface address space exhausted");
        addr
    }

    fn link(&mut self, a: RouterId, b: RouterId, cost: u32) {
        let as_a = self.topo.routers[a.0 as usize].as_id;
        let as_b = self.topo.routers[b.0 as usize].as_id;
        let inter_as = as_a != as_b;
        let ia = IfaceId(self.topo.ifaces.len() as u32);
        let ib = IfaceId(self.topo.ifaces.len() as u32 + 1);
        let addr_a = self.alloc_iface_addr(as_a);
        let addr_b = self.alloc_iface_addr(as_b);
        self.topo.ifaces.push(Iface { id: ia, router: a, addr: addr_a, peer: ib, cost, inter_as });
        self.topo.ifaces.push(Iface { id: ib, router: b, addr: addr_b, peer: ia, cost, inter_as });
        self.topo.routers[a.0 as usize].ifaces.push(ia);
        self.topo.routers[b.0 as usize].ifaces.push(ib);
        self.topo.links.push(Link { a: ia, b: ib, cost, inter_as });
        if inter_as {
            for (r, as_id) in [(a, as_a), (b, as_b)] {
                if !self.topo.routers[r.0 as usize].border {
                    self.topo.routers[r.0 as usize].border = true;
                    self.topo.ases[as_id.0 as usize].borders.push(r);
                }
            }
        }
    }

    fn build_as_internal(&mut self, as_id: AsId, spec: &AsSpec) {
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x746f_706f);
        let p = &spec.params;
        assert!(p.core_routers >= 1);
        assert!(p.uniform_cost.is_multiple_of(2), "uniform cost must be even for diamond bypasses");

        #[derive(Clone, Copy, PartialEq)]
        enum Seg {
            Plain,
            /// Two disjoint one-router bypasses, no direct link:
            /// balanced disjoint-router ECMP.
            Balanced,
            /// Direct link plus one equal-cost two-hop bypass:
            /// unbalanced disjoint-router ECMP.
            Unbalanced,
            /// Parallel links between the same router pair.
            Bundle,
        }

        let chain: Vec<RouterId> = (0..p.core_routers).map(|_| self.add_router(as_id)).collect();
        let nseg = p.core_routers.saturating_sub(1);
        let mut kinds = vec![Seg::Plain; nseg];
        let mut seg_indices: Vec<usize> = (0..nseg).collect();
        // Fisher-Yates shuffle with the seeded RNG.
        for i in (1..seg_indices.len()).rev() {
            let j = rng.gen_range(0..=i);
            seg_indices.swap(i, j);
        }
        // Diamonds first: either from the chain's edges inward or from
        // the shuffled order.
        let diamond_order: Vec<usize> = if p.diamonds_at_edges {
            // Far end first: the tail segments are crossed by the
            // fewest border pairs, so edge diamonds perturb the least
            // traffic.
            let mut v = Vec::with_capacity(nseg);
            let (mut lo, mut hi) = (0usize, nseg);
            while lo < hi {
                hi -= 1;
                v.push(hi);
                if lo != hi {
                    v.push(lo);
                }
                lo += 1;
            }
            v
        } else {
            seg_indices.clone()
        };
        for &i in diamond_order.iter().take(p.ecmp_diamonds.min(nseg)) {
            kinds[i] = Seg::Balanced;
        }
        let remaining: Vec<usize> =
            seg_indices.into_iter().filter(|i| kinds[*i] == Seg::Plain).collect();
        let mut it = remaining.into_iter();
        for _ in 0..p.unbalanced_diamonds {
            if let Some(i) = it.next() {
                kinds[i] = Seg::Unbalanced;
            }
        }
        for _ in 0..p.parallel_bundles {
            if let Some(i) = it.next() {
                kinds[i] = Seg::Bundle;
            }
        }

        for (i, w) in chain.windows(2).enumerate() {
            let (u, v) = (w[0], w[1]);
            match kinds[i] {
                Seg::Plain => self.link(u, v, p.uniform_cost),
                Seg::Balanced => {
                    for _ in 0..2 {
                        let bypass = self.add_router(as_id);
                        self.link(u, bypass, p.uniform_cost / 2);
                        self.link(bypass, v, p.uniform_cost / 2);
                    }
                }
                Seg::Unbalanced => {
                    self.link(u, v, p.uniform_cost);
                    let bypass = self.add_router(as_id);
                    self.link(u, bypass, p.uniform_cost / 2);
                    self.link(bypass, v, p.uniform_cost / 2);
                }
                Seg::Bundle => {
                    for _ in 0..p.parallel_width.max(2) {
                        self.link(u, v, p.uniform_cost);
                    }
                }
            }
        }

        // Borders attach to evenly spread chain positions.
        for bi in 0..p.border_routers {
            let attach = chain[(bi * p.core_routers.max(1)) / p.border_routers.max(1)];
            let border = self.add_router(as_id);
            self.link(border, attach, p.uniform_cost);
        }
    }
}

impl Topology {
    /// Builds a topology from AS specifications plus inter-AS peering
    /// links `(asn_a, asn_b, link_count)`. Border endpoints are chosen
    /// round-robin among each AS's designated border routers;
    /// construction is fully deterministic.
    pub fn build(specs: &[AsSpec], peerings: &[(Asn, Asn, usize)]) -> Topology {
        let peerings: Vec<Peering> = peerings
            .iter()
            .map(|&(a, b, links)| Peering { a, b, links, a_border: None, b_border: None })
            .collect();
        Self::build_with_peerings(specs, &peerings)
    }

    /// Like [`Topology::build`], with explicit control over which
    /// border (by index among the AS's border candidates) anchors each
    /// peering — needed when a scenario requires several customer ASes
    /// behind the *same* egress border (the situation that gives transit
    /// IOTPs their destination diversity).
    pub fn build_with_peerings(specs: &[AsSpec], peerings: &[Peering]) -> Topology {
        let mut b = Builder::new();
        for spec in specs {
            let id = b.add_as(spec);
            b.build_as_internal(id, spec);
        }
        let mut border_cursor: BTreeMap<Asn, usize> = BTreeMap::new();
        for p in peerings {
            for _ in 0..p.links {
                let ra = pick_border(&b.topo, &p.a, p.a_border, &mut border_cursor);
                let rb = pick_border(&b.topo, &p.b, p.b_border, &mut border_cursor);
                b.link(ra, rb, 10);
            }
        }
        b.topo
    }

    /// The AS carrying a given AS number.
    pub fn as_by_asn(&self, asn: Asn) -> Option<&AsTopology> {
        self.asn_index.get(&asn).map(|id| &self.ases[id.0 as usize])
    }

    /// Router accessor.
    pub fn router(&self, id: RouterId) -> &Router {
        &self.routers[id.0 as usize]
    }

    /// Interface accessor.
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.0 as usize]
    }

    /// AS accessor.
    pub fn as_of(&self, id: AsId) -> &AsTopology {
        &self.ases[id.0 as usize]
    }

    /// The AS owning a router.
    pub fn as_of_router(&self, id: RouterId) -> &AsTopology {
        self.as_of(self.router(id).as_id)
    }

    /// Intra-AS neighbours of a router: `(own interface, peer router)`.
    pub fn intra_neighbors(&self, id: RouterId) -> impl Iterator<Item = (&Iface, RouterId)> {
        self.router(id).ifaces.iter().filter_map(move |&i| {
            let iface = self.iface(i);
            if iface.inter_as {
                return None;
            }
            Some((iface, self.iface(iface.peer).router))
        })
    }

    /// Inter-AS interfaces of a router.
    pub fn inter_as_ifaces(&self, id: RouterId) -> impl Iterator<Item = &Iface> {
        self.router(id)
            .ifaces
            .iter()
            .map(move |&i| self.iface(i))
            .filter(|i| i.inter_as)
    }

    /// Exports the Routeviews-style RIB: each AS's covering block plus
    /// every originated destination prefix.
    pub fn rib(&self) -> ip2as::Ip2AsTrie {
        let mut trie = ip2as::Ip2AsTrie::new();
        for a in &self.ases {
            trie.insert(a.block, a.asn);
            for p in &a.dest_prefixes {
                trie.insert(*p, a.asn);
            }
        }
        trie
    }

    /// Destination host addresses: `per_prefix` hosts in every
    /// destination prefix of every stub AS.
    pub fn destinations(&self, per_prefix: usize) -> Vec<Ipv4Addr> {
        let mut out = Vec::new();
        for a in &self.ases {
            for p in &a.dest_prefixes {
                let base = u32::from(p.addr());
                for h in 0..per_prefix {
                    out.push(Ipv4Addr::from(base + 1 + h as u32));
                }
            }
        }
        out
    }

    /// All vantage-point addresses with their home AS.
    pub fn vantage_points(&self) -> Vec<(Ipv4Addr, AsId)> {
        let mut out = Vec::new();
        for a in &self.ases {
            for &vp in &a.vantage_points {
                out.push((vp, a.id));
            }
        }
        out
    }
}

impl Topology {
    /// Content fingerprint of one AS's IGP inputs: its router list and
    /// every intra-AS interface's `(id, router, peer, cost)`. Two
    /// topologies agree on an AS's fingerprint exactly when Dijkstra
    /// would produce identical routes there, so the SPF cache
    /// ([`crate::igp::IgpState::cached`]) can key on it. Inter-AS links
    /// are excluded: the IGP ignores them, and peering-only changes
    /// must not invalidate cached routes.
    pub fn igp_fingerprint(&self, as_id: AsId) -> u64 {
        let mut h = Fnv::new();
        h.write(as_id.0 as u64 ^ 0x1697_F1A6);
        for &r in &self.as_of(as_id).routers {
            h.write(r.0 as u64);
            for &i in &self.router(r).ifaces {
                let iface = self.iface(i);
                if iface.inter_as {
                    continue;
                }
                h.write(iface.id.0 as u64);
                h.write(self.iface(iface.peer).router.0 as u64);
                h.write(iface.cost as u64);
            }
        }
        h.finish()
    }

    /// Content version of the whole topology: combines every AS's
    /// [`Topology::igp_fingerprint`] with the inter-AS link structure.
    /// Any change to routers, links or costs — including a single
    /// [`Topology::set_link_cost`] — yields a different version.
    pub fn version(&self) -> u64 {
        let mut h = Fnv::new();
        for a in &self.ases {
            h.write(self.igp_fingerprint(a.id));
        }
        for l in &self.links {
            if l.inter_as {
                h.write(l.a.0 as u64);
                h.write(l.b.0 as u64);
                h.write(l.cost as u64);
            }
        }
        h.finish()
    }

    /// Sets the IGP cost of one link (both interface ends included),
    /// the way a maintenance re-weighting does. The topology version
    /// and the owning AS's IGP fingerprint change accordingly.
    pub fn set_link_cost(&mut self, link_idx: usize, cost: u32) {
        let (a, b) = (self.links[link_idx].a, self.links[link_idx].b);
        self.links[link_idx].cost = cost;
        self.ifaces[a.0 as usize].cost = cost;
        self.ifaces[b.0 as usize].cost = cost;
    }

    /// A copy of the topology with a fraction of intra-AS link costs
    /// perturbed (±50 %), deterministically from `seed`.
    ///
    /// Addresses, routers and links are untouched — only IGP costs
    /// move, the way maintenance and re-weighting events move them
    /// between two measurement snapshots. Recomputing the control
    /// plane on the perturbed copy changes *some* shortest paths, so
    /// some LSPs observed in one snapshot genuinely disappear in the
    /// next: the routing noise the Persistence filter exists to remove
    /// (§3.1).
    pub fn with_perturbed_costs(&self, seed: u64, fraction: f64) -> Topology {
        use crate::internet::splitmix64;
        let mut topo = self.clone();
        for link_idx in 0..topo.links.len() {
            let link = &topo.links[link_idx];
            if link.inter_as {
                continue;
            }
            let h = splitmix64(seed ^ (link_idx as u64) << 13 ^ 0x1677);
            if (h as f64 / u64::MAX as f64) >= fraction {
                continue;
            }
            // ±50 % in even steps so diamond bypasses stay splittable.
            let delta = if h & 1 == 0 { link.cost / 2 } else { link.cost.saturating_mul(2) };
            let (a, b) = (link.a, link.b);
            topo.links[link_idx].cost = delta.max(2);
            topo.ifaces[a.0 as usize].cost = delta.max(2);
            topo.ifaces[b.0 as usize].cost = delta.max(2);
        }
        topo
    }
}

/// FNV-1a over a word stream (topology fingerprints).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }

    fn write(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// One inter-AS peering in a topology specification.
#[derive(Clone, Copy, Debug)]
pub struct Peering {
    /// First AS.
    pub a: Asn,
    /// Second AS.
    pub b: Asn,
    /// Number of parallel peering links.
    pub links: usize,
    /// Border index (among `a`'s border candidates) to anchor on, or
    /// `None` for round-robin.
    pub a_border: Option<usize>,
    /// Border index for `b`, or `None` for round-robin.
    pub b_border: Option<usize>,
}

impl Peering {
    /// A single round-robin-anchored link between two ASes.
    pub fn new(a: Asn, b: Asn) -> Self {
        Peering { a, b, links: 1, a_border: None, b_border: None }
    }

    /// Pins the border index on the `a` side.
    pub fn at_a(mut self, border: usize) -> Self {
        self.a_border = Some(border);
        self
    }

    /// Pins the border index on the `b` side.
    pub fn at_b(mut self, border: usize) -> Self {
        self.b_border = Some(border);
        self
    }

    /// Sets the number of parallel links.
    pub fn links(mut self, n: usize) -> Self {
        self.links = n;
        self
    }
}

fn pick_border(
    topo: &Topology,
    asn: &Asn,
    pinned: Option<usize>,
    cursor: &mut BTreeMap<Asn, usize>,
) -> RouterId {
    let as_topo = topo.as_by_asn(*asn).unwrap_or_else(|| panic!("unknown {asn} in peering"));
    let candidates = as_topo.border_candidates();
    if let Some(i) = pinned {
        return candidates[i % candidates.len()];
    }
    let c = cursor.entry(*asn).or_insert(0);
    let r = candidates[*c % candidates.len()];
    *c += 1;
    r
}

impl AsTopology {
    /// Routers eligible as inter-AS attachment points: the trailing
    /// `border_routers` routers the builder appended for that purpose.
    pub fn border_candidates(&self) -> &[RouterId] {
        let n = self.routers.len();
        &self.routers[n - self.border_hint..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_specs() -> (Vec<AsSpec>, Vec<(Asn, Asn, usize)>) {
        let t = AsSpec::transit(
            6453,
            "tata",
            Vendor::Cisco,
            TopologyParams {
                core_routers: 5,
                border_routers: 2,
                ecmp_diamonds: 1,
                parallel_bundles: 1,
                parallel_width: 3,
                ..TopologyParams::default()
            },
        );
        let s1 = AsSpec::stub(100, "src", 0, 2);
        let s2 = AsSpec::stub(200, "dst", 3, 0);
        let peerings = vec![(Asn(100), Asn(6453), 1), (Asn(6453), Asn(200), 1)];
        (vec![t, s1, s2], peerings)
    }

    #[test]
    fn build_is_deterministic() {
        let (specs, peerings) = sample_specs();
        let a = Topology::build(&specs, &peerings);
        let b = Topology::build(&specs, &peerings);
        assert_eq!(a.routers.len(), b.routers.len());
        assert_eq!(a.ifaces.len(), b.ifaces.len());
        for (x, y) in a.ifaces.iter().zip(&b.ifaces) {
            assert_eq!(x.addr, y.addr);
        }
    }

    #[test]
    fn address_plan_respects_as_blocks() {
        let (specs, peerings) = sample_specs();
        let topo = Topology::build(&specs, &peerings);
        for iface in &topo.ifaces {
            let as_topo = topo.as_of_router(iface.router);
            assert!(
                as_topo.block.contains(iface.addr),
                "{} outside {}",
                iface.addr,
                as_topo.block
            );
        }
        for r in &topo.routers {
            assert!(topo.as_of_router(r.id).block.contains(r.loopback));
        }
    }

    #[test]
    fn interface_addresses_are_unique() {
        let (specs, peerings) = sample_specs();
        let topo = Topology::build(&specs, &peerings);
        let mut seen = std::collections::HashSet::new();
        for iface in &topo.ifaces {
            assert!(seen.insert(iface.addr), "duplicate {}", iface.addr);
        }
        for r in &topo.routers {
            assert!(seen.insert(r.loopback), "duplicate {}", r.loopback);
        }
    }

    #[test]
    fn borders_are_marked_by_peering() {
        let (specs, peerings) = sample_specs();
        let topo = Topology::build(&specs, &peerings);
        let tata = topo.as_by_asn(Asn(6453)).unwrap();
        assert!(!tata.borders.is_empty());
        for &b in &tata.borders {
            assert!(topo.router(b).border);
            assert!(topo.inter_as_ifaces(b).count() > 0);
        }
    }

    #[test]
    fn rib_maps_every_interface() {
        let (specs, peerings) = sample_specs();
        let topo = Topology::build(&specs, &peerings);
        let rib = topo.rib();
        for iface in &topo.ifaces {
            let as_topo = topo.as_of_router(iface.router);
            assert_eq!(rib.lookup(iface.addr), Some(as_topo.asn));
        }
    }

    #[test]
    fn destinations_and_vps() {
        let (specs, peerings) = sample_specs();
        let topo = Topology::build(&specs, &peerings);
        let dests = topo.destinations(2);
        assert_eq!(dests.len(), 3 * 2);
        let rib = topo.rib();
        for d in &dests {
            assert_eq!(rib.lookup(*d), Some(Asn(200)));
        }
        assert_eq!(topo.vantage_points().len(), 2);
    }

    #[test]
    fn cost_perturbation_changes_only_costs() {
        let (specs, peerings) = sample_specs();
        let base = Topology::build(&specs, &peerings);
        let perturbed = base.with_perturbed_costs(7, 0.5);
        assert_eq!(base.routers.len(), perturbed.routers.len());
        assert_eq!(base.links.len(), perturbed.links.len());
        let mut changed = 0usize;
        for (a, b) in base.ifaces.iter().zip(&perturbed.ifaces) {
            assert_eq!(a.addr, b.addr, "addresses must be stable");
            if a.cost != b.cost {
                assert!(!a.inter_as);
                changed += 1;
            }
        }
        assert!(changed > 0, "expected some perturbed costs");
        // Zero fraction is the identity.
        let same = base.with_perturbed_costs(7, 0.0);
        for (a, b) in base.ifaces.iter().zip(&same.ifaces) {
            assert_eq!(a.cost, b.cost);
        }
    }

    #[test]
    fn parallel_bundles_create_multi_links() {
        let (specs, peerings) = sample_specs();
        let topo = Topology::build(&specs, &peerings);
        // Some pair of routers in AS 6453 shares >= 3 links.
        let mut pair_counts: BTreeMap<(RouterId, RouterId), usize> = BTreeMap::new();
        for l in &topo.links {
            if l.inter_as {
                continue;
            }
            let a = topo.iface(l.a).router;
            let b = topo.iface(l.b).router;
            let key = if a < b { (a, b) } else { (b, a) };
            *pair_counts.entry(key).or_default() += 1;
        }
        assert!(pair_counts.values().any(|&c| c >= 3));
    }
}
