//! The revelation probing phase: TNT-style targeted re-probing of
//! hidden-tunnel candidates.
//!
//! Plain traceroute campaigns miss tunnels whose routers hide the
//! MPLS evidence (`ttl-propagate off`, suppressed RFC 4950 quoting,
//! opaque one-hop stacks). They still leave artifacts —
//! [`lpr_core::reveal::detect_triggers`] finds them — and this module
//! turns each triggered `<ingress, egress>` candidate into DPR-style
//! re-probes: traceroutes aimed *at the egress's own address*. Routers
//! do not label-switch traffic towards their AS's infrastructure
//! addresses (unless the operator put them in a FEC, see
//! [`crate::internet::MplsConfig::infra_in_fec`]), so the re-probe
//! walks the tunnel's interior hop by hop, revealing it.
//!
//! Everything derives from `(seed, candidate, flow index)`, so
//! revelation campaigns replay bit-identically and shard over threads
//! with the same shard-order merge discipline the base campaign uses.
//!
//! The module also hosts the *revelation oracle* used by the property
//! tests: [`oracle_traversals`] replays the campaign's forwarding walks
//! with the dataplane's ground-truth recorder attached, enumerating
//! every hidden traversal that actually happened, and
//! [`on_shortest_dag`] checks interior membership in the IGP's
//! shortest-path DAG (every LDP LSP follows it).

use crate::dataplane::{probe_ladder, OracleTraversal};
use crate::internet::{splitmix64, Internet};
use crate::probe::Prober;
use crate::topology::{AsId, RouterId};
use lpr_chaos::FaultCounts;
use lpr_core::reveal::{detect_triggers, RevealedTunnel, RevelationStatus, TriggerKind};
use lpr_core::trace::Trace;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Salt folded into revelation flow identifiers so DPR walks explore
/// the ECMP space independently of the base campaign's Paris flows.
pub const REVEAL_SALT: u64 = 0x5245_5645_414C_5F31;

/// Parameters of the revelation phase.
#[derive(Clone, Copy, Debug)]
pub struct RevelationOptions {
    /// DPR walks (distinct flow identifiers) per candidate tunnel.
    pub flows: usize,
    /// Probe-packet budget for the whole phase. Candidates are cut off
    /// *a priori* on their worst-case cost (`flows × max_ttl`), keeping
    /// the cutoff — and thus the output — independent of thread count.
    pub max_probes: u64,
}

impl Default for RevelationOptions {
    fn default() -> Self {
        RevelationOptions { flows: 4, max_probes: u64::MAX }
    }
}

/// One deduplicated revelation candidate, with everything the probing
/// stage needs resolved up front.
struct Candidate {
    kind: TriggerKind,
    vp: Ipv4Addr,
    ingress: Ipv4Addr,
    egress: Ipv4Addr,
    asn: lpr_core::lsp::Asn,
    /// Router-level identities (candidate addresses are interface or
    /// loopback addresses; DPR walks may see other interfaces of the
    /// same routers).
    ingress_router: Option<RouterId>,
    egress_router: Option<RouterId>,
    /// Status decided before probing (`InfraTunneled`,
    /// `BudgetExhausted`, or unresolvable ⇒ `Unresponsive`); `None`
    /// means the candidate gets probed.
    predecided: Option<RevelationStatus>,
}

/// Detects triggers across `traces` (in order), deduplicates them by
/// `(ingress, egress)` keeping the first, and resolves each candidate
/// against the simulated topology. Returns the worklist in detection
/// order; `injected` tallies trigger replies the fault plan ate.
fn collect_candidates(
    prober: &Prober<'_>,
    traces: &[Trace],
    opts: &RevelationOptions,
    injected: &mut FaultCounts,
) -> Vec<Candidate> {
    let core = prober.core();
    let net = core.net;
    let mut seen: BTreeSet<(Ipv4Addr, Ipv4Addr)> = BTreeSet::new();
    let mut out = Vec::new();
    for trace in traces {
        for trigger in detect_triggers(trace) {
            if let Some(plan) = core.fault_plan() {
                if plan.trigger_lost(trigger.ingress, trigger.egress) {
                    injected.trigger_replies_lost += 1;
                    continue;
                }
            }
            if !seen.insert((trigger.ingress, trigger.egress)) {
                continue;
            }
            let egress_at = net.infra_attachment(trigger.egress);
            let ingress_at = net.infra_attachment(trigger.ingress);
            let (asn, predecided) = match egress_at {
                Some(at) => {
                    let asn = net.topo.as_of(at.as_id).asn;
                    if net.config(at.as_id).infra_in_fec {
                        // Probes towards this AS's infrastructure ride
                        // the same tunnels: nothing to walk.
                        (asn, Some(RevelationStatus::InfraTunneled))
                    } else {
                        (asn, None)
                    }
                }
                // The artifact converged on a non-infrastructure
                // address (e.g. the traced destination): nothing to
                // aim a DPR walk at.
                None => (lpr_core::lsp::Asn(0), Some(RevelationStatus::Unresponsive)),
            };
            out.push(Candidate {
                kind: trigger.kind,
                vp: trigger.vp,
                ingress: trigger.ingress,
                egress: trigger.egress,
                asn,
                ingress_router: ingress_at.map(|a| a.router),
                egress_router: egress_at.map(|a| a.router),
                predecided,
            });
        }
    }
    // Budget cutoff on worst-case cost, decided before any probing so
    // the cutoff is identical at every thread count.
    let worst_case = (opts.flows as u64) * (core.opts.max_ttl as u64);
    let mut committed = 0u64;
    for cand in &mut out {
        if cand.predecided.is_some() {
            continue;
        }
        if committed + worst_case > opts.max_probes {
            cand.predecided = Some(RevelationStatus::BudgetExhausted);
        } else {
            committed += worst_case;
        }
    }
    out
}

/// Runs the DPR walks for one probeable candidate.
fn probe_candidate(
    core: crate::probe::ProbeCore<'_>,
    cand: &Candidate,
    flows: usize,
    injected: &mut FaultCounts,
) -> RevealedTunnel {
    let net = core.net;
    let egress_router = cand.egress_router.expect("probeable candidates resolve their egress");
    let mut paths: BTreeSet<Vec<Ipv4Addr>> = BTreeSet::new();
    let mut probes = 0u64;
    let mut reached_egress = false;
    let mut ingress_on_path = false;
    for k in 0..flows {
        if let Some(plan) = core.fault_plan() {
            if plan.dpr_rate_limited(cand.egress, k) {
                injected.dpr_rate_limited += 1;
                continue;
            }
        }
        let flow = splitmix64(
            (u32::from(cand.ingress) as u64)
                ^ ((u32::from(cand.egress) as u64) << 32)
                ^ ((k as u64) << 17)
                ^ core.opts.seed
                ^ REVEAL_SALT,
        );
        let (trace, p) = core.trace_with_flow_counted(cand.vp, cand.egress, flow, injected);
        probes += p;
        let router_of = |h: &lpr_core::trace::Hop| {
            h.addr.and_then(|a| net.infra_attachment(a)).map(|a| a.router)
        };
        let egress_pos = trace.hops.iter().position(|h| router_of(h) == Some(egress_router));
        if egress_pos.is_some() {
            reached_egress = true;
        }
        let Some(ingress_router) = cand.ingress_router else { continue };
        let Some(ingress_pos) =
            trace.hops.iter().position(|h| router_of(h) == Some(ingress_router))
        else {
            continue;
        };
        let Some(egress_pos) = egress_pos.filter(|&e| e > ingress_pos) else { continue };
        ingress_on_path = true;
        let interior = &trace.hops[ingress_pos + 1..egress_pos];
        if interior.iter().any(|h| !h.is_responsive()) {
            // An anonymous hole inside the walk: an incomplete interior
            // would understate the LSP, so the flow contributes nothing.
            continue;
        }
        paths.insert(interior.iter().map(|h| h.addr.expect("checked responsive")).collect());
    }
    let status = if !paths.is_empty() {
        RevelationStatus::Revealed
    } else if reached_egress && !ingress_on_path {
        RevelationStatus::IngressOffPath
    } else {
        RevelationStatus::Unresponsive
    };
    RevealedTunnel {
        asn: cand.asn,
        ingress: cand.ingress,
        egress: cand.egress,
        kind: cand.kind,
        paths: if status == RevelationStatus::Revealed {
            paths.into_iter().collect()
        } else {
            Vec::new()
        },
        status,
        probes,
    }
}

/// The revelation phase: detect triggers in `traces`, re-probe each
/// candidate with DPR walks, and return the evidence in detection
/// order.
///
/// Sharded over `threads` workers with the shard-order merge
/// discipline: every candidate's walks derive only from the candidate
/// and the campaign seed, so the output — evidence and injected-fault
/// tallies alike — is byte-identical to the sequential run for any
/// thread count.
pub(crate) fn reveal_from_traces(
    prober: &Prober<'_>,
    traces: &[Trace],
    opts: &RevelationOptions,
    threads: usize,
) -> Vec<RevealedTunnel> {
    let mut detect_injected = FaultCounts::default();
    let candidates = collect_candidates(prober, traces, opts, &mut detect_injected);
    prober.merge_injected(detect_injected);
    let core = prober.core();
    let tracer = prober.tracer();
    let span = tracer.span("revelation");
    let flows = opts.flows;
    let run_one = |cand: &Candidate, injected: &mut FaultCounts| match cand.predecided {
        Some(status) => RevealedTunnel {
            asn: cand.asn,
            ingress: cand.ingress,
            egress: cand.egress,
            kind: cand.kind,
            paths: Vec::new(),
            status,
            probes: 0,
        },
        None => probe_candidate(core, cand, flows, injected),
    };
    if threads == 1 || candidates.len() < 2 {
        let mut injected = FaultCounts::default();
        let out = candidates.iter().map(|c| run_one(c, &mut injected)).collect();
        prober.merge_injected(injected);
        return out;
    }
    let run = lpr_par::map_shards_traced(
        &candidates,
        lpr_par::ShardOptions::new(threads),
        lpr_par::ShardTrace::new(&tracer, span.context()),
        |_, shard| {
            let mut injected = FaultCounts::default();
            let evidence: Vec<RevealedTunnel> =
                shard.iter().map(|c| run_one(c, &mut injected)).collect();
            (evidence, injected)
        },
    )
    .expect_ok();
    let mut out = Vec::with_capacity(candidates.len());
    let mut merged = FaultCounts::default();
    for (evidence, injected) in run.outputs {
        out.extend(evidence);
        merged.merge(&injected);
    }
    prober.merge_injected(merged);
    out
}

/// The revelation oracle: replays the campaign's forwarding walks with
/// the dataplane's ground-truth recorder attached and returns every
/// non-explicit tunnel traversal that actually happened, in row-major
/// `(vp, dst)` order. Fault plans, anonymity and RTTs play no part —
/// this is what the network *did*, not what traceroute saw.
pub fn oracle_traversals(
    prober: &Prober<'_>,
    vps: &[Ipv4Addr],
    dsts: &[Ipv4Addr],
) -> Vec<OracleTraversal> {
    let core = prober.core();
    let mut out = Vec::new();
    for &vp in vps {
        for &dst in dsts {
            let flow = core.flow(vp, dst);
            let mut events = Vec::new();
            probe_ladder(
                core.net,
                vp,
                dst,
                flow,
                core.opts.max_ttl as usize,
                &mut events,
                Some(&mut out),
            );
        }
    }
    out
}

/// Whether router `r` lies on the IGP shortest-path DAG from `ingress`
/// to `egress` inside one AS — true exactly when some equal-cost
/// shortest path passes through it. LDP LSPs follow this DAG, so every
/// interior address a correct revelation reports must map to a router
/// satisfying this.
pub fn on_shortest_dag(
    net: &Internet,
    as_id: AsId,
    ingress: RouterId,
    egress: RouterId,
    r: RouterId,
) -> bool {
    let igp = net.igp(as_id);
    match (igp.distance(ingress, r), igp.distance(r, egress), igp.distance(ingress, egress)) {
        (Some(head), Some(tail), Some(total)) => head + tail == total,
        _ => false,
    }
}
