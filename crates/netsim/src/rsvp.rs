//! RSVP-TE tunnels (paper §2.2.2).
//!
//! RSVP-TE signals *per-LSP* labels along an explicitly routed path:
//! several LSPs between the same LER pair carry completely different
//! label sequences even when their IP paths coincide — which is exactly
//! the Multi-FEC pattern LPR recognises (Fig. 4b). Ingress routers may
//! also be configured to *re-optimise* LSPs periodically, re-signalling
//! them and consuming fresh labels each time; observed over hours this
//! produces the label sawtooth of Fig. 17.

use crate::igp::IgpState;
use crate::topology::{RouterId, Topology};
use crate::vendor::LabelAllocator;
use lpr_core::label::Label;
use std::collections::HashMap;

/// How RSVP-TE computes the explicit routes of a pair's LSPs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TePathMode {
    /// Every LSP of a pair pins the same (first) IGP shortest path —
    /// the dominant case the paper observes: constraints are satisfied
    /// by one IP route, LSPs differ only in labels.
    SamePath,
    /// LSPs spread over the distinct equal-cost router paths, wrapping
    /// when there are more LSPs than paths.
    Diverse,
}

/// One traffic-engineered LSP.
#[derive(Clone, Debug)]
pub struct TeLsp {
    /// Router sequence, ingress first, egress last.
    pub path: Vec<RouterId>,
    /// The label each *downstream* router assigned: `labels[i]` is the
    /// label carried by packets arriving at `path[i + 1]`. Under PHP
    /// the egress's entry is `None` (implicit-null).
    pub labels: Vec<Option<Label>>,
}

impl TeLsp {
    /// The label a packet carries when it arrives at path position
    /// `pos` (0 = ingress, which never sees a label).
    pub fn arriving_label(&self, pos: usize) -> Option<Label> {
        if pos == 0 {
            None
        } else {
            self.labels.get(pos - 1).copied().flatten()
        }
    }
}

/// The RSVP-TE state of one AS: LSPs per `<ingress, egress>` LER pair.
#[derive(Clone, Debug, Default)]
pub struct TeState {
    lsps: HashMap<(RouterId, RouterId), Vec<TeLsp>>,
}

impl TeState {
    /// An empty state (no TE tunnels).
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals `count` LSPs between a LER pair.
    ///
    /// Paths follow `mode`; labels are allocated per hop from each
    /// downstream router's allocator, and the egress hop is
    /// implicit-null under `php`.
    #[allow(clippy::too_many_arguments)]
    pub fn signal_pair(
        &mut self,
        topo: &Topology,
        igp: &IgpState,
        allocators: &mut [LabelAllocator],
        ingress: RouterId,
        egress: RouterId,
        count: usize,
        mode: TePathMode,
        php: bool,
    ) {
        let paths = igp.all_shortest_paths(topo, ingress, egress, 16);
        if paths.is_empty() {
            return;
        }
        let mut lsps = Vec::with_capacity(count);
        for i in 0..count {
            let path = match mode {
                TePathMode::SamePath => paths[0].clone(),
                TePathMode::Diverse => paths[i % paths.len()].clone(),
            };
            lsps.push(signal_one(&path, allocators, php));
        }
        self.lsps.insert((ingress, egress), lsps);
    }

    /// The LSPs of a LER pair (empty when the pair has no TE tunnels).
    pub fn lsps(&self, ingress: RouterId, egress: RouterId) -> &[TeLsp] {
        self.lsps.get(&(ingress, egress)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Every signalled pair.
    pub fn pairs(&self) -> impl Iterator<Item = (RouterId, RouterId)> + '_ {
        self.lsps.keys().copied()
    }

    /// Total number of LSPs.
    pub fn lsp_count(&self) -> usize {
        self.lsps.values().map(Vec::len).sum()
    }

    /// Re-optimises every LSP: each is re-signalled along its existing
    /// path, consuming fresh labels from every downstream router — the
    /// periodic behaviour of Fig. 17. Pairs are processed in
    /// deterministic key order.
    pub fn reoptimize(&mut self, allocators: &mut [LabelAllocator], php: bool) {
        let mut keys: Vec<_> = self.lsps.keys().copied().collect();
        keys.sort();
        for key in keys {
            let lsps = self.lsps.get_mut(&key).expect("key exists");
            for lsp in lsps.iter_mut() {
                *lsp = signal_one(&lsp.path, allocators, php);
            }
        }
    }
}

fn signal_one(path: &[RouterId], allocators: &mut [LabelAllocator], php: bool) -> TeLsp {
    let mut labels = Vec::with_capacity(path.len().saturating_sub(1));
    for (i, &hop) in path.iter().enumerate().skip(1) {
        let is_egress = i == path.len() - 1;
        if is_egress && php {
            labels.push(None);
        } else if is_egress {
            // UHP: explicit-null arriving at the egress.
            labels.push(Some(Label::IPV4_EXPLICIT_NULL));
        } else {
            labels.push(Some(allocators[hop.0 as usize].alloc()));
        }
    }
    TeLsp { path: path.to_vec(), labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::igp::IgpState;
    use crate::topology::{AsId, AsSpec, Topology, TopologyParams};
    use crate::vendor::Vendor;

    fn setup(diamonds: usize) -> (Topology, IgpState, Vec<LabelAllocator>) {
        let spec = AsSpec::transit(
            1,
            "t",
            Vendor::Juniper,
            TopologyParams {
                core_routers: 4,
                border_routers: 2,
                ecmp_diamonds: diamonds,
                ..Default::default()
            },
        );
        let topo = Topology::build(&[spec], &[]);
        let igp = IgpState::compute(&topo, AsId(0));
        let allocators = topo
            .routers
            .iter()
            .map(|r| LabelAllocator::new(topo.as_of_router(r.id).vendor))
            .collect();
        (topo, igp, allocators)
    }

    fn border_pair(topo: &Topology) -> (RouterId, RouterId) {
        let cands = topo.as_of(AsId(0)).border_candidates();
        (cands[0], cands[1])
    }

    #[test]
    fn same_path_lsps_share_route_but_not_labels() {
        let (topo, igp, mut alloc) = setup(0);
        let (i, e) = border_pair(&topo);
        let mut te = TeState::new();
        te.signal_pair(&topo, &igp, &mut alloc, i, e, 3, TePathMode::SamePath, true);
        let lsps = te.lsps(i, e);
        assert_eq!(lsps.len(), 3);
        assert_eq!(lsps[0].path, lsps[1].path);
        // Intermediate labels must all differ between the LSPs.
        for pos in 1..lsps[0].path.len() - 1 {
            assert_ne!(lsps[0].arriving_label(pos), lsps[1].arriving_label(pos));
        }
        // PHP: egress arrival is unlabelled.
        let last = lsps[0].path.len() - 1;
        assert_eq!(lsps[0].arriving_label(last), None);
    }

    #[test]
    fn diverse_mode_uses_distinct_paths_when_available() {
        let (topo, igp, mut alloc) = setup(2);
        let (i, e) = border_pair(&topo);
        let mut te = TeState::new();
        te.signal_pair(&topo, &igp, &mut alloc, i, e, 2, TePathMode::Diverse, true);
        let lsps = te.lsps(i, e);
        assert_eq!(lsps.len(), 2);
        assert_ne!(lsps[0].path, lsps[1].path);
    }

    #[test]
    fn uhp_ends_with_explicit_null() {
        let (topo, igp, mut alloc) = setup(0);
        let (i, e) = border_pair(&topo);
        let mut te = TeState::new();
        te.signal_pair(&topo, &igp, &mut alloc, i, e, 1, TePathMode::SamePath, false);
        let lsp = &te.lsps(i, e)[0];
        let last = lsp.path.len() - 1;
        assert_eq!(lsp.arriving_label(last), Some(Label::IPV4_EXPLICIT_NULL));
    }

    #[test]
    fn reoptimize_changes_labels_not_paths() {
        let (topo, igp, mut alloc) = setup(0);
        let (i, e) = border_pair(&topo);
        let mut te = TeState::new();
        te.signal_pair(&topo, &igp, &mut alloc, i, e, 2, TePathMode::SamePath, true);
        let before: Vec<_> = te.lsps(i, e).to_vec();
        te.reoptimize(&mut alloc, true);
        let after = te.lsps(i, e);
        for (b, a) in before.iter().zip(after) {
            assert_eq!(b.path, a.path);
            for pos in 1..b.path.len() - 1 {
                assert_ne!(b.arriving_label(pos), a.arriving_label(pos));
                // New labels are strictly larger until the range wraps.
                assert!(a.arriving_label(pos).unwrap() > b.arriving_label(pos).unwrap());
            }
        }
    }

    #[test]
    fn ingress_never_sees_a_label() {
        let (topo, igp, mut alloc) = setup(0);
        let (i, e) = border_pair(&topo);
        let mut te = TeState::new();
        te.signal_pair(&topo, &igp, &mut alloc, i, e, 1, TePathMode::SamePath, true);
        assert_eq!(te.lsps(i, e)[0].arriving_label(0), None);
    }
}
