//! Topology statistics: the summary numbers papers put in their
//! "dataset" sections, computed per AS.
//!
//! Used by the experiment harnesses to describe the simulated world,
//! and by tests as structural sanity checks (the paper's Fig. 7
//! discussion leans on AS diameters being short; [`AsStats::diameter`]
//! is exactly that quantity for our synthetic ISPs).

use crate::igp::IgpState;
use crate::topology::{AsId, Topology};
use std::collections::BTreeMap;

/// Structural statistics of one AS.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsStats {
    /// Routers in the AS.
    pub routers: usize,
    /// Border routers.
    pub borders: usize,
    /// Intra-AS links (parallel links counted individually).
    pub intra_links: usize,
    /// Inter-AS links attached to this AS.
    pub inter_links: usize,
    /// Maximum router degree (interface count).
    pub max_degree: usize,
    /// IGP diameter in hops (longest shortest path between routers).
    pub diameter: usize,
    /// Router pairs with ECMP (more than one equal-cost next hop).
    pub ecmp_pairs: usize,
}

/// Computes statistics for one AS.
pub fn as_stats(topo: &Topology, as_id: AsId) -> AsStats {
    let a = topo.as_of(as_id);
    let igp = IgpState::compute(topo, as_id);

    let mut intra_links = 0usize;
    let mut inter_links = 0usize;
    for l in &topo.links {
        let owner = topo.router(topo.iface(l.a).router).as_id;
        let peer = topo.router(topo.iface(l.b).router).as_id;
        if owner == as_id && peer == as_id {
            intra_links += 1;
        } else if owner == as_id || peer == as_id {
            inter_links += 1;
        }
    }

    let max_degree = a
        .routers
        .iter()
        .map(|&r| topo.router(r).ifaces.len())
        .max()
        .unwrap_or(0);

    let mut diameter = 0usize;
    let mut ecmp_pairs = 0usize;
    for &x in &a.routers {
        for &y in &a.routers {
            if x == y {
                continue;
            }
            // Hop-count via path enumeration is overkill; use the
            // number of next-hop expansions along one shortest path.
            if let Some(paths) =
                igp.all_shortest_paths(topo, x, y, 1).first()
            {
                diameter = diameter.max(paths.len().saturating_sub(1));
            }
            if igp.nexthops(x, y).len() > 1 {
                ecmp_pairs += 1;
            }
        }
    }

    AsStats {
        routers: a.routers.len(),
        borders: a.borders.len(),
        intra_links,
        inter_links,
        max_degree,
        diameter,
        ecmp_pairs,
    }
}

/// Statistics for every AS of a topology.
pub fn all_stats(topo: &Topology) -> BTreeMap<lpr_core::lsp::Asn, AsStats> {
    topo.ases.iter().map(|a| (a.asn, as_stats(topo, a.id))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsSpec, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;

    fn topo(params: TopologyParams) -> Topology {
        let specs = vec![
            AsSpec::transit(1, "t", Vendor::Cisco, params),
            AsSpec::stub(100, "s", 1, 0),
        ];
        Topology::build(&specs, &[(Asn(1), Asn(100), 1)])
    }

    #[test]
    fn chain_stats() {
        let t = topo(TopologyParams { core_routers: 5, border_routers: 2, ..Default::default() });
        let s = as_stats(&t, AsId(0));
        assert_eq!(s.routers, 7); // 5 chain + 2 borders
        assert_eq!(s.borders, 1); // only one border got a peering
        assert_eq!(s.intra_links, 4 + 2); // chain + border attachments
        assert_eq!(s.inter_links, 1);
        assert_eq!(s.ecmp_pairs, 0, "a chain has no ECMP");
        // Diameter: border -> attach(0) -> ... -> attach(4..) -> border.
        assert!(s.diameter >= 5, "{s:?}");
    }

    #[test]
    fn bundles_create_ecmp_pairs_but_short_diameter() {
        let t = topo(TopologyParams {
            core_routers: 3,
            border_routers: 2,
            parallel_bundles: 2,
            parallel_width: 3,
            ..Default::default()
        });
        let s = as_stats(&t, AsId(0));
        assert!(s.ecmp_pairs > 0, "{s:?}");
        assert!(s.intra_links > 4, "parallel links add up: {s:?}");
        assert!(s.max_degree >= 3, "{s:?}");
    }

    #[test]
    fn all_stats_covers_every_as() {
        let t = topo(TopologyParams::default());
        let all = all_stats(&t);
        assert_eq!(all.len(), 2);
        assert!(all[&Asn(100)].routers >= 2);
    }
}
