//! LDP label distribution (paper §2.2.1).
//!
//! LDP allocates labels *downstream*: every router chooses one label per
//! FEC and advertises **the same label to all its neighbours** — label
//! scope is the router, not the interface or the LSP. For transit
//! traffic the FEC is the egress border router's loopback (the BGP
//! next-hop), so the label a given LSR exposes depends only on
//! `(LSR, egress)`. This per-router scope is the cornerstone of LPR's
//! Multi-FEC inference: two different labels on one router for the same
//! egress cannot be LDP.
//!
//! The egress itself advertises *implicit-null* when PHP is enabled
//! (the penultimate router pops, the egress never shows a label) or
//! *explicit-null* under UHP (the egress shows label 0).

use crate::topology::{AsId, RouterId, Topology};
use crate::vendor::LabelAllocator;
use lpr_core::label::Label;
use std::collections::HashMap;

/// What a router advertised for a FEC.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LdpLabel {
    /// A real label: upstream swaps to this before forwarding here.
    Label(Label),
    /// Implicit-null: upstream pops instead of swapping (PHP).
    ImplicitNull,
    /// Explicit-null: upstream swaps to label 0; this router pops.
    ExplicitNull,
}

/// The LDP bindings of one AS.
#[derive(Clone, Debug)]
pub struct LdpState {
    /// `(lsr, egress-loopback-owner)` → advertised label.
    bindings: HashMap<(RouterId, RouterId), Label>,
    php: bool,
}

impl LdpState {
    /// Computes bindings for every `(router, egress)` pair of the AS.
    ///
    /// Allocation order is deterministic (routers and FECs in id
    /// order), so a rebuilt control plane reproduces identical labels —
    /// which is what lets the Persistence filter match LSPs across
    /// same-month snapshots.
    pub fn compute(
        topo: &Topology,
        as_id: AsId,
        allocators: &mut [LabelAllocator],
        php: bool,
    ) -> LdpState {
        let routers = &topo.as_of(as_id).routers;
        let mut bindings = HashMap::new();
        for &lsr in routers {
            for &fec in routers {
                if lsr == fec {
                    continue;
                }
                let label = allocators[lsr.0 as usize].alloc();
                bindings.insert((lsr, fec), label);
            }
        }
        LdpState { bindings, php }
    }

    /// The label `lsr` advertised for the FEC of `egress`'s loopback.
    pub fn advertised(&self, lsr: RouterId, egress: RouterId) -> LdpLabel {
        if lsr == egress {
            return if self.php { LdpLabel::ImplicitNull } else { LdpLabel::ExplicitNull };
        }
        match self.bindings.get(&(lsr, egress)) {
            Some(&l) => LdpLabel::Label(l),
            None => LdpLabel::ImplicitNull, // unknown FEC: treat as end
        }
    }

    /// Whether PHP is enabled in this AS.
    pub fn php(&self) -> bool {
        self.php
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsSpec, Topology, TopologyParams};
    use crate::vendor::Vendor;

    fn setup(php: bool) -> (Topology, LdpState) {
        let spec = AsSpec::transit(
            1,
            "t",
            Vendor::Juniper,
            TopologyParams { core_routers: 3, border_routers: 2, ..Default::default() },
        );
        let topo = Topology::build(&[spec], &[]);
        let mut allocators: Vec<LabelAllocator> =
            topo.routers.iter().map(|r| LabelAllocator::new(topo.as_of_router(r.id).vendor)).collect();
        let ldp = LdpState::compute(&topo, AsId(0), &mut allocators, php);
        (topo, ldp)
    }

    #[test]
    fn same_label_for_fec_regardless_of_upstream() {
        // Per-router scope: the advertised label depends only on
        // (lsr, fec) — by construction there is one binding.
        let (topo, ldp) = setup(true);
        let routers = &topo.as_of(AsId(0)).routers;
        let (lsr, fec) = (routers[1], routers[2]);
        let a = ldp.advertised(lsr, fec);
        let b = ldp.advertised(lsr, fec);
        assert_eq!(a, b);
        assert!(matches!(a, LdpLabel::Label(_)));
    }

    #[test]
    fn different_fecs_get_different_labels() {
        let (topo, ldp) = setup(true);
        let routers = &topo.as_of(AsId(0)).routers;
        let lsr = routers[0];
        let la = ldp.advertised(lsr, routers[1]);
        let lb = ldp.advertised(lsr, routers[2]);
        assert_ne!(la, lb);
    }

    #[test]
    fn php_egress_advertises_implicit_null() {
        let (topo, ldp) = setup(true);
        let r = topo.as_of(AsId(0)).routers[0];
        assert_eq!(ldp.advertised(r, r), LdpLabel::ImplicitNull);
        assert!(ldp.php());
    }

    #[test]
    fn uhp_egress_advertises_explicit_null() {
        let (topo, ldp) = setup(false);
        let r = topo.as_of(AsId(0)).routers[0];
        assert_eq!(ldp.advertised(r, r), LdpLabel::ExplicitNull);
    }

    #[test]
    fn labels_come_from_vendor_range() {
        let (topo, ldp) = setup(true);
        let routers = &topo.as_of(AsId(0)).routers;
        if let LdpLabel::Label(l) = ldp.advertised(routers[0], routers[1]) {
            assert!(Vendor::Juniper.label_range().contains(&l.value()));
        } else {
            panic!("expected a real label");
        }
    }

    #[test]
    fn recomputation_is_deterministic() {
        let (_, a) = setup(true);
        let (topo, b) = setup(true);
        let routers = &topo.as_of(AsId(0)).routers;
        for &x in routers {
            for &y in routers {
                assert_eq!(a.advertised(x, y), b.advertised(x, y));
            }
        }
    }
}
