//! BGP-lite: AS-level routing and per-prefix egress selection.
//!
//! LPR does not need BGP's policy machinery — only its *observable
//! consequence*: a transit AS forwards an external prefix towards one
//! egress border router (the BGP next-hop), and the LDP FEC for transit
//! traffic is that egress's loopback (§2.2.1). This module computes,
//! for every `(current AS, origin AS)` pair, the candidate egress links
//! along a shortest AS path; the data plane picks among parallel
//! peering links by prefix hash, the deterministic stand-in for
//! hot-potato tie-breaking.

use crate::topology::{AsId, IfaceId, RouterId, Topology};
use std::collections::{HashMap, VecDeque};

/// One way out of an AS towards an origin.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EgressOption {
    /// The egress border router (BGP next-hop, the LDP FEC owner).
    pub egress: RouterId,
    /// The inter-AS interface on `egress` the packet leaves through.
    pub out_iface: IfaceId,
}

/// AS-level forwarding state.
#[derive(Clone, Debug)]
pub struct BgpState {
    /// `(current, origin)` → candidate egress links, deterministic
    /// order.
    options: HashMap<(AsId, AsId), Vec<EgressOption>>,
}

impl BgpState {
    /// Computes shortest-AS-path egress options between every AS pair.
    /// Ties between neighbouring ASes break towards the lowest
    /// [`AsId`], making route computation reproducible.
    pub fn compute(topo: &Topology) -> BgpState {
        // AS adjacency with the concrete border links realising it.
        let mut adj: HashMap<AsId, Vec<AsId>> = HashMap::new();
        let mut links: HashMap<(AsId, AsId), Vec<EgressOption>> = HashMap::new();
        for iface in &topo.ifaces {
            if !iface.inter_as {
                continue;
            }
            let here = topo.router(iface.router).as_id;
            let there = topo.router(topo.iface(iface.peer).router).as_id;
            adj.entry(here).or_default().push(there);
            links
                .entry((here, there))
                .or_default()
                .push(EgressOption { egress: iface.router, out_iface: iface.id });
        }
        for v in adj.values_mut() {
            v.sort();
            v.dedup();
        }
        for v in links.values_mut() {
            v.sort_by_key(|o| (o.egress, o.out_iface));
        }

        let mut options = HashMap::new();
        for origin in topo.ases.iter().map(|a| a.id) {
            // BFS from the origin over the undirected AS graph.
            let mut dist: HashMap<AsId, u32> = HashMap::new();
            dist.insert(origin, 0);
            let mut q = VecDeque::new();
            q.push_back(origin);
            while let Some(a) = q.pop_front() {
                let d = dist[&a];
                for &n in adj.get(&a).map(Vec::as_slice).unwrap_or(&[]) {
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(n) {
                        e.insert(d + 1);
                        q.push_back(n);
                    }
                }
            }
            // For each AS, the next hop towards the origin is the
            // lowest-id neighbour strictly closer to it.
            for a in topo.ases.iter().map(|a| a.id) {
                if a == origin {
                    continue;
                }
                let Some(&da) = dist.get(&a) else { continue };
                let next = adj
                    .get(&a)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter()
                    .copied()
                    .filter(|n| dist.get(n).is_some_and(|&dn| dn + 1 == da))
                    .min();
                if let Some(next) = next {
                    let opts = links.get(&(a, next)).cloned().unwrap_or_default();
                    options.insert((a, origin), opts);
                }
            }
        }
        BgpState { options }
    }

    /// Candidate egress links from `current` towards `origin`.
    pub fn options(&self, current: AsId, origin: AsId) -> &[EgressOption] {
        self.options.get(&(current, origin)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The egress link chosen for a given selection key (a prefix
    /// hash): stable per prefix, spread across parallel links.
    pub fn egress_for(&self, current: AsId, origin: AsId, key: u64) -> Option<EgressOption> {
        let opts = self.options(current, origin);
        if opts.is_empty() {
            None
        } else {
            Some(opts[(key % opts.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsSpec, Topology, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;

    /// src(100) -- transit(1) -- transit(2) -- dst(200), plus a direct
    /// shortcut transit(1)--dst(200).
    fn line_topo() -> Topology {
        let specs = vec![
            AsSpec::transit(1, "t1", Vendor::Cisco, TopologyParams::default()),
            AsSpec::transit(2, "t2", Vendor::Cisco, TopologyParams::default()),
            AsSpec::stub(100, "src", 0, 1),
            AsSpec::stub(200, "dst", 2, 0),
        ];
        let peerings = vec![
            (Asn(100), Asn(1), 1),
            (Asn(1), Asn(2), 2),
            (Asn(2), Asn(200), 1),
        ];
        Topology::build(&specs, &peerings)
    }

    #[test]
    fn shortest_as_path_next_hop() {
        let topo = line_topo();
        let bgp = BgpState::compute(&topo);
        let t1 = topo.as_by_asn(Asn(1)).unwrap().id;
        let dst = topo.as_by_asn(Asn(200)).unwrap().id;
        // From t1, the origin 200 is reached via t2.
        let opts = bgp.options(t1, dst);
        assert!(!opts.is_empty());
        for o in opts {
            assert_eq!(topo.router(o.egress).as_id, t1);
            let peer_as = topo.router(topo.iface(topo.iface(o.out_iface).peer).router).as_id;
            assert_eq!(peer_as, topo.as_by_asn(Asn(2)).unwrap().id);
        }
    }

    #[test]
    fn parallel_peerings_yield_multiple_options() {
        let topo = line_topo();
        let bgp = BgpState::compute(&topo);
        let t1 = topo.as_by_asn(Asn(1)).unwrap().id;
        let dst = topo.as_by_asn(Asn(200)).unwrap().id;
        assert_eq!(bgp.options(t1, dst).len(), 2);
        // Hash selection is stable and covers the options.
        let a = bgp.egress_for(t1, dst, 0).unwrap();
        let b = bgp.egress_for(t1, dst, 1).unwrap();
        assert_ne!(a, b);
        assert_eq!(bgp.egress_for(t1, dst, 2).unwrap(), a);
    }

    #[test]
    fn origin_as_has_no_egress_to_itself() {
        let topo = line_topo();
        let bgp = BgpState::compute(&topo);
        let dst = topo.as_by_asn(Asn(200)).unwrap().id;
        assert!(bgp.options(dst, dst).is_empty());
    }

    #[test]
    fn disconnected_as_is_unreachable() {
        let specs = vec![
            AsSpec::transit(1, "t1", Vendor::Cisco, TopologyParams::default()),
            AsSpec::stub(100, "island", 1, 0),
        ];
        let topo = Topology::build(&specs, &[]);
        let bgp = BgpState::compute(&topo);
        let t1 = topo.as_by_asn(Asn(1)).unwrap().id;
        let island = topo.as_by_asn(Asn(100)).unwrap().id;
        assert!(bgp.options(t1, island).is_empty());
        assert_eq!(bgp.egress_for(t1, island, 7), None);
    }
}
