//! Per-AS link-state IGP: Dijkstra shortest paths with full ECMP
//! next-hop sets.
//!
//! The IGP is what LDP LSPs follow (§2.2.1 of the paper): when several
//! equal-cost routes exist, the data plane load-balances across them
//! (ECMP), and — crucially for the Mono-FEC subclasses — parallel links
//! between the same router pair each contribute their own next-hop
//! interface.
//!
//! ## Representation
//!
//! All-pairs state is stored densely: routers are mapped to a
//! contiguous local index and the distance/next-hop tables are flat
//! `n × n` matrices, so the per-hop lookups the data plane issues are
//! two array reads instead of a hash of a `(RouterId, RouterId)` key.
//! During Dijkstra the ECMP first-hop sets are tracked as bitmasks over
//! the source's interfaces, which makes the equal-cost merge a single
//! `|=` with no allocation.
//!
//! ## SPF cache
//!
//! [`IgpState::cached`] memoises computed states behind a process-wide
//! cache keyed by [`Topology::igp_fingerprint`]. Evolution cycles that
//! leave an AS's IGP untouched (LDP/RSVP-only events, probe-only
//! cycles, snapshots perturbing *other* ASes) reuse the cached routes
//! instead of re-running Dijkstra from every source.

use crate::topology::{AsId, IfaceId, RouterId, Topology};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Sentinel for "no route" / "router not in this AS".
const UNREACHABLE: u32 = u32::MAX;

/// All-pairs ECMP routing state for one AS, in dense matrix form.
#[derive(Clone, Debug)]
pub struct IgpState {
    /// Global router id → local dense index (`UNREACHABLE` for routers
    /// outside the AS).
    index: Vec<u32>,
    /// Local index → global router id (the AS's routers, in order).
    routers: Vec<RouterId>,
    /// `dist[src * n + dst]`; `UNREACHABLE` when no intra-AS route.
    dist: Vec<u32>,
    /// Per-cell `(offset, len)` spans into `hop_pool`.
    spans: Vec<(u32, u32)>,
    /// Pooled ECMP next-hop sets, each cell's slice sorted by id so the
    /// flow hash picks deterministically.
    hop_pool: Vec<IfaceId>,
}

impl IgpState {
    /// Runs Dijkstra from every router of the AS.
    pub fn compute(topo: &Topology, as_id: AsId) -> IgpState {
        let routers = topo.as_of(as_id).routers.clone();
        let n = routers.len();
        let mut index = vec![UNREACHABLE; topo.routers.len()];
        for (li, &r) in routers.iter().enumerate() {
            index[r.0 as usize] = li as u32;
        }

        // Local adjacency: for each router its intra-AS edges in
        // interface order (ascending id, as built).
        let adj: Vec<Vec<(u32, u32, IfaceId)>> = routers
            .iter()
            .map(|&r| {
                topo.intra_neighbors(r)
                    .map(|(iface, peer)| (index[peer.0 as usize], iface.cost, iface.id))
                    .collect()
            })
            .collect();

        let mut dist = vec![UNREACHABLE; n * n];
        let mut spans = vec![(0u32, 0u32); n * n];
        let mut hop_pool = Vec::new();

        // Per-source scratch, reused across sources.
        let mut row = vec![UNREACHABLE; n];
        let mut masks = vec![0u128; n];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32)>> = BinaryHeap::new();

        for src in 0..n {
            assert!(
                adj[src].len() <= 128,
                "at most 128 intra-AS interfaces per router (ECMP bitmask width)"
            );
            row.fill(UNREACHABLE);
            masks.fill(0);
            row[src] = 0;
            heap.clear();
            heap.push(std::cmp::Reverse((0, src as u32)));

            while let Some(std::cmp::Reverse((d, r))) = heap.pop() {
                let r = r as usize;
                if row[r] != d {
                    continue; // stale entry
                }
                for (bit, &(peer, cost, _)) in adj[r].iter().enumerate() {
                    let peer = peer as usize;
                    let nd = d + cost;
                    // First hops towards `peer` through this edge: if r
                    // is the source, the edge's own interface;
                    // otherwise inherit r's set.
                    let via = if r == src { 1u128 << bit } else { masks[r] };
                    if nd < row[peer] {
                        row[peer] = nd;
                        masks[peer] = via;
                        heap.push(std::cmp::Reverse((nd, peer as u32)));
                    } else if nd == row[peer] {
                        masks[peer] |= via;
                    }
                }
            }

            let base = src * n;
            dist[base..base + n].copy_from_slice(&row);
            for dst in 0..n {
                let mut mask = masks[dst];
                if mask == 0 {
                    continue;
                }
                let offset = hop_pool.len() as u32;
                // Source interfaces are in ascending-id order, so bit
                // order yields the sorted set directly.
                while mask != 0 {
                    let bit = mask.trailing_zeros() as usize;
                    hop_pool.push(adj[src][bit].2);
                    mask &= mask - 1;
                }
                spans[base + dst] = (offset, (hop_pool.len() as u32) - offset);
            }
        }

        IgpState { index, routers, dist, spans, hop_pool }
    }

    /// Like [`IgpState::compute`], memoised behind the process-wide SPF
    /// cache keyed by the AS's [`Topology::igp_fingerprint`]. Identical
    /// IGP content — same routers, same intra-AS links, same costs —
    /// reuses the cached state.
    pub fn cached(topo: &Topology, as_id: AsId) -> Arc<IgpState> {
        let key = topo.igp_fingerprint(as_id);
        let cache = spf_cache();
        if let Some(state) = cache.lock().unwrap().get(&key) {
            SPF_HITS.fetch_add(1, Ordering::Relaxed);
            return state.clone();
        }
        // Compute outside the lock; a racing duplicate compute is
        // harmless (both produce identical state).
        SPF_MISSES.fetch_add(1, Ordering::Relaxed);
        let state = Arc::new(Self::compute(topo, as_id));
        let mut guard = cache.lock().unwrap();
        if guard.len() >= SPF_CACHE_CAP {
            guard.clear();
        }
        guard.insert(key, state.clone());
        state
    }

    fn local(&self, r: RouterId) -> Option<usize> {
        match self.index.get(r.0 as usize) {
            Some(&li) if li != UNREACHABLE => Some(li as usize),
            _ => None,
        }
    }

    /// The ECMP next-hop interfaces from `from` towards `to`.
    pub fn nexthops(&self, from: RouterId, to: RouterId) -> &[IfaceId] {
        let (Some(f), Some(t)) = (self.local(from), self.local(to)) else {
            return &[];
        };
        let (offset, len) = self.spans[f * self.routers.len() + t];
        &self.hop_pool[offset as usize..(offset + len) as usize]
    }

    /// Shortest-path cost, if reachable.
    pub fn distance(&self, from: RouterId, to: RouterId) -> Option<u32> {
        let (f, t) = (self.local(from)?, self.local(to)?);
        match self.dist[f * self.routers.len() + t] {
            UNREACHABLE => None,
            d => Some(d),
        }
    }

    /// Enumerates every distinct shortest path (as router sequences)
    /// from `from` to `to`, up to `limit` paths. Used by RSVP-TE CSPF
    /// to pin explicit routes.
    pub fn all_shortest_paths(
        &self,
        topo: &Topology,
        from: RouterId,
        to: RouterId,
        limit: usize,
    ) -> Vec<Vec<RouterId>> {
        let mut out = Vec::new();
        let mut path = vec![from];
        let mut scratch: Vec<Vec<RouterId>> = Vec::new();
        self.dfs_paths(topo, from, to, limit, &mut path, &mut out, 0, &mut scratch);
        out.sort();
        out
    }

    /// Depth-first path enumeration over the ECMP DAG with one shared
    /// path buffer and per-depth peer scratch — only completed paths
    /// are materialised.
    #[allow(clippy::too_many_arguments)]
    fn dfs_paths(
        &self,
        topo: &Topology,
        r: RouterId,
        to: RouterId,
        limit: usize,
        path: &mut Vec<RouterId>,
        out: &mut Vec<Vec<RouterId>>,
        depth: usize,
        scratch: &mut Vec<Vec<RouterId>>,
    ) {
        if out.len() >= limit {
            return;
        }
        if r == to {
            out.push(path.clone());
            return;
        }
        if scratch.len() <= depth {
            scratch.push(Vec::new());
        }
        // Follow ECMP next hops; dedupe parallel links by peer,
        // preserving first-appearance order.
        let mut peers = std::mem::take(&mut scratch[depth]);
        peers.clear();
        for &ifid in self.nexthops(r, to) {
            let peer = topo.iface(topo.iface(ifid).peer).router;
            if !peers.contains(&peer) {
                peers.push(peer);
            }
        }
        // Reverse order reproduces the exploration order of the former
        // explicit stack (last pushed, first popped), so `limit`
        // truncates the identical path set.
        for i in (0..peers.len()).rev() {
            path.push(peers[i]);
            self.dfs_paths(topo, peers[i], to, limit, path, out, depth + 1, scratch);
            path.pop();
        }
        scratch[depth] = peers;
    }
}

/// Entries kept in the process-wide SPF cache before it is flushed
/// wholesale (a simple bound; real campaigns hold a handful of states).
const SPF_CACHE_CAP: usize = 256;

static SPF_HITS: AtomicU64 = AtomicU64::new(0);
static SPF_MISSES: AtomicU64 = AtomicU64::new(0);

fn spf_cache() -> &'static Mutex<HashMap<u64, Arc<IgpState>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<IgpState>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// `(hits, misses)` of the process-wide SPF cache since start (or the
/// last [`spf_cache_reset`]).
pub fn spf_cache_stats() -> (u64, u64) {
    (SPF_HITS.load(Ordering::Relaxed), SPF_MISSES.load(Ordering::Relaxed))
}

/// Empties the SPF cache and zeroes its hit/miss counters (bench runs
/// isolate measurements with this).
pub fn spf_cache_reset() {
    spf_cache().lock().unwrap().clear();
    SPF_HITS.store(0, Ordering::Relaxed);
    SPF_MISSES.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsSpec, Role, Topology, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;

    fn transit(params: TopologyParams) -> (Topology, AsId) {
        transit_seeded(params, 7)
    }

    fn transit_seeded(params: TopologyParams, seed: u64) -> (Topology, AsId) {
        let spec = AsSpec {
            asn: Asn(1),
            name: "t".into(),
            role: Role::Transit,
            vendor: Vendor::Cisco,
            params,
            dest_prefixes: 0,
            vantage_points: 0,
            seed,
        };
        let topo = Topology::build(&[spec], &[]);
        (topo, AsId(0))
    }

    #[test]
    fn chain_has_single_paths() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 4,
            border_routers: 2,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        let a = routers[0];
        let b = routers[3];
        assert_eq!(igp.nexthops(a, b).len(), 1);
        assert_eq!(igp.distance(a, b), Some(30));
        assert_eq!(igp.all_shortest_paths(&topo, a, b, 8).len(), 1);
    }

    #[test]
    fn balanced_diamond_creates_equal_length_ecmp() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 2,
            border_routers: 2,
            ecmp_diamonds: 1,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        // The r0-r1 segment is replaced by two one-router bypasses:
        // two equal-cost, equal-length paths through disjoint routers.
        let (a, b) = (routers[0], routers[1]);
        assert_eq!(igp.distance(a, b), Some(10));
        assert_eq!(igp.nexthops(a, b).len(), 2);
        let paths = igp.all_shortest_paths(&topo, a, b, 8);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.len() == 3));
        assert_ne!(paths[0][1], paths[1][1], "bypass routers are disjoint");
    }

    #[test]
    fn unbalanced_diamond_mixes_path_lengths() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 2,
            border_routers: 2,
            unbalanced_diamonds: 1,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        let (a, b) = (routers[0], routers[1]);
        let paths = igp.all_shortest_paths(&topo, a, b, 8);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.len() == 2)); // direct
        assert!(paths.iter().any(|p| p.len() == 3)); // via bypass
    }

    #[test]
    fn parallel_bundle_counts_each_link() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 2,
            border_routers: 2,
            parallel_bundles: 1,
            parallel_width: 3,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        let (a, b) = (routers[0], routers[1]);
        // 3 parallel links => 3 ECMP next-hop interfaces, but a single
        // router-level path.
        assert_eq!(igp.nexthops(a, b).len(), 3);
        assert_eq!(igp.all_shortest_paths(&topo, a, b, 8).len(), 1);
    }

    #[test]
    fn self_distance_is_zero() {
        let (topo, as_id) = transit(TopologyParams::default());
        let igp = IgpState::compute(&topo, as_id);
        let r = topo.as_of(as_id).routers[0];
        assert_eq!(igp.distance(r, r), Some(0));
        assert!(igp.nexthops(r, r).is_empty());
    }

    #[test]
    fn inter_as_links_are_ignored_by_igp() {
        let t1 = AsSpec::transit(1, "a", Vendor::Cisco, TopologyParams::default());
        let t2 = AsSpec::transit(2, "b", Vendor::Cisco, TopologyParams::default());
        let topo = Topology::build(&[t1, t2], &[(Asn(1), Asn(2), 1)]);
        let igp = IgpState::compute(&topo, AsId(0));
        let other = topo.as_by_asn(Asn(2)).unwrap().routers[0];
        let here = topo.as_by_asn(Asn(1)).unwrap().routers[0];
        assert_eq!(igp.distance(here, other), None);
    }

    #[test]
    fn next_hop_sets_are_sorted_and_unique() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 4,
            border_routers: 2,
            ecmp_diamonds: 1,
            parallel_bundles: 1,
            parallel_width: 3,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        for &a in routers.iter() {
            for &b in routers.iter() {
                let nhs = igp.nexthops(a, b);
                assert!(nhs.windows(2).all(|w| w[0] < w[1]), "{a:?}->{b:?}: {nhs:?}");
            }
        }
    }

    /// The pre-rewrite reference: per-source Dijkstra over `HashMap`
    /// distance and next-hop tables, transliterated from the
    /// implementation the dense matrices replaced. Returns
    /// `(src, dst) -> (distance, sorted ECMP next-hop set)`.
    fn reference_state(
        topo: &Topology,
        as_id: AsId,
    ) -> HashMap<(RouterId, RouterId), (u32, Vec<IfaceId>)> {
        use std::cmp::Reverse;
        use std::collections::{BTreeSet, BinaryHeap};
        let routers = &topo.as_of(as_id).routers;
        let mut out = HashMap::new();
        for &src in routers.iter() {
            let mut dist: HashMap<RouterId, u32> = HashMap::new();
            let mut hops: HashMap<RouterId, BTreeSet<IfaceId>> = HashMap::new();
            dist.insert(src, 0);
            let mut heap = BinaryHeap::new();
            heap.push(Reverse((0u32, src)));
            while let Some(Reverse((d, r))) = heap.pop() {
                if dist.get(&r) != Some(&d) {
                    continue; // stale entry
                }
                let via_r = hops.get(&r).cloned().unwrap_or_default();
                for (iface, peer) in topo.intra_neighbors(r) {
                    let nd = d + iface.cost;
                    let via: BTreeSet<IfaceId> = if r == src {
                        BTreeSet::from([iface.id])
                    } else {
                        via_r.clone()
                    };
                    match dist.get(&peer).copied() {
                        Some(cur) if nd > cur => {}
                        Some(cur) if nd == cur => {
                            hops.entry(peer).or_default().extend(via);
                        }
                        _ => {
                            dist.insert(peer, nd);
                            hops.insert(peer, via);
                            heap.push(Reverse((nd, peer)));
                        }
                    }
                }
            }
            for &dst in routers.iter() {
                if let Some(&d) = dist.get(&dst) {
                    let nhs: Vec<IfaceId> =
                        hops.get(&dst).map(|s| s.iter().copied().collect()).unwrap_or_default();
                    out.insert((src, dst), (d, nhs));
                }
            }
        }
        out
    }

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Property check for the dense rewrite: on pseudo-random topology
    /// shapes with perturbed link costs, every `(src, dst)` distance and
    /// ECMP next-hop set must equal the HashMap reference's.
    #[test]
    fn dense_state_matches_hashmap_reference_on_random_topologies() {
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        for case in 0..10u64 {
            let params = TopologyParams {
                core_routers: 2 + (xorshift(&mut rng) % 5) as usize,
                border_routers: 1 + (xorshift(&mut rng) % 3) as usize,
                ecmp_diamonds: (xorshift(&mut rng) % 3) as usize,
                unbalanced_diamonds: (xorshift(&mut rng) % 2) as usize,
                parallel_bundles: (xorshift(&mut rng) % 2) as usize,
                parallel_width: 2 + (xorshift(&mut rng) % 2) as usize,
                ..Default::default()
            };
            let (topo, as_id) = transit_seeded(params, 1 + case);
            let topo = topo.with_perturbed_costs(case * 31 + 5, 0.4);
            let dense = IgpState::compute(&topo, as_id);
            let reference = reference_state(&topo, as_id);
            let routers = &topo.as_of(as_id).routers;
            for &a in routers.iter() {
                for &b in routers.iter() {
                    let (rd, rh) = match reference.get(&(a, b)) {
                        Some((d, h)) => (Some(*d), h.as_slice()),
                        None => (None, &[][..]),
                    };
                    assert_eq!(dense.distance(a, b), rd, "case {case}: dist {a:?}->{b:?}");
                    assert_eq!(dense.nexthops(a, b), rh, "case {case}: hops {a:?}->{b:?}");
                }
            }
        }
    }

    /// Mutating one link weight must bump the AS fingerprint and the
    /// topology version, so the SPF cache misses and recomputes — and
    /// the recomputed routes actually differ. The untouched original
    /// keeps hitting: the cache keys on content, not identity.
    #[test]
    fn link_cost_mutation_invalidates_cache_and_changes_routes() {
        let (orig, as_id) = transit(TopologyParams {
            core_routers: 4,
            border_routers: 2,
            ..Default::default()
        });
        let mut topo = orig.clone();
        let fp0 = topo.igp_fingerprint(as_id);
        let v0 = topo.version();
        let before = IgpState::cached(&topo, as_id);

        // Re-weight the first intra-AS link the way maintenance does.
        let link_idx = topo.links.iter().position(|l| !l.inter_as).expect("intra-AS link");
        let old_cost = topo.links[link_idx].cost;
        topo.set_link_cost(link_idx, old_cost + 1000);
        assert_ne!(topo.igp_fingerprint(as_id), fp0, "fingerprint must move");
        assert_ne!(topo.version(), v0, "topology version must move");

        let (_, m0) = spf_cache_stats();
        let after = IgpState::cached(&topo, as_id);
        let (_, m1) = spf_cache_stats();
        assert!(m1 > m0, "mutated topology misses the cache");
        assert!(!Arc::ptr_eq(&before, &after));

        // The chain link's endpoints have no alternative route, so the
        // re-weight shows up in the distance verbatim.
        let ra = topo.iface(topo.links[link_idx].a).router;
        let rb = topo.iface(topo.links[link_idx].b).router;
        assert_eq!(before.distance(ra, rb), Some(old_cost));
        assert_eq!(after.distance(ra, rb), Some(old_cost + 1000));

        let again = IgpState::cached(&orig, as_id);
        assert!(Arc::ptr_eq(&before, &again), "original content still hits");
    }

    #[test]
    fn cached_state_matches_computed_and_hits_on_reuse() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 5,
            border_routers: 2,
            ecmp_diamonds: 1,
            ..Default::default()
        });
        let plain = IgpState::compute(&topo, as_id);
        let (_, m0) = spf_cache_stats();
        let a = IgpState::cached(&topo, as_id);
        let (h1, m1) = spf_cache_stats();
        assert!(m1 > m0, "first lookup misses");
        let b = IgpState::cached(&topo, as_id);
        let (h2, _) = spf_cache_stats();
        assert!(h2 > h1, "second lookup hits");
        assert!(Arc::ptr_eq(&a, &b), "hit returns the cached Arc");
        let routers = &topo.as_of(as_id).routers;
        for &x in routers.iter() {
            for &y in routers.iter() {
                assert_eq!(plain.nexthops(x, y), a.nexthops(x, y));
                assert_eq!(plain.distance(x, y), a.distance(x, y));
            }
        }
    }
}
