//! Per-AS link-state IGP: Dijkstra shortest paths with full ECMP
//! next-hop sets.
//!
//! The IGP is what LDP LSPs follow (§2.2.1 of the paper): when several
//! equal-cost routes exist, the data plane load-balances across them
//! (ECMP), and — crucially for the Mono-FEC subclasses — parallel links
//! between the same router pair each contribute their own next-hop
//! interface.

use crate::topology::{AsId, IfaceId, RouterId, Topology};
use std::collections::{BinaryHeap, HashMap};

/// All-pairs ECMP routing state for one AS.
#[derive(Clone, Debug)]
pub struct IgpState {
    /// `nexthops[&(from, to)]` = the ECMP set of outgoing interfaces on
    /// `from` lying on a shortest path towards `to` (empty for
    /// unreachable or identical routers). Interfaces are sorted by id,
    /// so the flow hash picks deterministically.
    nexthops: HashMap<(RouterId, RouterId), Vec<IfaceId>>,
    /// Shortest-path cost between router pairs.
    dist: HashMap<(RouterId, RouterId), u32>,
}

impl IgpState {
    /// Runs Dijkstra from every router of the AS.
    pub fn compute(topo: &Topology, as_id: AsId) -> IgpState {
        let routers = &topo.as_of(as_id).routers;
        let mut nexthops = HashMap::new();
        let mut dist_map = HashMap::new();
        for &src in routers {
            let (dist, first_hops) = dijkstra_ecmp(topo, src);
            for &dst in routers {
                if let Some(&d) = dist.get(&dst) {
                    dist_map.insert((src, dst), d);
                }
                let mut hops = first_hops.get(&dst).cloned().unwrap_or_default();
                hops.sort();
                hops.dedup();
                nexthops.insert((src, dst), hops);
            }
        }
        IgpState { nexthops, dist: dist_map }
    }

    /// The ECMP next-hop interfaces from `from` towards `to`.
    pub fn nexthops(&self, from: RouterId, to: RouterId) -> &[IfaceId] {
        self.nexthops.get(&(from, to)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Shortest-path cost, if reachable.
    pub fn distance(&self, from: RouterId, to: RouterId) -> Option<u32> {
        self.dist.get(&(from, to)).copied()
    }

    /// Enumerates every distinct shortest path (as router sequences)
    /// from `from` to `to`, up to `limit` paths. Used by RSVP-TE CSPF
    /// to pin explicit routes.
    pub fn all_shortest_paths(
        &self,
        topo: &Topology,
        from: RouterId,
        to: RouterId,
        limit: usize,
    ) -> Vec<Vec<RouterId>> {
        let mut out = Vec::new();
        let mut stack = vec![(from, vec![from])];
        while let Some((r, path)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if r == to {
                out.push(path);
                continue;
            }
            // Follow ECMP next hops; dedupe parallel links by peer.
            let mut seen_peer = Vec::new();
            for &ifid in self.nexthops(r, to) {
                let peer = topo.iface(topo.iface(ifid).peer).router;
                if seen_peer.contains(&peer) {
                    continue;
                }
                seen_peer.push(peer);
                let mut p = path.clone();
                p.push(peer);
                stack.push((peer, p));
            }
        }
        out.sort();
        out
    }
}

/// Dijkstra with ECMP first-hop tracking: for every destination, the
/// set of outgoing interfaces of `src` that begin a shortest path.
fn dijkstra_ecmp(
    topo: &Topology,
    src: RouterId,
) -> (HashMap<RouterId, u32>, HashMap<RouterId, Vec<IfaceId>>) {
    use std::cmp::Reverse;
    let mut dist: HashMap<RouterId, u32> = HashMap::new();
    let mut first: HashMap<RouterId, Vec<IfaceId>> = HashMap::new();
    let mut heap: BinaryHeap<Reverse<(u32, RouterId)>> = BinaryHeap::new();
    dist.insert(src, 0);
    heap.push(Reverse((0, src)));

    while let Some(Reverse((d, r))) = heap.pop() {
        if dist.get(&r).copied() != Some(d) {
            continue; // stale entry
        }
        for (iface, peer) in topo.intra_neighbors(r) {
            let nd = d + iface.cost;
            let entry = dist.get(&peer).copied();
            // First hops towards `peer` through this edge: if r is the
            // source, the edge's own interface; otherwise inherit r's.
            let via: Vec<IfaceId> =
                if r == src { vec![iface.id] } else { first.get(&r).cloned().unwrap_or_default() };
            match entry {
                None => {
                    dist.insert(peer, nd);
                    first.insert(peer, via);
                    heap.push(Reverse((nd, peer)));
                }
                Some(cur) if nd < cur => {
                    dist.insert(peer, nd);
                    first.insert(peer, via);
                    heap.push(Reverse((nd, peer)));
                }
                Some(cur) if nd == cur => {
                    let e = first.entry(peer).or_default();
                    for v in via {
                        if !e.contains(&v) {
                            e.push(v);
                        }
                    }
                }
                _ => {}
            }
        }
    }
    (dist, first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsSpec, Role, Topology, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;

    fn transit(params: TopologyParams) -> (Topology, AsId) {
        let spec = AsSpec {
            asn: Asn(1),
            name: "t".into(),
            role: Role::Transit,
            vendor: Vendor::Cisco,
            params,
            dest_prefixes: 0,
            vantage_points: 0,
            seed: 7,
        };
        let topo = Topology::build(&[spec], &[]);
        (topo, AsId(0))
    }

    #[test]
    fn chain_has_single_paths() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 4,
            border_routers: 2,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        let a = routers[0];
        let b = routers[3];
        assert_eq!(igp.nexthops(a, b).len(), 1);
        assert_eq!(igp.distance(a, b), Some(30));
        assert_eq!(igp.all_shortest_paths(&topo, a, b, 8).len(), 1);
    }

    #[test]
    fn balanced_diamond_creates_equal_length_ecmp() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 2,
            border_routers: 2,
            ecmp_diamonds: 1,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        // The r0-r1 segment is replaced by two one-router bypasses:
        // two equal-cost, equal-length paths through disjoint routers.
        let (a, b) = (routers[0], routers[1]);
        assert_eq!(igp.distance(a, b), Some(10));
        assert_eq!(igp.nexthops(a, b).len(), 2);
        let paths = igp.all_shortest_paths(&topo, a, b, 8);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.len() == 3));
        assert_ne!(paths[0][1], paths[1][1], "bypass routers are disjoint");
    }

    #[test]
    fn unbalanced_diamond_mixes_path_lengths() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 2,
            border_routers: 2,
            unbalanced_diamonds: 1,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        let (a, b) = (routers[0], routers[1]);
        let paths = igp.all_shortest_paths(&topo, a, b, 8);
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().any(|p| p.len() == 2)); // direct
        assert!(paths.iter().any(|p| p.len() == 3)); // via bypass
    }

    #[test]
    fn parallel_bundle_counts_each_link() {
        let (topo, as_id) = transit(TopologyParams {
            core_routers: 2,
            border_routers: 2,
            parallel_bundles: 1,
            parallel_width: 3,
            ..Default::default()
        });
        let igp = IgpState::compute(&topo, as_id);
        let routers = &topo.as_of(as_id).routers;
        let (a, b) = (routers[0], routers[1]);
        // 3 parallel links => 3 ECMP next-hop interfaces, but a single
        // router-level path.
        assert_eq!(igp.nexthops(a, b).len(), 3);
        assert_eq!(igp.all_shortest_paths(&topo, a, b, 8).len(), 1);
    }

    #[test]
    fn self_distance_is_zero() {
        let (topo, as_id) = transit(TopologyParams::default());
        let igp = IgpState::compute(&topo, as_id);
        let r = topo.as_of(as_id).routers[0];
        assert_eq!(igp.distance(r, r), Some(0));
        assert!(igp.nexthops(r, r).is_empty());
    }

    #[test]
    fn inter_as_links_are_ignored_by_igp() {
        let t1 = AsSpec::transit(1, "a", Vendor::Cisco, TopologyParams::default());
        let t2 = AsSpec::transit(2, "b", Vendor::Cisco, TopologyParams::default());
        let topo = Topology::build(&[t1, t2], &[(Asn(1), Asn(2), 1)]);
        let igp = IgpState::compute(&topo, AsId(0));
        let other = topo.as_by_asn(Asn(2)).unwrap().routers[0];
        let here = topo.as_by_asn(Asn(1)).unwrap().routers[0];
        assert_eq!(igp.distance(here, other), None);
    }
}
