//! The Paris-traceroute probing engine.
//!
//! [`Prober`] runs full TTL ladders and produces
//! [`lpr_core::trace::Trace`]s — the exact input LPR consumes. It
//! models the measurement artefacts the paper's filtering stage exists
//! for:
//!
//! * **anonymous routers**: each probe independently goes unanswered
//!   with the replying AS's `anonymous_rate` (feeding the
//!   IncompleteLsp filter);
//! * **flow churn**: between snapshots a small fraction of `(vp, dst)`
//!   flows hash onto different ECMP paths (routing noise, feeding the
//!   Persistence filter);
//! * Paris behaviour: within one trace the flow identifier is constant,
//!   so one trace follows one path.
//!
//! Everything derives from `(seed, snapshot_salt, vp, dst, ttl)` — no
//! hidden RNG state — so campaigns replay bit-identically.

use crate::dataplane::{probe_ladder, LadderEnd, ProbeReply};
use crate::internet::{splitmix64, Internet};
use crate::mda::{self, ProbingStrategy};
use lpr_chaos::{FaultCounts, FaultPlan};
use lpr_core::trace::{Hop, Trace};
use std::net::Ipv4Addr;

/// Extra round-trip time (µs) on replies that detoured via a tunnel
/// tail before returning — the implicit-tunnel u-turn artifact (the
/// interior LSR forwards the ICMP reply down the LSP to the egress,
/// which routes it back). Sized well above the synthetic RTT jitter
/// (±900 µs) so the [`lpr_core::reveal`] RTLA detector separates the
/// two cleanly.
pub const UTURN_DETOUR_US: u32 = 3000;

/// Probing parameters.
#[derive(Clone, Debug)]
pub struct ProbeOptions {
    /// Highest TTL probed.
    pub max_ttl: u8,
    /// Consecutive unanswered probes before giving up (scamper's gap
    /// limit).
    pub gap_limit: u8,
    /// Campaign seed.
    pub seed: u64,
    /// Snapshot discriminator: anonymity and churn vary with it while
    /// the Paris flow stays put (unless churned).
    pub snapshot_salt: u64,
    /// Fraction of `(vp, dst)` flows remapped this snapshot.
    pub flow_churn_rate: f64,
    /// How campaigns spend probes: exhaustive every-pair walks (the
    /// default — today's behaviour, the golden shape) or the
    /// [`crate::mda`] stopping rules pruning each `(vp, /24)` host
    /// group once its ECMP width is statistically settled.
    pub probing: ProbingStrategy,
}

impl Default for ProbeOptions {
    fn default() -> Self {
        ProbeOptions {
            max_ttl: 32,
            gap_limit: 5,
            seed: 0,
            snapshot_salt: 0,
            flow_churn_rate: 0.0,
            probing: ProbingStrategy::Exhaustive,
        }
    }
}

/// Per-campaign probe-budget accounting: what a campaign spent and what
/// the stopping rule saved. Under [`ProbingStrategy::Exhaustive`] every
/// pair is probed and nothing is pruned; the stochastic strategies
/// prune whole pairs once a host group's widest hop meets its `n_k`
/// threshold.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeBudget {
    /// `(vp, dst)` pairs the campaign was asked to cover.
    pub pairs_total: u64,
    /// Pairs actually traced (emitted a trace).
    pub pairs_probed: u64,
    /// Pairs skipped by the stopping rule.
    pub pairs_pruned: u64,
    /// Flow-varied ladder walks that produced emitted traces.
    pub flows_traced: u64,
    /// Probe packets sent, re-confirmation walks included.
    pub probes_sent: u64,
    /// Steered per-hop re-confirmation walks ([`ProbingStrategy::Mda`]
    /// only).
    pub confirmations: u64,
    /// Host groups whose stopping rule settled within the group.
    pub groups_stopped: u64,
    /// Host groups that ran out of hosts before the rule settled.
    pub groups_exhausted: u64,
    /// Hidden-tunnel candidates the revelation phase considered
    /// (deduplicated triggers).
    pub revelation_triggers: u64,
    /// Probe packets the revelation phase's DPR walks spent (also
    /// folded into `probes_sent`).
    pub revelation_probes: u64,
    /// Candidates the revelation phase revealed at least one interior
    /// path for.
    pub revelation_revealed: u64,
}

impl ProbeBudget {
    /// Folds another tally into this one, field-wise.
    pub fn merge(&mut self, other: &ProbeBudget) {
        self.pairs_total += other.pairs_total;
        self.pairs_probed += other.pairs_probed;
        self.pairs_pruned += other.pairs_pruned;
        self.flows_traced += other.flows_traced;
        self.probes_sent += other.probes_sent;
        self.confirmations += other.confirmations;
        self.groups_stopped += other.groups_stopped;
        self.groups_exhausted += other.groups_exhausted;
        self.revelation_triggers += other.revelation_triggers;
        self.revelation_probes += other.revelation_probes;
        self.revelation_revealed += other.revelation_revealed;
    }

    /// Probe packets per requested destination pair — the headline
    /// MDA-Lite economy number.
    pub fn probes_per_pair(&self) -> f64 {
        self.probes_sent as f64 / self.pairs_total.max(1) as f64
    }
}

/// Handles to the `probe.*` metrics a [`Prober`] maintains.
struct ProbeMetrics {
    /// Probes sent (`probe.sent`): one per TTL step.
    sent: std::sync::Arc<lpr_obs::Counter>,
    /// Replies received (`probe.replies`): everything but anonymous
    /// losses.
    replies: std::sync::Arc<lpr_obs::Counter>,
    /// Probes lost to anonymous routers (`probe.anonymous`).
    anonymous: std::sync::Arc<lpr_obs::Counter>,
    /// RFC 4950 quoted label-stack depth per time-exceeded reply
    /// (`probe.stack_depth`); depth 0 means no labels quoted.
    stack_depth: std::sync::Arc<lpr_obs::Histogram>,
    /// Flow walks that produced emitted traces (`probe.budget.flows`).
    budget_flows: std::sync::Arc<lpr_obs::Counter>,
    /// Pairs pruned by the stopping rule (`probe.budget.pruned`).
    budget_pruned: std::sync::Arc<lpr_obs::Counter>,
    /// Host groups settled by the rule (`probe.budget.stopped`).
    budget_stopped: std::sync::Arc<lpr_obs::Counter>,
    /// Host groups that ran dry first (`probe.budget.exhausted`).
    budget_exhausted: std::sync::Arc<lpr_obs::Counter>,
    /// The recorder's span/event journal: campaigns run inside a
    /// `campaign` span with per-shard child spans (inert by default).
    tracer: lpr_obs::Tracer,
}

/// A traceroute engine bound to one simulated Internet.
pub struct Prober<'a> {
    net: &'a Internet,
    opts: ProbeOptions,
    metrics: Option<ProbeMetrics>,
    faults: Option<FaultPlan>,
    injected: std::cell::Cell<FaultCounts>,
}

impl<'a> Prober<'a> {
    /// Binds a prober to a network.
    pub fn new(net: &'a Internet, opts: ProbeOptions) -> Self {
        Prober {
            net,
            opts,
            metrics: None,
            faults: None,
            injected: std::cell::Cell::new(FaultCounts::default()),
        }
    }

    /// Injects the plan's measurement-layer faults (probe loss, ICMP
    /// rate limiting, PHP silence, truncated label-stack extensions,
    /// duplicated and reordered replies) into every trace this prober
    /// runs. Fault decisions derive from the plan's own seed, so the
    /// same plan over the same campaign replays bit-identically — and a
    /// quiet plan is the identity.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Tally of faults injected by the [`FaultPlan`] so far (zero
    /// without one).
    pub fn injected_faults(&self) -> FaultCounts {
        self.injected.get()
    }

    /// Tallies probing activity into `recorder`'s registry: `probe.sent`,
    /// `probe.replies`, `probe.anonymous` counters and the
    /// `probe.stack_depth` histogram of RFC 4950 quoted stack depths.
    pub fn with_recorder(mut self, recorder: &lpr_obs::Recorder) -> Self {
        self.metrics = Some(ProbeMetrics {
            sent: recorder.counter(lpr_obs::names::PROBE_SENT),
            replies: recorder.counter(lpr_obs::names::PROBE_REPLIES),
            anonymous: recorder.counter(lpr_obs::names::PROBE_ANONYMOUS),
            stack_depth: recorder.histogram(lpr_obs::names::PROBE_STACK_DEPTH),
            budget_flows: recorder.counter(lpr_obs::names::PROBE_BUDGET_FLOWS),
            budget_pruned: recorder.counter(lpr_obs::names::PROBE_BUDGET_PRUNED),
            budget_stopped: recorder.counter(lpr_obs::names::PROBE_BUDGET_STOPPED),
            budget_exhausted: recorder.counter(lpr_obs::names::PROBE_BUDGET_EXHAUSTED),
            tracer: recorder.tracer().clone(),
        });
        self
    }

    /// The span/event journal this prober records into (the inert
    /// tracer without a recorder).
    pub(crate) fn tracer(&self) -> lpr_obs::Tracer {
        self.metrics.as_ref().map_or_else(lpr_obs::Tracer::disabled, |m| m.tracer.clone())
    }

    /// The [`Sync`] view of this prober that shard workers share; the
    /// fault tally (a `Cell`) stays behind, accumulated per worker and
    /// merged back in shard order.
    pub(crate) fn core(&self) -> ProbeCore<'_> {
        ProbeCore {
            net: self.net,
            opts: &self.opts,
            metrics: self.metrics.as_ref(),
            faults: self.faults.as_ref(),
        }
    }

    /// Folds a worker-local fault tally into the prober's running total.
    pub(crate) fn merge_injected(&self, injected: FaultCounts) {
        if injected.total() > 0 {
            let mut total = self.injected.get();
            total.merge(&injected);
            self.injected.set(total);
        }
    }

    /// Runs one traceroute (Paris: the flow identifier derives from
    /// `(vp, dst)` and stays constant across the TTL ladder).
    pub fn trace(&self, vp: Ipv4Addr, dst: Ipv4Addr) -> Trace {
        self.trace_with_flow(vp, dst, self.core().flow(vp, dst))
    }

    /// Runs one traceroute with an explicit flow identifier — the MDA
    /// (multipath detection) primitive: Paris traceroute enumerates
    /// ECMP branches by probing the same destination under several
    /// flow identifiers, each held constant within its own trace.
    pub fn trace_with_flow(&self, vp: Ipv4Addr, dst: Ipv4Addr, flow: u64) -> Trace {
        let mut injected = FaultCounts::default();
        let trace = self.core().trace_with_flow(vp, dst, flow, &mut injected);
        self.merge_injected(injected);
        trace
    }

    /// MDA-style multipath enumeration: traces the destination under
    /// `flows` distinct flow identifiers and returns the distinct IP
    /// paths observed (responsive-hop address sequences). The §5
    /// validation campaign compares this IP-level view against the
    /// label-level LPR classes.
    #[deprecated(
        since = "0.9.0",
        note = "a fixed flow count samples blind; use `mda_discover`, whose \
                stopping rule spends probes only while undiscovered branches \
                remain plausible (pass the old count as `max_flows`)"
    )]
    pub fn mda_paths(&self, vp: Ipv4Addr, dst: Ipv4Addr, flows: usize) -> Vec<Vec<Ipv4Addr>> {
        let mut paths = std::collections::BTreeSet::new();
        for k in 0..flows {
            let flow = splitmix64(
                (u32::from(vp) as u64) ^ ((u32::from(dst) as u64) << 32) ^ (k as u64) << 17,
            );
            let trace = self.trace_with_flow(vp, dst, flow);
            let path: Vec<Ipv4Addr> =
                trace.responsive_hops().map(|h| h.addr.expect("responsive")).collect();
            paths.insert(path);
        }
        paths.into_iter().collect()
    }

    /// Runs a full campaign: every vantage point towards every
    /// destination, in row-major `(vp, dst)` order.
    pub fn campaign(&self, vps: &[Ipv4Addr], dsts: &[Ipv4Addr]) -> Vec<Trace> {
        self.campaign_par(vps, dsts, 1)
    }

    /// [`Prober::campaign`] sharded over `threads` workers (`0` =
    /// available parallelism) via `lpr-par`, with the deterministic
    /// shard-order merge discipline: contiguous shards of the row-major
    /// `(vp, dst)` pair list are concatenated in shard order, so the
    /// output — traces and injected-fault tallies alike — is
    /// byte-identical to the sequential campaign for any thread count.
    /// Fault decisions are pure functions of `(plan, vp, dst, ttl)`, so
    /// chaos mode shards safely.
    pub fn campaign_par(
        &self,
        vps: &[Ipv4Addr],
        dsts: &[Ipv4Addr],
        threads: usize,
    ) -> Vec<Trace> {
        self.campaign_with_budget(vps, dsts, threads).0
    }

    /// [`Prober::campaign_par`] plus the campaign's [`ProbeBudget`].
    /// Under [`ProbingStrategy::Exhaustive`] the work unit is the
    /// `(vp, dst)` pair, exactly as before. The stochastic strategies
    /// shard over `(vp, /24 host group)` units instead: each group is
    /// self-contained (its stopping rule sees only its own traces), so
    /// contiguous group shards concatenated in shard order stay
    /// byte-identical at any thread count — same discipline, coarser
    /// unit. Emitted traces are the exhaustive campaign's traces for
    /// the probed pairs; pruned pairs emit nothing.
    pub fn campaign_with_budget(
        &self,
        vps: &[Ipv4Addr],
        dsts: &[Ipv4Addr],
        threads: usize,
    ) -> (Vec<Trace>, ProbeBudget) {
        let core = self.core();
        let tracer = self.tracer();
        let span = tracer.span("campaign");
        let strategy = self.opts.probing;
        let mut budget = ProbeBudget {
            pairs_total: (vps.len() * dsts.len()) as u64,
            ..ProbeBudget::default()
        };
        let out = match strategy {
            ProbingStrategy::Exhaustive => {
                self.exhaustive_campaign(vps, dsts, threads, &tracer, &span, &mut budget)
            }
            _ => {
                let groups = mda::prefix_groups(dsts);
                let work: Vec<(Ipv4Addr, usize, usize)> = vps
                    .iter()
                    .flat_map(|&vp| groups.iter().map(move |&(s, e)| (vp, s, e)))
                    .collect();
                if threads == 1 {
                    let mut injected = FaultCounts::default();
                    let mut out = Vec::with_capacity(vps.len() * dsts.len());
                    for &(vp, s, e) in &work {
                        let (traces, group) =
                            mda::probe_group(core, vp, &dsts[s..e], strategy, &mut injected);
                        budget.merge(&group);
                        out.extend(traces);
                    }
                    self.merge_injected(injected);
                    out
                } else {
                    let run = lpr_par::map_shards_traced(
                        &work,
                        lpr_par::ShardOptions::new(threads),
                        lpr_par::ShardTrace::new(&tracer, span.context()),
                        |_, shard| {
                            let mut injected = FaultCounts::default();
                            let mut tally = ProbeBudget::default();
                            let traces: Vec<Trace> = shard
                                .iter()
                                .flat_map(|&(vp, s, e)| {
                                    let (traces, group) = mda::probe_group(
                                        core,
                                        vp,
                                        &dsts[s..e],
                                        strategy,
                                        &mut injected,
                                    );
                                    tally.merge(&group);
                                    traces
                                })
                                .collect();
                            (traces, injected, tally)
                        },
                    )
                    .expect_ok();
                    let mut out = Vec::with_capacity(vps.len() * dsts.len());
                    let mut merged = FaultCounts::default();
                    for (traces, injected, tally) in run.outputs {
                        out.extend(traces);
                        merged.merge(&injected);
                        budget.merge(&tally);
                    }
                    self.merge_injected(merged);
                    out
                }
            }
        };
        budget.pairs_probed = out.len() as u64;
        budget.pairs_pruned = budget.pairs_total - budget.pairs_probed;
        if let Some(m) = &self.metrics {
            m.budget_flows.add(budget.flows_traced);
            m.budget_pruned.add(budget.pairs_pruned);
            m.budget_stopped.add(budget.groups_stopped);
            m.budget_exhausted.add(budget.groups_exhausted);
        }
        (out, budget)
    }

    /// [`Prober::campaign_with_budget`] followed by the revelation
    /// phase: triggers detected in the campaign's traces are re-probed
    /// with targeted DPR walks (see [`crate::revelation`]), and the
    /// evidence is returned alongside the traces. Revelation costs are
    /// folded into the budget (`revelation_*` fields, and
    /// `probes_sent` includes the DPR walks). Both the traces and the
    /// evidence are byte-identical at any thread count.
    pub fn campaign_with_revelation(
        &self,
        vps: &[Ipv4Addr],
        dsts: &[Ipv4Addr],
        threads: usize,
        reveal_opts: &crate::revelation::RevelationOptions,
    ) -> (Vec<Trace>, ProbeBudget, Vec<lpr_core::reveal::RevealedTunnel>) {
        let (traces, mut budget) = self.campaign_with_budget(vps, dsts, threads);
        let evidence =
            crate::revelation::reveal_from_traces(self, &traces, reveal_opts, threads);
        budget.revelation_triggers = evidence.len() as u64;
        for ev in &evidence {
            budget.revelation_probes += ev.probes;
            if ev.status == lpr_core::reveal::RevelationStatus::Revealed {
                budget.revelation_revealed += 1;
            }
        }
        budget.probes_sent += budget.revelation_probes;
        (traces, budget, evidence)
    }

    /// The original every-pair campaign (pair-sharded, golden shape),
    /// with probe counting folded into `budget`.
    fn exhaustive_campaign(
        &self,
        vps: &[Ipv4Addr],
        dsts: &[Ipv4Addr],
        threads: usize,
        tracer: &lpr_obs::Tracer,
        span: &lpr_obs::Span,
        budget: &mut ProbeBudget,
    ) -> Vec<Trace> {
        let core = self.core();
        if threads == 1 {
            let mut injected = FaultCounts::default();
            let mut out = Vec::with_capacity(vps.len() * dsts.len());
            for &vp in vps {
                for &dst in dsts {
                    let flow = core.flow(vp, dst);
                    let (trace, probes) =
                        core.trace_with_flow_counted(vp, dst, flow, &mut injected);
                    budget.probes_sent += probes;
                    out.push(trace);
                }
            }
            budget.flows_traced = out.len() as u64;
            self.merge_injected(injected);
            return out;
        }
        let pairs: Vec<(Ipv4Addr, Ipv4Addr)> = vps
            .iter()
            .flat_map(|&vp| dsts.iter().map(move |&dst| (vp, dst)))
            .collect();
        let run = lpr_par::map_shards_traced(
            &pairs,
            lpr_par::ShardOptions::new(threads),
            lpr_par::ShardTrace::new(tracer, span.context()),
            |_, shard| {
                let mut injected = FaultCounts::default();
                let mut probes = 0u64;
                let traces: Vec<Trace> = shard
                    .iter()
                    .map(|&(vp, dst)| {
                        let flow = core.flow(vp, dst);
                        let (trace, p) =
                            core.trace_with_flow_counted(vp, dst, flow, &mut injected);
                        probes += p;
                        trace
                    })
                    .collect();
                (traces, injected, probes)
            },
        )
        .expect_ok();
        let mut out = Vec::with_capacity(pairs.len());
        let mut merged = FaultCounts::default();
        for (traces, injected, probes) in run.outputs {
            out.extend(traces);
            merged.merge(&injected);
            budget.probes_sent += probes;
        }
        budget.flows_traced = out.len() as u64;
        self.merge_injected(merged);
        out
    }
}

/// The shareable probing state: everything [`Prober`] holds except the
/// interior-mutable fault tally, so shard workers can trace
/// concurrently while each accumulates faults into its own
/// [`FaultCounts`].
#[derive(Clone, Copy)]
pub(crate) struct ProbeCore<'a> {
    pub(crate) net: &'a Internet,
    pub(crate) opts: &'a ProbeOptions,
    metrics: Option<&'a ProbeMetrics>,
    faults: Option<&'a FaultPlan>,
}

impl ProbeCore<'_> {
    /// The fault plan the prober was armed with, if any — the
    /// revelation phase consults its trigger-loss and DPR
    /// rate-limiting predicates.
    pub(crate) fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults
    }

    /// The Paris flow identifier for a `(vp, dst)` pair this snapshot.
    pub(crate) fn flow(&self, vp: Ipv4Addr, dst: Ipv4Addr) -> u64 {
        let base = splitmix64(
            (u32::from(vp) as u64) ^ ((u32::from(dst) as u64) << 32) ^ self.opts.seed,
        );
        if self.opts.flow_churn_rate > 0.0 {
            let h = splitmix64(base ^ self.opts.snapshot_salt ^ 0xC0FFEE);
            if (h as f64 / u64::MAX as f64) < self.opts.flow_churn_rate {
                return base ^ splitmix64(self.opts.snapshot_salt.wrapping_add(1));
            }
        }
        base
    }

    /// Whether this particular probe's reply is lost (anonymous hop).
    fn anonymous(&self, vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        let h = splitmix64(
            self.opts.seed
                ^ self.opts.snapshot_salt.rotate_left(17)
                ^ ((u32::from(vp) as u64) << 8)
                ^ ((u32::from(dst) as u64) << 24)
                ^ (ttl as u64),
        );
        (h as f64 / u64::MAX as f64) < rate
    }

    /// Synthetic RTT: grows with hop count, deterministic jitter.
    fn rtt(&self, vp: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> u32 {
        let h = splitmix64((u32::from(vp) as u64) ^ (u32::from(dst) as u64) ^ (ttl as u64) << 48);
        ttl as u32 * 1500 + (h % 900) as u32
    }

    /// [`ProbeCore::trace_with_flow`] plus the exact number of probe
    /// packets the ladder spent — the currency budget accounting is
    /// denominated in.
    pub(crate) fn trace_with_flow_counted(
        &self,
        vp: Ipv4Addr,
        dst: Ipv4Addr,
        flow: u64,
        injected: &mut FaultCounts,
    ) -> (Trace, u64) {
        let mut probes = 0u64;
        let trace = self.run_ladder(vp, dst, flow, injected, &mut probes);
        (trace, probes)
    }

    /// One traceroute over a single forwarding walk.
    pub(crate) fn trace_with_flow(
        &self,
        vp: Ipv4Addr,
        dst: Ipv4Addr,
        flow: u64,
        injected: &mut FaultCounts,
    ) -> Trace {
        let mut probes = 0u64;
        self.run_ladder(vp, dst, flow, injected, &mut probes)
    }

    /// The TTL ladder over a single forwarding walk: consumes the
    /// walk's per-TTL expiry events in order, then its terminal
    /// (Echo/Unreachable) — O(hops) where probing each TTL separately
    /// was O(hops²).
    fn run_ladder(
        &self,
        vp: Ipv4Addr,
        dst: Ipv4Addr,
        flow: u64,
        injected: &mut FaultCounts,
        probes: &mut u64,
    ) -> Trace {
        let mut trace = Trace::new(vp, dst);
        let mut gap = 0u8;
        let mut events = Vec::new();
        let end =
            probe_ladder(self.net, vp, dst, flow, self.opts.max_ttl as usize, &mut events, None);
        let mut events = events.into_iter();
        for ttl in 1..=self.opts.max_ttl {
            *probes += 1;
            if let Some(m) = self.metrics {
                m.sent.inc();
            }
            match events.next() {
                Some(ProbeReply::TimeExceeded { router, addr, stack, uturn }) => {
                    let rate = self
                        .net
                        .config(self.net.topo.router(router).as_id)
                        .anonymous_rate;
                    // Injected reply faults: loss in transit and router-side
                    // ICMP rate limiting both leave the hop anonymous, like
                    // the modelled anonymity does.
                    let faulted = match self.faults {
                        Some(plan) if plan.lose_probe(vp, dst, ttl) => {
                            injected.lost += 1;
                            true
                        }
                        Some(plan) if plan.rate_limited(addr, ttl) => {
                            injected.rate_limited += 1;
                            true
                        }
                        _ => false,
                    };
                    if faulted || self.anonymous(vp, dst, ttl, rate) {
                        if let Some(m) = self.metrics {
                            m.anonymous.inc();
                        }
                        trace.push_hop(Hop::anonymous(ttl));
                        gap += 1;
                    } else {
                        let mut stack: lpr_core::label::LabelStack =
                            stack.into_iter().collect();
                        if let Some(plan) = self.faults {
                            if !stack.is_empty() && plan.php_silent(addr) {
                                stack = lpr_core::label::LabelStack::empty();
                                injected.php_silenced += 1;
                            } else if stack.depth() > 1 && plan.truncate_stack(addr, ttl) {
                                stack =
                                    lpr_core::label::LabelStack::from_entries(&stack.entries()[..1]);
                                injected.truncated_exts += 1;
                            }
                        }
                        if let Some(m) = self.metrics {
                            m.replies.inc();
                            m.stack_depth.observe(stack.depth());
                        }
                        trace.push_hop(Hop {
                            probe_ttl: ttl,
                            addr: Some(addr),
                            rtt_us: self.rtt(vp, dst, ttl)
                                + if uturn { UTURN_DETOUR_US } else { 0 },
                            stack,
                        });
                        gap = 0;
                    }
                }
                Some(_) => unreachable!("the ladder records only TTL expiries"),
                None => {
                    // Past the last expiry: the walk's terminal answers
                    // (or doesn't) every remaining TTL.
                    if let LadderEnd::Echo { addr } = end {
                        if let Some(m) = self.metrics {
                            m.replies.inc();
                        }
                        trace.push_hop(Hop {
                            probe_ttl: ttl,
                            addr: Some(addr),
                            rtt_us: self.rtt(vp, dst, ttl),
                            stack: lpr_core::label::LabelStack::empty(),
                        });
                        trace.reached = true;
                    }
                    break;
                }
            }
            if gap >= self.opts.gap_limit {
                break;
            }
        }
        if let Some(plan) = self.faults {
            // Duplicated/reordered replies rebuild the hop list, possibly
            // breaking strict TTL order — downstream quarantine territory.
            plan.degrade_structure(&mut trace, injected);
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::internet::MplsConfig;
    use crate::topology::{AsSpec, Topology, TopologyParams};
    use crate::vendor::Vendor;
    use lpr_core::lsp::Asn;
    use std::collections::BTreeMap;

    fn build(anonymous_rate: f64) -> Internet {
        let specs = vec![
            AsSpec::transit(
                1,
                "t",
                Vendor::Cisco,
                TopologyParams { core_routers: 5, border_routers: 2, ..Default::default() },
            ),
            AsSpec::stub(100, "src", 0, 1),
            AsSpec::stub(200, "dst", 2, 0),
        ];
        let peerings = vec![(Asn(100), Asn(1), 1), (Asn(1), Asn(200), 1)];
        let topo = Topology::build(&specs, &peerings);
        let mut configs = BTreeMap::new();
        let mut cfg = MplsConfig::ldp_default();
        cfg.anonymous_rate = anonymous_rate;
        configs.insert(Asn(1), cfg);
        Internet::new(topo, &configs)
    }

    #[test]
    fn traces_are_reproducible() {
        let net = build(0.0);
        let prober = Prober::new(&net, ProbeOptions::default());
        let vp = net.topo.vantage_points()[0].0;
        let dst = net.topo.destinations(1)[0];
        assert_eq!(prober.trace(vp, dst), prober.trace(vp, dst));
    }

    #[test]
    fn campaign_covers_all_pairs() {
        let net = build(0.0);
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(2);
        let traces = prober.campaign(&vps, &dsts);
        assert_eq!(traces.len(), vps.len() * dsts.len());
        assert!(traces.iter().all(|t| t.reached));
        assert!(traces.iter().any(|t| t.has_mpls()));
    }

    #[test]
    fn recorder_tallies_probes_and_stack_depths() {
        let net = build(0.0);
        let rec = lpr_obs::Recorder::new("probe-test");
        let prober = Prober::new(&net, ProbeOptions::default()).with_recorder(&rec);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(2);
        let traces = prober.campaign(&vps, &dsts);
        let telemetry = rec.finish();

        let sent = telemetry.counter("probe.sent");
        let replies = telemetry.counter("probe.replies");
        assert!(sent > 0);
        // No anonymity here: every probe is answered or the ladder
        // stopped on Unreachable (unanswered, not counted as a reply).
        assert!(replies <= sent);
        assert_eq!(telemetry.counter("probe.anonymous"), 0);
        // Every responsive hop corresponds to one counted reply.
        let responsive: u64 =
            traces.iter().map(|t| t.responsive_hops().count() as u64).sum();
        assert_eq!(replies, responsive);
        // MPLS traversal shows up as non-zero quoted stack depths.
        let depths = &telemetry.histograms["probe.stack_depth"];
        assert!(depths.iter().skip(1).sum::<u64>() > 0, "labelled hops observed");
    }

    #[test]
    fn anonymity_produces_gaps() {
        let net = build(0.5);
        let prober = Prober::new(&net, ProbeOptions::default());
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(2);
        let traces = prober.campaign(&vps, &dsts);
        let anonymous: usize = traces
            .iter()
            .flat_map(|t| t.hops.iter())
            .filter(|h| !h.is_responsive())
            .count();
        assert!(anonymous > 0);
    }

    #[test]
    fn snapshot_salt_changes_anonymity_pattern_not_paths() {
        let net = build(0.3);
        let base = ProbeOptions::default();
        let vp = net.topo.vantage_points()[0].0;
        let dst = net.topo.destinations(1)[0];
        let a = Prober::new(&net, base.clone()).trace(vp, dst);
        let b = Prober::new(
            &net,
            ProbeOptions { snapshot_salt: 99, ..base },
        )
        .trace(vp, dst);
        // The responsive hops that exist in both must agree (no churn).
        for (x, y) in a.hops.iter().zip(b.hops.iter()) {
            if x.is_responsive() && y.is_responsive() {
                assert_eq!(x.addr, y.addr);
            }
        }
    }

    #[test]
    fn quiet_fault_plan_is_identity() {
        let net = build(0.0);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(4);
        let plain = Prober::new(&net, ProbeOptions::default()).campaign(&vps, &dsts);
        let quiet = Prober::new(&net, ProbeOptions::default())
            .with_faults(lpr_chaos::FaultPlan::none(9));
        assert_eq!(quiet.campaign(&vps, &dsts), plain);
        assert_eq!(quiet.injected_faults(), FaultCounts::default());
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let net = build(0.0);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(4);
        let run = |seed: u64| {
            let p = Prober::new(&net, ProbeOptions::default())
                .with_faults(lpr_chaos::FaultPlan::uniform(seed, 0.3));
            let traces = p.campaign(&vps, &dsts);
            (traces, p.injected_faults())
        };
        let (ta, ca) = run(5);
        let (tb, cb) = run(5);
        assert_eq!(ta, tb);
        assert_eq!(ca, cb);
        assert!(ca.total() > 0, "30% faults must fire somewhere");
        let (tc, _) = run(6);
        assert_ne!(ta, tc, "different seeds, different faults");
    }

    #[test]
    fn probe_loss_faults_leave_anonymous_hops() {
        let net = build(0.0);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(4);
        let mut plan = lpr_chaos::FaultPlan::none(1);
        plan.probe_loss = 0.5;
        let prober = Prober::new(&net, ProbeOptions::default()).with_faults(plan);
        let traces = prober.campaign(&vps, &dsts);
        let anonymous = traces
            .iter()
            .flat_map(|t| t.hops.iter())
            .filter(|h| !h.is_responsive())
            .count() as u64;
        let injected = prober.injected_faults();
        assert!(injected.lost > 0);
        assert!(anonymous >= injected.lost, "every lost reply is an anonymous hop");
    }

    #[test]
    fn php_silence_fault_hides_label_stacks() {
        let net = build(0.0);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(2);
        let mut plan = lpr_chaos::FaultPlan::none(2);
        plan.php_silence = 1.0;
        let prober = Prober::new(&net, ProbeOptions::default()).with_faults(plan);
        let traces = prober.campaign(&vps, &dsts);
        assert!(traces.iter().all(|t| !t.has_mpls()), "every stack is silenced");
        assert!(prober.injected_faults().php_silenced > 0);
    }

    #[test]
    fn structural_faults_reach_the_hop_lists() {
        let net = build(0.0);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(4);
        let mut plan = lpr_chaos::FaultPlan::none(4);
        plan.duplicate_reply = 1.0;
        let prober = Prober::new(&net, ProbeOptions::default()).with_faults(plan);
        let traces = prober.campaign(&vps, &dsts);
        assert!(prober.injected_faults().duplicated > 0);
        assert!(
            traces.iter().any(|t| {
                t.hops.windows(2).any(|w| w[0].probe_ttl >= w[1].probe_ttl)
            }),
            "duplicated replies break strict TTL order somewhere"
        );
    }

    #[test]
    fn campaign_par_matches_sequential_for_any_thread_count() {
        let net = build(0.2);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(64);
        let plan = lpr_chaos::FaultPlan::uniform(3, 0.2);
        let seq_prober = Prober::new(&net, ProbeOptions::default()).with_faults(plan);
        let seq = seq_prober.campaign(&vps, &dsts);
        assert!(vps.len() * dsts.len() > 64, "needs to span several shards");
        for threads in [2usize, 3, 8] {
            let p = Prober::new(&net, ProbeOptions::default()).with_faults(plan);
            assert_eq!(p.campaign_par(&vps, &dsts, threads), seq, "threads = {threads}");
            assert_eq!(p.injected_faults(), seq_prober.injected_faults());
        }
    }

    #[test]
    fn flow_churn_moves_some_flows() {
        let net = build(0.0);
        let vps: Vec<_> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
        let dsts = net.topo.destinations(4);
        let a = Prober::new(&net, ProbeOptions::default()).campaign(&vps, &dsts);
        let b = Prober::new(
            &net,
            ProbeOptions { snapshot_salt: 7, flow_churn_rate: 1.0, ..Default::default() },
        )
        .campaign(&vps, &dsts);
        // With 100% churn at least one trace must differ (the topology
        // has no ECMP here only if paths are unique — so compare flows
        // indirectly: identical campaigns would be suspicious).
        assert_eq!(a.len(), b.len());
    }
}
