//! The assembled simulated Internet: topology + control planes +
//! per-AS runtime configuration.
//!
//! [`Internet::new`] takes a (stable) [`Topology`] and a per-AS
//! [`MplsConfig`], computes every control plane (IGP, LDP, RSVP-TE,
//! BGP-lite) deterministically, and exposes the state the data plane
//! ([`crate::dataplane`]) walks. Rebuilding with the same inputs yields
//! byte-identical label bindings — the property that makes same-month
//! snapshots comparable, exactly like a real network whose
//! configuration did not change between two Ark cycles.

use crate::bgp::BgpState;
use crate::igp::IgpState;
use crate::ldp::LdpState;
use crate::rsvp::{TeState, TeLsp};
use crate::topology::{AsId, RouterId, Topology};
use crate::vendor::LabelAllocator;
use lpr_core::lsp::Asn;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

pub use crate::rsvp::TePathMode as TePathModeReexport;
pub use crate::rsvp::TePathMode;

/// How a tunnel presents itself to plain traceroute (the TNT taxonomy:
/// *explicit* tunnels show labelled hops, *implicit* ones show hops
/// without labels, *invisible* ones hide hops entirely, *opaque* ones
/// show a single quirky labelled hop for the whole LSP).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TunnelVisibility {
    /// `ttl-propagate` and RFC 4950 both on: interior LSRs appear with
    /// quoted label stacks — what LPR's extraction consumes directly.
    Explicit,
    /// `ttl-propagate` on but no RFC 4950 quoting: interior LSRs appear
    /// as plain IP hops. The only trace artifact is the return-path
    /// asymmetry (interior replies detour via the tunnel tail, so their
    /// RTTs exceed the egress's — TNT's RTLA/u-turn signature).
    Implicit,
    /// `ttl-propagate` off: interior LSRs consume no IP TTL and never
    /// reply. The ingress pipelines the pop, so the egress answers two
    /// consecutive TTLs — TNT's duplicate-IP trigger.
    Invisible,
    /// The whole LSP collapses into one labelled hop at the tunnel
    /// tail whose quoted LSE TTL is the implausible 255 (a fresh,
    /// non-propagated entry) — TNT's opaque one-hop-stack trigger.
    Opaque,
}

impl TunnelVisibility {
    /// The CLI/report spelling.
    pub fn name(self) -> &'static str {
        match self {
            TunnelVisibility::Explicit => "explicit",
            TunnelVisibility::Implicit => "implicit",
            TunnelVisibility::Invisible => "invisible",
            TunnelVisibility::Opaque => "opaque",
        }
    }
}

/// A per-AS mix of tunnel visibilities, assigned deterministically per
/// ordered LER pair (same discipline as every other pair knob: raising
/// a weight only moves pairs between buckets, never reshuffles them).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VisibilityMix {
    /// Weight of [`TunnelVisibility::Explicit`] pairs.
    pub explicit: f64,
    /// Weight of [`TunnelVisibility::Implicit`] pairs.
    pub implicit: f64,
    /// Weight of [`TunnelVisibility::Invisible`] pairs.
    pub invisible: f64,
    /// Weight of [`TunnelVisibility::Opaque`] pairs.
    pub opaque: f64,
}

impl VisibilityMix {
    /// Every pair explicit — the legacy behaviour, and the default:
    /// campaigns built without a mix stay byte-identical to before the
    /// revelation subsystem existed.
    pub fn explicit_only() -> Self {
        VisibilityMix { explicit: 1.0, implicit: 0.0, invisible: 0.0, opaque: 0.0 }
    }

    /// Whether this mix can produce anything but explicit tunnels.
    pub fn is_explicit_only(&self) -> bool {
        self.implicit <= 0.0 && self.invisible <= 0.0 && self.opaque <= 0.0
    }

    /// Parses the CLI spelling: comma-separated `kind:weight` entries,
    /// e.g. `explicit:0.4,implicit:0.2,invisible:0.3,opaque:0.1`.
    /// Unmentioned kinds get weight 0. Weights need not sum to 1 (they
    /// are normalised); at least one must be positive.
    pub fn parse(s: &str) -> Option<Self> {
        let mut mix = VisibilityMix { explicit: 0.0, implicit: 0.0, invisible: 0.0, opaque: 0.0 };
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (kind, weight) = part.split_once(':')?;
            let w: f64 = weight.trim().parse().ok()?;
            if !(0.0..=f64::MAX).contains(&w) {
                return None;
            }
            match kind.trim() {
                "explicit" => mix.explicit = w,
                "implicit" => mix.implicit = w,
                "invisible" => mix.invisible = w,
                "opaque" => mix.opaque = w,
                _ => return None,
            }
        }
        let total = mix.explicit + mix.implicit + mix.invisible + mix.opaque;
        if total <= 0.0 {
            return None;
        }
        Some(mix)
    }

    /// The CLI spelling of this mix (inverse of [`VisibilityMix::parse`]).
    pub fn render(&self) -> String {
        format!(
            "explicit:{},implicit:{},invisible:{},opaque:{}",
            self.explicit, self.implicit, self.invisible, self.opaque
        )
    }

    /// The visibility bucket a point in `[0, 1)` lands in, by cumulative
    /// weight in declaration order.
    fn bucket(&self, point: f64) -> TunnelVisibility {
        let total = self.explicit + self.implicit + self.invisible + self.opaque;
        if total <= 0.0 {
            return TunnelVisibility::Explicit;
        }
        let p = point * total;
        if p < self.explicit {
            TunnelVisibility::Explicit
        } else if p < self.explicit + self.implicit {
            TunnelVisibility::Implicit
        } else if p < self.explicit + self.implicit + self.invisible {
            TunnelVisibility::Invisible
        } else {
            TunnelVisibility::Opaque
        }
    }
}

/// Per-AS MPLS behaviour for one build of the control plane.
///
/// The longitudinal dataset varies these knobs cycle by cycle to replay
/// each featured ISP's story (§4.4 of the paper): enabling MPLS,
/// ramping deployment across LER pairs, moving between LDP/ECMP and
/// RSVP-TE, turning on re-optimisation.
#[derive(Clone, Debug)]
pub struct MplsConfig {
    /// Master switch: when false the AS forwards plain IP.
    pub enabled: bool,
    /// Penultimate-hop popping (true on most real deployments).
    pub php: bool,
    /// `ttl-propagate`: copy the IP TTL into the pushed LSE. When
    /// false, tunnels are *invisible* to traceroute (§2.3).
    pub ttl_propagate: bool,
    /// RFC 4950: quote the label stack in `time-exceeded` replies.
    /// When false (with propagation on), tunnels are *implicit*.
    pub rfc4950: bool,
    /// Fraction of ordered LER pairs that carry any MPLS at all
    /// (models incremental deployment, Fig. 16).
    pub deployed_pair_fraction: f64,
    /// Fraction of deployed LER pairs that get RSVP-TE LSPs (the rest
    /// use plain LDP).
    pub te_pair_fraction: f64,
    /// Number of TE LSPs signalled per TE pair.
    pub te_lsps_per_pair: usize,
    /// Fraction of TE pairs signalled with exactly **one** LSP instead
    /// of `te_lsps_per_pair`: traffic engineering without path
    /// diversity, which LPR classifies Mono-LSP — the paper's finding
    /// that "TE using MPLS is as common as MPLS without path
    /// diversity" hinges on these.
    pub te_single_lsp_fraction: f64,
    /// How TE paths are routed.
    pub te_path_mode: TePathMode,
    /// Tunnel traffic towards destinations *inside* this AS too
    /// (tunnels the TargetAS filter later removes).
    pub tunnel_internal_dests: bool,
    /// Fraction of `(router, FEC)` pairs with IGP load balancing
    /// enabled (`maximum-paths > 1`); the rest pin the first next hop.
    /// Operators tune this knob in real deployments, and it is what
    /// moves an AS between the Mono-LSP and ECMP Mono-FEC classes over
    /// time (Figs. 11–12 of the paper).
    pub ecmp_fec_fraction: f64,
    /// Per-hop probability that a router of this AS stays silent to a
    /// probe (anonymous router; feeds the IncompleteLsp filter).
    pub anonymous_rate: f64,
    /// Fraction of deployed LER pairs carrying BGP/MPLS-VPN traffic: a
    /// per-VRF **service label** rides at the bottom of the stack
    /// (RFC 4364), under the transport label. Probes through such
    /// pairs expose two-entry stacks, and — because the service label
    /// differs per customer — LPR reads them as Multi-FEC, which is
    /// exactly why the paper excludes VPN tunnels from its transit
    /// study (§1).
    pub vpn_pair_fraction: f64,
    /// Per-LER-pair visibility mix for LDP tunnels (TE pairs stay
    /// explicit). The default, [`VisibilityMix::explicit_only`], keeps
    /// the data plane byte-identical to the pre-revelation simulator;
    /// anything else makes the mixed pairs emit the trace artifacts TNT
    /// keys its revelation triggers on.
    pub visibility: VisibilityMix,
    /// Whether LDP also binds FECs for this AS's *infrastructure*
    /// addresses (router loopbacks and link interfaces). Real networks
    /// overwhelmingly reach infrastructure via the IGP — which is what
    /// makes TNT's DPR work: a probe aimed at the tunnel egress rides
    /// no tunnel. Setting this models the deployments where it fails.
    pub infra_in_fec: bool,
}

impl MplsConfig {
    /// MPLS switched off entirely (still used for stub ASes: carries
    /// the anonymous-router rate).
    pub fn disabled() -> Self {
        MplsConfig {
            enabled: false,
            php: true,
            ttl_propagate: true,
            rfc4950: true,
            deployed_pair_fraction: 0.0,
            te_pair_fraction: 0.0,
            te_lsps_per_pair: 0,
            te_single_lsp_fraction: 0.0,
            te_path_mode: TePathMode::SamePath,
            tunnel_internal_dests: false,
            ecmp_fec_fraction: 1.0,
            anonymous_rate: 0.0,
            vpn_pair_fraction: 0.0,
            visibility: VisibilityMix::explicit_only(),
            infra_in_fec: false,
        }
    }

    /// The common default: LDP everywhere, PHP, TTL propagation and
    /// RFC 4950 on, no TE.
    pub fn ldp_default() -> Self {
        MplsConfig {
            enabled: true,
            deployed_pair_fraction: 1.0,
            tunnel_internal_dests: true,
            ..Self::disabled()
        }
    }

    /// LDP plus RSVP-TE on a fraction of pairs.
    pub fn with_te(te_pair_fraction: f64, lsps: usize, mode: TePathMode) -> Self {
        MplsConfig {
            te_pair_fraction,
            te_lsps_per_pair: lsps,
            te_path_mode: mode,
            ..Self::ldp_default()
        }
    }
}

/// Where a destination prefix (or vantage point) attaches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Attachment {
    /// The AS homing the address.
    pub as_id: AsId,
    /// The router the host hangs off.
    pub router: RouterId,
}

/// The simulated Internet.
pub struct Internet {
    /// The underlying topology.
    pub topo: Topology,
    configs: Vec<MplsConfig>,
    igp: Vec<std::sync::Arc<IgpState>>,
    ldp: Vec<Option<LdpState>>,
    te: Vec<TeState>,
    allocators: Vec<LabelAllocator>,
    bgp: BgpState,
    /// `/24 network → attachment` for destination prefixes.
    dest_attach: HashMap<u32, Attachment>,
    /// vantage point address → attachment.
    vp_attach: HashMap<Ipv4Addr, Attachment>,
    /// Infrastructure address (router loopback or link interface) →
    /// owning router: what revelation probes aim at.
    infra_attach: HashMap<Ipv4Addr, Attachment>,
}

impl Internet {
    /// Builds every control plane. `configs` maps AS numbers to their
    /// MPLS behaviour; unmentioned ASes get [`MplsConfig::disabled`].
    pub fn new(topo: Topology, configs: &BTreeMap<Asn, MplsConfig>) -> Internet {
        let per_as: Vec<MplsConfig> = topo
            .ases
            .iter()
            .map(|a| configs.get(&a.asn).cloned().unwrap_or_else(MplsConfig::disabled))
            .collect();

        // Stagger each router's label cursor: distinct LSRs must not
        // hand out identical labels for the same FEC (see
        // `LabelAllocator::with_offset`).
        let mut allocators: Vec<LabelAllocator> = topo
            .routers
            .iter()
            .map(|r| {
                let as_topo = topo.as_of_router(r.id);
                let offset = (splitmix64(
                    (r.id.0 as u64) << 32 ^ as_topo.asn.0 as u64 ^ 0x1ABE1,
                ) % 50_021) as u32;
                LabelAllocator::with_offset(as_topo.vendor, offset)
            })
            .collect();

        // SPF-cached: cycles (and snapshots) whose perturbations leave
        // an AS's IGP content untouched reuse its routes outright.
        let igp: Vec<std::sync::Arc<IgpState>> =
            topo.ases.iter().map(|a| IgpState::cached(&topo, a.id)).collect();

        let mut ldp: Vec<Option<LdpState>> = Vec::with_capacity(topo.ases.len());
        let mut te: Vec<TeState> = Vec::with_capacity(topo.ases.len());
        for a in &topo.ases {
            let cfg = &per_as[a.id.0 as usize];
            if cfg.enabled {
                ldp.push(Some(LdpState::compute(&topo, a.id, &mut allocators, cfg.php)));
            } else {
                ldp.push(None);
            }
            let mut te_state = TeState::new();
            if cfg.enabled && cfg.te_pair_fraction > 0.0 && cfg.te_lsps_per_pair > 0 {
                for &i in &a.borders {
                    for &e in &a.borders {
                        if i == e {
                            continue;
                        }
                        if !pair_selected(a.asn, i, e, cfg.deployed_pair_fraction, 0x7e01) {
                            continue;
                        }
                        if !pair_selected(a.asn, i, e, cfg.te_pair_fraction, 0x7e02) {
                            continue;
                        }
                        let count = if pair_selected(
                            a.asn,
                            i,
                            e,
                            cfg.te_single_lsp_fraction,
                            0x7e04,
                        ) {
                            1
                        } else {
                            cfg.te_lsps_per_pair
                        };
                        te_state.signal_pair(
                            &topo,
                            &igp[a.id.0 as usize],
                            &mut allocators,
                            i,
                            e,
                            count,
                            cfg.te_path_mode,
                            cfg.php,
                        );
                    }
                }
            }
            te.push(te_state);
        }

        let bgp = BgpState::compute(&topo);

        // Attach destination prefixes and vantage points to routers,
        // deterministically spread.
        let mut dest_attach = HashMap::new();
        let mut vp_attach = HashMap::new();
        for a in &topo.ases {
            for (k, p) in a.dest_prefixes.iter().enumerate() {
                let router = a.routers[k % a.routers.len()];
                dest_attach
                    .insert(u32::from(p.addr()) >> 8, Attachment { as_id: a.id, router });
            }
            for (k, &vp) in a.vantage_points.iter().enumerate() {
                let router = a.routers[(k + 1) % a.routers.len()];
                vp_attach.insert(vp, Attachment { as_id: a.id, router });
            }
        }

        // Infrastructure addresses resolve to their owning router, so
        // revelation probes can target what a trace exposed.
        let mut infra_attach = HashMap::new();
        for r in &topo.routers {
            infra_attach.insert(r.loopback, Attachment { as_id: r.as_id, router: r.id });
        }
        for iface in &topo.ifaces {
            let r = &topo.routers[iface.router.0 as usize];
            infra_attach.insert(iface.addr, Attachment { as_id: r.as_id, router: r.id });
        }

        Internet {
            topo,
            configs: per_as,
            igp,
            ldp,
            te,
            allocators,
            bgp,
            dest_attach,
            vp_attach,
            infra_attach,
        }
    }

    /// The MPLS configuration of an AS.
    pub fn config(&self, as_id: AsId) -> &MplsConfig {
        &self.configs[as_id.0 as usize]
    }

    /// The IGP state of an AS.
    pub fn igp(&self, as_id: AsId) -> &IgpState {
        &self.igp[as_id.0 as usize]
    }

    /// `(hits, misses)` of the process-wide SPF cache (see
    /// [`crate::igp::spf_cache_stats`]).
    pub fn spf_cache_stats() -> (u64, u64) {
        crate::igp::spf_cache_stats()
    }

    /// The LDP state of an AS, when MPLS is enabled there.
    pub fn ldp(&self, as_id: AsId) -> Option<&LdpState> {
        self.ldp[as_id.0 as usize].as_ref()
    }

    /// The RSVP-TE state of an AS.
    pub fn te(&self, as_id: AsId) -> &TeState {
        &self.te[as_id.0 as usize]
    }

    /// The TE LSPs between a LER pair.
    pub fn te_lsps(&self, as_id: AsId, ingress: RouterId, egress: RouterId) -> &[TeLsp] {
        self.te[as_id.0 as usize].lsps(ingress, egress)
    }

    /// The BGP-lite state.
    pub fn bgp(&self) -> &BgpState {
        &self.bgp
    }

    /// Where the destination `dst` attaches, if it is a simulated host.
    pub fn dest_attachment(&self, dst: Ipv4Addr) -> Option<Attachment> {
        self.dest_attach.get(&(u32::from(dst) >> 8)).copied()
    }

    /// Where a vantage point attaches.
    pub fn vp_attachment(&self, vp: Ipv4Addr) -> Option<Attachment> {
        self.vp_attach.get(&vp).copied()
    }

    /// The router owning an infrastructure address (loopback or link
    /// interface), if any — what a DPR revelation probe targets.
    pub fn infra_attachment(&self, addr: Ipv4Addr) -> Option<Attachment> {
        self.infra_attach.get(&addr).copied()
    }

    /// The visibility of the ordered LER pair's LDP tunnel, drawn
    /// deterministically from the AS's [`VisibilityMix`] (salt `0x7e06`;
    /// TE pairs are always explicit and never consult this).
    pub fn pair_visibility(
        &self,
        as_id: AsId,
        ingress: RouterId,
        egress: RouterId,
    ) -> TunnelVisibility {
        let cfg = self.config(as_id);
        if cfg.visibility.is_explicit_only() {
            return TunnelVisibility::Explicit;
        }
        let h = splitmix64(
            (self.topo.as_of(as_id).asn.0 as u64) << 40
                ^ (ingress.0 as u64) << 20
                ^ (egress.0 as u64)
                ^ (0x7e06u64 << 48),
        );
        cfg.visibility.bucket(h as f64 / u64::MAX as f64)
    }

    /// Whether MPLS is deployed for the ordered LER pair
    /// `(ingress, egress)` of an AS this cycle (Fig. 16 ramps this).
    pub fn pair_deployed(&self, as_id: AsId, ingress: RouterId, egress: RouterId) -> bool {
        let cfg = self.config(as_id);
        cfg.enabled
            && pair_selected(
                self.topo.as_of(as_id).asn,
                ingress,
                egress,
                cfg.deployed_pair_fraction,
                0x7e01,
            )
    }

    /// Whether the ordered LER pair uses RSVP-TE (it also needs to be
    /// deployed).
    pub fn pair_te(&self, as_id: AsId, ingress: RouterId, egress: RouterId) -> bool {
        let cfg = self.config(as_id);
        cfg.enabled
            && pair_selected(self.topo.as_of(as_id).asn, ingress, egress, cfg.te_pair_fraction, 0x7e02)
            && !self.te_lsps(as_id, ingress, egress).is_empty()
    }

    /// The ECMP next-hop set from `router` towards `target`, restricted
    /// to the first next hop when load balancing is disabled for this
    /// LSP's `(gate_key, target)` pair (see
    /// [`MplsConfig::ecmp_fec_fraction`]). The data plane passes the
    /// tunnel's ingress LER as `gate_key`, so the policy is consistent
    /// along the whole LSP and an IOTP either exposes its IGP diversity
    /// or none of it — the lever behind the class-mix evolutions of
    /// Figs. 11–14.
    pub fn ecmp_nexthops(
        &self,
        as_id: crate::topology::AsId,
        router: RouterId,
        target: RouterId,
        gate_key: RouterId,
    ) -> &[crate::topology::IfaceId] {
        let nhs = self.igp(as_id).nexthops(router, target);
        if nhs.len() <= 1 {
            return nhs;
        }
        let cfg = self.config(as_id);
        if pair_selected(self.topo.as_of(as_id).asn, gate_key, target, cfg.ecmp_fec_fraction, 0x7e03)
        {
            nhs
        } else {
            &nhs[..1]
        }
    }

    /// Whether the ordered LER pair carries VPN traffic (a service
    /// label under the transport label).
    pub fn pair_vpn(&self, as_id: crate::topology::AsId, ingress: RouterId, egress: RouterId) -> bool {
        let cfg = self.config(as_id);
        cfg.enabled
            && pair_selected(self.topo.as_of(as_id).asn, ingress, egress, cfg.vpn_pair_fraction, 0x7e05)
    }

    /// The VRF service label the egress PE advertised for a customer
    /// (identified by destination AS). Deterministic per
    /// `(egress, customer)`, drawn from the egress platform's dynamic
    /// range — real PEs allocate one label per VRF and keep it until
    /// the VRF is reconfigured.
    pub fn service_label(&self, egress: RouterId, customer: Asn) -> lpr_core::label::Label {
        let vendor = self.topo.as_of_router(egress).vendor;
        let range = vendor.label_range();
        let span = (range.end - range.start) as u64;
        let h = splitmix64(
            ((egress.0 as u64) << 32) ^ (customer.0 as u64) ^ 0x5E41_1CE5,
        );
        lpr_core::label::Label::new(range.start + (h % span) as u32)
    }

    /// Re-optimises every TE LSP of an AS: labels are re-signalled from
    /// the vendors' dynamic ranges (Fig. 17, §4.5). Call between
    /// snapshots to model a *dynamic* AS.
    pub fn reoptimize_te(&mut self, asn: Asn) {
        if let Some(a) = self.topo.as_by_asn(asn) {
            let id = a.id;
            let php = self.configs[id.0 as usize].php;
            self.te[id.0 as usize].reoptimize(&mut self.allocators, php);
        }
    }
}

/// Deterministic pair-selection: hashes `(asn, ingress, egress, salt)`
/// into `[0, 1)` and compares with the fraction. Stable across cycles,
/// so raising the fraction strictly grows the deployed set — matching
/// how real deployments ramp up.
pub fn pair_selected(
    asn: Asn,
    ingress: RouterId,
    egress: RouterId,
    fraction: f64,
    salt: u64,
) -> bool {
    if fraction >= 1.0 {
        return true;
    }
    if fraction <= 0.0 {
        return false;
    }
    let h = splitmix64(
        (asn.0 as u64) << 40 ^ (ingress.0 as u64) << 20 ^ (egress.0 as u64) ^ (salt << 48),
    );
    (h as f64 / u64::MAX as f64) < fraction
}

/// SplitMix64: a tiny, high-quality 64-bit mixer used for every
/// deterministic selection in the simulator.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{AsSpec, TopologyParams};
    use crate::vendor::Vendor;

    fn build() -> Internet {
        let specs = vec![
            AsSpec::transit(
                1,
                "t",
                Vendor::Juniper,
                TopologyParams { core_routers: 4, border_routers: 2, ..Default::default() },
            ),
            AsSpec::stub(100, "src", 0, 1),
            AsSpec::stub(200, "dst", 2, 0),
        ];
        let peerings = vec![(Asn(100), Asn(1), 1), (Asn(1), Asn(200), 1)];
        let topo = Topology::build(&specs, &peerings);
        let mut configs = BTreeMap::new();
        configs.insert(Asn(1), MplsConfig::with_te(1.0, 2, TePathMode::SamePath));
        Internet::new(topo, &configs)
    }

    #[test]
    fn control_planes_follow_config() {
        let net = build();
        let t = net.topo.as_by_asn(Asn(1)).unwrap().id;
        let s = net.topo.as_by_asn(Asn(100)).unwrap().id;
        assert!(net.ldp(t).is_some());
        assert!(net.ldp(s).is_none());
        assert!(net.te(t).lsp_count() > 0);
        assert_eq!(net.te(s).lsp_count(), 0);
    }

    #[test]
    fn attachments_resolve() {
        let net = build();
        let dests = net.topo.destinations(1);
        assert!(!dests.is_empty());
        for d in dests {
            let at = net.dest_attachment(d).expect("attached");
            assert_eq!(net.topo.as_of(at.as_id).asn, Asn(200));
        }
        let vps = net.topo.vantage_points();
        let (vp, as_id) = vps[0];
        assert_eq!(net.vp_attachment(vp).unwrap().as_id, as_id);
        assert_eq!(net.dest_attachment(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn pair_selection_is_monotone_in_fraction() {
        let (a, b) = (RouterId(3), RouterId(9));
        for salt in [1u64, 2, 3] {
            let lo = pair_selected(Asn(1), a, b, 0.2, salt);
            let hi = pair_selected(Asn(1), a, b, 0.9, salt);
            if lo {
                assert!(hi, "selected at 0.2 must stay selected at 0.9");
            }
        }
        assert!(pair_selected(Asn(1), a, b, 1.0, 9));
        assert!(!pair_selected(Asn(1), a, b, 0.0, 9));
    }

    #[test]
    fn reoptimize_changes_te_labels() {
        let mut net = build();
        let t = net.topo.as_by_asn(Asn(1)).unwrap().id;
        let pair = net.te(t).pairs().next().unwrap();
        let before: Vec<_> = net.te_lsps(t, pair.0, pair.1).to_vec();
        net.reoptimize_te(Asn(1));
        let after = net.te_lsps(t, pair.0, pair.1);
        assert_eq!(before.len(), after.len());
        let mut changed = false;
        for (b, a) in before.iter().zip(after) {
            assert_eq!(b.path, a.path);
            if b.labels != a.labels {
                changed = true;
            }
        }
        assert!(changed);
    }

    #[test]
    fn rebuild_is_deterministic() {
        let a = build();
        let b = build();
        let t = a.topo.as_by_asn(Asn(1)).unwrap().id;
        let pair = a.te(t).pairs().next().unwrap();
        let la: Vec<_> = a.te_lsps(t, pair.0, pair.1).iter().map(|l| l.labels.clone()).collect();
        let lb: Vec<_> = b.te_lsps(t, pair.0, pair.1).iter().map(|l| l.labels.clone()).collect();
        assert_eq!(la, lb);
    }
}
