//! End-to-end: the LPR pipeline applied to simulated campaigns must
//! recover exactly the path-diversity class each AS was configured
//! with. This is the core soundness check of the whole reproduction:
//! configuration → data plane → traceroute → filters → classification.

use lpr_core::prelude::*;
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, TePathMode, Topology,
    TopologyParams, Vendor,
};
use lpr_core::lsp::Asn;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Builds a three-AS Internet (src stub — transit — dst stubs) with the
/// given transit shape and MPLS behaviour, plus TWO destination stubs
/// behind the same egress so IOTPs pass TransitDiversity.
fn build(params: TopologyParams, cfg: MplsConfig) -> Internet {
    let specs = vec![
        AsSpec::transit(65000, "transit", Vendor::Juniper, params),
        AsSpec::stub(100, "src", 0, 2),
        AsSpec::stub(200, "dst-a", 4, 0),
        AsSpec::stub(201, "dst-b", 4, 0),
    ];
    // Both destination stubs peer with the SAME transit border so
    // transit IOTPs serve two destination ASes.
    let peerings = vec![
        Peering::new(Asn(100), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(200)).at_a(1),
        Peering::new(Asn(65000), Asn(201)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), cfg);
    Internet::new(topo, &configs)
}

fn run_lpr(net: &Internet) -> PipelineOutput {
    let prober = Prober::new(net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);
    assert!(traces.iter().any(|t| t.has_mpls()), "campaign shows no MPLS at all");
    let rib = net.topo.rib();
    let keys = Pipeline::snapshot_keys(&traces);
    Pipeline::default().run(&traces, &rib, &[keys.clone(), keys])
}

fn transit_counts(out: &PipelineOutput) -> lpr_core::pipeline::ClassCounts {
    out.class_counts_for(Asn(65000))
}

#[test]
fn chain_topology_yields_mono_lsp() {
    let net = build(
        TopologyParams { core_routers: 6, border_routers: 3, ..Default::default() },
        MplsConfig::ldp_default(),
    );
    let out = run_lpr(&net);
    let c = transit_counts(&out);
    assert!(c.total() > 0, "no transit IOTPs classified");
    assert_eq!(c.total(), c.mono_lsp, "chain + LDP must be all Mono-LSP: {c:?}");
}

#[test]
fn diamonds_yield_mono_fec_disjoint() {
    let net = build(
        TopologyParams {
            core_routers: 8,
            border_routers: 3,
            ecmp_diamonds: 4,
            ..Default::default()
        },
        MplsConfig::ldp_default(),
    );
    let out = run_lpr(&net);
    let c = transit_counts(&out);
    assert!(c.total() > 0);
    assert!(c.mono_fec_disjoint > 0, "diamonds must show disjoint-router ECMP: {c:?}");
    assert_eq!(c.multi_fec, 0, "pure LDP must never classify Multi-FEC: {c:?}");
}

#[test]
fn parallel_bundles_yield_mono_fec_parallel_links() {
    let net = build(
        TopologyParams {
            core_routers: 8,
            border_routers: 3,
            parallel_bundles: 4,
            parallel_width: 3,
            ..Default::default()
        },
        MplsConfig::ldp_default(),
    );
    let out = run_lpr(&net);
    let c = transit_counts(&out);
    assert!(c.total() > 0);
    assert!(c.mono_fec_parallel > 0, "bundles must show parallel-links ECMP: {c:?}");
    assert_eq!(c.multi_fec, 0, "pure LDP must never classify Multi-FEC: {c:?}");
}

#[test]
fn rsvp_te_yields_multi_fec_on_same_ip_path() {
    let net = build(
        TopologyParams { core_routers: 8, border_routers: 3, ..Default::default() },
        MplsConfig::with_te(1.0, 3, TePathMode::SamePath),
    );
    let out = run_lpr(&net);
    let c = transit_counts(&out);
    assert!(c.total() > 0);
    assert!(c.multi_fec > 0, "TE pairs must classify Multi-FEC: {c:?}");
    // Same-IP-path TE: the IOTPs are logically wide but balanced.
    for (iotp, cls) in &out.iotps {
        if cls.class == Class::MultiFec {
            let m = lpr_core::metrics::IotpMetrics::of(iotp);
            assert!(m.width > 1);
            assert_eq!(m.symmetry, 0, "same-path TE must be balanced");
        }
    }
}

#[test]
fn partial_te_mixes_classes() {
    // Two source stubs (distinct ingress borders) and two destination
    // border anchors, each serving two stub ASes => 4 transit IOTPs.
    let specs = vec![
        AsSpec::transit(
            65000,
            "transit",
            Vendor::Juniper,
            TopologyParams {
                core_routers: 10,
                border_routers: 4,
                ecmp_diamonds: 3,
                ..Default::default()
            },
        ),
        AsSpec::stub(100, "src-a", 0, 1),
        AsSpec::stub(101, "src-b", 0, 1),
        AsSpec::stub(200, "dst-a", 3, 0),
        AsSpec::stub(201, "dst-b", 3, 0),
        AsSpec::stub(202, "dst-c", 3, 0),
        AsSpec::stub(203, "dst-d", 3, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(100), Asn(65000)).at_b(0),
        Peering::new(Asn(101), Asn(65000)).at_b(1),
        Peering::new(Asn(65000), Asn(200)).at_a(2),
        Peering::new(Asn(65000), Asn(201)).at_a(2),
        Peering::new(Asn(65000), Asn(202)).at_a(3),
        Peering::new(Asn(65000), Asn(203)).at_a(3),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), MplsConfig::with_te(0.5, 2, TePathMode::SamePath));
    let net = Internet::new(topo, &configs);
    let out = run_lpr(&net);
    let c = transit_counts(&out);
    assert!(c.total() >= 4, "{c:?}");
    assert!(c.multi_fec > 0, "{c:?}");
    assert!(c.mono_fec() + c.mono_lsp > 0, "{c:?}");
}

#[test]
fn filters_account_for_every_lsp() {
    let net = build(
        TopologyParams {
            core_routers: 8,
            border_routers: 3,
            ecmp_diamonds: 2,
            ..Default::default()
        },
        MplsConfig::ldp_default(),
    );
    let out = run_lpr(&net);
    let r = &out.report;
    assert!(r.input > 0);
    let mut prev = r.input;
    for stage in FilterStage::ALL {
        let cur = r.remaining[&stage];
        assert!(cur <= prev, "{stage:?} grew: {cur} > {prev}");
        prev = cur;
    }
    assert!(r.proportion_after(FilterStage::Persistence) > 0.0);
}

#[test]
fn internal_destination_tunnels_are_dropped_by_target_as() {
    // Give the TRANSIT AS its own destination prefixes: tunnels towards
    // them must be filtered by TargetAS, not classified.
    let mut spec = AsSpec::transit(
        65000,
        "transit",
        Vendor::Juniper,
        TopologyParams { core_routers: 6, border_routers: 2, ..Default::default() },
    );
    spec.dest_prefixes = 3;
    let specs = vec![
        spec,
        AsSpec::stub(100, "src", 0, 1),
        AsSpec::stub(200, "dst", 2, 0),
    ];
    let peerings = vec![(Asn(100), Asn(65000), 1), (Asn(65000), Asn(200), 1)];
    let topo = Topology::build(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), MplsConfig::ldp_default());
    let net = Internet::new(topo, &configs);

    let prober = Prober::new(&net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);
    let rib = net.topo.rib();
    let keys = Pipeline::snapshot_keys(&traces);
    let out = Pipeline::default().run(&traces, &rib, &[keys]);
    let r = &out.report;
    assert!(
        r.remaining[&FilterStage::TargetAs] < r.remaining[&FilterStage::IntraAs],
        "internal-destination tunnels should be dropped by TargetAS: {r:?}"
    );
}

#[test]
fn anonymous_routers_feed_incomplete_filter() {
    let mut cfg = MplsConfig::ldp_default();
    cfg.anonymous_rate = 0.3;
    let net = build(
        TopologyParams { core_routers: 8, border_routers: 3, ..Default::default() },
        cfg,
    );
    let out = run_lpr(&net);
    let r = &out.report;
    assert!(
        r.remaining[&FilterStage::IncompleteLsp] < r.input,
        "30% anonymity must produce incomplete LSPs: {r:?}"
    );
}

#[test]
fn warts_roundtrip_preserves_classification() {
    // Simulate → warts bytes → parse → LPR must equal direct LPR.
    let net = build(
        TopologyParams {
            core_routers: 8,
            border_routers: 3,
            ecmp_diamonds: 2,
            ..Default::default()
        },
        MplsConfig::with_te(0.5, 2, TePathMode::SamePath),
    );
    let prober = Prober::new(&net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    let traces = prober.campaign(&vps, &dsts);

    let mut writer = warts::WartsWriter::new();
    let list = writer.list(1, "e2e");
    let cycle = writer.cycle_start(list, 1, 0);
    for t in &traces {
        writer.trace(&warts::trace_to_record(t, list, cycle)).unwrap();
    }
    writer.cycle_stop(cycle, 1);
    let bytes = writer.into_bytes();

    let records = warts::WartsReader::new(&bytes).traces().unwrap();
    let reparsed: Vec<_> = records
        .iter()
        .filter_map(|r| warts::trace_to_core(r).unwrap())
        .collect();
    assert_eq!(reparsed, traces);
}
