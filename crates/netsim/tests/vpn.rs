//! BGP/MPLS-VPN service labels (RFC 4364) end to end: probes through
//! VPN pairs expose two-entry label stacks, and the resulting tunnels
//! behave under LPR the way the paper implies — they never surface in
//! the transit classification (the run of labelled hops extends into
//! the customer AS, so IntraAS rejects it), which is consistent with
//! the paper's "we did not observe many tunnels through VPNs" (§1).

use lpr_core::prelude::*;
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, Topology, TopologyParams,
    Vendor,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn build(vpn_fraction: f64) -> Internet {
    let specs = vec![
        AsSpec::transit(
            65000,
            "pe-core",
            Vendor::Juniper,
            TopologyParams { core_routers: 5, border_routers: 3, ..TopologyParams::default() },
        ),
        AsSpec::stub(64600, "monitors", 0, 1),
        AsSpec::stub(64700, "vrf-red", 3, 0),
        AsSpec::stub(64701, "vrf-blue", 3, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    let mut cfg = MplsConfig::ldp_default();
    cfg.vpn_pair_fraction = vpn_fraction;
    configs.insert(Asn(65000), cfg);
    Internet::new(topo, &configs)
}

fn campaign(net: &Internet) -> Vec<Trace> {
    let prober = Prober::new(net, ProbeOptions::default());
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    prober.campaign(&vps, &dsts)
}

#[test]
fn vpn_pairs_expose_two_entry_stacks() {
    let traces = campaign(&build(1.0));
    let mut depth2 = 0usize;
    let mut bottom_flags_ok = true;
    for t in &traces {
        for h in &t.hops {
            if h.stack.depth() == 2 {
                depth2 += 1;
                let entries = h.stack.entries();
                bottom_flags_ok &= !entries[0].bottom && entries[1].bottom;
            }
        }
    }
    assert!(depth2 > 0, "expected two-entry stacks on VPN pairs");
    assert!(bottom_flags_ok, "bottom-of-stack must sit on the service entry only");
}

#[test]
fn service_label_is_per_customer() {
    let net = build(1.0);
    let traces = campaign(&net);
    // Collect the bottom labels per destination AS.
    let rib = net.topo.rib();
    let mut per_customer: BTreeMap<u32, std::collections::BTreeSet<u32>> = BTreeMap::new();
    for t in &traces {
        let customer = rib.lookup(t.dst).unwrap().0;
        for h in &t.hops {
            if h.stack.depth() == 2 {
                per_customer
                    .entry(customer)
                    .or_default()
                    .insert(h.stack.entries()[1].label.value());
            }
        }
    }
    assert!(per_customer.len() >= 2, "need two customers: {per_customer:?}");
    for (customer, labels) in &per_customer {
        assert_eq!(labels.len(), 1, "one VRF label per customer {customer}: {labels:?}");
    }
    let all: std::collections::BTreeSet<_> =
        per_customer.values().flatten().collect();
    assert!(all.len() >= 2, "customers must get distinct VRF labels");
}

#[test]
fn egress_pe_quotes_the_lone_service_label() {
    let traces = campaign(&build(1.0));
    // Somewhere a hop shows exactly one label while its predecessor
    // showed two: the PHP'd service entry on the egress PE.
    let mut seen = false;
    for t in &traces {
        for w in t.hops.windows(2) {
            if w[0].stack.depth() == 2 && w[1].stack.depth() == 1 {
                assert!(w[1].stack.entries()[0].bottom);
                seen = true;
            }
        }
    }
    assert!(seen, "egress PE must expose the service label after PHP");
}

#[test]
fn vpn_tunnels_are_dropped_by_intra_as() {
    // With VPN on, the labelled run runs into the customer AS; the
    // IntraAS filter must reject those LSPs, keeping them out of the
    // transit classification (the paper's observed non-presence).
    let rib_lookup = |net: &Internet, traces: &[Trace]| {
        let rib = net.topo.rib();
        let keys = Pipeline::snapshot_keys(traces);
        Pipeline::default().run(traces, &rib, &[keys])
    };
    let vpn_net = build(1.0);
    let vpn_out = rib_lookup(&vpn_net, &campaign(&vpn_net));
    let plain_net = build(0.0);
    let plain_out = rib_lookup(&plain_net, &campaign(&plain_net));

    let drop = |out: &PipelineOutput| {
        out.report.remaining[&FilterStage::IncompleteLsp]
            - out.report.remaining[&FilterStage::IntraAs]
    };
    assert_eq!(drop(&plain_out), 0, "no VPN, no IntraAS drops");
    assert!(drop(&vpn_out) > 0, "VPN tunnels must be dropped by IntraAS");
    // And the transit classification still never shows Multi-FEC out
    // of plain LDP, VPN or not.
    assert_eq!(vpn_out.class_counts().multi_fec, 0);
}

#[test]
fn warts_roundtrips_two_entry_stacks() {
    let traces = campaign(&build(1.0));
    let mut w = warts::WartsWriter::new();
    let list = w.list(1, "vpn");
    let cycle = w.cycle_start(list, 1, 0);
    for t in &traces {
        w.trace(&warts::trace_to_record(t, list, cycle)).unwrap();
    }
    w.cycle_stop(cycle, 1);
    let bytes = w.into_bytes();
    let parsed: Vec<_> = warts::WartsReader::new(&bytes)
        .traces()
        .unwrap()
        .iter()
        .filter_map(|r| warts::trace_to_core(r).unwrap())
        .collect();
    assert_eq!(parsed, traces);
}

#[test]
fn uhp_with_vpn_shows_explicit_null_over_service() {
    // Ultimate-hop popping plus a service label: the egress receives
    // [explicit-null, service] and pops both.
    let specs = vec![
        AsSpec::transit(
            65000,
            "pe-core",
            Vendor::Juniper,
            TopologyParams { core_routers: 5, border_routers: 3, ..TopologyParams::default() },
        ),
        AsSpec::stub(64600, "monitors", 0, 1),
        AsSpec::stub(64700, "vrf-red", 3, 0),
        AsSpec::stub(64701, "vrf-blue", 3, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    let mut cfg = MplsConfig::ldp_default();
    cfg.vpn_pair_fraction = 1.0;
    cfg.php = false;
    configs.insert(Asn(65000), cfg);
    let net = Internet::new(topo, &configs);

    let traces = campaign(&net);
    let mut saw_null_over_service = false;
    for t in &traces {
        for h in &t.hops {
            if h.stack.depth() == 2 && h.stack.entries()[0].label.value() == 0 {
                assert!(h.stack.entries()[1].bottom);
                saw_null_over_service = true;
            }
        }
        assert!(t.reached, "UHP+VPN must still deliver: {t:?}");
    }
    assert!(saw_null_over_service, "expected [explicit-null, service] at the egress PE");
}

#[test]
fn rfc4950_off_hides_vpn_stacks_but_not_hops() {
    let specs = vec![
        AsSpec::transit(
            65000,
            "pe-core",
            Vendor::Juniper,
            TopologyParams { core_routers: 5, border_routers: 3, ..TopologyParams::default() },
        ),
        AsSpec::stub(64600, "monitors", 0, 1),
        AsSpec::stub(64700, "vrf-red", 3, 0),
        AsSpec::stub(64701, "vrf-blue", 3, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(64600), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(64700)).at_a(1),
        Peering::new(Asn(65000), Asn(64701)).at_a(1),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    let mut cfg = MplsConfig::ldp_default();
    cfg.vpn_pair_fraction = 1.0;
    cfg.rfc4950 = false;
    configs.insert(Asn(65000), cfg);
    let net = Internet::new(topo, &configs);

    for t in campaign(&net) {
        assert!(t.reached);
        for h in &t.hops {
            assert!(h.stack.is_empty(), "implicit tunnel must quote nothing: {h:?}");
        }
    }
}
