//! Cross-thread determinism of the revelation campaign, and its
//! behaviour under injected faults: at any thread count the traces,
//! the probe budget, the revealed evidence and the downstream
//! classifier output must be byte-identical — with and without chaos —
//! and faults may only degrade the result towards Unclassified, never
//! fabricate evidence.

use lpr_chaos::FaultPlan;
use lpr_core::lsp::Asn;
use lpr_core::pipeline::Pipeline;
use lpr_core::reveal::{apply_revelations, RevealedTunnel, RevelationStatus};
use netsim::{
    AsSpec, Internet, MplsConfig, Peering, ProbeOptions, Prober, RevelationOptions, Topology,
    TopologyParams, Vendor, VisibilityMix,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

fn build() -> Internet {
    let mut cfg = MplsConfig::ldp_default();
    cfg.visibility =
        VisibilityMix { explicit: 0.2, implicit: 0.3, invisible: 0.3, opaque: 0.2 };
    let specs = vec![
        AsSpec::transit(
            65000,
            "transit",
            Vendor::Juniper,
            TopologyParams {
                core_routers: 8,
                border_routers: 3,
                ecmp_diamonds: 2,
                ..Default::default()
            },
        ),
        AsSpec::stub(100, "src", 0, 2),
        AsSpec::stub(200, "dst-a", 4, 0),
        AsSpec::stub(201, "dst-b", 4, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(100), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(200)).at_a(1),
        Peering::new(Asn(65000), Asn(201)).at_a(2),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), cfg);
    Internet::new(topo, &configs)
}

fn endpoints(net: &Internet) -> (Vec<Ipv4Addr>, Vec<Ipv4Addr>) {
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    (vps, dsts)
}

/// A chaos plan exercising the revelation-specific faults alongside
/// plain probe loss. Duplication/reordering faults are left quiet here:
/// they rebuild hop lists, which is quarantine territory, not
/// revelation territory.
fn revelation_plan() -> FaultPlan {
    let mut plan = FaultPlan::none(42);
    plan.probe_loss = 0.05;
    plan.trigger_loss = 0.3;
    plan.dpr_rate_limit = 0.3;
    plan
}

fn run_full(
    net: &Internet,
    faults: Option<FaultPlan>,
    threads: usize,
) -> (
    Vec<lpr_core::trace::Trace>,
    netsim::ProbeBudget,
    Vec<RevealedTunnel>,
    lpr_core::pipeline::PipelineOutput,
) {
    let mut prober = Prober::new(net, ProbeOptions::default());
    if let Some(plan) = faults {
        prober = prober.with_faults(plan);
    }
    let (vps, dsts) = endpoints(net);
    let (traces, budget, evidence) =
        prober.campaign_with_revelation(&vps, &dsts, threads, &RevelationOptions::default());
    let rib = net.topo.rib();
    let keys = Pipeline::snapshot_keys(&traces);
    let mut out = Pipeline::default().run(&traces, &rib, &[keys.clone(), keys]);
    apply_revelations(&mut out, &evidence, None);
    (traces, budget, evidence, out)
}

#[test]
fn revelation_campaign_is_thread_invariant() {
    let net = build();
    let (seq_traces, seq_budget, seq_evidence, seq_out) = run_full(&net, None, 1);
    assert!(
        seq_evidence.iter().any(|e| e.status == RevelationStatus::Revealed),
        "fixture reveals nothing; the determinism check would be vacuous"
    );
    for threads in [2usize, 4, 8] {
        let (traces, budget, evidence, out) = run_full(&net, None, threads);
        assert_eq!(traces, seq_traces, "traces diverged at {threads} threads");
        assert_eq!(budget, seq_budget, "budget diverged at {threads} threads");
        assert_eq!(evidence, seq_evidence, "evidence diverged at {threads} threads");
        assert_eq!(out, seq_out, "classifier output diverged at {threads} threads");
    }
}

#[test]
fn revelation_campaign_is_thread_invariant_under_chaos() {
    let net = build();
    let (seq_traces, seq_budget, seq_evidence, seq_out) =
        run_full(&net, Some(revelation_plan()), 1);
    for threads in [2usize, 4, 8] {
        let (traces, budget, evidence, out) = run_full(&net, Some(revelation_plan()), threads);
        assert_eq!(traces, seq_traces, "chaos traces diverged at {threads} threads");
        assert_eq!(budget, seq_budget, "chaos budget diverged at {threads} threads");
        assert_eq!(evidence, seq_evidence, "chaos evidence diverged at {threads} threads");
        assert_eq!(out, seq_out, "chaos classifier output diverged at {threads} threads");
    }
}

#[test]
fn chaos_degrades_unclassified_ward_without_fabrication() {
    let net = build();
    let (_, clean_budget, clean_evidence, clean_out) = run_full(&net, None, 1);
    let (_, chaos_budget, chaos_evidence, chaos_out) =
        run_full(&net, Some(revelation_plan()), 1);

    // Lost trigger replies and rate-limited DPR walks only remove
    // information: the faulted candidate set is a subset of the clean
    // one, and each surviving candidate reveals a subset of its clean
    // paths.
    let clean_by_pair: BTreeMap<(Ipv4Addr, Ipv4Addr), &RevealedTunnel> =
        clean_evidence.iter().map(|e| ((e.ingress, e.egress), e)).collect();
    for ev in &chaos_evidence {
        let clean = clean_by_pair
            .get(&(ev.ingress, ev.egress))
            .unwrap_or_else(|| panic!("chaos fabricated candidate {ev:?}"));
        for path in &ev.paths {
            assert!(
                clean.paths.contains(path),
                "chaos fabricated interior {path:?} for <{} → {}>",
                ev.ingress,
                ev.egress
            );
        }
    }
    assert!(
        chaos_budget.revelation_revealed <= clean_budget.revelation_revealed,
        "chaos revealed more than clean ({} > {})",
        chaos_budget.revelation_revealed,
        clean_budget.revelation_revealed
    );

    // The classifier may only move Unclassified-ward under faults.
    let clean_counts = clean_out.class_counts();
    let chaos_counts = chaos_out.class_counts();
    assert!(
        chaos_counts.unclassified as f64 / chaos_counts.total().max(1) as f64
            >= clean_counts.unclassified as f64 / clean_counts.total().max(1) as f64,
        "chaos must not shrink the Unclassified share: {chaos_counts:?} vs {clean_counts:?}"
    );

    // The plan actually bit: its revelation faults fired.
    let prober = Prober::new(&net, ProbeOptions::default()).with_faults(revelation_plan());
    let (vps, dsts) = endpoints(&net);
    let _ = prober.campaign_with_revelation(&vps, &dsts, 1, &RevelationOptions::default());
    let injected = prober.injected_faults();
    assert!(
        injected.trigger_replies_lost + injected.dpr_rate_limited > 0,
        "the chaos plan's revelation faults never fired: {injected:?}"
    );
}
