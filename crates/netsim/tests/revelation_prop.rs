//! Property tests for the revelation oracle: the dataplane records
//! every hidden traversal that actually happens, and the revelation
//! phase must account for each of them — either by revealing the
//! tunnel or by attributing the miss to an explicitly enumerated
//! non-revealable cause. Revealed interiors must lie on the IGP
//! shortest-path DAG the tunnel's LSP follows (never fabricated).

use lpr_core::lsp::Asn;
use lpr_core::reveal::{RevealedTunnel, RevelationStatus};
use netsim::internet::TunnelVisibility;
use netsim::{
    on_shortest_dag, oracle_traversals, AsSpec, Internet, MplsConfig, OracleTraversal, Peering,
    ProbeOptions, Prober, RevelationOptions, Topology, TopologyParams, Vendor, VisibilityMix,
};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// src stub — transit (with ECMP diamonds) — two dst stubs, the transit
/// AS's LDP tunnels drawn from `mix`. Clean measurement conditions: no
/// anonymity, no faults — every miss must be structural.
fn build(mix: VisibilityMix) -> Internet {
    let mut cfg = MplsConfig::ldp_default();
    cfg.visibility = mix;
    let specs = vec![
        AsSpec::transit(
            65000,
            "transit",
            Vendor::Juniper,
            TopologyParams {
                core_routers: 8,
                border_routers: 3,
                ecmp_diamonds: 2,
                ..Default::default()
            },
        ),
        AsSpec::stub(100, "src", 0, 2),
        AsSpec::stub(200, "dst-a", 4, 0),
        AsSpec::stub(201, "dst-b", 4, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(100), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(200)).at_a(1),
        Peering::new(Asn(65000), Asn(201)).at_a(2),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), cfg);
    Internet::new(topo, &configs)
}

fn campaign_endpoints(net: &Internet) -> (Vec<Ipv4Addr>, Vec<Ipv4Addr>) {
    let vps: Vec<Ipv4Addr> = net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let dsts = net.topo.destinations(1);
    (vps, dsts)
}

fn reveal(net: &Internet) -> (Vec<RevealedTunnel>, Vec<OracleTraversal>) {
    let prober = Prober::new(net, ProbeOptions::default());
    let (vps, dsts) = campaign_endpoints(net);
    let (_, _, evidence) =
        prober.campaign_with_revelation(&vps, &dsts, 1, &RevelationOptions::default());
    let oracle = oracle_traversals(&prober, &vps, &dsts);
    (evidence, oracle)
}

/// The property: every oracle-known traversal is covered by evidence,
/// or its absence is one of the enumerated structural causes.
fn assert_oracle_accounted(net: &Internet, evidence: &[RevealedTunnel], oracle: &[OracleTraversal]) {
    let by_pair: BTreeMap<(Ipv4Addr, Ipv4Addr), &RevealedTunnel> =
        evidence.iter().map(|e| ((e.ingress, e.egress), e)).collect();
    assert!(!oracle.is_empty(), "the mix produced no hidden traversals at all");
    for t in oracle {
        // Enumerated cause: the walk ended inside the tunnel, so the
        // trace never showed the egress — no artifact is possible.
        let Some(egress_addr) = t.egress_addr else { continue };
        // Enumerated cause: adjacent LERs. An implicit or opaque
        // tunnel with no interior LSR leaves no artifact (nothing
        // u-turns, nothing quotes an opaque stack); only invisible
        // tunnels still betray themselves (the duplicate-IP quirk
        // comes from the egress itself).
        if t.interior.is_empty() && t.visibility != TunnelVisibility::Invisible {
            continue;
        }
        let ev = by_pair.get(&(t.ingress_addr, egress_addr)).unwrap_or_else(|| {
            panic!(
                "oracle tunnel <{} → {}> ({:?}) left no evidence",
                t.ingress_addr, egress_addr, t.visibility
            )
        });
        // Every outcome is an enumerated variant by construction; under
        // clean conditions the only acceptable ones are actual
        // revelation or a structural cause that does not depend on
        // measurement noise.
        assert!(
            matches!(
                ev.status,
                RevelationStatus::Revealed
                    | RevelationStatus::IngressOffPath
                    | RevelationStatus::InfraTunneled
            ),
            "clean conditions, but <{} → {}> ended {:?}",
            t.ingress_addr,
            egress_addr,
            ev.status,
        );
    }
}

/// The subset property: every address a revelation reports sits on the
/// IGP shortest-path DAG between the tunnel's LERs, inside their AS —
/// i.e. on some equal-cost path of the LSP the oracle knows.
fn assert_paths_on_lsp(net: &Internet, evidence: &[RevealedTunnel]) {
    for ev in evidence {
        if ev.status != RevelationStatus::Revealed {
            assert!(ev.paths.is_empty(), "paths without Revealed status");
            continue;
        }
        let ingress = net.infra_attachment(ev.ingress).expect("revealed ingress resolves");
        let egress = net.infra_attachment(ev.egress).expect("revealed egress resolves");
        assert_eq!(ingress.as_id, egress.as_id, "LERs of one tunnel share an AS");
        for path in &ev.paths {
            for &addr in path {
                let at = net.infra_attachment(addr).expect("interior addr resolves");
                assert_eq!(at.as_id, ingress.as_id, "interior {addr} outside the AS");
                assert!(
                    on_shortest_dag(net, at.as_id, ingress.router, egress.router, at.router),
                    "revealed interior {addr} off the shortest-path DAG of <{} → {}>",
                    ev.ingress,
                    ev.egress,
                );
            }
        }
    }
}

fn kind_revealed(evidence: &[RevealedTunnel], kind: lpr_core::reveal::TriggerKind) -> usize {
    evidence
        .iter()
        .filter(|e| e.kind == kind && e.status == RevelationStatus::Revealed)
        .count()
}

#[test]
fn invisible_tunnels_are_accounted_and_revealed() {
    let net = build(VisibilityMix { explicit: 0.0, implicit: 0.0, invisible: 1.0, opaque: 0.0 });
    let (evidence, oracle) = reveal(&net);
    assert_oracle_accounted(&net, &evidence, &oracle);
    assert_paths_on_lsp(&net, &evidence);
    assert!(
        kind_revealed(&evidence, lpr_core::reveal::TriggerKind::DupIp) > 0,
        "no invisible tunnel was revealed via its duplicate-IP artifact: {evidence:?}"
    );
}

#[test]
fn implicit_tunnels_are_accounted_and_revealed() {
    let net = build(VisibilityMix { explicit: 0.0, implicit: 1.0, invisible: 0.0, opaque: 0.0 });
    let (evidence, oracle) = reveal(&net);
    assert_oracle_accounted(&net, &evidence, &oracle);
    assert_paths_on_lsp(&net, &evidence);
    assert!(
        kind_revealed(&evidence, lpr_core::reveal::TriggerKind::Uturn) > 0,
        "no implicit tunnel was revealed via its u-turn RTT artifact: {evidence:?}"
    );
}

#[test]
fn opaque_tunnels_are_accounted_and_revealed() {
    let net = build(VisibilityMix { explicit: 0.0, implicit: 0.0, invisible: 0.0, opaque: 1.0 });
    let (evidence, oracle) = reveal(&net);
    assert_oracle_accounted(&net, &evidence, &oracle);
    assert_paths_on_lsp(&net, &evidence);
    assert!(
        kind_revealed(&evidence, lpr_core::reveal::TriggerKind::OpaqueStack) > 0,
        "no opaque tunnel was revealed via its one-hop-stack artifact: {evidence:?}"
    );
}

#[test]
fn mixed_visibility_campaign_is_fully_accounted() {
    // Hidden kinds only: with a handful of LER pairs, an explicit
    // share could absorb every pair and leave the property vacuous.
    let net = build(VisibilityMix { explicit: 0.0, implicit: 0.4, invisible: 0.3, opaque: 0.3 });
    let (evidence, oracle) = reveal(&net);
    assert_oracle_accounted(&net, &evidence, &oracle);
    assert_paths_on_lsp(&net, &evidence);
}

#[test]
fn infra_in_fec_is_attributed_not_probed() {
    let mut cfg = MplsConfig::ldp_default();
    cfg.visibility = VisibilityMix { explicit: 0.0, implicit: 0.0, invisible: 1.0, opaque: 0.0 };
    cfg.infra_in_fec = true;
    let specs = vec![
        AsSpec::transit(
            65000,
            "transit",
            Vendor::Juniper,
            TopologyParams { core_routers: 8, border_routers: 3, ..Default::default() },
        ),
        AsSpec::stub(100, "src", 0, 2),
        AsSpec::stub(200, "dst-a", 4, 0),
        AsSpec::stub(201, "dst-b", 4, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(100), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(200)).at_a(1),
        Peering::new(Asn(65000), Asn(201)).at_a(2),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), cfg);
    let net = Internet::new(topo, &configs);
    let (evidence, oracle) = reveal(&net);
    assert!(!oracle.is_empty());
    assert!(!evidence.is_empty(), "triggers still fire; only the re-probe is doomed");
    for ev in &evidence {
        assert_eq!(
            ev.status,
            RevelationStatus::InfraTunneled,
            "an infra-tunneling AS cannot be DPR-probed: {ev:?}"
        );
        assert_eq!(ev.probes, 0, "attributed candidates must not spend probes");
    }
}

#[test]
fn budget_exhaustion_is_attributed_in_order() {
    let net = build(VisibilityMix { explicit: 0.0, implicit: 0.0, invisible: 1.0, opaque: 0.0 });
    let prober = Prober::new(&net, ProbeOptions::default());
    let (vps, dsts) = campaign_endpoints(&net);
    let unlimited = RevelationOptions::default();
    let (_, _, full) = prober.campaign_with_revelation(&vps, &dsts, 1, &unlimited);
    let probeable = full.iter().filter(|e| e.status != RevelationStatus::InfraTunneled).count();
    assert!(probeable > 1, "need at least two candidates to cut between");
    // Budget for exactly one candidate's worst case.
    let one = RevelationOptions {
        flows: unlimited.flows,
        max_probes: (unlimited.flows as u64) * (ProbeOptions::default().max_ttl as u64),
    };
    let (_, budget, capped) = prober.campaign_with_revelation(&vps, &dsts, 1, &one);
    let exhausted =
        capped.iter().filter(|e| e.status == RevelationStatus::BudgetExhausted).count();
    assert_eq!(exhausted, probeable - 1, "all but the first candidate must be cut: {capped:?}");
    for ev in capped.iter().filter(|e| e.status == RevelationStatus::BudgetExhausted) {
        assert_eq!(ev.probes, 0);
    }
    assert!(budget.revelation_probes <= one.max_probes, "budget overrun");
}

#[test]
fn legacy_ttl_propagate_off_stays_artifact_free() {
    // The pre-revelation invisible knob: no artifact is emitted, so no
    // trigger may fire — the golden campaign shape is preserved and the
    // oracle attributes the miss to the legacy configuration.
    let mut cfg = MplsConfig::ldp_default();
    cfg.ttl_propagate = false;
    let specs = vec![
        AsSpec::transit(
            65000,
            "transit",
            Vendor::Juniper,
            TopologyParams { core_routers: 8, border_routers: 3, ..Default::default() },
        ),
        AsSpec::stub(100, "src", 0, 2),
        AsSpec::stub(200, "dst-a", 4, 0),
        AsSpec::stub(201, "dst-b", 4, 0),
    ];
    let peerings = vec![
        Peering::new(Asn(100), Asn(65000)).at_b(0),
        Peering::new(Asn(65000), Asn(200)).at_a(1),
        Peering::new(Asn(65000), Asn(201)).at_a(2),
    ];
    let topo = Topology::build_with_peerings(&specs, &peerings);
    let mut configs = BTreeMap::new();
    configs.insert(Asn(65000), cfg);
    let net = Internet::new(topo, &configs);
    let (evidence, oracle) = reveal(&net);
    assert!(!oracle.is_empty(), "legacy invisible traversals are still oracle-known");
    assert!(oracle.iter().all(|t| t.visibility == TunnelVisibility::Invisible));
    assert!(
        net.config(oracle[0].as_id).ttl_propagate == false,
        "the enumerated cause: the AS runs the legacy artifact-free knob"
    );
    assert!(evidence.is_empty(), "no artifact, no trigger: {evidence:?}");
}
