//! # lpr-par — the workspace parallel execution layer
//!
//! The paper's dataset holds ~14 million LSPs *per cycle*; almost all
//! of the LPR pipeline's wall-clock goes into embarrassingly parallel
//! per-trace and per-IOTP work. This crate is the scheduler that work
//! runs on: a dependency-free shard scheduler built on
//! [`std::thread::scope`] (the offline `crates/shim` policy rules out
//! rayon/crossbeam).
//!
//! The model is deliberately simple and, above all, **deterministic**:
//!
//! 1. The input slice is cut into contiguous *shards* (more shards than
//!    workers, so stragglers rebalance).
//! 2. Worker *i* starts on shard *i* (so every worker is guaranteed
//!    work even when an early spawn races ahead), then pulls further
//!    shard indices from a chunked work queue (an atomic cursor).
//! 3. Outputs are returned **in shard order**, regardless of which
//!    worker ran which shard or in what order they finished.
//!
//! Because shards are contiguous and merged in shard order,
//! concatenating the outputs of an order-preserving per-item closure
//! reproduces the sequential result *byte for byte*, for any thread
//! count. Order-insensitive merges (set unions, counter sums) are
//! trivially deterministic too.
//!
//! ```
//! use lpr_par::{map_shards, ShardOptions};
//!
//! let items: Vec<u64> = (0..10_000).collect();
//! let run = map_shards(&items, ShardOptions::new(4), |_shard, slice| {
//!     slice.iter().copied().filter(|x| x % 3 == 0).collect::<Vec<_>>()
//! });
//! let par: Vec<u64> = run.outputs.into_iter().flatten().collect();
//! let seq: Vec<u64> = items.iter().copied().filter(|x| x % 3 == 0).collect();
//! assert_eq!(par, seq); // deterministic merge, any thread count
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lpr_obs::{FieldValue, Level, SpanContext, Tracer};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// The machine's available parallelism (1 when undetectable).
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How a [`map_shards`] run is cut up and scheduled.
#[derive(Clone, Copy, Debug)]
pub struct ShardOptions {
    /// Worker threads. `0` means [`available_threads`].
    pub threads: usize,
    /// Target shards per worker (>1 lets the chunked queue rebalance
    /// uneven shards).
    pub shards_per_thread: usize,
    /// Minimum items per shard; tiny inputs collapse into fewer shards
    /// so scheduling overhead never dominates.
    pub min_shard_len: usize,
}

impl ShardOptions {
    /// Options for `threads` workers with the default shard geometry.
    pub fn new(threads: usize) -> Self {
        ShardOptions { threads, shards_per_thread: 4, min_shard_len: 64 }
    }

    /// The worker count actually used (resolves `threads == 0`).
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            available_threads()
        } else {
            self.threads
        }
    }

    /// Number of shards for an input of `len` items.
    ///
    /// Depends only on the options and `len` — never on runtime timing —
    /// so a run's shard boundaries are reproducible.
    pub fn shard_count(&self, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let by_len = len.div_ceil(self.min_shard_len.max(1));
        let by_threads = self.effective_threads().max(1) * self.shards_per_thread.max(1);
        by_len.min(by_threads).max(1)
    }
}

/// One worker's accounting for a [`map_shards`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStat {
    /// Worker index (0-based).
    pub worker: usize,
    /// Shards this worker processed.
    pub shards: usize,
    /// Items this worker processed (sum of its shard lengths).
    pub items: u64,
    /// Busy wall time of this worker, microseconds (its whole pull
    /// loop, queue overhead included).
    pub busy_us: u64,
}

/// The result of a [`map_shards`] run.
#[derive(Debug)]
pub struct ShardRun<R> {
    /// Per-shard outputs, in shard (= input) order.
    pub outputs: Vec<R>,
    /// Which worker ran each shard (parallel to `outputs`).
    pub shard_workers: Vec<usize>,
    /// Item count of each shard (parallel to `outputs`), so a caller
    /// can account for a poisoned shard's items without re-deriving the
    /// shard geometry.
    pub shard_lens: Vec<usize>,
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerStat>,
    /// Wall time of the whole run, spawn and join included,
    /// microseconds.
    pub wall_us: u64,
}

impl<R> ShardRun<R> {
    /// Discards the scheduling metadata, keeping the ordered outputs.
    pub fn into_outputs(self) -> Vec<R> {
        self.outputs
    }
}

impl<R> ShardRun<Result<R, PoisonedShard>> {
    /// Unwraps every shard output, panicking with the first poisoned
    /// shard's message (in shard order) — [`map_shards`] semantics for
    /// the caught/traced engines, for callers whose closures are not
    /// expected to panic.
    pub fn expect_ok(self) -> ShardRun<R> {
        let outputs = self
            .outputs
            .into_iter()
            .map(|o| match o {
                Ok(r) => r,
                Err(poisoned) => panic!("{poisoned}"),
            })
            .collect();
        ShardRun {
            outputs,
            shard_workers: self.shard_workers,
            shard_lens: self.shard_lens,
            workers: self.workers,
            wall_us: self.wall_us,
        }
    }
}

/// A shard whose closure panicked.
///
/// The panic is caught at the shard boundary ([`std::panic::catch_unwind`]
/// inside the worker's pull loop), so one poisoned shard never tears
/// down the other workers or the process: every remaining shard still
/// runs and returns its output.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoisonedShard {
    /// Index of the shard whose closure panicked.
    pub shard: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// The panic payload, stringified (`&str`/`String` payloads are
    /// preserved verbatim).
    pub message: String,
}

impl std::fmt::Display for PoisonedShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} poisoned (worker {}): {}", self.shard, self.worker, self.message)
    }
}

impl std::error::Error for PoisonedShard {}

/// Span context a traced run propagates into its shard workers: each
/// shard runs inside a `shard{N}` span parented under `parent` (the
/// caller's stage span), drawn on lane `worker + 1` so worker activity
/// separates from the main thread in timeline exporters. A caught
/// shard panic journals a `poisoned-shard` error event inside the
/// shard's span.
#[derive(Clone, Copy)]
pub struct ShardTrace<'a> {
    /// The journal shard spans record into.
    pub tracer: &'a Tracer,
    /// The span shard spans parent under (the stage span).
    pub parent: SpanContext,
}

impl<'a> ShardTrace<'a> {
    /// A trace context under `parent` in `tracer`'s journal.
    pub fn new(tracer: &'a Tracer, parent: SpanContext) -> Self {
        ShardTrace { tracer, parent }
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast_ref::<&str>() {
        Some(s) => (*s).to_string(),
        None => match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "non-string panic payload".to_string(),
        },
    }
}

/// Cuts `items` into contiguous shards and maps `f` over them on a pool
/// of scoped worker threads, returning the outputs **in shard order**.
///
/// `f` receives `(shard_index, shard_slice)`. Shards are near-equal
/// contiguous splits; workers pull the next unclaimed shard from an
/// atomic cursor until the queue drains. With `threads <= 1` (after
/// resolving `0`) everything runs inline on the caller's thread — same
/// shard boundaries, same outputs, no spawn.
///
/// A panicking shard closure poisons only its own shard; the run
/// completes and this function then re-panics on the caller's thread
/// with the first poisoned shard's message (use [`try_map_shards`] or
/// [`map_shards_caught`] to handle poisoning without unwinding).
pub fn map_shards<T, R, F>(items: &[T], opts: ShardOptions, f: F) -> ShardRun<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    match try_map_shards(items, opts, f) {
        Ok(run) => run,
        Err(poisoned) => panic!("{poisoned}"),
    }
}

/// [`map_shards`] that surfaces a panicking shard as an error instead
/// of unwinding: the first poisoned shard (in shard order) wins, as a
/// sequential loop's first panic would.
pub fn try_map_shards<T, R, F>(
    items: &[T],
    opts: ShardOptions,
    f: F,
) -> Result<ShardRun<R>, PoisonedShard>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let run = map_shards_caught(items, opts, f);
    let mut outputs = Vec::with_capacity(run.outputs.len());
    for out in run.outputs {
        outputs.push(out?);
    }
    Ok(ShardRun {
        outputs,
        shard_workers: run.shard_workers,
        shard_lens: run.shard_lens,
        workers: run.workers,
        wall_us: run.wall_us,
    })
}

/// The raw engine behind [`map_shards`]/[`try_map_shards`]: every shard
/// runs to completion and each output is `Ok(R)` or the
/// [`PoisonedShard`] describing its caught panic — callers that can
/// degrade gracefully (quarantine the shard's items, keep the rest)
/// consume this directly.
pub fn map_shards_caught<T, R, F>(
    items: &[T],
    opts: ShardOptions,
    f: F,
) -> ShardRun<Result<R, PoisonedShard>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_shards_engine(items, opts, None, f)
}

/// [`map_shards_caught`] with span propagation: every shard runs inside
/// a `shard{N}` span under `trace.parent`, and a caught panic journals
/// a `poisoned-shard` error event (fields: `shard`, `worker`,
/// `message`) before the span closes — so a trace shows *which* shard
/// died, on which worker lane, and when.
pub fn map_shards_traced<T, R, F>(
    items: &[T],
    opts: ShardOptions,
    trace: ShardTrace<'_>,
    f: F,
) -> ShardRun<Result<R, PoisonedShard>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    map_shards_engine(items, opts, Some(trace), f)
}

fn map_shards_engine<T, R, F>(
    items: &[T],
    opts: ShardOptions,
    trace: Option<ShardTrace<'_>>,
    f: F,
) -> ShardRun<Result<R, PoisonedShard>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    let started = Instant::now();
    let nshards = opts.shard_count(items.len());
    let bounds = shard_bounds(items.len(), nshards);
    let threads = opts.effective_threads().max(1).min(nshards.max(1));

    // The closure only ever borrows `f` and the input slice, so a caught
    // panic cannot leave broken state behind: the shard's would-be
    // output is simply replaced by the error.
    let run_one = |shard: usize, slice: &[T], worker: usize| -> Result<R, PoisonedShard> {
        // Skip the span bookkeeping entirely (name formatting included)
        // unless a live journal is attached.
        let span = trace.filter(|tr| tr.tracer.is_enabled()).map(|tr| {
            tr.tracer.span_on(tr.parent, format!("shard{shard}"), worker as u64 + 1)
        });
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(shard, slice)))
            .map_err(|payload| PoisonedShard { shard, worker, message: panic_message(payload) });
        if let (Some(span), Err(poisoned)) = (&span, &out) {
            span.event(
                Level::Error,
                "poisoned-shard",
                vec![
                    ("shard".to_string(), FieldValue::U64(poisoned.shard as u64)),
                    ("worker".to_string(), FieldValue::U64(poisoned.worker as u64)),
                    ("message".to_string(), FieldValue::Str(poisoned.message.clone())),
                ],
            );
        }
        out
    };

    let mut outputs: Vec<Option<Result<R, PoisonedShard>>> = Vec::new();
    outputs.resize_with(nshards, || None);
    let mut shard_workers = vec![0usize; nshards];
    let shard_lens: Vec<usize> = bounds.iter().map(|(s, e)| e - s).collect();
    let mut workers: Vec<WorkerStat> = Vec::new();

    if threads <= 1 || nshards <= 1 {
        let sw = Instant::now();
        let mut stat = WorkerStat::default();
        for (shard, out) in outputs.iter_mut().enumerate() {
            let slice = &items[bounds[shard].0..bounds[shard].1];
            stat.shards += 1;
            stat.items += slice.len() as u64;
            *out = Some(run_one(shard, slice, 0));
        }
        stat.busy_us = sw.elapsed().as_micros() as u64;
        workers.push(stat);
    } else {
        // Shards 0..threads are statically assigned (worker i owns
        // shard i); only the remainder goes through the shared cursor.
        // Without this, a worker that spawns early can drain the whole
        // queue before the later spawns are even scheduled, leaving
        // them with zero items — a real effect at small queue sizes,
        // and a guaranteed one on a single-core host.
        let cursor = AtomicUsize::new(threads);
        let run_one = &run_one;
        let bounds = &bounds;
        let cursor = &cursor;
        // One worker's harvest: its stats plus every (shard, result)
        // pair it claimed off the queue.
        type Harvest<R> = (WorkerStat, Vec<(usize, Result<R, PoisonedShard>)>);
        let mut results: Vec<Harvest<R>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|worker| {
                        scope.spawn(move || {
                            let sw = Instant::now();
                            let mut stat = WorkerStat { worker, ..Default::default() };
                            let mut produced = Vec::new();
                            let mut first = Some(worker); // threads <= nshards
                            loop {
                                let shard = match first.take() {
                                    Some(s) => s,
                                    None => cursor.fetch_add(1, Ordering::Relaxed),
                                };
                                if shard >= nshards {
                                    break;
                                }
                                let slice = &items[bounds[shard].0..bounds[shard].1];
                                stat.shards += 1;
                                stat.items += slice.len() as u64;
                                produced.push((shard, run_one(shard, slice, worker)));
                            }
                            stat.busy_us = sw.elapsed().as_micros() as u64;
                            (stat, produced)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker itself cannot panic: shards are caught"))
                    .collect()
            });
        for (stat, produced) in &mut results {
            for (shard, out) in produced.drain(..) {
                shard_workers[shard] = stat.worker;
                outputs[shard] = Some(out);
            }
        }
        workers = results.into_iter().map(|(stat, _)| stat).collect();
    }

    ShardRun {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("every shard claimed exactly once"))
            .collect(),
        shard_workers,
        shard_lens,
        workers,
        wall_us: started.elapsed().as_micros() as u64,
    }
}

/// `(start, end)` byte-identical shard boundaries: near-equal contiguous
/// splits, earlier shards one longer when `len` does not divide evenly.
fn shard_bounds(len: usize, nshards: usize) -> Vec<(usize, usize)> {
    let mut bounds = Vec::with_capacity(nshards);
    if nshards == 0 {
        return bounds;
    }
    let base = len / nshards;
    let rem = len % nshards;
    let mut start = 0;
    for shard in 0..nshards {
        let extent = base + usize::from(shard < rem);
        bounds.push((start, start + extent));
        start += extent;
    }
    debug_assert_eq!(start, len);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_cover_input_exactly() {
        for len in [0usize, 1, 7, 64, 1000, 1001] {
            for n in 1..9usize {
                let b = shard_bounds(len, n);
                assert_eq!(b.len(), n);
                assert_eq!(b[0].0, 0);
                assert_eq!(b[n - 1].1, len);
                for w in b.windows(2) {
                    assert_eq!(w[0].1, w[1].0, "contiguous");
                }
            }
        }
    }

    #[test]
    fn empty_input_runs_nothing() {
        let items: Vec<u32> = Vec::new();
        let run = map_shards(&items, ShardOptions::new(4), |_, s: &[u32]| s.len());
        assert!(run.outputs.is_empty());
        assert_eq!(run.workers.iter().map(|w| w.items).sum::<u64>(), 0);
    }

    #[test]
    fn concat_merge_is_identical_for_any_thread_count() {
        let items: Vec<u64> = (0..5000).map(|x| x * 7 % 4096).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [0usize, 1, 2, 3, 4, 8, 13] {
            let run = map_shards(&items, ShardOptions::new(threads), |_, s| {
                s.iter().map(|x| x * x).collect::<Vec<u64>>()
            });
            let par: Vec<u64> = run.outputs.into_iter().flatten().collect();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn shard_indices_arrive_in_order() {
        let items: Vec<u8> = vec![0; 4096];
        let run = map_shards(&items, ShardOptions::new(4), |shard, _| shard);
        let expect: Vec<usize> = (0..run.outputs.len()).collect();
        assert_eq!(run.outputs, expect);
    }

    #[test]
    fn worker_stats_account_for_every_item() {
        let items: Vec<u32> = (0..10_000).collect();
        let run = map_shards(&items, ShardOptions::new(4), |_, s| s.len());
        let items_seen: u64 = run.workers.iter().map(|w| w.items).sum();
        assert_eq!(items_seen, 10_000);
        let shards_seen: usize = run.workers.iter().map(|w| w.shards).sum();
        assert_eq!(shards_seen, run.outputs.len());
        assert_eq!(run.shard_workers.len(), run.outputs.len());
        for &w in &run.shard_workers {
            assert!(w < run.workers.len().max(1) + 16, "worker id sane");
        }
    }

    /// Regression: before the static first-shard assignment, a worker
    /// spawned early could drain the whole cursor queue before the rest
    /// were scheduled, and `worker2`/`worker3` reported 0 items on a
    /// 3654-trace run. Every spawned worker now owns at least one shard.
    #[test]
    fn every_worker_receives_work() {
        let items: Vec<u32> = (0..3654).collect();
        for threads in [2usize, 4, 8] {
            let run = map_shards(&items, ShardOptions::new(threads), |_, s| s.len());
            assert_eq!(run.workers.len(), threads);
            for w in &run.workers {
                assert!(w.shards >= 1, "worker {} starved at threads={threads}", w.worker);
                assert!(w.items > 0, "worker {} got 0 items at threads={threads}", w.worker);
            }
        }
    }

    #[test]
    fn tiny_inputs_collapse_to_few_shards() {
        let opts = ShardOptions::new(8);
        assert_eq!(opts.shard_count(0), 0);
        assert_eq!(opts.shard_count(1), 1);
        assert_eq!(opts.shard_count(64), 1);
        assert_eq!(opts.shard_count(65), 2);
        assert!(opts.shard_count(1 << 20) <= 32);
    }

    #[test]
    fn zero_threads_resolves_to_available() {
        let opts = ShardOptions::new(0);
        assert!(opts.effective_threads() >= 1);
    }

    /// Suppresses the default panic hook's backtrace spam for the
    /// duration of a test that panics on purpose inside workers.
    fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(hook);
        out
    }

    /// Regression: a panic inside a shard used to propagate through
    /// `std::thread::scope`'s join and abort the whole run. Now it
    /// poisons only its shard.
    #[test]
    fn panicking_shard_poisons_only_itself() {
        with_quiet_panics(|| {
            let items: Vec<u32> = (0..1000).collect();
            for threads in [1usize, 2, 4] {
                let run = map_shards_caught(&items, ShardOptions::new(threads), |shard, s| {
                    if shard == 1 {
                        panic!("boom in shard {shard}");
                    }
                    s.len()
                });
                assert_eq!(run.shard_lens.iter().sum::<usize>(), items.len());
                for (shard, out) in run.outputs.iter().enumerate() {
                    match out {
                        Ok(n) => {
                            assert_ne!(shard, 1);
                            assert_eq!(*n, run.shard_lens[shard]);
                        }
                        Err(p) => {
                            assert_eq!(shard, 1, "threads={threads}");
                            assert_eq!(p.shard, 1);
                            assert_eq!(p.message, "boom in shard 1");
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn traced_run_parents_shard_spans_and_journals_poison() {
        with_quiet_panics(|| {
            let items: Vec<u32> = (0..1000).collect();
            let tracer = Tracer::new(Level::Debug);
            let stage = tracer.span("stage:Test");
            let stage_ctx = stage.context();
            let run = map_shards_traced(
                &items,
                ShardOptions::new(4),
                ShardTrace::new(&tracer, stage_ctx),
                |shard, s| {
                    if shard == 2 {
                        panic!("shard 2 down");
                    }
                    s.len()
                },
            );
            drop(stage);
            assert_eq!(run.outputs.iter().filter(|o| o.is_err()).count(), 1);
            let snap = tracer.snapshot();
            let shard_begins: Vec<_> = snap
                .events
                .iter()
                .filter_map(|e| match e {
                    lpr_obs::TraceEvent::SpanBegin { parent, name, tid, .. }
                        if name.starts_with("shard") =>
                    {
                        Some((*parent, *tid))
                    }
                    _ => None,
                })
                .collect();
            assert_eq!(shard_begins.len(), run.outputs.len());
            assert!(
                shard_begins.iter().all(|(p, tid)| *p == stage_ctx.id() && *tid >= 1),
                "shard spans parent under the stage, off the main lane"
            );
            let poison_events: Vec<_> = snap
                .events
                .iter()
                .filter(|e| matches!(e, lpr_obs::TraceEvent::Event { name, level, .. }
                    if name == "poisoned-shard" && *level == Level::Error))
                .collect();
            assert_eq!(poison_events.len(), 1);
            let lpr_obs::TraceEvent::Event { fields, .. } = poison_events[0] else { panic!() };
            assert!(fields.iter().any(|(k, v)| k == "message"
                && matches!(v, FieldValue::Str(s) if s.contains("shard 2 down"))));
        });
    }

    #[test]
    fn untraced_runs_stay_silent() {
        let items: Vec<u32> = (0..200).collect();
        let tracer = Tracer::disabled();
        let run = map_shards_traced(
            &items,
            ShardOptions::new(2),
            ShardTrace::new(&tracer, SpanContext::ROOT),
            |_, s| s.len(),
        );
        assert_eq!(run.outputs.iter().filter_map(|o| o.as_ref().ok()).sum::<usize>(), 200);
        assert_eq!(tracer.snapshot(), lpr_obs::TraceSnapshot::default());
    }

    #[test]
    fn try_map_shards_reports_first_poisoned_shard() {
        with_quiet_panics(|| {
            let items: Vec<u32> = (0..1000).collect();
            let err = try_map_shards(&items, ShardOptions::new(4), |shard, _| {
                if shard >= 2 {
                    panic!("shard {shard} down");
                }
                shard
            })
            .unwrap_err();
            assert_eq!(err.shard, 2, "first poisoned shard in shard order wins");
            assert_eq!(err.message, "shard 2 down");
            assert!(err.to_string().contains("poisoned"));

            let ok = try_map_shards(&items, ShardOptions::new(4), |shard, _| shard).unwrap();
            assert_eq!(ok.outputs, (0..ok.outputs.len()).collect::<Vec<_>>());
        });
    }

    #[test]
    fn map_shards_repanics_with_the_shard_message() {
        with_quiet_panics(|| {
            let items: Vec<u32> = (0..200).collect();
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                map_shards(&items, ShardOptions::new(2), |shard, s| {
                    if shard == 0 {
                        panic!("first shard failed");
                    }
                    s.len()
                })
            }));
            let payload = caught.unwrap_err();
            let msg = payload.downcast_ref::<String>().expect("formatted message");
            assert!(msg.contains("first shard failed"), "{msg}");
            assert!(msg.contains("shard 0"), "{msg}");
        });
    }
}
