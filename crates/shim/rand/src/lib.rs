//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no registry access; this shim provides the
//! subset the simulator uses — [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`] over a deterministic
//! splitmix64/xorshift generator. It is *not* the real `rand`: streams
//! differ from upstream, but every consumer in this workspace only
//! requires determinism for a fixed seed, not upstream-identical
//! sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types a generator can sample uniformly from a range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` given a raw 64-bit draw.
    fn from_draw(draw: u64, low: Self, high: Self) -> Self;
    /// The half-open bounds for a `low..=high` range.
    fn inclusive_upper(high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_draw(draw: u64, low: Self, high: Self) -> Self {
                let span = (high as u128) - (low as u128);
                debug_assert!(span > 0, "empty sample range");
                low + (draw as u128 % span) as $t
            }
            fn inclusive_upper(high: Self) -> Self {
                high + 1
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// A range a generator can sample from (`low..high` or `low..=high`).
pub trait SampleRange<T> {
    /// Uniform sample using `draw`.
    fn sample(self, draw: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, draw: u64) -> T {
        T::from_draw(draw, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, draw: u64) -> T {
        let (start, end) = self.into_inner();
        T::from_draw(draw, start, T::inclusive_upper(end))
    }
}

/// The user-facing generator trait.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Small fast generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// A small xorshift64* generator seeded via splitmix64.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 guarantees a non-zero state for xorshift.
            let mut state = splitmix64(seed);
            if state == 0 {
                state = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { state }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Alias: this shim has no cryptographic generator; `StdRng` shares
    /// the `SmallRng` implementation.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0..1000u32 {
            let v = rng.gen_range(0..=i);
            assert!(v <= i);
            let w = rng.gen_range(3usize..10);
            assert!((3..10).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
