//! Offline stand-in for the crates.io `bytes` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! the tiny subset of the `bytes` API the warts codec actually uses:
//! [`BytesMut`] as a growable byte buffer and the big-endian `put_*`
//! writers of the [`BufMut`] trait. The types are drop-in compatible for
//! that subset, so swapping the real crate back in is a one-line
//! `Cargo.toml` change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// A growable, contiguous byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { inner: Vec::with_capacity(cap) }
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    /// Consumes the buffer, yielding its bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.inner
    }

    /// Consumes the buffer, freezing it into an immutable `Vec<u8>`
    /// (the real crate returns `Bytes`; callers here only read it).
    pub fn freeze(self) -> Vec<u8> {
        self.inner
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { inner: v }
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

/// Append-only writer trait: the big-endian subset of `bytes::BufMut`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_writers() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        assert_eq!(
            &b[..],
            &[
                0xAB, 0x12, 0x34, 0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04, 0x05,
                0x06, 0x07, 0x08
            ]
        );
    }

    #[test]
    fn slicing_and_len_via_deref() {
        let mut b = BytesMut::with_capacity(4);
        b.put_slice(&[1, 2, 3, 4]);
        assert_eq!(b.len(), 4);
        assert_eq!(&b[1..3], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4]);
        b.clear();
        assert!(b.is_empty());
    }
}
