//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no registry access, so this workspace
//! ships a miniature property-testing engine implementing the subset of
//! the `proptest` API its test suites use: [`Strategy`] with
//! `prop_map`, range and tuple strategies, [`any`], collection/option
//! strategies, [`sample::Index`], and the [`proptest!`]/[`prop_compose!`]
//! macros. Cases are generated from a deterministic per-test seed
//! (override with `PROPTEST_SEED`); failures report the case number but
//! are **not shrunk** — rerun with the printed seed to reproduce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from a test name, or from `PROPTEST_SEED` when set.
    pub fn deterministic(name: &str) -> Self {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = seed.parse::<u64>() {
                return TestRng { state: seed };
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// How many cases each property runs.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy built from a generation closure (used by
/// [`prop_compose!`]).
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The [`any`] strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Types that can be drawn uniformly from a range strategy.
pub trait RangeValue: Copy {
    /// Uniform draw from `[low, high)`.
    fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self;
    /// Successor, for inclusive upper bounds.
    fn successor(self) -> Self;
}

macro_rules! impl_range_value {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self {
                let span = (high as i128) - (low as i128);
                assert!(span > 0, "empty range strategy");
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                (low as i128 + offset) as $t
            }
            fn successor(self) -> Self {
                self + 1
            }
        }
    )*};
}

impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self {
        assert!(high > low, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + frac * (high - low)
    }

    fn successor(self) -> Self {
        // `low..=high` over floats: the upper bound is dense enough
        // that including it uniformly is indistinguishable.
        self
    }
}

impl RangeValue for f32 {
    fn draw(rng: &mut TestRng, low: Self, high: Self) -> Self {
        f64::draw(rng, low as f64, high as f64) as f32
    }

    fn successor(self) -> Self {
        self
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, self.start, self.end)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::draw(rng, *self.start(), self.end().successor())
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size window for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        low: usize,
        high: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { low: r.start, high: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { low: *r.start(), high: r.end() + 1 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { low: n, high: n + 1 }
        }
    }

    /// Generates `Vec`s whose length falls in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A strategy for vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.high.saturating_sub(self.size.low).max(1);
            let len = self.size.low + (rng.next_u64() as usize % span);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Generates `Some` roughly half the time.
    pub struct OptionStrategy<S>(S);

    /// A strategy for `Option<S::Value>`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Sampling helpers.
pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An abstract index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Resolves against a concrete collection size (panics on 0,
        /// like the real crate).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Umbrella module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, proptest, Any, Just,
        ProptestConfig, Strategy, TestRng,
    };
    /// Mirror of `proptest::prelude::prop` (module aliases).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Asserts a condition inside a property (no shrinking: plain assert).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn` runs `cases` times over freshly
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                let __rng_before = rng.clone();
                let run = |rng: &mut $crate::TestRng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                };
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run(&mut rng)
                })) {
                    eprintln!(
                        "proptest (offline shim): case {}/{} of `{}` failed; no shrinking — \
                         rerun this test alone to reproduce deterministically",
                        __case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    let _ = __rng_before;
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

/// Composes named sub-strategies into a derived strategy, mirroring
/// `proptest::prop_compose!`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($outer:tt)*)($($pat:pat in $strat:expr),* $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| {
                $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::deterministic("ranges_and_tuples");
        let s = (0u8..4, 10u32..=20, any::<bool>());
        for _ in 0..200 {
            let (a, b, _c) = s.generate(&mut rng);
            assert!(a < 4);
            assert!((10..=20).contains(&b));
        }
    }

    #[test]
    fn vec_sizes_respect_bounds() {
        let mut rng = TestRng::deterministic("vec_sizes");
        let s = crate::collection::vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u32..100, flag in any::<bool>(), v in crate::collection::vec(0u8..3, 0..4)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 4, "len {}", v.len());
            let _ = flag;
        }
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 0u8..10) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #[test]
        fn composed_strategy(p in arb_pair()) {
            prop_assert!(p.0 < 10 && p.1 < 10);
        }
    }
}
