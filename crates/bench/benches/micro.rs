//! Substrate micro-benchmarks: the building blocks every experiment
//! leans on.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lpr_core::prelude::*;
use lpr_bench::bench_cycle;
use std::net::Ipv4Addr;

fn warts_codec(c: &mut Criterion) {
    let (_, traces) = bench_cycle();
    let sample: Vec<_> = traces.iter().take(500).cloned().collect();

    let mut group = c.benchmark_group("warts");
    group.throughput(Throughput::Elements(sample.len() as u64));

    group.bench_function("write_500_traces", |b| {
        b.iter(|| {
            let mut w = warts::WartsWriter::new();
            let list = w.list(1, "bench");
            let cycle = w.cycle_start(list, 1, 0);
            for t in &sample {
                w.trace(&warts::trace_to_record(t, list, cycle)).unwrap();
            }
            w.cycle_stop(cycle, 1);
            w.into_bytes()
        })
    });

    let bytes = {
        let mut w = warts::WartsWriter::new();
        let list = w.list(1, "bench");
        let cycle = w.cycle_start(list, 1, 0);
        for t in &sample {
            w.trace(&warts::trace_to_record(t, list, cycle)).unwrap();
        }
        w.cycle_stop(cycle, 1);
        w.into_bytes()
    };
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("parse_500_traces", |b| {
        b.iter(|| warts::WartsReader::new(&bytes).traces().unwrap())
    });
    group.finish();
}

fn ip2as_lookup(c: &mut Criterion) {
    let (world, traces) = bench_cycle();
    let rib = world.rib();
    let addrs: Vec<Ipv4Addr> = traces
        .iter()
        .flat_map(|t| t.responsive_hops().map(|h| h.addr.unwrap()))
        .take(10_000)
        .collect();
    let mut group = c.benchmark_group("ip2as");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("lpm_lookup_10k", |b| {
        b.iter(|| addrs.iter().filter(|a| rib.lookup(**a).is_some()).count())
    });
    group.finish();
}

fn control_plane(c: &mut Criterion) {
    let world = ark_dataset::standard_world();
    let configs = ark_dataset::configs_for_cycle(40);
    c.bench_function("control_plane/build_internet", |b| {
        b.iter_batched(
            || world.topo.clone(),
            |topo| netsim::Internet::new(topo, &configs),
            BatchSize::SmallInput,
        )
    });
}

fn probing(c: &mut Criterion) {
    let world = ark_dataset::standard_world();
    let configs = ark_dataset::configs_for_cycle(40);
    let net = netsim::Internet::new(world.topo.clone(), &configs);
    let prober = netsim::Prober::new(&net, netsim::ProbeOptions::default());
    let vp = world.all_vps()[0];
    let dsts = world.all_destinations(1);
    let mut group = c.benchmark_group("probe");
    group.throughput(Throughput::Elements(dsts.len() as u64));
    group.bench_function("traceroute_all_destinations", |b| {
        b.iter(|| dsts.iter().map(|d| prober.trace(vp, *d).len()).sum::<usize>())
    });
    group.finish();
}

fn lpr_pipeline(c: &mut Criterion) {
    let (world, traces) = bench_cycle();
    let rib = world.rib();
    let keys = Pipeline::snapshot_keys(&traces);

    let mut group = c.benchmark_group("lpr");
    group.throughput(Throughput::Elements(traces.len() as u64));
    group.bench_function("extract_tunnels", |b| {
        b.iter(|| {
            traces
                .iter()
                .flat_map(lpr_core::tunnel::extract_tunnels)
                .count()
        })
    });
    group.bench_function("full_pipeline", |b| {
        b.iter(|| Pipeline::default().run(&traces, rib, std::slice::from_ref(&keys)))
    });

    let out = Pipeline::default().run(&traces, rib, std::slice::from_ref(&keys));
    let iotps: Vec<_> = out.iotps.iter().map(|(i, _)| i.clone()).collect();
    group.throughput(Throughput::Elements(iotps.len() as u64));
    group.bench_function("classify_iotps", |b| {
        b.iter(|| iotps.iter().map(|i| classify_iotp(i).class).filter(|c| *c == Class::MultiFec).count())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = warts_codec, ip2as_lookup, control_plane, probing, lpr_pipeline
}
criterion_main!(benches);
