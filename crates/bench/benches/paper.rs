//! One Criterion entry per table/figure of the paper's evaluation.
//!
//! Each bench runs the corresponding `experiments` harness at a
//! reduced scale so `cargo bench` stays tractable; the full-scale
//! regeneration (with CSV output) is
//! `cargo run --release -p experiments -- all`.

use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{fig16, fig17, fig6, fig789, longitudinal};

/// Cycles rendered by the longitudinal benches (the paper uses 60).
const BENCH_CYCLES: usize = 6;

fn fig5_table1_table2_peras(c: &mut Criterion) {
    let world = ark_dataset::standard_world();
    // One longitudinal pass feeds Fig. 5, Table 1, Figs. 10-15 and
    // Table 2, exactly as in the `experiments` binary.
    c.bench_function("paper/longitudinal_pass_6cycles", |b| {
        b.iter(|| longitudinal::run(&world, BENCH_CYCLES))
    });
}

fn fig6_bench(c: &mut Criterion) {
    let world = ark_dataset::standard_world();
    c.bench_function("paper/fig6_persistence_sweep", |b| {
        b.iter(|| fig6::run(&world, 6))
    });
}

fn fig789_bench(c: &mut Criterion) {
    let world = ark_dataset::standard_world();
    c.bench_function("paper/fig789_metric_distributions", |b| {
        b.iter(|| fig789::run(&world, 40))
    });
}

fn fig16_bench(c: &mut Criterion) {
    let world = ark_dataset::standard_world();
    c.bench_function("paper/fig16_one_april_day", |b| {
        b.iter(|| {
            ark_dataset::april2012::april_day(
                &world,
                20,
                &ark_dataset::CampaignOptions::default(),
            )
        })
    });
    // The full month, once, to keep an end-to-end figure regeneration
    // in the bench suite.
    c.bench_function("paper/fig16_full_month", |b| b.iter(|| fig16::run(&world)));
}

fn fig17_bench(c: &mut Criterion) {
    let world = ark_dataset::standard_world();
    c.bench_function("paper/fig17_label_dynamics", |b| {
        b.iter(|| {
            ark_dataset::dynamics::run(
                &world,
                &ark_dataset::dynamics::DynamicsOptions {
                    minutes: 120,
                    sample_every: 10,
                    reopt_every: 30,
                    reopt_batch: 10,
                },
            )
        })
    });
    // Touch the full-cadence harness once so the figure path is
    // exercised end to end.
    c.bench_function("paper/fig17_pick_te_flow", |b| {
        let configs = ark_dataset::configs_for_cycle(60);
        let net = netsim::Internet::new(world.topo.clone(), &configs);
        b.iter(|| fig17::run_flow_probe(&world, &net))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig5_table1_table2_peras, fig6_bench, fig789_bench, fig16_bench, fig17_bench
}
criterion_main!(benches);
