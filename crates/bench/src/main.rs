//! `lpr-bench` — the workspace benchmark harness.
//!
//! A plain binary (no `cargo bench`/Criterion dependency): it drives
//! the demo-scale pipeline through the `lpr-obs` instrumentation and
//! writes the telemetry as `BENCH_pipeline.json`, so CI and the paper's
//! Table 1 timing notes come from the same machinery as `lpr classify
//! --metrics`.
//!
//! ```text
//! lpr-bench pipeline [--out BENCH_pipeline.json] [--snapshots N] [--cycle N]
//!                    [--threads N] [--threads-sweep [1,2,4,...]] [--alloc]
//!                    [--max-campaign-share F]
//! lpr-bench help
//! ```
//!
//! `--threads-sweep` benchmarks the parallel pipeline across thread
//! counts, sweeps campaign generation across probing threads 1–8,
//! writes both speedup curves into the JSON report, and
//! **self-checks determinism**: the run fails (exit 1) if any thread
//! count produces output differing from the sequential run, or if the
//! default-shape campaign drifts from its pinned golden fingerprint.
//! `--alloc` attributes allocation counts to stages;
//! `--max-campaign-share` is the CI perf-regression tripwire.

#![deny(unsafe_code)]

use lpr_core::pipeline::Pipeline;
use lpr_core::prelude::*;
use lpr_obs::json::JsonValue;
use lpr_obs::Recorder;
use std::io::Write;

/// A counting wrapper around the system allocator: two relaxed atomics
/// per allocation, read by `--alloc` to attribute allocation counts and
/// bytes to pipeline stages. Counting is always on (the overhead is
/// noise next to a malloc), reporting is opt-in.
mod counting_alloc {
    #![allow(unsafe_code)]

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    /// Live heap bytes (allocated minus freed); signed because a
    /// relaxed race can transiently observe a free before its alloc.
    static LIVE: AtomicI64 = AtomicI64::new(0);
    /// High-water mark of [`LIVE`] since the last [`heap_reset_peak`].
    static PEAK: AtomicI64 = AtomicI64::new(0);

    fn grow(delta: i64) {
        let live = LIVE.fetch_add(delta, Ordering::Relaxed) + delta;
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    /// Forwards to [`System`], tallying calls and requested bytes.
    pub struct CountingAlloc;

    // SAFETY: defers every allocation verbatim to `System`; the only
    // additions are relaxed counter increments, which allocate nothing.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            grow(layout.size() as i64);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            LIVE.fetch_sub(layout.size() as i64, Ordering::Relaxed);
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            grow(new_size as i64 - layout.size() as i64);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    /// Running totals `(allocations, bytes)` since process start.
    pub fn snapshot() -> (u64, u64) {
        (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed))
    }

    /// Live-heap high-water mark, bytes, since [`heap_reset_peak`] (or
    /// process start).
    pub fn heap_peak() -> u64 {
        PEAK.load(Ordering::Relaxed).max(0) as u64
    }

    /// Restarts the high-water mark from the current live-heap size, so
    /// the next [`heap_peak`] reading covers only the phase that follows.
    pub fn heap_reset_peak() {
        PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: counting_alloc::CountingAlloc = counting_alloc::CountingAlloc;

/// Prints to stdout, swallowing broken-pipe errors (`lpr-bench ... |
/// head` must not panic).
macro_rules! say {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("pipeline") => pipeline(&args[1..]),
        Some("mda") => mda_cmd(&args[1..]),
        Some("revelation") => revelation_cmd(&args[1..]),
        Some("chaos") => chaos(&args[1..]),
        Some("serve") => serve_soak(&args[1..]),
        Some("corrupt") => corrupt_cmd(&args[1..]),
        Some("compare") => compare_cmd(&args[1..]),
        Some("baseline") => baseline_cmd(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            say!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
lpr-bench — LPR pipeline benchmark harness

USAGE:
  lpr-bench pipeline [--out BENCH_pipeline.json] [--snapshots N] [--cycle N]
                     [--threads N] [--threads-sweep [1,2,4,...]] [--alloc]
                     [--max-campaign-share F] [--scale N]
                     [--probing exhaustive|mda|mda-lite]
                     [--max-probes-per-dst F]
                     [--mem-ceiling-bytes N] [--trace-out trace.json]
                     [--trace-level debug|info|warn|error]
  lpr-bench mda      [--out BENCH_mda.json] [--cycle N] [--hosts N]
                     [--max-probes-per-dst F]
  lpr-bench revelation [--out BENCH_revelation.json] [--cycle N]
                     [--mix explicit:F,implicit:F,invisible:F,opaque:F]
  lpr-bench chaos    [--out BENCH_chaos.json] [--seed N]
                     [--rates 0,0.02,0.05,0.1] [--snapshots N] [--cycle N]
                     [--drift-bound F] [--trace-out trace.json]
                     [--trace-level debug|info|warn|error]
  lpr-bench serve    [--cycles N] [--chaos-rate F] [--seed N] [--threads N]
                     [--out BENCH_serve.json] [--keep-spool]
  lpr-bench corrupt  <in.warts> --out <out.warts> [--rate F] [--seed N]
  lpr-bench compare  <current.json> --against <baseline.json>
                     [--threshold F] [--diff-out DIFF.json]
  lpr-bench baseline <BENCH_pipeline.json> [--out results/BENCH_baseline.json]
  lpr-bench help

`pipeline` generates the standard demo-scale campaign, round-trips it
through the warts codec, runs the full LPR pipeline under lpr-obs
instrumentation, and writes per-stage wall time plus records/sec
throughput as JSON.

`--threads N` runs the pipeline on N worker threads (default 1, the
sequential path). `--threads-sweep` runs every thread count in the
given comma-separated list (default: powers of two up to the machine's
available parallelism), records the speedup curve under
\"thread_sweep\" in the JSON report, and exits non-zero if any thread
count's output diverges from the sequential run. The sweep also
re-generates the campaign at probing thread counts 1, 2, 4 and 8
(\"campaign_sweep\"); every regeneration must be byte-identical to the
sequential campaign, and at the default --cycle/--snapshots shape the
encoded bytes must additionally match a pinned golden fingerprint
captured before the perf rewrite.

`--alloc` attributes allocation counts (calls and requested bytes,
tallied by a counting global allocator) to each stage, written under
\"allocations\" in the report.

`--max-campaign-share F` exits non-zero when GenerateCampaign takes
more than fraction F of the total stage wall time — the CI smoke
signal that campaign generation has not regressed back to dominating
the run.

`--scale N` grows the campaign towards paper scale (N=1 is the default
demo shape; larger N multiplies destinations via a wider transit core
and denser prefixes). At scale 1 the run additionally writes the cycle
as a multi-file warts corpus, builds/loads the per-file record indexes,
and re-runs the pipeline through the out-of-core mmap ingest at thread
counts 1/2/4/8, failing (exit 1) unless every run's PipelineOutput is
byte-identical to the in-memory pipeline over the same corpus (both
with the in-memory and the spilled persistence window). Past scale 1
the run never holds the cycle in memory: each snapshot is generated,
written to the corpus (snapshot 0) or spilled to sorted key files
(later snapshots), and dropped; the pipeline then runs purely
out-of-core, with the same 1/2/4/8 thread identity check against the
single-threaded out-of-core run. Either way the report gains an
\"ingest\" section with traces/sec, bytes/sec, peak resident bytes
(Linux VmHWM, reset before the ingest phase) and the live-heap
high-water mark.

`--probing` selects the campaign's probing strategy: `exhaustive`
(default — every `(vp, dst)` pair, the golden campaign shape), `mda`
or `mda-lite` (the statistical stopping rules, which prune each
`(vp, /24)` host group once further path diversity is ruled out at 95%
confidence). Every run writes a \"probing\" report section with the
strategy and probe-budget tallies (pairs probed/pruned, flows traced,
probe packets sent, probes per destination); `lpr-bench compare` holds
those tallies to strict equality. The golden-fingerprint check only
runs under the exhaustive default. `--max-probes-per-dst F` exits
non-zero when the campaign spends more than F probe packets per
requested destination — the CI tripwire that the stopping rules keep
paying for themselves.

`mda` benchmarks the stopping rules themselves: first the
probes-vs-recall curve (MDA-Lite under a sweep of flow caps against
the exhaustive oracle, per `(vp, dst)` pair — the `fig_mda_recall.csv`
series), then a full-campaign comparison at `--hosts` hosts per
destination /24: exhaustive vs MDA-Lite wall time and probe budgets,
byte-identity of the MDA-Lite campaign across probing thread counts
1/2/4/8, and the IOTP recall of the pruned campaign against the
exhaustive cycle's classified IOTP set. The report lands in `--out`
(default BENCH_mda.json) with a top-level \"passed\": IOTP recall must
reach 0.95, every thread count must agree byte-for-byte, the stopping
rule must actually save probes, and `--max-probes-per-dst` (when
given) must hold.

`revelation` gates the TNT-style tunnel-revelation phase: one cycle is
rendered under `--mix` (a tunnel-visibility mix hiding part of the
MPLS deployment; default explicit:0.4,implicit:0.2,invisible:0.2,\
opaque:0.2), the campaign runs with revelation at probing thread
counts 1/2/4/8 — traces, probe budget and revealed evidence must all
be byte-identical to the sequential run — and the cycle is analysed
twice, plain LPR vs LPR with the revealed evidence applied. The report
lands in `--out` (default BENCH_revelation.json) with a top-level
\"passed\": the IOTP count must rise, the Unclassified share must not
grow, at least one tunnel must actually be revealed, the DPR probe
overhead must be accounted, and every thread count must agree.

`--mem-ceiling-bytes N` exits non-zero when the ingest phase's peak
resident bytes exceed N — the CI guard that out-of-core stays
out-of-core. Skipped (with a warning) when the kernel does not expose
a resettable RSS high-water mark.

`chaos` sweeps seeded fault-injection rates over the same golden
campaign: each rate degrades the traces with an `lpr-chaos`
`FaultPlan`, byte-corrupts the encoded warts stream, decodes it with
the lenient reader, and runs the pipeline with quarantine enabled. The
report records, per rate, the injected faults, skipped/quarantined
tallies, class counts and the class-share drift against the rate-0
baseline. Everything derives from `--seed`, so the JSON is
byte-identical across runs and thread counts — no wall times are
recorded. Exit is non-zero if any thread count 1..8 diverges, the
kept/quarantined tallies fail to reconcile with the decoded traces, or
drift exceeds `--drift-bound` (default 0.5).

`--trace-out` (both subcommands) writes a hierarchical span trace of
the run as Chrome trace_event JSON — load it in chrome://tracing or
Perfetto, or validate it with `lpr trace-check`.

`serve` soaks the `lpr serve` daemon: it starts the daemon against a
temp spool, then drops N cycles of clean campaign files interleaved
with `--chaos-rate` byte-corrupted copies, polling the live endpoint
throughout. Exit is non-zero unless (a) the final snapshot's pipeline
section is byte-identical to the batch pipeline over the clean subset,
(b) every corrupted file lands in `spool/quarantine/` with a structured
reason file, (c) the kept/quarantined tallies reconcile exactly with
the files dropped, and (d) no request ever got a 5xx. The report goes
to `--out` (default BENCH_serve.json); `--keep-spool` leaves the spool
on disk for inspection.

`corrupt` byte-corrupts a warts file with the seeded `lpr-chaos`
corruption walk (the CI smoke helper for exercising the daemon's
quarantine path): `--rate` is the per-record corruption probability
(default 0.1), `--seed` the deterministic seed (default 1).

`compare` diffs two BENCH_pipeline.json reports: per-stage wall time
and allocations must stay under `1 + --threshold` (default 0.5) times
the baseline, and IOTP/LSP/counter tallies must match exactly. Stages
whose baseline wall is 0 (a committed wall-free baseline) skip the
timing check. Exit is non-zero on any regression or count mismatch;
`--diff-out` writes the machine-readable diff.

`baseline` strips the nondeterministic measurements (wall times,
throughput, sweeps, allocations, campaign share) out of a report,
producing the committable form under results/BENCH_baseline.json that
CI compares every run against.";

/// Default sweep: powers of two from 1 up to the machine's available
/// parallelism, always reaching at least 4 so the speedup curve has a
/// multi-threaded point even on small runners.
fn default_sweep() -> Vec<usize> {
    let max = lpr_par::available_threads().max(4);
    let mut ns = vec![1usize];
    while *ns.last().expect("non-empty") * 2 <= max {
        let next = ns.last().expect("non-empty") * 2;
        ns.push(next);
    }
    ns
}

fn parse_sweep(spec: &str) -> Result<Vec<usize>, String> {
    let mut ns: Vec<usize> = Vec::new();
    for part in spec.split(',') {
        let n: usize =
            part.trim().parse().map_err(|e| format!("--threads-sweep `{part}`: {e}"))?;
        if n == 0 {
            return Err("--threads-sweep wants thread counts >= 1".to_string());
        }
        ns.push(n);
    }
    ns.sort_unstable();
    ns.dedup();
    if ns.first() != Some(&1) {
        ns.insert(0, 1); // the sequential reference is always swept
    }
    Ok(ns)
}

/// This process's peak resident set size in bytes (Linux `VmHWM`), or
/// `None` off Linux / when the parse fails.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Resets the kernel's RSS high-water mark (`echo 5 >
/// /proc/self/clear_refs`) so the next [`peak_rss_bytes`] reading
/// covers only the phase that follows. `false` when unsupported.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Satellite self-check for the zero-copy decode of `Unsupported`
/// record bodies: decodes one large unknown-type record with and
/// without `elide_unsupported_bodies`, measuring allocated bytes via
/// the counting allocator. Eliding must remove the body-sized copy —
/// the kept-body pass has to allocate at least half a body more than
/// the elided pass. Returns the JSON verdict and whether it held.
fn unsupported_elide_check() -> (JsonValue, bool) {
    const BODY: usize = 4 << 20;
    let mut bytes = Vec::with_capacity(8 + BODY);
    bytes.extend_from_slice(&0x1205u16.to_be_bytes()); // warts magic
    bytes.extend_from_slice(&0x00F0u16.to_be_bytes()); // unknown type
    bytes.extend_from_slice(&(BODY as u32).to_be_bytes());
    bytes.resize(8 + BODY, 0x5a);

    let decode = |elide: bool| -> u64 {
        let mut reader = warts::WartsStreamReader::new(bytes.as_slice());
        if elide {
            reader = reader.elide_unsupported_bodies();
        }
        let before = counting_alloc::snapshot().1;
        while let Ok(Some(_)) = reader.next_record() {}
        counting_alloc::snapshot().1 - before
    };
    let kept = decode(false);
    let elided = decode(true);
    let ok = kept.saturating_sub(elided) >= BODY as u64 / 2;
    let verdict = JsonValue::Object(vec![
        ("body_bytes".to_string(), JsonValue::Int(BODY as i128)),
        ("kept_alloc_bytes".to_string(), JsonValue::Int(kept as i128)),
        ("elided_alloc_bytes".to_string(), JsonValue::Int(elided as i128)),
        ("ok".to_string(), JsonValue::Bool(ok)),
    ]);
    (verdict, ok)
}

/// Thread counts every out-of-core ingest is verified at; byte-identical
/// `PipelineOutput` across all of them is part of the acceptance bar.
const INGEST_THREADS: [usize; 4] = [1, 2, 4, 8];

/// How many files a corpus cycle is split across: one per ~100K traces,
/// at least 4 so multi-file sharding is always exercised.
fn corpus_file_count(traces: usize) -> usize {
    (traces / 100_000).clamp(4, 64)
}

/// The measurements of one out-of-core ingest phase, rendered under
/// `"ingest"` in the report.
struct IngestStats {
    scale: usize,
    threads: usize,
    corpus_files: u64,
    corpus_bytes: u64,
    corpus_records: u64,
    traces: u64,
    lsps_in: u64,
    wall_us: u64,
    spilled_window: bool,
    matches_all: bool,
    peak_rss: Option<u64>,
    peak_heap: u64,
}

impl IngestStats {
    fn to_json(&self) -> JsonValue {
        JsonValue::Object(vec![
            ("scale".to_string(), JsonValue::Int(self.scale as i128)),
            ("threads".to_string(), JsonValue::Int(self.threads as i128)),
            (
                "threads_checked".to_string(),
                JsonValue::Array(
                    INGEST_THREADS.iter().map(|&n| JsonValue::Int(n as i128)).collect(),
                ),
            ),
            ("corpus_files".to_string(), JsonValue::Int(self.corpus_files as i128)),
            ("corpus_bytes".to_string(), JsonValue::Int(self.corpus_bytes as i128)),
            ("corpus_records".to_string(), JsonValue::Int(self.corpus_records as i128)),
            ("traces".to_string(), JsonValue::Int(self.traces as i128)),
            ("lsps_in".to_string(), JsonValue::Int(self.lsps_in as i128)),
            ("wall_us".to_string(), JsonValue::Int(self.wall_us as i128)),
            (
                "traces_per_s".to_string(),
                lpr_bench::throughput_json(self.wall_us, self.traces),
            ),
            (
                "bytes_per_s".to_string(),
                lpr_bench::throughput_json(self.wall_us, self.corpus_bytes),
            ),
            ("spilled_window".to_string(), JsonValue::Bool(self.spilled_window)),
            ("matches_across_threads".to_string(), JsonValue::Bool(self.matches_all)),
            (
                "peak_resident_bytes".to_string(),
                match self.peak_rss {
                    Some(b) => JsonValue::Int(b as i128),
                    None => JsonValue::Null,
                },
            ),
            ("peak_heap_bytes".to_string(), JsonValue::Int(self.peak_heap as i128)),
        ])
    }

    fn say(&self) {
        say!(
            "out-of-core ingest: {} traces over {} files ({} bytes), {} LSPs in, \
             {} us, {} traces/s, {} bytes/s",
            self.traces,
            self.corpus_files,
            self.corpus_bytes,
            self.lsps_in,
            self.wall_us,
            lpr_bench::throughput_text(self.wall_us, self.traces),
            lpr_bench::throughput_text(self.wall_us, self.corpus_bytes),
        );
        match self.peak_rss {
            Some(b) => {
                say!(
                    "  ingest-phase peak: {b} resident bytes, {} live-heap bytes",
                    self.peak_heap
                );
            }
            None => {
                say!(
                    "  ingest-phase peak: resident bytes unavailable, {} live-heap bytes",
                    self.peak_heap
                );
            }
        }
        say!(
            "  thread identity {:?}: {}",
            INGEST_THREADS,
            if self.matches_all { "output identical" } else { "OUTPUT DIVERGED" },
        );
    }
}

/// Applies `--mem-ceiling-bytes` to an ingest phase's peak RSS.
/// Returns `true` when the ceiling was breached (the run must fail).
fn ceiling_breached(stats: &IngestStats, ceiling: Option<u64>) -> bool {
    let Some(ceiling) = ceiling else { return false };
    match stats.peak_rss {
        Some(peak) if peak > ceiling => {
            eprintln!(
                "FAIL: ingest-phase peak resident bytes {peak} exceed the \
                 --mem-ceiling-bytes {ceiling}"
            );
            true
        }
        Some(_) => false,
        None => {
            eprintln!(
                "warning: --mem-ceiling-bytes skipped: no resettable RSS \
                 high-water mark on this kernel"
            );
            false
        }
    }
}

fn pipeline(args: &[String]) -> i32 {
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut snapshots = 3usize;
    let mut cycle = 40usize;
    let mut threads = 1usize;
    let mut sweep: Option<Vec<usize>> = None;
    let mut alloc = false;
    let mut max_campaign_share: Option<f64> = None;
    let mut scale = 1usize;
    let mut mem_ceiling: Option<u64> = None;
    let mut probing = netsim::ProbingStrategy::Exhaustive;
    let mut max_probes_per_dst: Option<f64> = None;
    let mut trace_out: Option<String> = None;
    let mut trace_level = lpr_obs::Level::Info;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--out" => want(&mut it, "--out").map(|v| out_path = v),
            "--snapshots" => want(&mut it, "--snapshots").and_then(|v| {
                v.parse().map(|n| snapshots = n).map_err(|e| format!("--snapshots: {e}"))
            }),
            "--cycle" => want(&mut it, "--cycle").and_then(|v| {
                v.parse().map(|n| cycle = n).map_err(|e| format!("--cycle: {e}"))
            }),
            "--threads" => want(&mut it, "--threads").and_then(|v| {
                v.parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))
                    .and_then(|n| {
                        if n == 0 {
                            Err("--threads wants at least 1".to_string())
                        } else {
                            threads = n;
                            Ok(())
                        }
                    })
            }),
            "--threads-sweep" => {
                // Optional value: a comma-separated thread-count list.
                let explicit = it
                    .clone()
                    .next()
                    .filter(|v| v.chars().next().is_some_and(|c| c.is_ascii_digit()));
                if explicit.is_some() {
                    it.next();
                }
                match explicit {
                    Some(spec) => parse_sweep(spec).map(|ns| sweep = Some(ns)),
                    None => {
                        sweep = Some(default_sweep());
                        Ok(())
                    }
                }
            }
            "--alloc" => {
                alloc = true;
                Ok(())
            }
            "--max-campaign-share" => {
                want(&mut it, "--max-campaign-share").and_then(|v| {
                    v.parse::<f64>()
                        .map_err(|e| format!("--max-campaign-share: {e}"))
                        .and_then(|f| {
                            if f > 0.0 && f <= 1.0 {
                                max_campaign_share = Some(f);
                                Ok(())
                            } else {
                                Err("--max-campaign-share wants a fraction in (0, 1]".to_string())
                            }
                        })
                })
            }
            "--scale" => want(&mut it, "--scale").and_then(|v| {
                v.parse::<usize>().map_err(|e| format!("--scale: {e}")).and_then(|n| {
                    if n == 0 {
                        Err("--scale wants at least 1".to_string())
                    } else {
                        scale = n;
                        Ok(())
                    }
                })
            }),
            "--mem-ceiling-bytes" => want(&mut it, "--mem-ceiling-bytes").and_then(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("--mem-ceiling-bytes: {e}"))
                    .map(|n| mem_ceiling = Some(n))
            }),
            "--probing" => want(&mut it, "--probing").and_then(|v| {
                netsim::ProbingStrategy::parse(&v).map(|s| probing = s).ok_or_else(|| {
                    format!("--probing `{v}` is not a strategy (exhaustive|mda|mda-lite)")
                })
            }),
            "--max-probes-per-dst" => want(&mut it, "--max-probes-per-dst").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|e| format!("--max-probes-per-dst: {e}"))
                    .and_then(|f| {
                        if f > 0.0 {
                            max_probes_per_dst = Some(f);
                            Ok(())
                        } else {
                            Err("--max-probes-per-dst wants a positive number".to_string())
                        }
                    })
            }),
            "--trace-out" => want(&mut it, "--trace-out").map(|v| trace_out = Some(v)),
            "--trace-level" => want(&mut it, "--trace-level").and_then(|v| {
                lpr_obs::Level::parse(&v)
                    .map(|l| trace_level = l)
                    .ok_or_else(|| format!("--trace-level `{v}` is not a level"))
            }),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    if snapshots == 0 {
        eprintln!("--snapshots must be at least 1");
        return 2;
    }
    if scale > 1 {
        if sweep.is_some() {
            eprintln!("--threads-sweep is demo-scale only; drop it or use --scale 1");
            return 2;
        }
        return pipeline_scaled(ScaledParams {
            out_path,
            snapshots,
            cycle,
            threads,
            scale,
            mem_ceiling,
            max_campaign_share,
            probing,
            max_probes_per_dst,
            trace_out,
            trace_level,
        });
    }

    let tracer = match &trace_out {
        Some(_) => lpr_obs::Tracer::new(trace_level),
        None => lpr_obs::Tracer::disabled(),
    };
    let recorder = Recorder::new("lpr-bench pipeline").with_tracer(tracer.clone());
    let run_span = tracer.span("run:bench-pipeline");
    tracer.set_default_parent(run_span.context());
    let mut diverged = false;
    // Per-stage allocation deltas: (stage, allocations, bytes).
    let mut alloc_rows: Vec<(&'static str, u64, u64)> = Vec::new();
    netsim::igp::spf_cache_reset();

    // Demo-scale campaign: the longitudinal world at one cycle, with
    // enough extra snapshots to feed the Persistence filter.
    let alloc0 = counting_alloc::snapshot();
    let campaign_span = tracer.span("stage:GenerateCampaign");
    let sw = lpr_obs::Stopwatch::start();
    let world = ark_dataset::standard_world();
    let opts = ark_dataset::CampaignOptions { snapshots, probing, ..Default::default() };
    let data = ark_dataset::generate_cycle(&world, cycle, &opts);
    let traces = &data.snapshots[0];
    drop(campaign_span);
    recorder.record_stage("GenerateCampaign", sw.elapsed_us(), 0, traces.len() as u64);
    let alloc1 = counting_alloc::snapshot();
    alloc_rows.push(("GenerateCampaign", alloc1.0 - alloc0.0, alloc1.1 - alloc0.1));

    // Golden self-check: at the default campaign shape, the encoded
    // bytes must match the fingerprint captured before the dense-SPF /
    // probe-ladder / parallel-probing rewrite. Any drift means the
    // optimisations changed observable output and the run fails.
    let golden_checked = cycle == 40
        && snapshots == 3
        && sweep.is_some()
        && probing == netsim::ProbingStrategy::Exhaustive;
    let mut golden_matches = true;
    if golden_checked {
        let fp = campaign_fingerprint(&data.snapshots);
        golden_matches = fp == GOLDEN_CAMPAIGN_FNV;
        if !golden_matches {
            eprintln!(
                "FAIL: campaign fingerprint {fp:#018x} != pinned golden \
                 {GOLDEN_CAMPAIGN_FNV:#018x}"
            );
            diverged = true;
        }
    }

    // Round-trip through the warts codec so ingest throughput reflects
    // real record decoding, tallied by the stream reader itself.
    let alloc0 = counting_alloc::snapshot();
    let encode_span = tracer.span("stage:WartsEncode");
    let sw = lpr_obs::Stopwatch::start();
    let mut writer = warts::WartsWriter::new();
    let list = writer.list(1, "bench");
    let cyc = writer.cycle_start(list, 1, 0);
    for t in traces {
        writer.trace(&warts::trace_to_record(t, list, cyc)).expect("encode");
    }
    writer.cycle_stop(cyc, 1);
    let bytes = writer.into_bytes();
    drop(encode_span);
    recorder.record_stage(
        "WartsEncode",
        sw.elapsed_us(),
        traces.len() as u64,
        bytes.len() as u64,
    );
    let alloc1 = counting_alloc::snapshot();
    alloc_rows.push(("WartsEncode", alloc1.0 - alloc0.0, alloc1.1 - alloc0.1));

    let alloc0 = counting_alloc::snapshot();
    let decode_span = tracer.span("stage:WartsDecode");
    let sw = lpr_obs::Stopwatch::start();
    let metrics = warts::StreamMetrics::from_recorder(&recorder);
    let mut decoded = Vec::new();
    let mut reader = warts::WartsStreamReader::new(bytes.as_slice()).with_metrics(metrics);
    loop {
        match reader.next_record() {
            Ok(Some(warts::Record::Trace(t))) => {
                if let Ok(Some(core)) = warts::trace_to_core(&t) {
                    decoded.push(core);
                }
            }
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => {
                eprintln!("warts decode failed: {e}");
                return 1;
            }
        }
    }
    drop(decode_span);
    recorder.record_stage(
        "WartsDecode",
        sw.elapsed_us(),
        bytes.len() as u64,
        decoded.len() as u64,
    );
    let alloc1 = counting_alloc::snapshot();
    alloc_rows.push(("WartsDecode", alloc1.0 - alloc0.0, alloc1.1 - alloc0.1));

    // The pipeline proper: the timed region covers the Persistence
    // future-key computation plus the full filter/classify run — every
    // stage the `--threads` knob shards.
    let run_with = |threads: usize, rec: Option<&Recorder>| {
        let sw = lpr_obs::Stopwatch::start();
        let future: Vec<_> = data.snapshots[1..]
            .iter()
            .map(|t| Pipeline::snapshot_keys_par(t, threads))
            .collect();
        let pipeline = Pipeline::new(FilterConfig {
            persistence_window: future.len(),
            ..Default::default()
        });
        let out = pipeline.run_par_recorded(&decoded, world.rib(), &future, threads, rec);
        (out, sw.elapsed_us().max(1))
    };

    // Sweep mode: time every thread count (best of SWEEP_REPS), verify
    // each output is byte-identical to the sequential run's.
    const SWEEP_REPS: usize = 3;
    let mut sweep_rows: Vec<(usize, u64, bool)> = Vec::new();
    let mut seq_out = None;
    if let Some(ns) = &sweep {
        let (reference, mut seq_wall) = run_with(1, None);
        for _ in 1..SWEEP_REPS {
            seq_wall = seq_wall.min(run_with(1, None).1);
        }
        for &n in ns {
            if n == 1 {
                sweep_rows.push((1, seq_wall, true));
                continue;
            }
            let (out, mut wall) = run_with(n, None);
            for _ in 1..SWEEP_REPS {
                wall = wall.min(run_with(n, None).1);
            }
            let matches = out == reference;
            if !matches {
                eprintln!("FAIL: --threads {n} output diverges from the sequential run");
                diverged = true;
            }
            sweep_rows.push((n, wall, matches));
        }
        threads = ns.last().copied().unwrap_or(1);
        seq_out = Some(reference);
    }

    // Campaign thread-sweep: regenerate the cycle at each probing
    // thread count. The shard-order merge in `campaign_par` makes the
    // traces byte-identical for any count — verified here against the
    // sequential campaign generated above.
    let mut campaign_rows: Vec<(usize, u64, bool)> = Vec::new();
    if sweep.is_some() {
        for n in CAMPAIGN_THREADS {
            let copts = ark_dataset::CampaignOptions {
                snapshots,
                threads: n,
                probing,
                ..Default::default()
            };
            let sw = lpr_obs::Stopwatch::start();
            let d = ark_dataset::generate_cycle(&world, cycle, &copts);
            let wall = sw.elapsed_us().max(1);
            let matches = d.snapshots == data.snapshots;
            if !matches {
                eprintln!(
                    "FAIL: campaign at {n} probing thread(s) diverges from the \
                     sequential campaign"
                );
                diverged = true;
            }
            campaign_rows.push((n, wall, matches));
        }
    }

    // The instrumented run (at the sweep's top thread count, or
    // `--threads`): its telemetry is what lands in the report.
    let alloc0 = counting_alloc::snapshot();
    let (out, _) = run_with(threads, Some(&recorder));
    let alloc1 = counting_alloc::snapshot();
    alloc_rows.push(("Pipeline", alloc1.0 - alloc0.0, alloc1.1 - alloc0.1));
    if let Some(reference) = &seq_out {
        if out != *reference {
            eprintln!("FAIL: instrumented --threads {threads} output diverges");
            diverged = true;
        }
    }

    // Out-of-core corpus stages + byte-identity self-check: the same
    // cycle through mmap'd multi-file ingest must reproduce the
    // in-memory pipeline exactly, at every thread count, with both
    // persistence-window representations.
    let (ooc_stats, ooc_diverged) = match out_of_core_demo(
        &recorder,
        &tracer,
        &world,
        &data.snapshots,
        &decoded,
        threads,
        &mut alloc_rows,
    ) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    if ooc_diverged {
        diverged = true;
    }

    // Zero-copy Unsupported decode: eliding bodies must remove the
    // body-sized allocation (measured after the peak readings above so
    // the check's own buffers stay out of the ingest-phase peaks).
    let (elide_verdict, elide_ok) = unsupported_elide_check();
    if !elide_ok {
        eprintln!(
            "FAIL: eliding Unsupported bodies did not remove the body-sized \
             decode allocation"
        );
        diverged = true;
    }

    let telemetry = recorder.finish();

    // CI perf tripwire: GenerateCampaign's share of total stage time.
    // Per-worker rows ("worker0/Ingest", ...) re-count time already in
    // their parent stage, so only top-level stages enter the sum.
    let campaign_share = {
        let total: u64 = telemetry
            .stages
            .iter()
            .filter(|s| !s.name.contains('/'))
            .map(|s| s.wall_us)
            .sum();
        let campaign = telemetry
            .stages
            .iter()
            .find(|s| s.name == "GenerateCampaign")
            .map_or(0, |s| s.wall_us);
        campaign as f64 / total.max(1) as f64
    };
    let mut share_exceeded = false;
    if let Some(ceiling) = max_campaign_share {
        share_exceeded = campaign_share > ceiling;
        if share_exceeded {
            eprintln!(
                "FAIL: GenerateCampaign takes {:.1}% of stage wall time \
                 (ceiling {:.1}%)",
                campaign_share * 100.0,
                ceiling * 100.0,
            );
        }
    }

    let mem_breached = ceiling_breached(&ooc_stats, mem_ceiling);
    let probes_exceeded = probe_ceiling_breached(&data.budget, max_probes_per_dst);

    let extras = ReportExtras {
        sweep_rows: &sweep_rows,
        campaign_rows: &campaign_rows,
        campaign_traces: traces.len() as u64,
        campaign_share,
        golden: golden_checked.then_some(golden_matches),
        alloc_rows: alloc.then_some(&alloc_rows[..]),
        spf_cache: netsim::Internet::spf_cache_stats(),
        ingest: Some(ooc_stats.to_json()),
        probing: Some(probing_json(probing, &data.budget)),
        unsupported_elide: Some(elide_verdict),
    };
    let report = render_report(&telemetry, &out, &extras);
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("{out_path}: {e}");
        return 1;
    }

    say!(
        "{} traces, {} LSPs in, {} IOTPs classified, {} us total, {} thread(s)",
        decoded.len(),
        out.report.input,
        out.iotps.len(),
        telemetry.total_wall_us,
        telemetry.threads,
    );
    for s in &telemetry.stages {
        let rate = lpr_bench::throughput_text(s.wall_us, s.input);
        say!(
            "  {:<18} {:>8} -> {:<8} {:>10} us  {:>12} items/s",
            s.name,
            s.input,
            s.output,
            s.wall_us,
            rate,
        );
    }
    say!(
        "GenerateCampaign share of stage wall time: {:.1}%",
        campaign_share * 100.0
    );
    if alloc {
        say!("allocations by stage:");
        for (name, allocs, bytes) in &alloc_rows {
            say!("  {:<18} {:>12} allocs  {:>14} bytes", name, allocs, bytes);
        }
    }
    let avail = lpr_par::available_threads();
    if !sweep_rows.is_empty() {
        let seq_wall = sweep_rows[0].1;
        say!("thread sweep ({} traces/run, best of {SWEEP_REPS}):", decoded.len());
        for (n, wall, matches) in &sweep_rows {
            say!(
                "  threads={:<3} {:>10} us  {:>12} traces/s  speedup {:>5.2}x  {}",
                n,
                wall,
                lpr_bench::throughput_text(*wall, decoded.len() as u64),
                lpr_bench::speedup(seq_wall, *wall),
                if *matches { "output identical" } else { "OUTPUT DIVERGED" },
            );
        }
        // A regression signal, not an error: parallel slower than
        // sequential is expected on a 1-core runner, suspicious on a
        // multi-core one.
        if avail > 1 {
            for &(n, wall, _) in &sweep_rows {
                if n > 1 && n <= avail && wall > seq_wall {
                    say!(
                        "warning: pipeline at {n} threads is slower than sequential \
                         ({wall} us vs {seq_wall} us) on a {avail}-core host"
                    );
                }
            }
        }
    }
    if !campaign_rows.is_empty() {
        let seq_wall = campaign_rows[0].1;
        say!("campaign sweep ({} traces x {snapshots} snapshots):", traces.len());
        for &(n, wall, matches) in &campaign_rows {
            say!(
                "  threads={:<3} {:>10} us  speedup {:>5.2}x  {}",
                n,
                wall,
                lpr_bench::speedup(seq_wall, wall),
                if matches { "bytes identical" } else { "BYTES DIVERGED" },
            );
        }
        if avail > 1 {
            for &(n, wall, _) in &campaign_rows {
                if n > 1 && n <= avail && wall > seq_wall {
                    say!(
                        "warning: campaign at {n} probing threads is slower than \
                         sequential ({wall} us vs {seq_wall} us) on a {avail}-core host"
                    );
                }
            }
        }
    }
    if golden_checked {
        say!(
            "golden campaign fingerprint: {}",
            if golden_matches { "match" } else { "MISMATCH" }
        );
    }
    say_budget(probing, &data.budget);
    ooc_stats.say();
    say!(
        "unsupported-body elide: {}",
        if elide_ok { "zero-copy (body-sized allocation removed)" } else { "COPY SURVIVED" }
    );
    let (hits, misses) = extras.spf_cache;
    say!(
        "spf cache: {hits} hits / {misses} misses ({:.0}% hit rate)",
        100.0 * hits as f64 / (hits + misses).max(1) as f64
    );
    say!("wrote {out_path}");
    tracer.set_default_parent(lpr_obs::SpanContext::ROOT);
    drop(run_span);
    if let Some(path) = &trace_out {
        if !write_trace(&tracer, path) {
            return 1;
        }
    }
    if diverged {
        eprintln!("determinism self-check failed");
        return 1;
    }
    if share_exceeded || mem_breached || probes_exceeded {
        return 1;
    }
    0
}

/// The `mda` subcommand: benchmarks the stochastic prober against the
/// exhaustive oracle — the per-pair probes-vs-recall curve, then a
/// full-campaign cost/recall comparison with the thread-identity
/// self-check (see USAGE for the pass bar).
fn mda_cmd(args: &[String]) -> i32 {
    use std::collections::BTreeSet;

    let mut out_path = "BENCH_mda.json".to_string();
    let mut cycle = 40usize;
    let mut hosts = 24usize;
    let mut max_probes_per_dst: Option<f64> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--out" => want(&mut it, "--out").map(|v| out_path = v),
            "--cycle" => want(&mut it, "--cycle").and_then(|v| {
                v.parse().map(|n| cycle = n).map_err(|e| format!("--cycle: {e}"))
            }),
            "--hosts" => want(&mut it, "--hosts").and_then(|v| {
                v.parse::<usize>().map_err(|e| format!("--hosts: {e}")).and_then(|n| {
                    if n == 0 {
                        Err("--hosts wants at least 1".to_string())
                    } else {
                        hosts = n;
                        Ok(())
                    }
                })
            }),
            "--max-probes-per-dst" => want(&mut it, "--max-probes-per-dst").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|e| format!("--max-probes-per-dst: {e}"))
                    .and_then(|f| {
                        if f > 0.0 {
                            max_probes_per_dst = Some(f);
                            Ok(())
                        } else {
                            Err("--max-probes-per-dst wants a positive number".to_string())
                        }
                    })
            }),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }

    let world = ark_dataset::standard_world();

    // Phase 1: the per-(vp, dst) recall curve — MDA-Lite flow caps vs
    // the exhaustive oracle, the series behind fig_mda_recall.csv.
    say!(
        "recall curve: MDA-Lite caps {:?} vs the {}-flow exhaustive oracle …",
        experiments::mda_recall::CAPS,
        experiments::mda_recall::ORACLE_FLOWS,
    );
    let points = experiments::mda_recall::run(&world, cycle);
    for p in &points {
        say!(
            "  {:<10} cap={:<3} {:>8.1} probes/dst  {:>6.2} flows/dst  recall {:.3}",
            p.mode,
            p.max_flows,
            p.probes_per_dst,
            p.flows_per_dst,
            p.path_recall,
        );
    }

    // Phase 2: whole campaigns at a host density where the /24 host
    // groups give the stopping rule real flow variation to prune.
    say!("campaign comparison at {hosts} hosts/prefix, cycle {cycle} …");
    let iotp_keys = |data: &ark_dataset::campaign::CycleData| -> BTreeSet<lpr_core::lsp::IotpKey> {
        ark_dataset::campaign::analyze_cycle(&world, data, 2)
            .output
            .iotps
            .iter()
            .map(|(iotp, _)| iotp.key)
            .collect()
    };
    let generate = |probing: netsim::ProbingStrategy, threads: usize| {
        let opts = ark_dataset::CampaignOptions {
            hosts_per_prefix: hosts,
            probing,
            threads,
            ..Default::default()
        };
        let sw = lpr_obs::Stopwatch::start();
        let data = ark_dataset::generate_cycle(&world, cycle, &opts);
        (data, sw.elapsed_us().max(1))
    };

    // The exhaustive oracle is distilled to its IOTP set, budget and
    // trace count right away: at most one cycle's traces stay resident
    // at a time, so no later wall pays page pressure for data a
    // previous run only kept around to compare against.
    let (exhaustive, ex_wall) = generate(netsim::ProbingStrategy::Exhaustive, 1);
    let ex_traces = exhaustive.snapshots.iter().map(Vec::len).sum::<usize>();
    let ex_budget = exhaustive.budget;
    say!("  exhaustive: {:>10} us  {ex_traces} traces", ex_wall);
    say_budget(netsim::ProbingStrategy::Exhaustive, &ex_budget);
    let ex_iotps = iotp_keys(&exhaustive);
    drop(exhaustive);

    // MDA-Lite at every campaign thread count; the sequential run is
    // the reference the others must reproduce byte-for-byte, checked
    // through the warts-encoded campaign fingerprint plus the exact
    // budget so each run's traces can be dropped immediately.
    let mut lite_ref: Option<(u64, netsim::ProbeBudget)> = None;
    let mut lite_wall = 0u64;
    let mut lite_traces = 0usize;
    let mut lite_iotps = BTreeSet::new();
    let mut matches_all = true;
    let mut sweep_rows: Vec<(usize, u64, bool)> = Vec::new();
    for &n in &CAMPAIGN_THREADS {
        let (d, wall) = generate(netsim::ProbingStrategy::MdaLite, n);
        let fp = campaign_fingerprint(&d.snapshots);
        let matches = match lite_ref {
            None => true,
            Some((ref_fp, ref_budget)) => fp == ref_fp && d.budget == ref_budget,
        };
        if !matches {
            eprintln!(
                "FAIL: MDA-Lite campaign at {n} probing thread(s) diverges from \
                 the sequential campaign"
            );
            matches_all = false;
        }
        sweep_rows.push((n, wall, matches));
        say!(
            "  mda-lite @{n} threads: {:>10} us  {}",
            wall,
            if matches { "bytes identical" } else { "BYTES DIVERGED" },
        );
        if lite_ref.is_none() {
            lite_wall = wall;
            lite_traces = d.snapshots.iter().map(Vec::len).sum::<usize>();
            lite_iotps = iotp_keys(&d);
            lite_ref = Some((fp, d.budget));
        }
    }
    let (_, lite_budget) = lite_ref.expect("CAMPAIGN_THREADS is non-empty");
    say_budget(netsim::ProbingStrategy::MdaLite, &lite_budget);

    // Transit-diversity recall: the classified IOTP set of the pruned
    // campaign against the exhaustive cycle's.
    let recovered = ex_iotps.intersection(&lite_iotps).count();
    let iotp_recall = recovered as f64 / ex_iotps.len().max(1) as f64;
    let probe_reduction =
        1.0 - lite_budget.probes_sent as f64 / ex_budget.probes_sent.max(1) as f64;
    let tripwire_ok = !probe_ceiling_breached(&lite_budget, max_probes_per_dst);
    say!(
        "  IOTP recall {recovered}/{} = {iotp_recall:.3}; probes {} -> {} \
         ({:.1}% saved); campaign speedup {:.2}x",
        ex_iotps.len(),
        ex_budget.probes_sent,
        lite_budget.probes_sent,
        probe_reduction * 100.0,
        lpr_bench::speedup(ex_wall, lite_wall),
    );

    let passed =
        iotp_recall >= 0.95 && matches_all && probe_reduction > 0.0 && tripwire_ok;
    let curve = JsonValue::Array(
        points
            .iter()
            .map(|p| {
                JsonValue::Object(vec![
                    ("mode".to_string(), JsonValue::Str(p.mode.to_string())),
                    ("max_flows".to_string(), JsonValue::Int(p.max_flows as i128)),
                    ("probes_per_dst".to_string(), JsonValue::Float(p.probes_per_dst)),
                    ("flows_per_dst".to_string(), JsonValue::Float(p.flows_per_dst)),
                    ("path_recall".to_string(), JsonValue::Float(p.path_recall)),
                ])
            })
            .collect(),
    );
    let campaign_side = |wall: u64,
                         strategy: netsim::ProbingStrategy,
                         budget: &netsim::ProbeBudget,
                         iotps: usize| {
        JsonValue::Object(vec![
            ("wall_us".to_string(), JsonValue::Int(wall as i128)),
            ("iotps".to_string(), JsonValue::Int(iotps as i128)),
            ("budget".to_string(), probing_json(strategy, budget)),
        ])
    };
    let report = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::Str("mda".to_string())),
        ("cycle".to_string(), JsonValue::Int(cycle as i128)),
        ("hosts_per_prefix".to_string(), JsonValue::Int(hosts as i128)),
        ("recall_curve".to_string(), curve),
        (
            "campaign".to_string(),
            JsonValue::Object(vec![
                (
                    "exhaustive".to_string(),
                    campaign_side(
                        ex_wall,
                        netsim::ProbingStrategy::Exhaustive,
                        &ex_budget,
                        ex_iotps.len(),
                    ),
                ),
                (
                    "mda_lite".to_string(),
                    campaign_side(
                        lite_wall,
                        netsim::ProbingStrategy::MdaLite,
                        &lite_budget,
                        lite_iotps.len(),
                    ),
                ),
                ("thread_sweep".to_string(), sweep_json(&sweep_rows, lite_traces as u64)),
                ("iotp_recall".to_string(), JsonValue::Float(iotp_recall)),
                ("probe_reduction".to_string(), JsonValue::Float(probe_reduction)),
                (
                    "speedup".to_string(),
                    JsonValue::Float(lpr_bench::speedup(ex_wall, lite_wall)),
                ),
                ("matches_across_threads".to_string(), JsonValue::Bool(matches_all)),
            ]),
        ),
        (
            "tripwire".to_string(),
            JsonValue::Object(vec![
                (
                    "max_probes_per_dst".to_string(),
                    match max_probes_per_dst {
                        Some(f) => JsonValue::Float(f),
                        None => JsonValue::Null,
                    },
                ),
                (
                    "probes_per_dst".to_string(),
                    JsonValue::Float(lite_budget.probes_per_pair()),
                ),
                ("ok".to_string(), JsonValue::Bool(tripwire_ok)),
            ]),
        ),
        ("passed".to_string(), JsonValue::Bool(passed)),
    ])
    .render_pretty();
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("{out_path}: {e}");
        return 1;
    }
    say!("wrote {out_path}");
    if passed {
        0
    } else {
        eprintln!("FAIL: the MDA acceptance bar was not met (see {out_path})");
        1
    }
}

/// `lpr-bench revelation`: the A/B gate for the TNT-style revelation
/// phase. Renders one cycle under a tunnel-visibility mix that hides
/// part of the MPLS deployment, runs the campaign with revelation at
/// probing thread counts 1/2/4/8 (byte-identity required), and
/// analyses the cycle twice — plain LPR vs LPR plus revealed evidence.
/// Passes when revelation recovers diversity (IOTP count rises, the
/// Unclassified share does not grow), at least one tunnel was actually
/// revealed, the probe overhead is accounted, and every thread count
/// reproduced the sequential run byte-for-byte.
fn revelation_cmd(args: &[String]) -> i32 {
    let mut out_path = "BENCH_revelation.json".to_string();
    let mut cycle = 40usize;
    let mut mix = netsim::VisibilityMix {
        explicit: 0.4,
        implicit: 0.2,
        invisible: 0.2,
        opaque: 0.2,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--out" => want(&mut it, "--out").map(|v| out_path = v),
            "--cycle" => want(&mut it, "--cycle").and_then(|v| {
                v.parse().map(|n| cycle = n).map_err(|e| format!("--cycle: {e}"))
            }),
            "--mix" => want(&mut it, "--mix").and_then(|v| {
                netsim::VisibilityMix::parse(&v)
                    .map(|m| mix = m)
                    .ok_or_else(|| format!("--mix: cannot parse `{v}`"))
            }),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }

    let world = ark_dataset::standard_world();
    let reveal_opts = netsim::RevelationOptions::default();
    let generate = |threads: usize| {
        let opts = ark_dataset::CampaignOptions {
            visibility: Some(mix),
            threads,
            ..Default::default()
        };
        let sw = lpr_obs::Stopwatch::start();
        let out =
            ark_dataset::generate_cycle_with_revelation(&world, cycle, &opts, &reveal_opts);
        (out, sw.elapsed_us().max(1))
    };

    say!("revelation campaign: cycle {cycle}, mix {} …", mix.render());
    let ((data, evidence), seq_wall) = generate(1);
    let ref_fp = campaign_fingerprint(&data.snapshots);
    let traces = data.snapshots.iter().map(Vec::len).sum::<usize>();
    say!("  sequential: {seq_wall:>10} us  {traces} traces  {} candidates", evidence.len());

    // Thread sweep: traces, budget and evidence must all reproduce the
    // sequential run exactly at every probing thread count.
    let mut matches_all = true;
    let mut sweep_rows: Vec<(usize, u64, bool)> = vec![(1, seq_wall, true)];
    for &n in &CAMPAIGN_THREADS[1..] {
        let ((d, ev), wall) = generate(n);
        let matches = campaign_fingerprint(&d.snapshots) == ref_fp
            && d.budget == data.budget
            && ev == evidence;
        if !matches {
            eprintln!(
                "FAIL: revelation campaign at {n} probing thread(s) diverges from \
                 the sequential campaign"
            );
            matches_all = false;
        }
        sweep_rows.push((n, wall, matches));
        say!(
            "  revelation @{n} threads: {:>10} us  {}",
            wall,
            if matches { "bytes identical" } else { "BYTES DIVERGED" },
        );
    }

    // A/B: the same traces analysed without and with the evidence.
    let base = ark_dataset::analyze_cycle(&world, &data, 2);
    let revealed = ark_dataset::analyze_cycle_revealed(&world, &data, 2, &evidence);
    let base_counts = base.output.class_counts();
    let rev_counts = revealed.output.class_counts();
    let base_share =
        base_counts.unclassified as f64 / base_counts.total().max(1) as f64;
    let rev_share = rev_counts.unclassified as f64 / rev_counts.total().max(1) as f64;
    let revealed_tunnels = evidence
        .iter()
        .filter(|e| e.status == lpr_core::reveal::RevelationStatus::Revealed)
        .count() as u64;
    let base_probes = (data.budget.probes_sent - data.budget.revelation_probes).max(1);
    let overhead = data.budget.revelation_probes as f64 / base_probes as f64;
    say!(
        "  A/B: IOTPs {} -> {}; unclassified share {:.3} -> {:.3}; \
         {} of {} candidates revealed; {} DPR probes ({:.1}% overhead)",
        base_counts.total(),
        rev_counts.total(),
        base_share,
        rev_share,
        revealed_tunnels,
        data.budget.revelation_triggers,
        data.budget.revelation_probes,
        overhead * 100.0,
    );

    let diversity_recovered =
        rev_counts.total() > base_counts.total() && rev_share <= base_share;
    let passed = diversity_recovered
        && revealed_tunnels > 0
        && data.budget.revelation_probes > 0
        && matches_all;

    let side = |counts: &lpr_core::pipeline::ClassCounts| {
        JsonValue::Object(vec![
            ("iotps".to_string(), JsonValue::Int(counts.total() as i128)),
            ("mono_lsp".to_string(), JsonValue::Int(counts.mono_lsp as i128)),
            ("multi_fec".to_string(), JsonValue::Int(counts.multi_fec as i128)),
            ("mono_fec".to_string(), JsonValue::Int(counts.mono_fec() as i128)),
            ("unclassified".to_string(), JsonValue::Int(counts.unclassified as i128)),
        ])
    };
    let report = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::Str("revelation".to_string())),
        ("cycle".to_string(), JsonValue::Int(cycle as i128)),
        ("mix".to_string(), JsonValue::Str(mix.render())),
        ("traces".to_string(), JsonValue::Int(traces as i128)),
        ("base".to_string(), side(&base_counts)),
        ("revealed".to_string(), side(&rev_counts)),
        (
            "revelation".to_string(),
            JsonValue::Object(vec![
                (
                    "triggers".to_string(),
                    JsonValue::Int(data.budget.revelation_triggers as i128),
                ),
                ("revealed".to_string(), JsonValue::Int(revealed_tunnels as i128)),
                (
                    "probes".to_string(),
                    JsonValue::Int(data.budget.revelation_probes as i128),
                ),
                ("probe_overhead".to_string(), JsonValue::Float(overhead)),
            ]),
        ),
        ("thread_sweep".to_string(), sweep_json(&sweep_rows, traces as u64)),
        ("matches_across_threads".to_string(), JsonValue::Bool(matches_all)),
        ("diversity_recovered".to_string(), JsonValue::Bool(diversity_recovered)),
        ("passed".to_string(), JsonValue::Bool(passed)),
    ])
    .render_pretty();
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("{out_path}: {e}");
        return 1;
    }
    say!("wrote {out_path}");
    if passed {
        0
    } else {
        eprintln!("FAIL: the revelation acceptance bar was not met (see {out_path})");
        1
    }
}

/// The demo-scale out-of-core leg of `lpr-bench pipeline`: writes the
/// decoded cycle as a multi-file corpus, indexes it (cold, then cached),
/// spills the persistence window, and verifies that the out-of-core
/// pipeline reproduces the in-memory pipeline byte-for-byte at every
/// [`INGEST_THREADS`] count — with the in-memory window — and at
/// `threads` with the spilled window (the instrumented, measured run).
/// Returns the phase's measurements and whether anything diverged.
#[allow(clippy::too_many_arguments)]
fn out_of_core_demo(
    recorder: &Recorder,
    tracer: &lpr_obs::Tracer,
    world: &ark_dataset::World,
    snapshots: &[Vec<lpr_core::trace::Trace>],
    decoded: &[lpr_core::trace::Trace],
    threads: usize,
    alloc_rows: &mut Vec<(&'static str, u64, u64)>,
) -> Result<(IngestStats, bool), String> {
    use lpr_core::pipeline::PersistenceWindow;
    use lpr_core::spill::KeySpiller;

    let tmp = std::env::temp_dir().join(format!("lpr-bench-corpus-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let mut diverged = false;

    let alloc0 = counting_alloc::snapshot();
    let span = tracer.span("stage:CorpusWrite");
    let sw = lpr_obs::Stopwatch::start();
    let paths =
        lpr_corpus::write_corpus_files(&tmp, "bench", decoded, corpus_file_count(decoded.len()))
            .map_err(|e| format!("corpus write: {e}"))?;
    drop(span);
    let written: u64 =
        paths.iter().filter_map(|p| std::fs::metadata(p).ok()).map(|m| m.len()).sum();
    recorder.record_stage("CorpusWrite", sw.elapsed_us(), decoded.len() as u64, written);
    let alloc1 = counting_alloc::snapshot();
    alloc_rows.push(("CorpusWrite", alloc1.0 - alloc0.0, alloc1.1 - alloc0.1));

    // Open twice: the first open builds and caches every `.lpridx`, the
    // second must hit all of them — both land in the corpus.* counters,
    // so a cache-staleness regression shows up as an index_hits drift.
    let alloc0 = counting_alloc::snapshot();
    let span = tracer.span("stage:IndexBuild");
    let sw = lpr_obs::Stopwatch::start();
    let cold = lpr_corpus::Corpus::open_with(&paths, true, Some(recorder))
        .map_err(|e| format!("corpus index build: {e}"))?;
    drop(cold);
    let corpus = lpr_corpus::Corpus::open_with(&paths, true, Some(recorder))
        .map_err(|e| format!("corpus index reload: {e}"))?;
    drop(span);
    recorder.record_stage("IndexBuild", sw.elapsed_us(), paths.len() as u64, corpus.total_records());
    let alloc1 = counting_alloc::snapshot();
    alloc_rows.push(("IndexBuild", alloc1.0 - alloc0.0, alloc1.1 - alloc0.1));

    // The in-memory reference runs over the traces loaded back from the
    // corpus itself, so the comparison isolates the ingest machinery
    // from the (already golden-checked) encode round-trip.
    let (ref_traces, _cf) = lpr_corpus::ingest::load_traces(&corpus);
    let future: Vec<_> =
        snapshots[1..].iter().map(|t| Pipeline::snapshot_keys_par(t, 1)).collect();
    let pl = Pipeline::new(FilterConfig {
        persistence_window: future.len(),
        ..Default::default()
    });
    let reference = pl.run_par_recorded(&ref_traces, world.rib(), &future, 1, None);
    drop(ref_traces);

    // The same future keys, as sorted on-disk spill files.
    let spill_dir = tmp.join("spill");
    let mut spilled = Vec::new();
    for (i, keys) in future.iter().enumerate() {
        let mut sp = KeySpiller::new(&spill_dir, &format!("next{i}"))
            .map_err(|e| format!("key spill: {e}"))?;
        for key in keys {
            sp.push(key).map_err(|e| format!("key spill: {e}"))?;
        }
        spilled.push(sp.finish().map_err(|e| format!("key spill: {e}"))?);
    }

    // Identity sweep: out-of-core ingest at every thread count, against
    // the in-memory persistence window.
    for &n in &INGEST_THREADS {
        let (ingest, _rep) = lpr_corpus::ingest_cycle(
            &corpus,
            world.rib(),
            lpr_corpus::IngestOptions::new(n),
            None,
        );
        let o = pl
            .finish_stages_windowed(
                ingest,
                PersistenceWindow::Mem(&future),
                None,
                lpr_par::ShardOptions::new(n),
            )
            .map_err(|e| format!("out-of-core pipeline: {e}"))?;
        if o != reference {
            eprintln!(
                "FAIL: out-of-core ingest at {n} thread(s) diverges from the \
                 in-memory pipeline"
            );
            diverged = true;
        }
    }

    // The measured run: spilled window, `threads` workers, counters on.
    counting_alloc::heap_reset_peak();
    let rss_reset = reset_peak_rss();
    let alloc0 = counting_alloc::snapshot();
    let span = tracer.span("stage:OutOfCoreIngest");
    let sw = lpr_obs::Stopwatch::start();
    let (ingest, _rep) = lpr_corpus::ingest_cycle(
        &corpus,
        world.rib(),
        lpr_corpus::IngestOptions::new(threads),
        Some(recorder),
    );
    let o = pl
        .finish_stages_windowed(
            ingest,
            PersistenceWindow::Spilled(&spilled),
            None,
            lpr_par::ShardOptions::new(threads),
        )
        .map_err(|e| format!("out-of-core pipeline: {e}"))?;
    let wall = sw.elapsed_us().max(1);
    drop(span);
    recorder.record_stage("OutOfCoreIngest", wall, corpus.total_traces(), o.report.input as u64);
    let alloc1 = counting_alloc::snapshot();
    alloc_rows.push(("OutOfCoreIngest", alloc1.0 - alloc0.0, alloc1.1 - alloc0.1));
    if o != reference {
        eprintln!(
            "FAIL: out-of-core ingest with the spilled persistence window \
             diverges from the in-memory pipeline"
        );
        diverged = true;
    }

    let stats = IngestStats {
        scale: 1,
        threads,
        corpus_files: paths.len() as u64,
        corpus_bytes: corpus.total_bytes(),
        corpus_records: corpus.total_records(),
        traces: corpus.total_traces(),
        lsps_in: o.report.input as u64,
        wall_us: wall,
        spilled_window: true,
        matches_all: !diverged,
        peak_rss: if rss_reset { peak_rss_bytes() } else { None },
        peak_heap: counting_alloc::heap_peak(),
    };
    let _ = std::fs::remove_dir_all(&tmp);
    Ok((stats, diverged))
}

/// Everything `pipeline_scaled` needs from the flag parser.
struct ScaledParams {
    out_path: String,
    snapshots: usize,
    cycle: usize,
    threads: usize,
    scale: usize,
    mem_ceiling: Option<u64>,
    probing: netsim::ProbingStrategy,
    max_probes_per_dst: Option<f64>,
    max_campaign_share: Option<f64>,
    trace_out: Option<String>,
    trace_level: lpr_obs::Level,
}

/// The paper-scale flow (`--scale` > 1): the cycle never exists in
/// memory as a whole. Each snapshot is generated, persisted (snapshot 0
/// becomes the multi-file corpus; later snapshots spill their LSP keys
/// to sorted files) and dropped; the pipeline then runs purely
/// out-of-core, with the 1/2/4/8 thread identity check against the run
/// at `--threads` and the ingest-phase peak-memory accounting.
fn pipeline_scaled(p: ScaledParams) -> i32 {
    use lpr_core::pipeline::PersistenceWindow;
    use lpr_core::spill::KeySpiller;

    let tracer = match &p.trace_out {
        Some(_) => lpr_obs::Tracer::new(p.trace_level),
        None => lpr_obs::Tracer::disabled(),
    };
    let recorder = Recorder::new("lpr-bench pipeline").with_tracer(tracer.clone());
    let run_span = tracer.span("run:bench-pipeline-scaled");
    tracer.set_default_parent(run_span.context());
    netsim::igp::spf_cache_reset();
    let mut diverged = false;

    let tmp = std::env::temp_dir().join(format!("lpr-bench-scale-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    let spill_dir = tmp.join("spill");

    let world = ark_dataset::scaled_world(p.scale);
    let copts = ark_dataset::CampaignOptions {
        snapshots: p.snapshots,
        hosts_per_prefix: ark_dataset::scale_hosts_per_prefix(p.scale),
        threads: p.threads,
        probing: p.probing,
        ..Default::default()
    };
    say!(
        "scaled campaign: scale {}, {} VPs, {} prefixes, {} hosts/prefix",
        p.scale,
        world.all_vps().len(),
        world.all_destinations(1).len(),
        copts.hosts_per_prefix,
    );

    // Generate-and-persist, one snapshot resident at a time.
    let mut campaign_wall = 0u64;
    let mut write_wall = 0u64;
    let mut spill_wall = 0u64;
    let mut total_traces = 0u64;
    let mut cycle_traces = 0u64;
    let mut paths = Vec::new();
    let mut spilled = Vec::new();
    let mut spilled_keys_total = 0u64;
    let mut budget = netsim::ProbeBudget::default();
    for snap in 0..p.snapshots {
        let span = tracer.span(format!("snapshot:{snap}"));
        let sw = lpr_obs::Stopwatch::start();
        let (traces, snap_budget) =
            ark_dataset::generate_snapshot_with_budget(&world, p.cycle, snap, &copts);
        budget.merge(&snap_budget);
        campaign_wall += sw.elapsed_us();
        total_traces += traces.len() as u64;
        if snap == 0 {
            let sw = lpr_obs::Stopwatch::start();
            cycle_traces = traces.len() as u64;
            paths = match lpr_corpus::write_corpus_files(
                &tmp,
                "cycle",
                &traces,
                corpus_file_count(traces.len()),
            ) {
                Ok(paths) => paths,
                Err(e) => {
                    eprintln!("corpus write: {e}");
                    return 1;
                }
            };
            write_wall += sw.elapsed_us();
        } else {
            let sw = lpr_obs::Stopwatch::start();
            let keys = Pipeline::snapshot_keys_par(&traces, p.threads);
            let spill = (|| -> std::io::Result<_> {
                let mut sp = KeySpiller::new(&spill_dir, &format!("next{}", snap - 1))?;
                for key in &keys {
                    sp.push(key)?;
                }
                sp.finish()
            })();
            match spill {
                Ok(sp) => {
                    spilled_keys_total += sp.count;
                    spilled.push(sp);
                }
                Err(e) => {
                    eprintln!("key spill: {e}");
                    return 1;
                }
            }
            spill_wall += sw.elapsed_us();
        }
        drop(span);
        say!("  snapshot {snap}: {} traces generated and persisted", traces.len());
    }
    let written: u64 =
        paths.iter().filter_map(|p| std::fs::metadata(p).ok()).map(|m| m.len()).sum();
    recorder.record_stage("GenerateCampaign", campaign_wall, 0, total_traces);
    recorder.record_stage("CorpusWrite", write_wall, cycle_traces, written);
    recorder.record_stage(
        "SpillFutureKeys",
        spill_wall,
        total_traces - cycle_traces,
        spilled_keys_total,
    );

    // Ingest phase: everything from here runs out-of-core, and the
    // peak-memory accounting starts here.
    counting_alloc::heap_reset_peak();
    let rss_reset = reset_peak_rss();

    let span = tracer.span("stage:IndexBuild");
    let sw = lpr_obs::Stopwatch::start();
    let corpus = match lpr_corpus::Corpus::open_with(&paths, true, Some(&recorder)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus index build: {e}");
            return 1;
        }
    };
    drop(span);
    recorder.record_stage("IndexBuild", sw.elapsed_us(), paths.len() as u64, corpus.total_records());

    let pl = Pipeline::new(FilterConfig {
        persistence_window: spilled.len(),
        ..Default::default()
    });
    let run_ooc = |n: usize, rec: Option<&Recorder>| {
        let (ingest, _rep) =
            lpr_corpus::ingest_cycle(&corpus, world.rib(), lpr_corpus::IngestOptions::new(n), rec);
        pl.finish_stages_windowed(
            ingest,
            PersistenceWindow::Spilled(&spilled),
            None,
            lpr_par::ShardOptions::new(n),
        )
    };

    // The measured run at `--threads`, then the identity sweep against
    // it at every other INGEST_THREADS count.
    let span = tracer.span("stage:OutOfCoreIngest");
    let sw = lpr_obs::Stopwatch::start();
    let out = match run_ooc(p.threads, Some(&recorder)) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("out-of-core pipeline: {e}");
            return 1;
        }
    };
    let wall = sw.elapsed_us().max(1);
    drop(span);
    recorder.record_stage("OutOfCoreIngest", wall, corpus.total_traces(), out.report.input as u64);
    for &n in &INGEST_THREADS {
        if n == p.threads {
            continue;
        }
        match run_ooc(n, None) {
            Ok(o) => {
                if o != out {
                    eprintln!(
                        "FAIL: out-of-core ingest at {n} thread(s) diverges from the \
                         --threads {} run",
                        p.threads
                    );
                    diverged = true;
                }
            }
            Err(e) => {
                eprintln!("out-of-core pipeline at {n} thread(s): {e}");
                return 1;
            }
        }
    }

    let stats = IngestStats {
        scale: p.scale,
        threads: p.threads,
        corpus_files: paths.len() as u64,
        corpus_bytes: corpus.total_bytes(),
        corpus_records: corpus.total_records(),
        traces: corpus.total_traces(),
        lsps_in: out.report.input as u64,
        wall_us: wall,
        spilled_window: true,
        matches_all: !diverged,
        peak_rss: if rss_reset { peak_rss_bytes() } else { None },
        peak_heap: counting_alloc::heap_peak(),
    };
    let mem_breached = ceiling_breached(&stats, p.mem_ceiling);

    let (elide_verdict, elide_ok) = unsupported_elide_check();
    if !elide_ok {
        eprintln!(
            "FAIL: eliding Unsupported bodies did not remove the body-sized \
             decode allocation"
        );
        diverged = true;
    }

    let telemetry = recorder.finish();
    let campaign_share = {
        let total: u64 = telemetry
            .stages
            .iter()
            .filter(|s| !s.name.contains('/'))
            .map(|s| s.wall_us)
            .sum();
        let campaign = telemetry
            .stages
            .iter()
            .find(|s| s.name == "GenerateCampaign")
            .map_or(0, |s| s.wall_us);
        campaign as f64 / total.max(1) as f64
    };
    let mut share_exceeded = false;
    if let Some(ceiling) = p.max_campaign_share {
        share_exceeded = campaign_share > ceiling;
        if share_exceeded {
            eprintln!(
                "FAIL: GenerateCampaign takes {:.1}% of stage wall time (ceiling {:.1}%)",
                campaign_share * 100.0,
                ceiling * 100.0,
            );
        }
    }

    let probes_exceeded = probe_ceiling_breached(&budget, p.max_probes_per_dst);
    let extras = ReportExtras {
        sweep_rows: &[],
        campaign_rows: &[],
        campaign_traces: cycle_traces,
        campaign_share,
        golden: None,
        alloc_rows: None,
        spf_cache: netsim::Internet::spf_cache_stats(),
        ingest: Some(stats.to_json()),
        probing: Some(probing_json(p.probing, &budget)),
        unsupported_elide: Some(elide_verdict),
    };
    let report = render_report(&telemetry, &out, &extras);
    if let Err(e) = std::fs::write(&p.out_path, &report) {
        eprintln!("{}: {e}", p.out_path);
        return 1;
    }

    say!(
        "{} traces, {} LSPs in, {} IOTPs classified, {} us total, {} thread(s)",
        corpus.total_traces(),
        out.report.input,
        out.iotps.len(),
        telemetry.total_wall_us,
        telemetry.threads,
    );
    for s in &telemetry.stages {
        let rate = lpr_bench::throughput_text(s.wall_us, s.input);
        say!(
            "  {:<18} {:>8} -> {:<8} {:>10} us  {:>12} items/s",
            s.name,
            s.input,
            s.output,
            s.wall_us,
            rate,
        );
    }
    say_budget(p.probing, &budget);
    stats.say();
    say!(
        "unsupported-body elide: {}",
        if elide_ok { "zero-copy (body-sized allocation removed)" } else { "COPY SURVIVED" }
    );
    say!("wrote {}", p.out_path);
    let _ = std::fs::remove_dir_all(&tmp);
    tracer.set_default_parent(lpr_obs::SpanContext::ROOT);
    drop(run_span);
    if let Some(path) = &p.trace_out {
        if !write_trace(&tracer, path) {
            return 1;
        }
    }
    if diverged {
        eprintln!("determinism self-check failed");
        return 1;
    }
    if share_exceeded || mem_breached || probes_exceeded {
        return 1;
    }
    0
}

/// Probing thread counts the campaign sweep regenerates the cycle at;
/// byte-identity across all of them is part of the acceptance bar.
const CAMPAIGN_THREADS: [usize; 4] = [1, 2, 4, 8];

/// FNV-1a fingerprint of the default-shape campaign's warts encoding,
/// captured before the dense-SPF / probe-ladder / parallel-probing
/// rewrite. Byte-for-byte equality with the old implementation is the
/// contract those optimisations must keep.
const GOLDEN_CAMPAIGN_FNV: u64 = 0x814958413857ec30;

/// Combines the per-snapshot warts encodings into one order-sensitive
/// FNV-1a fingerprint (each snapshot's hash is rotated by its index so
/// snapshot swaps change the result).
fn campaign_fingerprint(snapshots: &[Vec<lpr_core::trace::Trace>]) -> u64 {
    let mut combined = 0u64;
    for (snap, traces) in snapshots.iter().enumerate() {
        let mut w = warts::WartsWriter::new();
        let list = w.list(1, "bench");
        let cyc = w.cycle_start(list, 1, 0);
        for t in traces {
            w.trace(&warts::trace_to_record(t, list, cyc)).expect("encode");
        }
        w.cycle_stop(cyc, 1);
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in w.into_bytes().iter() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        combined ^= h.rotate_left(snap as u32 * 21);
    }
    combined
}

/// Parses a comma-separated fault-rate list; the rate-0 baseline is
/// always swept first so every row has a drift reference.
fn parse_rates(spec: &str) -> Result<Vec<f64>, String> {
    let mut rates: Vec<f64> = Vec::new();
    for part in spec.split(',') {
        let r: f64 = part.trim().parse().map_err(|e| format!("--rates `{part}`: {e}"))?;
        if !(0.0..=1.0).contains(&r) {
            return Err(format!("--rates `{part}`: fault rates live in [0, 1]"));
        }
        rates.push(r);
    }
    rates.sort_by(|a, b| a.partial_cmp(b).expect("no NaN past the range check"));
    rates.dedup();
    if rates.first() != Some(&0.0) {
        rates.insert(0, 0.0);
    }
    Ok(rates)
}

/// Thread counts every chaos rate is verified at: the acceptance bar is
/// byte-identical `PipelineOutput` from 1 through 8 workers.
const CHAOS_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The fixed fixture for the chaos sweep's revelation leg: one Juniper
/// transit AS whose tunnel-visibility mix hides most of the deployment
/// from plain traceroute, so the revelation phase has real work that
/// the injected trigger/DPR faults can take away.
fn chaos_revelation_net() -> netsim::Internet {
    let mut cfg = netsim::MplsConfig::ldp_default();
    // Half the LER pairs stay explicit so the pipeline keeps a stable
    // base of label-visible IOTPs: class shares then move by a bounded
    // amount when a fault knocks out a revealed candidate, instead of
    // swinging the whole (tiny) denominator.
    cfg.visibility = netsim::VisibilityMix {
        explicit: 0.25,
        implicit: 0.25,
        invisible: 0.3,
        opaque: 0.2,
    };
    let specs = vec![
        netsim::AsSpec::transit(
            65000,
            "transit",
            netsim::Vendor::Juniper,
            netsim::TopologyParams {
                core_routers: 12,
                border_routers: 6,
                ecmp_diamonds: 2,
                ..Default::default()
            },
        ),
        netsim::AsSpec::stub(100, "src-a", 0, 2),
        netsim::AsSpec::stub(101, "src-b", 0, 2),
        netsim::AsSpec::stub(200, "dst-a", 4, 0),
        netsim::AsSpec::stub(201, "dst-b", 4, 0),
        netsim::AsSpec::stub(202, "dst-c", 4, 0),
        netsim::AsSpec::stub(203, "dst-d", 4, 0),
    ];
    let peerings = vec![
        netsim::Peering::new(Asn(100), Asn(65000)).at_b(0),
        netsim::Peering::new(Asn(101), Asn(65000)).at_b(3),
        netsim::Peering::new(Asn(65000), Asn(200)).at_a(1),
        netsim::Peering::new(Asn(65000), Asn(201)).at_a(2),
        netsim::Peering::new(Asn(65000), Asn(202)).at_a(4),
        netsim::Peering::new(Asn(65000), Asn(203)).at_a(5),
    ];
    let topo = netsim::Topology::build_with_peerings(&specs, &peerings);
    let mut configs = std::collections::BTreeMap::new();
    configs.insert(Asn(65000), cfg);
    netsim::Internet::new(topo, &configs)
}

/// Per-reason quarantine tallies as JSON fields, in `QuarantineReason`
/// declaration order (only reasons that fired appear).
fn quarantine_fields(report: &lpr_core::quarantine::DegradedReport) -> Vec<(String, JsonValue)> {
    lpr_core::quarantine::QuarantineReason::ALL
        .iter()
        .filter_map(|r| {
            report.quarantined.get(r).map(|&n| (r.name().to_string(), JsonValue::Int(n as i128)))
        })
        .collect()
}

fn chaos(args: &[String]) -> i32 {
    let mut out_path = "BENCH_chaos.json".to_string();
    let mut seed = 42u64;
    let mut rates = vec![0.0, 0.02, 0.05, 0.10];
    let mut snapshots = 3usize;
    let mut cycle = 40usize;
    let mut drift_bound = 0.5f64;
    let mut trace_out: Option<String> = None;
    let mut trace_level = lpr_obs::Level::Info;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--out" => want(&mut it, "--out").map(|v| out_path = v),
            "--seed" => want(&mut it, "--seed").and_then(|v| {
                v.parse().map(|n| seed = n).map_err(|e| format!("--seed: {e}"))
            }),
            "--rates" => {
                want(&mut it, "--rates").and_then(|v| parse_rates(&v).map(|rs| rates = rs))
            }
            "--snapshots" => want(&mut it, "--snapshots").and_then(|v| {
                v.parse().map(|n| snapshots = n).map_err(|e| format!("--snapshots: {e}"))
            }),
            "--cycle" => want(&mut it, "--cycle").and_then(|v| {
                v.parse().map(|n| cycle = n).map_err(|e| format!("--cycle: {e}"))
            }),
            "--drift-bound" => want(&mut it, "--drift-bound").and_then(|v| {
                v.parse()
                    .map(|b| drift_bound = b)
                    .map_err(|e| format!("--drift-bound: {e}"))
            }),
            "--trace-out" => want(&mut it, "--trace-out").map(|v| trace_out = Some(v)),
            "--trace-level" => want(&mut it, "--trace-level").and_then(|v| {
                lpr_obs::Level::parse(&v)
                    .map(|l| trace_level = l)
                    .ok_or_else(|| format!("--trace-level `{v}` is not a level"))
            }),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    if snapshots == 0 {
        eprintln!("--snapshots must be at least 1");
        return 2;
    }

    // The golden campaign every rate degrades a fresh copy of. Future
    // snapshots stay clean: the Persistence reference is held fixed so a
    // row's drift isolates the effect of faults on the measured cycle.
    let world = ark_dataset::standard_world();
    let opts = ark_dataset::CampaignOptions { snapshots, ..Default::default() };
    let data = ark_dataset::generate_cycle(&world, cycle, &opts);
    let golden = &data.snapshots[0];
    let future: Vec<_> =
        data.snapshots[1..].iter().map(|t| Pipeline::snapshot_keys_par(t, 1)).collect();
    let pipeline = Pipeline::new(FilterConfig {
        persistence_window: future.len(),
        ..Default::default()
    });

    say!(
        "chaos sweep: seed {seed}, {} golden traces, rates {:?}, drift bound {drift_bound}",
        golden.len(),
        rates
    );

    // The trace journal is observational only: the chaos report itself
    // stays byte-reproducible (the trace file carries the wall times).
    let tracer = match &trace_out {
        Some(_) => lpr_obs::Tracer::new(trace_level),
        None => lpr_obs::Tracer::disabled(),
    };
    let run_span = tracer.span("run:bench-chaos");
    tracer.set_default_parent(run_span.context());

    // Runs the pipeline over `input` at every thread count in
    // `CHAOS_THREADS`, returning the sequential output and whether all
    // counts agreed byte-for-byte.
    let run_all = |input: &[lpr_core::trace::Trace]| {
        let reference = pipeline.run_par_recorded(input, world.rib(), &future, 1, None);
        let mut matches_all = true;
        for &threads in &CHAOS_THREADS[1..] {
            let out = pipeline.run_par_recorded(input, world.rib(), &future, threads, None);
            if out != reference {
                matches_all = false;
            }
        }
        (reference, matches_all)
    };

    let mut rows: Vec<JsonValue> = Vec::new();
    let mut baseline: Option<[f64; 4]> = None;
    let mut failed = false;
    for &rate in &rates {
        let rate_span = tracer.span(format!("rate:{rate}"));
        let plan = lpr_chaos::FaultPlan::uniform(seed, rate);
        let mut traces = golden.clone();
        let faults = plan.degrade_traces(&mut traces);

        // Direct path: the degraded traces go straight into the
        // pipeline, so structural faults (duplicated/reordered replies)
        // reach the quarantine layer intact. Class-share drift is
        // measured here, uncontaminated by byte-level corruption.
        let (direct, direct_matches) = run_all(&traces);
        let direct_reconciled = direct.degraded.ingested() == traces.len() as u64
            && direct.degraded.kept + direct.degraded.quarantined_total()
                == traces.len() as u64;
        let counts = direct.class_counts();
        let shares = counts.fractions();
        let base = *baseline.get_or_insert(shares);
        let drift = shares
            .iter()
            .zip(base.iter())
            .map(|(s, b)| (s - b).abs())
            .fold(0.0f64, f64::max);
        let drift_ok = drift <= drift_bound;

        // Bytes path: encode, corrupt at the byte level, decode with
        // the lenient reader, then classify whatever survived. (The
        // warts→core conversion scrubs out-of-order TTLs, so this path
        // exercises skip-and-resync rather than the quarantine.)
        let mut writer = warts::WartsWriter::new();
        let list = writer.list(1, "chaos");
        let cyc = writer.cycle_start(list, 1, 0);
        for t in &traces {
            writer.trace(&warts::trace_to_record(t, list, cyc)).expect("encode");
        }
        writer.cycle_stop(cyc, 1);
        let bytes = writer.into_bytes();
        let (bytes, corruption) = lpr_chaos::corrupt_warts_bytes(&bytes, seed, plan.corruption);

        let mut reader = warts::WartsStreamReader::new(bytes.as_slice()).lenient();
        let mut decoded = Vec::new();
        let mut convert_failures = 0u64;
        loop {
            match reader.next_record() {
                Ok(Some(warts::Record::Trace(t))) => match warts::trace_to_core(&t) {
                    Ok(Some(core)) => decoded.push(core),
                    Ok(None) => {}
                    Err(_) => convert_failures += 1,
                },
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(e) => {
                    eprintln!("FAIL: rate {rate}: lenient decode aborted: {e}");
                    return 1;
                }
            }
        }
        let skips = reader.skip_counts().clone();
        let resync_bytes = reader.resync_bytes();

        let (decoded_out, bytes_matches) = run_all(&decoded);
        let bytes_reconciled = decoded_out.degraded.ingested() == decoded.len() as u64
            && decoded_out.degraded.kept + decoded_out.degraded.quarantined_total()
                == decoded.len() as u64;

        if !direct_matches || !bytes_matches {
            eprintln!("FAIL: rate {rate}: output diverges across thread counts");
        }
        if !direct_reconciled || !bytes_reconciled {
            eprintln!("FAIL: rate {rate}: kept + quarantined != traces ingested");
        }
        if !drift_ok {
            eprintln!(
                "FAIL: rate {rate}: class-share drift {drift:.3} exceeds bound {drift_bound}"
            );
        }
        let row_ok = direct_matches
            && bytes_matches
            && direct_reconciled
            && bytes_reconciled
            && drift_ok;
        if !row_ok {
            failed = true;
        }
        rate_span.event(
            if row_ok { lpr_obs::Level::Info } else { lpr_obs::Level::Error },
            "chaos-row",
            vec![
                ("rate".to_string(), lpr_obs::FieldValue::Str(rate.to_string())),
                ("faults".to_string(), lpr_obs::FieldValue::U64(faults.total() as u64)),
                ("kept".to_string(), lpr_obs::FieldValue::U64(direct.degraded.kept)),
                (
                    "quarantined".to_string(),
                    lpr_obs::FieldValue::U64(direct.degraded.quarantined_total()),
                ),
                (
                    "ok".to_string(),
                    lpr_obs::FieldValue::Str(if row_ok { "true" } else { "false" }.to_string()),
                ),
            ],
        );

        say!(
            "  rate {rate:<5} faults {:>5}  direct: kept {:>4} quar {:>3} iotps {:>3} \
             unclass {:.2} drift {:.3} | bytes: corrupt {:>3} skipped {:>4} decoded {:>4} \
             iotps {:>3}  {}",
            faults.total(),
            direct.degraded.kept,
            direct.degraded.quarantined_total(),
            counts.total(),
            shares[3],
            drift,
            corruption.total(),
            reader.skipped_total(),
            decoded.len(),
            decoded_out.class_counts().total(),
            if row_ok { "ok" } else { "FAIL" },
        );

        let skip_fields: Vec<(String, JsonValue)> = warts::SkipReason::ALL
            .iter()
            .filter_map(|r| {
                skips.get(r).map(|&n| (r.name().to_string(), JsonValue::Int(n as i128)))
            })
            .collect();
        let decoded_counts = decoded_out.class_counts();
        rows.push(JsonValue::Object(vec![
            ("rate".to_string(), JsonValue::Float(rate)),
            ("traces_generated".to_string(), JsonValue::Int(traces.len() as i128)),
            (
                "faults_injected".to_string(),
                JsonValue::Object(vec![
                    ("lost".to_string(), JsonValue::Int(faults.lost as i128)),
                    ("rate_limited".to_string(), JsonValue::Int(faults.rate_limited as i128)),
                    ("php_silenced".to_string(), JsonValue::Int(faults.php_silenced as i128)),
                    (
                        "truncated_exts".to_string(),
                        JsonValue::Int(faults.truncated_exts as i128),
                    ),
                    ("duplicated".to_string(), JsonValue::Int(faults.duplicated as i128)),
                    ("reordered".to_string(), JsonValue::Int(faults.reordered as i128)),
                    ("total".to_string(), JsonValue::Int(faults.total() as i128)),
                ]),
            ),
            (
                "direct".to_string(),
                JsonValue::Object(vec![
                    ("traces_kept".to_string(), JsonValue::Int(direct.degraded.kept as i128)),
                    (
                        "quarantined".to_string(),
                        JsonValue::Object(quarantine_fields(&direct.degraded)),
                    ),
                    (
                        "quarantined_total".to_string(),
                        JsonValue::Int(direct.degraded.quarantined_total() as i128),
                    ),
                    (
                        "classes".to_string(),
                        JsonValue::Object(vec![
                            ("mono_lsp".to_string(), JsonValue::Int(counts.mono_lsp as i128)),
                            ("multi_fec".to_string(), JsonValue::Int(counts.multi_fec as i128)),
                            (
                                "mono_fec_parallel".to_string(),
                                JsonValue::Int(counts.mono_fec_parallel as i128),
                            ),
                            (
                                "mono_fec_disjoint".to_string(),
                                JsonValue::Int(counts.mono_fec_disjoint as i128),
                            ),
                            (
                                "unclassified".to_string(),
                                JsonValue::Int(counts.unclassified as i128),
                            ),
                            ("total".to_string(), JsonValue::Int(counts.total() as i128)),
                        ]),
                    ),
                    (
                        "class_shares".to_string(),
                        JsonValue::Object(vec![
                            ("mono_lsp".to_string(), JsonValue::Float(shares[0])),
                            ("multi_fec".to_string(), JsonValue::Float(shares[1])),
                            ("mono_fec".to_string(), JsonValue::Float(shares[2])),
                            ("unclassified".to_string(), JsonValue::Float(shares[3])),
                        ]),
                    ),
                    ("drift".to_string(), JsonValue::Float(drift)),
                    ("matches_across_threads".to_string(), JsonValue::Bool(direct_matches)),
                    ("reconciled".to_string(), JsonValue::Bool(direct_reconciled)),
                ]),
            ),
            (
                "bytes".to_string(),
                JsonValue::Object(vec![
                    (
                        "corrupted_records".to_string(),
                        JsonValue::Object(vec![
                            (
                                "bit_flips".to_string(),
                                JsonValue::Int(corruption.bit_flips as i128),
                            ),
                            (
                                "truncated_bodies".to_string(),
                                JsonValue::Int(corruption.truncated_bodies as i128),
                            ),
                            (
                                "bad_lengths".to_string(),
                                JsonValue::Int(corruption.bad_lengths as i128),
                            ),
                            (
                                "bad_magics".to_string(),
                                JsonValue::Int(corruption.bad_magics as i128),
                            ),
                            ("total".to_string(), JsonValue::Int(corruption.total() as i128)),
                        ]),
                    ),
                    ("skipped_records".to_string(), JsonValue::Object(skip_fields)),
                    (
                        "skipped_total".to_string(),
                        JsonValue::Int(reader.skipped_total() as i128),
                    ),
                    ("resync_bytes".to_string(), JsonValue::Int(resync_bytes as i128)),
                    ("decoded_traces".to_string(), JsonValue::Int(decoded.len() as i128)),
                    (
                        "convert_failures".to_string(),
                        JsonValue::Int(convert_failures as i128),
                    ),
                    (
                        "traces_kept".to_string(),
                        JsonValue::Int(decoded_out.degraded.kept as i128),
                    ),
                    (
                        "quarantined_total".to_string(),
                        JsonValue::Int(decoded_out.degraded.quarantined_total() as i128),
                    ),
                    ("iotps".to_string(), JsonValue::Int(decoded_counts.total() as i128)),
                    ("matches_across_threads".to_string(), JsonValue::Bool(bytes_matches)),
                    ("reconciled".to_string(), JsonValue::Bool(bytes_reconciled)),
                ]),
            ),
        ]));
    }

    // Revelation leg: the prober-level faults (lost trigger replies,
    // rate-limited DPR walks) swept at the same rates over a fixed
    // netsim fixture whose tunnel-visibility mix hides part of the
    // deployment. The plan touches only revelation probes, so the base
    // traces are identical to the clean run and faults can only remove
    // evidence: the revealed count must fall monotonically towards the
    // clean baseline, the Unclassified share must not shrink, every
    // thread count must agree byte-for-byte, and the class shares stay
    // inside the same drift bound as the main sweep.
    let reveal_net = chaos_revelation_net();
    let reveal_vps: Vec<std::net::Ipv4Addr> =
        reveal_net.topo.vantage_points().iter().map(|(a, _)| *a).collect();
    let reveal_dsts = reveal_net.topo.destinations(2);
    let reveal_opts = netsim::RevelationOptions::default();
    let mut reveal_rows: Vec<JsonValue> = Vec::new();
    let mut reveal_baseline: Option<([f64; 4], u64)> = None;
    for &rate in &rates {
        // Trigger loss and DPR rate limiting hash per LER pair / per
        // flow, and the fixture only has a handful of pairs — the
        // sweep's byte-level rates are amplified so its low end still
        // knocks out real candidates.
        let plan = {
            let mut p = lpr_chaos::FaultPlan::none(seed.wrapping_mul(0x9e37_79b9));
            p.trigger_loss = (rate * 5.0).min(1.0);
            p.dpr_rate_limit = (rate * 5.0).min(1.0);
            p
        };
        let run_at = |threads: usize| {
            let prober = netsim::Prober::new(&reveal_net, netsim::ProbeOptions::default())
                .with_faults(plan);
            let out = prober.campaign_with_revelation(
                &reveal_vps,
                &reveal_dsts,
                threads,
                &reveal_opts,
            );
            (out, prober.injected_faults())
        };
        let ((traces, budget, evidence), injected) = run_at(1);
        let mut reveal_matches = true;
        for &threads in &CHAOS_THREADS[1..] {
            let ((t, b, e), _) = run_at(threads);
            if t != traces || b != budget || e != evidence {
                reveal_matches = false;
            }
        }
        let keys = Pipeline::snapshot_keys(&traces);
        let reveal_rib = reveal_net.topo.rib();
        let mut out =
            Pipeline::default().run(&traces, &reveal_rib, &[keys.clone(), keys]);
        lpr_core::reveal::apply_revelations(&mut out, &evidence, None);
        let counts = out.class_counts();
        let shares = counts.fractions();
        let (base_shares, base_revealed) =
            *reveal_baseline.get_or_insert((shares, budget.revelation_revealed));
        let drift = shares
            .iter()
            .zip(base_shares.iter())
            .map(|(s, b)| (s - b).abs())
            .fold(0.0f64, f64::max);
        let drift_ok = drift <= drift_bound;
        let monotone = budget.revelation_revealed <= base_revealed
            && shares[3] >= base_shares[3];
        if !reveal_matches {
            eprintln!("FAIL: revelation rate {rate}: output diverges across thread counts");
        }
        if !drift_ok {
            eprintln!(
                "FAIL: revelation rate {rate}: class-share drift {drift:.3} exceeds \
                 bound {drift_bound}"
            );
        }
        if !monotone {
            eprintln!(
                "FAIL: revelation rate {rate}: faults fabricated evidence \
                 (revealed {} > clean {base_revealed}, or Unclassified share shrank)",
                budget.revelation_revealed,
            );
        }
        let row_ok = reveal_matches && drift_ok && monotone;
        if !row_ok {
            failed = true;
        }
        say!(
            "  revelation rate {rate:<5} triggers-lost {:>3} dpr-limited {:>3}  \
             candidates {:>3} revealed {:>3} probes {:>5}  unclass {:.2} drift {:.3}  {}",
            injected.trigger_replies_lost,
            injected.dpr_rate_limited,
            budget.revelation_triggers,
            budget.revelation_revealed,
            budget.revelation_probes,
            shares[3],
            drift,
            if row_ok { "ok" } else { "FAIL" },
        );
        reveal_rows.push(JsonValue::Object(vec![
            ("rate".to_string(), JsonValue::Float(rate)),
            (
                "trigger_replies_lost".to_string(),
                JsonValue::Int(injected.trigger_replies_lost as i128),
            ),
            (
                "dpr_rate_limited".to_string(),
                JsonValue::Int(injected.dpr_rate_limited as i128),
            ),
            ("candidates".to_string(), JsonValue::Int(budget.revelation_triggers as i128)),
            ("revealed".to_string(), JsonValue::Int(budget.revelation_revealed as i128)),
            ("probes".to_string(), JsonValue::Int(budget.revelation_probes as i128)),
            (
                "class_shares".to_string(),
                JsonValue::Object(vec![
                    ("mono_lsp".to_string(), JsonValue::Float(shares[0])),
                    ("multi_fec".to_string(), JsonValue::Float(shares[1])),
                    ("mono_fec".to_string(), JsonValue::Float(shares[2])),
                    ("unclassified".to_string(), JsonValue::Float(shares[3])),
                ]),
            ),
            ("drift".to_string(), JsonValue::Float(drift)),
            ("matches_across_threads".to_string(), JsonValue::Bool(reveal_matches)),
            ("monotone".to_string(), JsonValue::Bool(monotone)),
        ]));
    }

    // Deliberately no wall times anywhere in this report: identical
    // seed + rates must yield a byte-identical BENCH_chaos.json.
    let report = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::Str("chaos".to_string())),
        ("seed".to_string(), JsonValue::Int(seed as i128)),
        ("cycle".to_string(), JsonValue::Int(cycle as i128)),
        ("snapshots".to_string(), JsonValue::Int(snapshots as i128)),
        ("drift_bound".to_string(), JsonValue::Float(drift_bound)),
        (
            "threads_checked".to_string(),
            JsonValue::Array(
                CHAOS_THREADS.iter().map(|&n| JsonValue::Int(n as i128)).collect(),
            ),
        ),
        ("rates".to_string(), JsonValue::Array(rates.iter().map(|&r| JsonValue::Float(r)).collect())),
        ("rows".to_string(), JsonValue::Array(rows)),
        ("revelation".to_string(), JsonValue::Array(reveal_rows)),
        ("passed".to_string(), JsonValue::Bool(!failed)),
    ])
    .render_pretty();
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("{out_path}: {e}");
        return 1;
    }
    say!("wrote {out_path}");
    tracer.set_default_parent(lpr_obs::SpanContext::ROOT);
    drop(run_span);
    if let Some(path) = &trace_out {
        if !write_trace(&tracer, path) {
            return 1;
        }
    }
    if failed {
        eprintln!("chaos sweep failed (determinism, reconciliation, or drift)");
        return 1;
    }
    0
}

/// Writes the tracer's journal as Chrome trace JSON, warning when the
/// ring wrapped. Returns `false` on I/O failure.
fn write_trace(tracer: &lpr_obs::Tracer, path: &str) -> bool {
    let snapshot = tracer.snapshot();
    if snapshot.dropped > 0 {
        eprintln!(
            "warning: trace journal wrapped, {} oldest events overwritten",
            snapshot.dropped
        );
    }
    match std::fs::write(path, lpr_obs::export::chrome_trace(&snapshot)) {
        Ok(()) => {
            say!("wrote {path}");
            true
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            false
        }
    }
}

fn compare_cmd(args: &[String]) -> i32 {
    let mut current_path: Option<String> = None;
    let mut against: Option<String> = None;
    let mut threshold = 0.5f64;
    let mut diff_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--against" => want(&mut it, "--against").map(|v| against = Some(v)),
            "--threshold" => want(&mut it, "--threshold").and_then(|v| {
                v.parse::<f64>().map_err(|e| format!("--threshold: {e}")).and_then(|f| {
                    if f > 0.0 {
                        threshold = f;
                        Ok(())
                    } else {
                        Err("--threshold wants a positive fraction".to_string())
                    }
                })
            }),
            "--diff-out" => want(&mut it, "--diff-out").map(|v| diff_out = Some(v)),
            other if !other.starts_with("--") && current_path.is_none() => {
                current_path = Some(other.to_string());
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    let (Some(current_path), Some(against)) = (current_path, against) else {
        eprintln!("compare wants <current.json> --against <baseline.json>\n{USAGE}");
        return 2;
    };

    let load = |path: &str| -> Result<JsonValue, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        lpr_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (current, baseline) = match (load(&current_path), load(&against)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return 1;
        }
    };

    let outcome = lpr_bench::compare::run(&current, &baseline, threshold);
    say!("comparing {current_path} against {against} (threshold {threshold})");
    for row in &outcome.stages {
        match (row.baseline_wall_us, row.ratio) {
            (Some(base), Some(ratio)) => {
                say!(
                    "  {:<18} {:>10} us -> {:>10} us  {:>5.2}x  {}",
                    row.name,
                    base,
                    row.current_wall_us,
                    ratio,
                    if row.regressed { "REGRESSED" } else { "ok" },
                );
            }
            _ => {
                say!(
                    "  {:<18}        n/a -> {:>10} us    n/a  skipped",
                    row.name,
                    row.current_wall_us,
                );
            }
        }
    }
    for line in &outcome.skipped {
        say!("  skipped: {line}");
    }
    for skip in &outcome.sections_skipped {
        say!("  section skipped: {} ({})", skip.section, skip.reason);
    }
    for line in &outcome.mismatches {
        eprintln!("FAIL: {line}");
    }
    for line in &outcome.regressions {
        eprintln!("FAIL: {line}");
    }
    if let Some(path) = diff_out {
        if let Err(e) = std::fs::write(&path, outcome.to_json(threshold)) {
            eprintln!("{path}: {e}");
            return 1;
        }
        say!("wrote {path}");
    }
    if outcome.passed() {
        say!("compare: ok");
        0
    } else {
        eprintln!("compare: regression past threshold or count mismatch");
        1
    }
}

fn baseline_cmd(args: &[String]) -> i32 {
    let mut in_path: Option<String> = None;
    let mut out_path = "results/BENCH_baseline.json".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let parsed = match a.as_str() {
            "--out" => it
                .next()
                .cloned()
                .map(|v| out_path = v)
                .ok_or_else(|| "--out wants a value".to_string()),
            other if !other.starts_with("--") && in_path.is_none() => {
                in_path = Some(other.to_string());
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    let Some(in_path) = in_path else {
        eprintln!("baseline wants <BENCH_pipeline.json>\n{USAGE}");
        return 2;
    };
    let report = match std::fs::read_to_string(&in_path)
        .map_err(|e| format!("{in_path}: {e}"))
        .and_then(|text| lpr_obs::json::parse(&text).map_err(|e| format!("{in_path}: {e}")))
    {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let stripped = lpr_bench::compare::strip_nondeterministic(&report).render_pretty();
    if let Err(e) = std::fs::write(&out_path, stripped) {
        eprintln!("{out_path}: {e}");
        return 1;
    }
    say!("wrote {out_path} (wall-time-free baseline of {in_path})");
    0
}

/// Everything `render_report` attaches beyond the raw telemetry.
struct ReportExtras<'a> {
    /// Pipeline sweep `(threads, wall_us, matches_sequential)` rows.
    sweep_rows: &'a [(usize, u64, bool)],
    /// Campaign sweep `(threads, wall_us, matches_sequential)` rows.
    campaign_rows: &'a [(usize, u64, bool)],
    /// Traces per campaign snapshot (campaign-sweep throughput basis).
    campaign_traces: u64,
    /// GenerateCampaign's fraction of total stage wall time.
    campaign_share: f64,
    /// Golden-fingerprint verdict; `None` when the shape was non-default
    /// and the check did not run.
    golden: Option<bool>,
    /// Per-stage `(stage, allocations, bytes)`; `None` without `--alloc`.
    alloc_rows: Option<&'a [(&'static str, u64, u64)]>,
    /// Process-wide SPF cache `(hits, misses)` over the whole run.
    spf_cache: (u64, u64),
    /// The out-of-core ingest phase's measurements (see
    /// [`IngestStats::to_json`]); `None` when the phase did not run.
    ingest: Option<JsonValue>,
    /// Probing strategy and probe-budget tallies (see [`probing_json`]).
    probing: Option<JsonValue>,
    /// The zero-copy Unsupported-body decode verdict.
    unsupported_elide: Option<JsonValue>,
}

/// The "probing" report section: the campaign's strategy plus its
/// probe-budget tallies. `lpr-bench compare` holds every count to
/// strict equality and `probes_per_dst` to the ratio threshold, so the
/// field names here are load-bearing.
fn probing_json(strategy: netsim::ProbingStrategy, b: &netsim::ProbeBudget) -> JsonValue {
    JsonValue::Object(vec![
        ("strategy".to_string(), JsonValue::Str(strategy.name().to_string())),
        ("pairs_total".to_string(), JsonValue::Int(b.pairs_total as i128)),
        ("pairs_probed".to_string(), JsonValue::Int(b.pairs_probed as i128)),
        ("pairs_pruned".to_string(), JsonValue::Int(b.pairs_pruned as i128)),
        ("flows_traced".to_string(), JsonValue::Int(b.flows_traced as i128)),
        ("probes_sent".to_string(), JsonValue::Int(b.probes_sent as i128)),
        ("confirmations".to_string(), JsonValue::Int(b.confirmations as i128)),
        ("probes_per_dst".to_string(), JsonValue::Float(b.probes_per_pair())),
    ])
}

/// The stdout line matching the "probing" report section.
fn say_budget(strategy: netsim::ProbingStrategy, b: &netsim::ProbeBudget) {
    say!(
        "probing [{}]: {} probes over {}/{} pairs ({} pruned), {:.2} probes/dst",
        strategy.name(),
        b.probes_sent,
        b.pairs_probed,
        b.pairs_total,
        b.pairs_pruned,
        b.probes_per_pair(),
    );
}

/// The `--max-probes-per-dst` CI tripwire: true (and a FAIL line) when
/// the campaign overspent its per-destination probe ceiling.
fn probe_ceiling_breached(b: &netsim::ProbeBudget, ceiling: Option<f64>) -> bool {
    match ceiling {
        Some(limit) if b.probes_per_pair() > limit => {
            eprintln!(
                "FAIL: campaign spent {:.2} probes per destination (ceiling {limit:.2})",
                b.probes_per_pair(),
            );
            true
        }
        _ => false,
    }
}

/// A sweep table as JSON rows. `speedup` stays relative to the
/// sequential row; `speedup_vs_best` is relative to the fastest row, so
/// a regression at high thread counts is visible even when every point
/// beats sequential. Each row carries the host's parallelism because a
/// speedup below 1 is only a signal when cores were actually available.
fn sweep_json(rows: &[(usize, u64, bool)], items: u64) -> JsonValue {
    let seq_wall = rows[0].1;
    let best_wall = rows.iter().map(|&(_, wall, _)| wall).min().unwrap_or(1);
    let avail = lpr_par::available_threads();
    JsonValue::Array(
        rows.iter()
            .map(|&(n, wall, matches)| {
                JsonValue::Object(vec![
                    ("threads".to_string(), JsonValue::Int(n as i128)),
                    ("wall_us".to_string(), JsonValue::Int(wall as i128)),
                    ("traces_per_s".to_string(), lpr_bench::throughput_json(wall, items)),
                    (
                        "speedup".to_string(),
                        JsonValue::Float(lpr_bench::speedup(seq_wall, wall)),
                    ),
                    (
                        "speedup_vs_best".to_string(),
                        JsonValue::Float(lpr_bench::speedup(best_wall, wall)),
                    ),
                    (
                        "available_parallelism".to_string(),
                        JsonValue::Int(avail as i128),
                    ),
                    ("matches_sequential".to_string(), JsonValue::Bool(matches)),
                ])
            })
            .collect(),
    )
}

/// Wraps the run telemetry with a derived per-stage throughput table:
/// the telemetry document under `"telemetry"` (still readable with
/// `RunTelemetry::from_json`) plus `"throughput_per_s"` mapping each
/// stage to records/sec (`null` for stages too fast to time — a zero
/// would read as "stalled"), `"campaign_share"`, the SPF cache tallies,
/// and — when the matching mode ran — `"thread_sweep"`,
/// `"campaign_sweep"`, `"golden_fingerprint"` and `"allocations"`.
fn render_report(
    telemetry: &lpr_obs::RunTelemetry,
    out: &lpr_core::pipeline::PipelineOutput,
    extras: &ReportExtras<'_>,
) -> String {
    let inner = lpr_obs::json::parse(&telemetry.to_json()).expect("own JSON parses");
    let throughput: Vec<(String, JsonValue)> = telemetry
        .stages
        .iter()
        .map(|s| (s.name.clone(), lpr_bench::throughput_json(s.wall_us, s.input)))
        .collect();
    let traces = telemetry.counter("pipeline.traces");
    let (spf_hits, spf_misses) = extras.spf_cache;
    let mut fields = vec![
        ("bench".to_string(), JsonValue::Str("pipeline".to_string())),
        ("iotps".to_string(), JsonValue::Int(out.iotps.len() as i128)),
        ("lsps_in".to_string(), JsonValue::Int(out.report.input as i128)),
        ("threads".to_string(), JsonValue::Int(telemetry.threads as i128)),
        (
            // Speedup curves saturate here: a sweep point above this
            // count times-shares cores rather than adding them.
            "available_parallelism".to_string(),
            JsonValue::Int(lpr_par::available_threads() as i128),
        ),
        ("telemetry".to_string(), inner),
        ("throughput_per_s".to_string(), JsonValue::Object(throughput)),
        ("campaign_share".to_string(), JsonValue::Float(extras.campaign_share)),
        (
            "spf_cache".to_string(),
            JsonValue::Object(vec![
                ("hits".to_string(), JsonValue::Int(spf_hits as i128)),
                ("misses".to_string(), JsonValue::Int(spf_misses as i128)),
                (
                    "hit_rate".to_string(),
                    JsonValue::Float(
                        spf_hits as f64 / (spf_hits + spf_misses).max(1) as f64,
                    ),
                ),
            ]),
        ),
    ];
    if !extras.sweep_rows.is_empty() {
        fields.push(("thread_sweep".to_string(), sweep_json(extras.sweep_rows, traces)));
    }
    if !extras.campaign_rows.is_empty() {
        fields.push((
            "campaign_sweep".to_string(),
            sweep_json(extras.campaign_rows, extras.campaign_traces),
        ));
    }
    if let Some(matches) = extras.golden {
        fields.push((
            "golden_fingerprint".to_string(),
            JsonValue::Object(vec![
                (
                    "expected".to_string(),
                    JsonValue::Str(format!("{GOLDEN_CAMPAIGN_FNV:#018x}")),
                ),
                ("matches".to_string(), JsonValue::Bool(matches)),
            ]),
        ));
    }
    if let Some(ingest) = &extras.ingest {
        fields.push(("ingest".to_string(), ingest.clone()));
    }
    if let Some(probing) = &extras.probing {
        fields.push(("probing".to_string(), probing.clone()));
    }
    if let Some(elide) = &extras.unsupported_elide {
        fields.push(("unsupported_elide".to_string(), elide.clone()));
    }
    if let Some(rows) = extras.alloc_rows {
        fields.push((
            "allocations".to_string(),
            JsonValue::Object(
                rows.iter()
                    .map(|&(name, allocs, bytes)| {
                        (
                            name.to_string(),
                            JsonValue::Object(vec![
                                ("allocs".to_string(), JsonValue::Int(allocs as i128)),
                                ("bytes".to_string(), JsonValue::Int(bytes as i128)),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ));
    }
    JsonValue::Object(fields).render_pretty()
}

/// What the soak expects the daemon to do with one dropped file,
/// decided with the daemon's own acceptance predicate (local decode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Expect {
    Kept,
    Quarantined,
}

/// Runs the daemon's accept-or-quarantine predicate locally over
/// `bytes` (via a scratch file), so the soak's expectations are exact
/// rather than probabilistic: whatever the chaos walk produced, the
/// soak and the daemon judge it with the same rules.
fn predict_verdict(
    scratch_dir: &std::path::Path,
    name: &str,
    bytes: &[u8],
    rib: &ip2as::Ip2AsTrie,
    threads: usize,
) -> Expect {
    let scratch = scratch_dir.join(name);
    if std::fs::write(&scratch, bytes).is_err() {
        return Expect::Quarantined;
    }
    let verdict = (|| {
        let corpus =
            lpr_corpus::Corpus::open_with(std::slice::from_ref(&scratch), false, None).ok()?;
        if !corpus.skipped_files.is_empty() {
            // Looks still-growing forever: the grace counter will
            // quarantine it.
            return Some(Expect::Quarantined);
        }
        let (_state, report) =
            lpr_corpus::ingest_cycle(&corpus, rib, lpr_corpus::IngestOptions::new(threads), None);
        Some(
            if report.skipped_total() > 0
                || report.convert_failures > 0
                || report.resync_bytes > 0
            {
                Expect::Quarantined
            } else {
                Expect::Kept
            },
        )
    })();
    let _ = std::fs::remove_file(&scratch);
    verdict.unwrap_or(Expect::Quarantined)
}

/// The batch half of the serve/batch identity check: ingest the kept
/// files with their daemon-assigned cycle ids, run the pipeline back
/// half, and render the same snapshot section the daemon serves.
fn batch_pipeline_render(
    kept: &[(u64, std::path::PathBuf)],
    rib: &ip2as::Ip2AsTrie,
    threads: usize,
) -> String {
    let mut window = lpr_core::pipeline::IngestState::default();
    for (cycle, path) in kept {
        let corpus = lpr_corpus::Corpus::open_with(std::slice::from_ref(path), false, None)
            .expect("batch reopen of a kept spool file");
        let (mut state, _report) =
            lpr_corpus::ingest_cycle(&corpus, rib, lpr_corpus::IngestOptions::new(threads), None);
        state.tag_cycle(*cycle);
        window.merge(state);
    }
    let out = Pipeline::default().finish_stages(
        window,
        &[],
        None,
        lpr_par::ShardOptions::new(threads),
    );
    lpr_serve::snapshot_pipeline_json(&out).render()
}

/// `lpr-bench serve` — the daemon soak: N cycles of clean +
/// chaos-corrupted spool drops against a live `lpr serve`, with the
/// acceptance gate from the robustness contract (clean-subset identity,
/// complete quarantine, exact reconciliation, never a 5xx).
fn serve_soak(args: &[String]) -> i32 {
    let mut cycles = 5usize;
    let mut chaos_rate = 0.10f64;
    let mut seed = 1u64;
    let mut threads = 1usize;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut keep_spool = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--cycles" => want(&mut it, "--cycles").and_then(|v| {
                v.parse().map(|n| cycles = n).map_err(|e| format!("--cycles: {e}"))
            }),
            "--chaos-rate" => want(&mut it, "--chaos-rate").and_then(|v| {
                v.parse()
                    .map_err(|e| format!("--chaos-rate: {e}"))
                    .and_then(|f: f64| {
                        if (0.0..=1.0).contains(&f) {
                            chaos_rate = f;
                            Ok(())
                        } else {
                            Err("--chaos-rate wants a fraction in [0,1]".to_string())
                        }
                    })
            }),
            "--seed" => want(&mut it, "--seed")
                .and_then(|v| v.parse().map(|n| seed = n).map_err(|e| format!("--seed: {e}"))),
            "--threads" => want(&mut it, "--threads").and_then(|v| {
                v.parse().map(|n| threads = n).map_err(|e| format!("--threads: {e}"))
            }),
            "--out" => want(&mut it, "--out").map(|v| out_path = v),
            "--keep-spool" => {
                keep_spool = true;
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    if cycles == 0 {
        eprintln!("--cycles wants at least 1\n{USAGE}");
        return 2;
    }

    let world = ark_dataset::standard_world();
    let rib = world.rib();

    let root = std::env::temp_dir().join(format!("lpr-bench-serve-{}", std::process::id()));
    let spool = root.join("spool");
    let staging = root.join("staging");
    for d in [&spool, &staging] {
        if let Err(e) = std::fs::create_dir_all(d) {
            eprintln!("FAIL: {}: {e}", d.display());
            return 1;
        }
    }
    let rib_path = root.join("rib.txt");
    if let Err(e) = std::fs::write(&rib_path, ip2as::to_rib_string(rib)) {
        eprintln!("FAIL: {}: {e}", rib_path.display());
        return 1;
    }

    let mut cfg = lpr_serve::ServeConfig::new(spool.clone(), rib_path);
    cfg.threads = threads;
    cfg.tick = std::time::Duration::from_millis(20);
    // Hold every kept cycle: the soak checks identity over the full
    // clean subset (eviction has its own coverage in lpr-serve).
    cfg.window = 2 * cycles + 2;
    cfg.growing_grace = 3;
    cfg.retries = 1;
    cfg.backoff_base = std::time::Duration::from_millis(10);
    let handle = match lpr_serve::Server::start(cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("FAIL: daemon did not start: {e}");
            return 1;
        }
    };
    let addr = handle.addr();
    say!("lpr-bench serve: daemon on http://{addr}, spool {}", spool.display());

    // Every request the soak makes goes through here; a single 5xx
    // anywhere fails the run.
    let mut worst_status = 0u16;
    let request = |path: &str, worst: &mut u16| -> Option<String> {
        match lpr_serve::http::get(addr, path) {
            Ok((status, body)) => {
                *worst = (*worst).max(status);
                Some(body)
            }
            Err(e) => {
                eprintln!("FAIL: GET {path}: {e}");
                *worst = (*worst).max(599);
                None
            }
        }
    };

    let deadline = std::time::Duration::from_secs(60);
    let mut expected_kept: Vec<(u64, std::path::PathBuf)> = Vec::new();
    let mut expected_quarantined: Vec<String> = Vec::new();
    let mut next_cycle = 0u64;
    let mut dropped = 0usize;
    let mut wait_failed = false;

    'soak: for i in 0..cycles {
        // One fresh campaign cycle per iteration: the window genuinely
        // accumulates distinct measurement content.
        let opts = ark_dataset::CampaignOptions {
            snapshots: 1,
            seed: seed.wrapping_add(i as u64),
            ..Default::default()
        };
        let data = ark_dataset::generate_cycle(&world, 40 + i, &opts);
        let mut writer = warts::WartsWriter::new();
        let list = writer.list(1, "soak");
        let cyc = writer.cycle_start(list, 1, 0);
        for t in &data.snapshots[0] {
            writer.trace(&warts::trace_to_record(t, list, cyc)).expect("encode");
        }
        writer.cycle_stop(cyc, 1);
        let clean = writer.into_bytes();
        let (corrupted, _counts) =
            lpr_chaos::corrupt_warts_bytes(&clean, seed.wrapping_add(i as u64), chaos_rate);

        for (tag, bytes) in [("clean", &clean), ("chaos", &corrupted)] {
            let name = format!("c{i:03}-{tag}.warts");
            match predict_verdict(&staging, &name, bytes, rib, threads) {
                Expect::Kept => {
                    expected_kept.push((next_cycle, spool.join(&name)));
                    next_cycle += 1;
                }
                Expect::Quarantined => expected_quarantined.push(name.clone()),
            }
            // Stage-then-rename: the daemon never sees a half-written
            // drop.
            let stage = staging.join(&name);
            if std::fs::write(&stage, bytes).is_err()
                || std::fs::rename(&stage, spool.join(&name)).is_err()
            {
                eprintln!("FAIL: could not drop {name} into the spool");
                wait_failed = true;
                break 'soak;
            }
            dropped += 1;

            // Wait for the drop to settle (ingested or quarantined).
            let started = std::time::Instant::now();
            loop {
                let Some(body) = request("/snapshot", &mut worst_status) else {
                    wait_failed = true;
                    break 'soak;
                };
                let processed = lpr_obs::json::parse(&body)
                    .ok()
                    .and_then(|doc| doc.get("files")?.get("processed")?.as_u64())
                    .unwrap_or(0);
                if processed >= dropped as u64 {
                    break;
                }
                if started.elapsed() > deadline {
                    eprintln!("FAIL: {name} did not settle within {deadline:?}");
                    wait_failed = true;
                    break 'soak;
                }
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            // Liveness probes between drops (the no-5xx clause covers
            // every route, not just /snapshot).
            request("/healthz", &mut worst_status);
            request("/readyz", &mut worst_status);
        }
    }

    let final_snapshot = request("/snapshot", &mut worst_status);
    request("/report/per-as", &mut worst_status);
    let metrics_body = request("/metrics", &mut worst_status);
    // An unknown path must 404, never 5xx.
    request("/definitely-not-a-route", &mut worst_status);
    handle.stop();

    let doc = final_snapshot.as_deref().and_then(|b| lpr_obs::json::parse(b).ok());
    let files_count = |key: &str| -> u64 {
        doc.as_ref()
            .and_then(|d| d.get("files")?.get(key)?.as_u64())
            .unwrap_or(u64::MAX)
    };
    let kept_count = files_count("kept");
    let quarantined_count = files_count("quarantined");
    let pending_count = files_count("pending");

    // (c) exact reconciliation: kept + quarantined == dropped, nothing
    // pending, and both sides match the locally-predicted split.
    let reconciled = !wait_failed
        && kept_count == expected_kept.len() as u64
        && quarantined_count == expected_quarantined.len() as u64
        && kept_count + quarantined_count == dropped as u64
        && pending_count == 0;

    // (b) every corrupted drop is in quarantine, on disk and in the
    // snapshot, each with a structured reason.
    let snapshot_quarantine: Vec<(String, String)> = doc
        .as_ref()
        .and_then(|d| d.get("quarantined_files")?.as_array())
        .unwrap_or_default()
        .iter()
        .filter_map(|row| {
            Some((
                row.get("file")?.as_str()?.to_string(),
                row.get("reason")?.as_str()?.to_string(),
            ))
        })
        .collect();
    let mut quarantine_complete = !wait_failed;
    for name in &expected_quarantined {
        let on_disk = spool.join("quarantine").join(name).is_file();
        let reason_file = spool.join("quarantine").join(format!("{name}.reason.json"));
        let reason_ok = std::fs::read_to_string(&reason_file)
            .ok()
            .and_then(|text| lpr_obs::json::parse(&text).ok())
            .and_then(|r| Some(!r.get("reason")?.as_str()?.is_empty()))
            .unwrap_or(false);
        let in_snapshot =
            snapshot_quarantine.iter().any(|(f, r)| f == name && !r.is_empty());
        if !(on_disk && reason_ok && in_snapshot) {
            eprintln!(
                "FAIL: {name} not fully quarantined \
                 (moved {on_disk}, reason file {reason_ok}, snapshot row {in_snapshot})"
            );
            quarantine_complete = false;
        }
    }

    // (a) clean-subset identity: the served pipeline section must be
    // byte-identical to the batch pipeline over the kept files.
    let serve_pipeline =
        doc.as_ref().and_then(|d| d.get("pipeline")).map(|p| p.render()).unwrap_or_default();
    let batch_pipeline = if wait_failed {
        String::new()
    } else {
        batch_pipeline_render(&expected_kept, rib, threads)
    };
    let identical = !wait_failed && !serve_pipeline.is_empty() && serve_pipeline == batch_pipeline;
    if !identical && !wait_failed {
        eprintln!("FAIL: served snapshot diverges from the batch pipeline over the clean subset");
    }

    // (d) never a 5xx.
    let no_5xx = worst_status < 500;
    if !no_5xx {
        eprintln!("FAIL: observed HTTP status {worst_status}");
    }
    let metrics_sane = metrics_body
        .as_deref()
        .is_some_and(|m| m.contains("serve_reconcile_ticks") && m.contains("serve_files_ingested"));

    let fingerprint_of = |rendered: &str| -> String {
        lpr_obs::json::parse(rendered)
            .ok()
            .and_then(|p| Some(p.get("fingerprint")?.as_str()?.to_string()))
            .unwrap_or_default()
    };
    let passed = identical && quarantine_complete && reconciled && no_5xx && metrics_sane;
    let report = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::Str("serve".to_string())),
        ("cycles".to_string(), JsonValue::Int(cycles as i128)),
        ("chaos_rate".to_string(), JsonValue::Float(chaos_rate)),
        ("seed".to_string(), JsonValue::Int(seed as i128)),
        ("threads".to_string(), JsonValue::Int(threads as i128)),
        (
            "files".to_string(),
            JsonValue::Object(vec![
                ("dropped".to_string(), JsonValue::Int(dropped as i128)),
                ("kept".to_string(), JsonValue::Int(expected_kept.len() as i128)),
                (
                    "quarantined".to_string(),
                    JsonValue::Int(expected_quarantined.len() as i128),
                ),
            ]),
        ),
        (
            "serve_fingerprint".to_string(),
            JsonValue::Str(fingerprint_of(&serve_pipeline)),
        ),
        (
            "batch_fingerprint".to_string(),
            JsonValue::Str(fingerprint_of(&batch_pipeline)),
        ),
        ("clean_subset_identical".to_string(), JsonValue::Bool(identical)),
        ("quarantine_complete".to_string(), JsonValue::Bool(quarantine_complete)),
        ("reconciled".to_string(), JsonValue::Bool(reconciled)),
        ("worst_status".to_string(), JsonValue::Int(worst_status as i128)),
        ("no_5xx".to_string(), JsonValue::Bool(no_5xx)),
        ("metrics_exposed".to_string(), JsonValue::Bool(metrics_sane)),
        ("passed".to_string(), JsonValue::Bool(passed)),
    ]);
    if let Err(e) = std::fs::write(&out_path, report.render_pretty()) {
        eprintln!("FAIL: {out_path}: {e}");
        return 1;
    }
    say!(
        "soak: {dropped} drops -> {} kept, {} quarantined | identity {} | reconcile {} | \
         worst HTTP {worst_status} | wrote {out_path}",
        expected_kept.len(),
        expected_quarantined.len(),
        if identical { "ok" } else { "DIVERGED" },
        if reconciled { "exact" } else { "BROKEN" },
    );
    if keep_spool {
        say!("spool kept at {}", root.display());
    } else {
        let _ = std::fs::remove_dir_all(&root);
    }
    if passed {
        0
    } else {
        1
    }
}

/// `lpr-bench corrupt` — seeded byte corruption of a warts file, the
/// smoke-test helper for the daemon's quarantine path.
fn corrupt_cmd(args: &[String]) -> i32 {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut rate = 0.10f64;
    let mut seed = 1u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--out" => want(&mut it, "--out").map(|v| output = Some(v)),
            "--rate" => want(&mut it, "--rate")
                .and_then(|v| v.parse().map(|f| rate = f).map_err(|e| format!("--rate: {e}"))),
            "--seed" => want(&mut it, "--seed")
                .and_then(|v| v.parse().map(|n| seed = n).map_err(|e| format!("--seed: {e}"))),
            other if !other.starts_with("--") && input.is_none() => {
                input = Some(other.to_string());
                Ok(())
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    let (Some(input), Some(output)) = (input, output) else {
        eprintln!("corrupt wants <in.warts> --out <out.warts>\n{USAGE}");
        return 2;
    };
    let bytes = match std::fs::read(&input) {
        Ok(bytes) => bytes,
        Err(e) => {
            eprintln!("{input}: {e}");
            return 1;
        }
    };
    let (corrupted, counts) = lpr_chaos::corrupt_warts_bytes(&bytes, seed, rate);
    if let Err(e) = std::fs::write(&output, &corrupted) {
        eprintln!("{output}: {e}");
        return 1;
    }
    say!(
        "{input} -> {output}: {} bit flips, {} truncated bodies, {} bad lengths, \
         {} bad magics (rate {rate}, seed {seed})",
        counts.bit_flips,
        counts.truncated_bodies,
        counts.bad_lengths,
        counts.bad_magics,
    );
    0
}

#[cfg(test)]
mod tests {
    use super::parse_rates;

    #[test]
    fn rates_are_sorted_deduped_and_anchored_at_zero() {
        assert_eq!(parse_rates("0.1,0.02,0.02").unwrap(), vec![0.0, 0.02, 0.1]);
        assert_eq!(parse_rates("0,0.05").unwrap(), vec![0.0, 0.05]);
    }

    #[test]
    fn rates_outside_the_unit_interval_are_rejected
    () {
        assert!(parse_rates("1.5").is_err());
        assert!(parse_rates("-0.1").is_err());
        assert!(parse_rates("nope").is_err());
    }
}
