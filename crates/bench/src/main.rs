//! `lpr-bench` — the workspace benchmark harness.
//!
//! A plain binary (no `cargo bench`/Criterion dependency): it drives
//! the demo-scale pipeline through the `lpr-obs` instrumentation and
//! writes the telemetry as `BENCH_pipeline.json`, so CI and the paper's
//! Table 1 timing notes come from the same machinery as `lpr classify
//! --metrics`.
//!
//! ```text
//! lpr-bench pipeline [--out BENCH_pipeline.json] [--snapshots N] [--cycle N]
//! lpr-bench help
//! ```

#![forbid(unsafe_code)]

use lpr_core::pipeline::Pipeline;
use lpr_core::prelude::*;
use lpr_obs::json::JsonValue;
use lpr_obs::Recorder;
use std::io::Write;

/// Prints to stdout, swallowing broken-pipe errors (`lpr-bench ... |
/// head` must not panic).
macro_rules! say {
    ($($arg:tt)*) => {
        let _ = writeln!(std::io::stdout(), $($arg)*);
    };
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("pipeline") => pipeline(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            say!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
lpr-bench — LPR pipeline benchmark harness

USAGE:
  lpr-bench pipeline [--out BENCH_pipeline.json] [--snapshots N] [--cycle N]
  lpr-bench help

`pipeline` generates the standard demo-scale campaign, round-trips it
through the warts codec, runs the full LPR pipeline under lpr-obs
instrumentation, and writes per-stage wall time plus records/sec
throughput as JSON.";

fn pipeline(args: &[String]) -> i32 {
    let mut out_path = "BENCH_pipeline.json".to_string();
    let mut snapshots = 3usize;
    let mut cycle = 40usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let want = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
            it.next().cloned().ok_or_else(|| format!("{flag} wants a value"))
        };
        let parsed = match a.as_str() {
            "--out" => want(&mut it, "--out").map(|v| out_path = v),
            "--snapshots" => want(&mut it, "--snapshots").and_then(|v| {
                v.parse().map(|n| snapshots = n).map_err(|e| format!("--snapshots: {e}"))
            }),
            "--cycle" => want(&mut it, "--cycle").and_then(|v| {
                v.parse().map(|n| cycle = n).map_err(|e| format!("--cycle: {e}"))
            }),
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{USAGE}");
            return 2;
        }
    }
    if snapshots == 0 {
        eprintln!("--snapshots must be at least 1");
        return 2;
    }

    let recorder = Recorder::new("lpr-bench pipeline");

    // Demo-scale campaign: the longitudinal world at one cycle, with
    // enough extra snapshots to feed the Persistence filter.
    let sw = lpr_obs::Stopwatch::start();
    let world = ark_dataset::standard_world();
    let opts = ark_dataset::CampaignOptions { snapshots, ..Default::default() };
    let data = ark_dataset::generate_cycle(&world, cycle, &opts);
    let traces = &data.snapshots[0];
    recorder.record_stage("GenerateCampaign", sw.elapsed_us(), 0, traces.len() as u64);

    // Round-trip through the warts codec so ingest throughput reflects
    // real record decoding, tallied by the stream reader itself.
    let sw = lpr_obs::Stopwatch::start();
    let mut writer = warts::WartsWriter::new();
    let list = writer.list(1, "bench");
    let cyc = writer.cycle_start(list, 1, 0);
    for t in traces {
        writer.trace(&warts::trace_to_record(t, list, cyc)).expect("encode");
    }
    writer.cycle_stop(cyc, 1);
    let bytes = writer.into_bytes();
    recorder.record_stage(
        "WartsEncode",
        sw.elapsed_us(),
        traces.len() as u64,
        bytes.len() as u64,
    );

    let sw = lpr_obs::Stopwatch::start();
    let metrics = warts::StreamMetrics::from_registry(recorder.registry());
    let mut decoded = Vec::new();
    let mut reader = warts::WartsStreamReader::new(bytes.as_slice()).with_metrics(metrics);
    loop {
        match reader.next_record() {
            Ok(Some(warts::Record::Trace(t))) => {
                if let Ok(Some(core)) = warts::trace_to_core(&t) {
                    decoded.push(core);
                }
            }
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => {
                eprintln!("warts decode failed: {e}");
                return 1;
            }
        }
    }
    recorder.record_stage(
        "WartsDecode",
        sw.elapsed_us(),
        bytes.len() as u64,
        decoded.len() as u64,
    );

    // The instrumented pipeline proper.
    let future: Vec<_> =
        data.snapshots[1..].iter().map(|t| Pipeline::snapshot_keys(t)).collect();
    let pipeline = Pipeline::new(FilterConfig {
        persistence_window: future.len(),
        ..Default::default()
    });
    let out = pipeline.run_recorded(&decoded, world.rib(), &future, Some(&recorder));

    let telemetry = recorder.finish();
    let report = render_report(&telemetry, &out);
    if let Err(e) = std::fs::write(&out_path, &report) {
        eprintln!("{out_path}: {e}");
        return 1;
    }

    say!(
        "{} traces, {} LSPs in, {} IOTPs classified, {} us total",
        decoded.len(),
        out.report.input,
        out.iotps.len(),
        telemetry.total_wall_us,
    );
    for s in &telemetry.stages {
        say!(
            "  {:<18} {:>8} -> {:<8} {:>10} us  {:>12.0} items/s",
            s.name,
            s.input,
            s.output,
            s.wall_us,
            s.throughput_per_s(),
        );
    }
    say!("wrote {out_path}");
    0
}

/// Wraps the run telemetry with a derived per-stage throughput table:
/// the telemetry document under `"telemetry"` (still readable with
/// `RunTelemetry::from_json`) plus `"throughput_per_s"` mapping each
/// stage to records/sec.
fn render_report(
    telemetry: &lpr_obs::RunTelemetry,
    out: &lpr_core::pipeline::PipelineOutput,
) -> String {
    let inner = lpr_obs::json::parse(&telemetry.to_json()).expect("own JSON parses");
    let throughput: Vec<(String, JsonValue)> = telemetry
        .stages
        .iter()
        .map(|s| (s.name.clone(), JsonValue::Float(s.throughput_per_s())))
        .collect();
    let doc = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::Str("pipeline".to_string())),
        ("iotps".to_string(), JsonValue::Int(out.iotps.len() as i128)),
        ("lsps_in".to_string(), JsonValue::Int(out.report.input as i128)),
        ("telemetry".to_string(), inner),
        ("throughput_per_s".to_string(), JsonValue::Object(throughput)),
    ]);
    doc.render_pretty()
}
