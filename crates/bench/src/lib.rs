//! # lpr-bench — benchmark support
//!
//! The interesting code lives in `benches/`:
//!
//! * `micro` — substrate micro-benchmarks: warts encode/decode
//!   throughput, longest-prefix-match lookups, SPF/LDP control-plane
//!   computation, traceroute simulation, tunnel extraction and IOTP
//!   classification.
//! * `paper` — one Criterion entry per table/figure regenerator of the
//!   paper's evaluation, at reduced scale (the full-scale regeneration
//!   is `cargo run --release -p experiments -- all`).

#![forbid(unsafe_code)]

/// Builds the standard fixture shared by the benches: one cycle of the
/// longitudinal world plus its RIB.
pub fn bench_cycle() -> (ark_dataset::World, Vec<lpr_core::trace::Trace>) {
    let world = ark_dataset::standard_world();
    let opts = ark_dataset::CampaignOptions { snapshots: 1, ..Default::default() };
    let data = ark_dataset::generate_cycle(&world, 40, &opts);
    let traces = data.snapshots.into_iter().next().expect("one snapshot");
    (world, traces)
}
