//! # lpr-bench — benchmark support
//!
//! The interesting code lives in `benches/`:
//!
//! * `micro` — substrate micro-benchmarks: warts encode/decode
//!   throughput, longest-prefix-match lookups, SPF/LDP control-plane
//!   computation, traceroute simulation, tunnel extraction and IOTP
//!   classification.
//! * `paper` — one Criterion entry per table/figure regenerator of the
//!   paper's evaluation, at reduced scale (the full-scale regeneration
//!   is `cargo run --release -p experiments -- all`).
//!
//! This library holds the pieces of the `lpr-bench` binary that want
//! unit tests: the shared rate/speedup formatters (one source of truth
//! for the stdout table and the JSON report) and the [`compare`]
//! engine behind `lpr-bench compare`.

#![forbid(unsafe_code)]

use lpr_obs::json::JsonValue;

/// Builds the standard fixture shared by the benches: one cycle of the
/// longitudinal world plus its RIB.
pub fn bench_cycle() -> (ark_dataset::World, Vec<lpr_core::trace::Trace>) {
    let world = ark_dataset::standard_world();
    let opts = ark_dataset::CampaignOptions { snapshots: 1, ..Default::default() };
    let data = ark_dataset::generate_cycle(&world, 40, &opts);
    let traces = data.snapshots.into_iter().next().expect("one snapshot");
    (world, traces)
}

/// Items/second over a wall time, or `None` when the wall rounded to
/// 0 µs — a 0-µs stage has no measurable rate, and a fake `0.0` would
/// read as "stalled". Both renderings of the report derive from this
/// one cell (for pipeline stages, `items` is the stage's input count,
/// matching `StageTelemetry::throughput_per_s`).
pub fn throughput_cell(wall_us: u64, items: u64) -> Option<f64> {
    if wall_us == 0 {
        None
    } else {
        Some(items as f64 / (wall_us as f64 / 1e6))
    }
}

/// The stdout rendering of [`throughput_cell`]: `"n/a"` or the rate
/// rounded to whole items/s.
pub fn throughput_text(wall_us: u64, items: u64) -> String {
    match throughput_cell(wall_us, items) {
        None => "n/a".to_string(),
        Some(rate) => format!("{rate:.0}"),
    }
}

/// The JSON rendering of [`throughput_cell`]: `null` or a float.
pub fn throughput_json(wall_us: u64, items: u64) -> JsonValue {
    match throughput_cell(wall_us, items) {
        None => JsonValue::Null,
        Some(rate) => JsonValue::Float(rate),
    }
}

/// Wall-time ratio `reference / wall`, saturating 0-µs measurements to
/// 1 µs so a sweep over an immeasurably fast run reports a finite
/// (and, for the reference row itself, exactly `1.0`) speedup.
pub fn speedup(reference_wall_us: u64, wall_us: u64) -> f64 {
    reference_wall_us.max(1) as f64 / wall_us.max(1) as f64
}

pub mod compare {
    //! The `lpr-bench compare` engine: diffs two `BENCH_pipeline.json`
    //! reports and decides whether the newer one regressed.
    //!
    //! Three classes of check:
    //!
    //! * **Wall time** — per top-level stage (worker rows re-count time
    //!   already in their parent), the current/baseline ratio must stay
    //!   under `1 + threshold`. Stages whose baseline wall is 0 or
    //!   absent are skipped: the committed baseline strips
    //!   nondeterministic timings (see `lpr-bench baseline`), and a
    //!   0-µs measurement has no meaningful ratio.
    //! * **Counts** — IOTPs, input LSPs and every counter present in
    //!   both reports must match *exactly*; these are deterministic for
    //!   a given campaign shape, so any drift is a correctness change,
    //!   not noise.
    //! * **Allocations** — per-stage allocation calls compare like wall
    //!   time (ratio under `1 + threshold`), when both reports carry
    //!   `"allocations"`.

    use super::JsonValue;

    /// One stage's wall-time comparison.
    #[derive(Clone, Debug)]
    pub struct StageRow {
        /// Stage name (top-level stages only).
        pub name: String,
        /// Baseline wall time; `None` when absent or stripped to 0.
        pub baseline_wall_us: Option<u64>,
        /// Current wall time.
        pub current_wall_us: u64,
        /// `current / baseline`, when comparable.
        pub ratio: Option<f64>,
        /// Whether the ratio breached the threshold.
        pub regressed: bool,
    }

    /// An optional report section skipped wholesale: one report carries
    /// it, the other does not (or they are not comparable). Structured
    /// so CI can route "section missing" separately from a hard count
    /// mismatch — a baseline captured before a section existed must not
    /// fail the comparison.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SectionSkip {
        /// Section key in the report document (e.g. `"ingest"`).
        pub section: String,
        /// Why the section was not compared.
        pub reason: String,
    }

    impl SectionSkip {
        fn new(section: &str, reason: &str) -> Self {
            SectionSkip { section: section.to_string(), reason: reason.to_string() }
        }
    }

    /// Everything `lpr-bench compare` decides and reports.
    #[derive(Clone, Debug, Default)]
    pub struct Outcome {
        /// Per-stage wall-time rows, in current-report stage order.
        pub stages: Vec<StageRow>,
        /// Human-readable regression lines (threshold breaches).
        pub regressions: Vec<String>,
        /// Strict count mismatches (always failures).
        pub mismatches: Vec<String>,
        /// Row-level comparisons skipped for lack of a baseline
        /// measurement.
        pub skipped: Vec<String>,
        /// Whole optional sections skipped with a structured reason
        /// (never failures).
        pub sections_skipped: Vec<SectionSkip>,
    }

    impl Outcome {
        /// A comparison passes when nothing regressed or mismatched.
        pub fn passed(&self) -> bool {
            self.regressions.is_empty() && self.mismatches.is_empty()
        }

        /// The diff document CI uploads as an artifact.
        pub fn to_json(&self, threshold: f64) -> String {
            let stages = self
                .stages
                .iter()
                .map(|row| {
                    JsonValue::Object(vec![
                        ("name".to_string(), JsonValue::Str(row.name.clone())),
                        (
                            "baseline_wall_us".to_string(),
                            match row.baseline_wall_us {
                                Some(us) => JsonValue::Int(us as i128),
                                None => JsonValue::Null,
                            },
                        ),
                        (
                            "current_wall_us".to_string(),
                            JsonValue::Int(row.current_wall_us as i128),
                        ),
                        (
                            "ratio".to_string(),
                            match row.ratio {
                                Some(r) => JsonValue::Float(r),
                                None => JsonValue::Null,
                            },
                        ),
                        ("regressed".to_string(), JsonValue::Bool(row.regressed)),
                    ])
                })
                .collect();
            let strs = |items: &[String]| {
                JsonValue::Array(items.iter().map(|s| JsonValue::Str(s.clone())).collect())
            };
            JsonValue::Object(vec![
                ("bench".to_string(), JsonValue::Str("compare".to_string())),
                ("threshold".to_string(), JsonValue::Float(threshold)),
                ("passed".to_string(), JsonValue::Bool(self.passed())),
                ("stages".to_string(), JsonValue::Array(stages)),
                ("regressions".to_string(), strs(&self.regressions)),
                ("mismatches".to_string(), strs(&self.mismatches)),
                ("skipped".to_string(), strs(&self.skipped)),
                (
                    "sections_skipped".to_string(),
                    JsonValue::Array(
                        self.sections_skipped
                            .iter()
                            .map(|s| {
                                JsonValue::Object(vec![
                                    (
                                        "section".to_string(),
                                        JsonValue::Str(s.section.clone()),
                                    ),
                                    ("reason".to_string(), JsonValue::Str(s.reason.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
            .render_pretty()
        }
    }

    fn telemetry_of(report: &JsonValue) -> Option<&JsonValue> {
        report.get("telemetry")
    }

    /// Top-level `(name, wall_us, input, output)` stage rows of a
    /// report, in document order; worker rows (`worker0/...`) excluded.
    fn stage_rows(report: &JsonValue) -> Vec<(String, u64, u64, u64)> {
        let Some(items) = telemetry_of(report)
            .and_then(|t| t.get("stages"))
            .and_then(|s| s.as_array())
        else {
            return Vec::new();
        };
        items
            .iter()
            .filter_map(|s| {
                let name = s.get("name")?.as_str()?.to_string();
                if name.contains('/') {
                    return None;
                }
                Some((
                    name,
                    s.get("wall_us")?.as_u64()?,
                    s.get("input")?.as_u64()?,
                    s.get("output")?.as_u64()?,
                ))
            })
            .collect()
    }

    fn counters_of(report: &JsonValue) -> Vec<(String, u64)> {
        let Some(counters) =
            telemetry_of(report).and_then(|t| t.get("counters")).and_then(|c| c.as_object())
        else {
            return Vec::new();
        };
        counters.iter().filter_map(|(name, v)| Some((name.clone(), v.as_u64()?))).collect()
    }

    fn alloc_rows(report: &JsonValue) -> Vec<(String, u64)> {
        let Some(allocs) = report.get("allocations").and_then(|a| a.as_object()) else {
            return Vec::new();
        };
        allocs
            .iter()
            .filter_map(|(name, v)| Some((name.clone(), v.get("allocs")?.as_u64()?)))
            .collect()
    }

    /// Diffs `current` against `baseline` with a relative wall-time
    /// regression `threshold` (0.5 = fail past 1.5× the baseline).
    pub fn run(current: &JsonValue, baseline: &JsonValue, threshold: f64) -> Outcome {
        let mut outcome = Outcome::default();
        let limit = 1.0 + threshold;

        let base_stages = stage_rows(baseline);
        let base_by_name: std::collections::BTreeMap<&str, (u64, u64, u64)> = base_stages
            .iter()
            .map(|(name, wall, input, output)| (name.as_str(), (*wall, *input, *output)))
            .collect();
        for (name, wall, input, output) in stage_rows(current) {
            let Some(&(base_wall, base_input, base_output)) = base_by_name.get(name.as_str())
            else {
                outcome.skipped.push(format!("{name}: stage absent from baseline"));
                continue;
            };
            if input != base_input || output != base_output {
                outcome.mismatches.push(format!(
                    "{name}: counts {input} -> {output} differ from baseline \
                     {base_input} -> {base_output}"
                ));
            }
            if base_wall == 0 {
                outcome.skipped.push(format!("{name}: baseline carries no wall time"));
                outcome.stages.push(StageRow {
                    name,
                    baseline_wall_us: None,
                    current_wall_us: wall,
                    ratio: None,
                    regressed: false,
                });
                continue;
            }
            let ratio = wall.max(1) as f64 / base_wall as f64;
            let regressed = ratio > limit;
            if regressed {
                outcome.regressions.push(format!(
                    "{name}: wall {wall} us is {ratio:.2}x the baseline {base_wall} us \
                     (limit {limit:.2}x)"
                ));
            }
            outcome.stages.push(StageRow {
                name,
                baseline_wall_us: Some(base_wall),
                current_wall_us: wall,
                ratio: Some(ratio),
                regressed,
            });
        }

        for key in ["iotps", "lsps_in"] {
            match (
                current.get(key).and_then(|v| v.as_u64()),
                baseline.get(key).and_then(|v| v.as_u64()),
            ) {
                (Some(cur), Some(base)) if cur != base => outcome
                    .mismatches
                    .push(format!("{key}: {cur} differs from baseline {base}")),
                (Some(_), Some(_)) => {}
                _ => outcome.skipped.push(format!("{key}: absent from one report")),
            }
        }

        let base_counters: std::collections::BTreeMap<String, u64> =
            counters_of(baseline).into_iter().collect();
        for (name, value) in counters_of(current) {
            if let Some(&base) = base_counters.get(&name) {
                if value != base {
                    outcome.mismatches.push(format!(
                        "counter {name}: {value} differs from baseline {base}"
                    ));
                }
            }
        }

        let base_allocs: std::collections::BTreeMap<String, u64> =
            alloc_rows(baseline).into_iter().collect();
        for (name, allocs) in alloc_rows(current) {
            let Some(&base) = base_allocs.get(&name) else { continue };
            if base == 0 {
                outcome.skipped.push(format!("{name}: baseline carries no allocations"));
                continue;
            }
            let ratio = allocs as f64 / base as f64;
            if ratio > limit {
                outcome.regressions.push(format!(
                    "{name}: {allocs} allocations is {ratio:.2}x the baseline {base} \
                     (limit {limit:.2}x)"
                ));
            }
        }

        // Deterministic out-of-core ingest counts: corpus shape and
        // trace/LSP tallies must match exactly when both reports ran
        // the ingest phase at the same scale. Rates, walls and peak
        // memory in the same section are measurements, never compared.
        match (
            current.get("ingest").filter(|v| v.as_object().is_some()),
            baseline.get("ingest").filter(|v| v.as_object().is_some()),
        ) {
            (Some(cur), Some(base)) => {
                let scale = |v: &JsonValue| v.get("scale").and_then(|s| s.as_u64());
                if scale(cur) != scale(base) {
                    outcome
                        .sections_skipped
                        .push(SectionSkip::new("ingest", "reports ran at different --scale"));
                } else {
                    for key in
                        ["corpus_files", "corpus_bytes", "corpus_records", "traces", "lsps_in"]
                    {
                        match (
                            cur.get(key).and_then(|v| v.as_u64()),
                            base.get(key).and_then(|v| v.as_u64()),
                        ) {
                            (Some(c), Some(b)) if c != b => outcome.mismatches.push(format!(
                                "ingest.{key}: {c} differs from baseline {b}"
                            )),
                            (Some(_), Some(_)) => {}
                            _ => outcome
                                .skipped
                                .push(format!("ingest.{key}: absent from one report")),
                        }
                    }
                }
            }
            (None, None) => {}
            (Some(_), None) => outcome
                .sections_skipped
                .push(SectionSkip::new("ingest", "absent from baseline report")),
            (None, Some(_)) => outcome
                .sections_skipped
                .push(SectionSkip::new("ingest", "absent from current report")),
        }

        // Probe-budget accounting: campaigns are deterministic for a
        // given strategy, so every count in the section must match
        // exactly; only the derived probes-per-destination rate is
        // ratio-checked (it is where a budget regression shows even if
        // the campaign shape legitimately changed size).
        match (
            current.get("probing").filter(|v| v.as_object().is_some()),
            baseline.get("probing").filter(|v| v.as_object().is_some()),
        ) {
            (Some(cur), Some(base)) => {
                let strategy = |v: &JsonValue| {
                    v.get("strategy").and_then(|s| s.as_str()).map(str::to_string)
                };
                if strategy(cur) != strategy(base) {
                    outcome.sections_skipped.push(SectionSkip::new(
                        "probing",
                        "reports used different probing strategies",
                    ));
                } else {
                    for key in [
                        "pairs_total",
                        "pairs_probed",
                        "pairs_pruned",
                        "flows_traced",
                        "probes_sent",
                        "confirmations",
                    ] {
                        match (
                            cur.get(key).and_then(|v| v.as_u64()),
                            base.get(key).and_then(|v| v.as_u64()),
                        ) {
                            (Some(c), Some(b)) if c != b => outcome.mismatches.push(format!(
                                "probing.{key}: {c} differs from baseline {b}"
                            )),
                            (Some(_), Some(_)) => {}
                            _ => outcome
                                .skipped
                                .push(format!("probing.{key}: absent from one report")),
                        }
                    }
                    match (
                        cur.get("probes_per_dst").and_then(|v| v.as_f64()),
                        base.get("probes_per_dst").and_then(|v| v.as_f64()),
                    ) {
                        (Some(c), Some(b)) if b > 0.0 => {
                            if c > b * limit {
                                outcome.regressions.push(format!(
                                    "probing.probes_per_dst: {c:.2} is over {limit:.2}x \
                                     the baseline {b:.2}"
                                ));
                            }
                        }
                        (Some(_), Some(_)) | (None, None) => {}
                        _ => outcome
                            .skipped
                            .push("probing.probes_per_dst: absent from one report".to_string()),
                    }
                }
            }
            (None, None) => {}
            (Some(_), None) => outcome
                .sections_skipped
                .push(SectionSkip::new("probing", "absent from baseline report")),
            (None, Some(_)) => outcome
                .sections_skipped
                .push(SectionSkip::new("probing", "absent from current report")),
        }

        match (
            current.get("campaign_share").and_then(|v| v.as_f64()),
            baseline.get("campaign_share").and_then(|v| v.as_f64()),
        ) {
            (Some(cur), Some(base)) if base > 0.0 => {
                if cur > base * limit {
                    outcome.regressions.push(format!(
                        "campaign_share: {cur:.3} is over {limit:.2}x the baseline \
                         {base:.3}"
                    ));
                }
            }
            _ => outcome
                .sections_skipped
                .push(SectionSkip::new("campaign_share", "no baseline measurement")),
        }

        outcome
    }

    /// Strips the nondeterministic measurements out of a report,
    /// producing the committable baseline form: stage and total wall
    /// times zeroed, throughput nulled, sweep timings, allocation
    /// tallies, SPF cache stats and `campaign_share` removed, and the
    /// `"ingest"` section's rates/walls/peak-memory readings (plus the
    /// elide check's allocation tallies) nulled. Counts, counters, the
    /// golden fingerprint and the whole `"probing"` section stay —
    /// probe budgets are deterministic for a campaign shape — as they
    /// are the deterministic contract `compare` checks strictly.
    pub fn strip_nondeterministic(report: &JsonValue) -> JsonValue {
        let Some(fields) = report.as_object() else {
            return report.clone();
        };
        let kept: Vec<(String, JsonValue)> = fields
            .iter()
            .filter(|(key, _)| {
                !matches!(
                    key.as_str(),
                    "campaign_share"
                        | "allocations"
                        | "thread_sweep"
                        | "campaign_sweep"
                        | "spf_cache"
                )
            })
            .map(|(key, value)| {
                let value = match key.as_str() {
                    "telemetry" => zero_telemetry_walls(value),
                    "throughput_per_s" => JsonValue::Object(
                        value
                            .as_object()
                            .map(|m| m.iter().map(|(k, _)| (k.clone(), JsonValue::Null)).collect())
                            .unwrap_or_default(),
                    ),
                    "ingest" => null_ingest_measurements(value),
                    "unsupported_elide" => null_fields(
                        value,
                        &["kept_alloc_bytes", "elided_alloc_bytes"],
                    ),
                    _ => value.clone(),
                };
                (key.clone(), value)
            })
            .collect();
        JsonValue::Object(kept)
    }

    /// Nulls the measurement fields of the `"ingest"` section, keeping
    /// its deterministic corpus/trace/LSP counts for strict comparison.
    fn null_ingest_measurements(ingest: &JsonValue) -> JsonValue {
        null_fields(
            ingest,
            &["wall_us", "traces_per_s", "bytes_per_s", "peak_resident_bytes", "peak_heap_bytes"],
        )
    }

    fn null_fields(value: &JsonValue, nulled: &[&str]) -> JsonValue {
        let Some(fields) = value.as_object() else {
            return value.clone();
        };
        JsonValue::Object(
            fields
                .iter()
                .map(|(key, v)| {
                    let v = if nulled.contains(&key.as_str()) { JsonValue::Null } else { v.clone() };
                    (key.clone(), v)
                })
                .collect(),
        )
    }

    fn zero_telemetry_walls(telemetry: &JsonValue) -> JsonValue {
        let Some(fields) = telemetry.as_object() else {
            return telemetry.clone();
        };
        JsonValue::Object(
            fields
                .iter()
                .map(|(key, value)| {
                    let value = match key.as_str() {
                        "total_wall_us" => JsonValue::Int(0),
                        "stages" => JsonValue::Array(
                            value
                                .as_array()
                                .map(|stages| stages.iter().map(zero_stage_wall).collect())
                                .unwrap_or_default(),
                        ),
                        _ => value.clone(),
                    };
                    (key.clone(), value)
                })
                .collect(),
        )
    }

    fn zero_stage_wall(stage: &JsonValue) -> JsonValue {
        let Some(fields) = stage.as_object() else {
            return stage.clone();
        };
        JsonValue::Object(
            fields
                .iter()
                .map(|(key, value)| {
                    let value =
                        if key == "wall_us" { JsonValue::Int(0) } else { value.clone() };
                    (key.clone(), value)
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpr_obs::json;

    #[test]
    fn throughput_cells_agree_across_renderings() {
        // 0-µs stage: no measurable rate in either form.
        assert_eq!(throughput_cell(0, 1000), None);
        assert_eq!(throughput_text(0, 1000), "n/a");
        assert_eq!(throughput_json(0, 1000), JsonValue::Null);
        // A measurable stage: 500 items in half a second.
        assert_eq!(throughput_cell(500_000, 500), Some(1000.0));
        assert_eq!(throughput_text(500_000, 500), "1000");
        assert_eq!(throughput_json(500_000, 500), JsonValue::Float(1000.0));
    }

    #[test]
    fn speedup_handles_zero_and_reference_rows() {
        // The single-thread reference row compares against itself.
        assert_eq!(speedup(840, 840), 1.0);
        // 0-µs walls saturate to 1 µs instead of dividing by zero.
        assert_eq!(speedup(0, 0), 1.0);
        assert_eq!(speedup(0, 4), 0.25);
        assert_eq!(speedup(8, 0), 8.0);
        assert_eq!(speedup(900, 300), 3.0);
    }

    fn sample_report(classify_wall: u64) -> json::JsonValue {
        json::parse(&format!(
            r#"{{
              "bench": "pipeline",
              "iotps": 12,
              "lsps_in": 48,
              "campaign_share": 0.4,
              "telemetry": {{
                "label": "t",
                "total_wall_us": {total},
                "threads": 1,
                "stages": [
                  {{"name": "Ingest", "wall_us": 100, "input": 60, "output": 48}},
                  {{"name": "Classification", "wall_us": {classify_wall}, "input": 48, "output": 12}},
                  {{"name": "worker0/Ingest", "wall_us": 90, "input": 60, "output": 48}}
                ],
                "counters": {{"pipeline.traces": 60, "pipeline.traces_kept": 60}}
              }},
              "allocations": {{
                "Pipeline": {{"allocs": 1000, "bytes": 5000}}
              }}
            }}"#,
            total = 100 + classify_wall,
        ))
        .expect("sample parses")
    }

    #[test]
    fn self_compare_passes() {
        let report = sample_report(200);
        let outcome = compare::run(&report, &report, 0.5);
        assert!(outcome.passed(), "{outcome:?}");
        // Worker rows never enter the stage table.
        assert_eq!(outcome.stages.len(), 2);
        assert!(outcome.to_json(0.5).contains("\"passed\": true"));
    }

    #[test]
    fn doubled_stage_wall_is_flagged() {
        let baseline = sample_report(200);
        let outcome = compare::run(&sample_report(400), &baseline, 0.5);
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].starts_with("Classification:"));
        let row = outcome.stages.iter().find(|r| r.name == "Classification").unwrap();
        assert!(row.regressed && row.ratio == Some(2.0));
        assert!(outcome.to_json(0.5).contains("\"passed\": false"));
    }

    #[test]
    fn count_drift_is_a_mismatch_even_when_fast() {
        let baseline = sample_report(200);
        let text = sample_report(100).render_pretty().replace("\"iotps\": 12", "\"iotps\": 11");
        let outcome = compare::run(&json::parse(&text).unwrap(), &baseline, 10.0);
        assert!(!outcome.passed());
        assert!(outcome.mismatches.iter().any(|m| m.starts_with("iotps:")));
    }

    #[test]
    fn counter_drift_is_a_mismatch() {
        let baseline = sample_report(200);
        let text = sample_report(200)
            .render_pretty()
            .replace("\"pipeline.traces_kept\": 60", "\"pipeline.traces_kept\": 59");
        let outcome = compare::run(&json::parse(&text).unwrap(), &baseline, 10.0);
        assert!(!outcome.passed());
        assert!(outcome.mismatches.iter().any(|m| m.contains("pipeline.traces_kept")));
    }

    #[test]
    fn stripped_baseline_skips_wall_checks_but_keeps_counts() {
        let baseline = compare::strip_nondeterministic(&sample_report(200));
        // 10x slower than the (stripped) baseline: walls are skipped...
        let outcome = compare::run(&sample_report(2000), &baseline, 0.1);
        assert!(outcome.passed(), "{outcome:?}");
        assert!(outcome.stages.iter().all(|r| r.ratio.is_none() && !r.regressed));
        assert!(!outcome.skipped.is_empty());
        // ...but count drift still fails against the stripped form.
        let drifted = sample_report(200)
            .render_pretty()
            .replace("\"input\": 60,", "\"input\": 61,");
        let outcome = compare::run(&json::parse(&drifted).unwrap(), &baseline, 0.1);
        assert!(!outcome.passed());
    }

    fn sample_report_with_ingest(traces: u64, wall_us: u64) -> json::JsonValue {
        let base = sample_report(200).render_pretty();
        let with_ingest = base.replacen(
            "\"bench\": \"pipeline\",",
            &format!(
                r#""bench": "pipeline",
                "ingest": {{
                  "scale": 1,
                  "corpus_files": 4,
                  "corpus_bytes": 9000,
                  "corpus_records": 70,
                  "traces": {traces},
                  "lsps_in": 48,
                  "wall_us": {wall_us},
                  "traces_per_s": 123.0,
                  "bytes_per_s": 456.0,
                  "peak_resident_bytes": 1048576,
                  "peak_heap_bytes": 2048
                }},"#
            ),
            1,
        );
        json::parse(&with_ingest).expect("ingest sample parses")
    }

    #[test]
    fn missing_optional_section_is_a_structured_skip_not_a_failure() {
        // Baseline predates the ingest section: the comparison still
        // passes, and the absence is reported structurally (section +
        // reason), not as a count mismatch or a bare string.
        let outcome = compare::run(&sample_report_with_ingest(60, 100), &sample_report(200), 0.5);
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(
            outcome.sections_skipped,
            vec![compare::SectionSkip {
                section: "ingest".to_string(),
                reason: "absent from baseline report".to_string(),
            }]
        );
        assert!(
            !outcome.skipped.iter().any(|s| s.starts_with("ingest")),
            "section-level skip must not leak into the row-level list: {outcome:?}"
        );
        let json = outcome.to_json(0.5);
        assert!(json.contains("\"sections_skipped\""), "{json}");
        assert!(json.contains("\"section\": \"ingest\""), "{json}");
        assert!(json.contains("\"reason\": \"absent from baseline report\""), "{json}");

        // The mirror direction names the other report.
        let outcome = compare::run(&sample_report(200), &sample_report_with_ingest(60, 100), 0.5);
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(outcome.sections_skipped[0].reason, "absent from current report");
    }

    #[test]
    fn ingest_count_drift_is_a_mismatch_but_rates_are_not_compared() {
        let baseline = sample_report_with_ingest(60, 100);
        // Slower wall, same counts: passes.
        let outcome = compare::run(&sample_report_with_ingest(60, 99_000), &baseline, 0.1);
        assert!(outcome.passed(), "{outcome:?}");
        // Trace-count drift: strict failure.
        let outcome = compare::run(&sample_report_with_ingest(59, 100), &baseline, 10.0);
        assert!(!outcome.passed());
        assert!(outcome.mismatches.iter().any(|m| m.starts_with("ingest.traces:")));
    }

    #[test]
    fn stripped_ingest_keeps_counts_and_nulls_measurements() {
        let stripped = compare::strip_nondeterministic(&sample_report_with_ingest(60, 100));
        let ingest = stripped.get("ingest").expect("ingest survives the strip");
        assert_eq!(ingest.get("traces").and_then(|v| v.as_u64()), Some(60));
        assert_eq!(ingest.get("corpus_bytes").and_then(|v| v.as_u64()), Some(9000));
        for key in
            ["wall_us", "traces_per_s", "bytes_per_s", "peak_resident_bytes", "peak_heap_bytes"]
        {
            assert_eq!(ingest.get(key), Some(&JsonValue::Null), "{key} should be nulled");
        }
        // The stripped form still count-checks strictly against a drift.
        let outcome = compare::run(&sample_report_with_ingest(59, 100), &stripped, 10.0);
        assert!(!outcome.passed());
    }

    fn sample_report_with_probing(probes_sent: u64, probes_per_dst: f64) -> json::JsonValue {
        let base = sample_report(200).render_pretty();
        let with_probing = base.replacen(
            "\"bench\": \"pipeline\",",
            &format!(
                r#""bench": "pipeline",
                "probing": {{
                  "strategy": "mda-lite",
                  "pairs_total": 648,
                  "pairs_probed": 500,
                  "pairs_pruned": 148,
                  "flows_traced": 500,
                  "probes_sent": {probes_sent},
                  "confirmations": 0,
                  "probes_per_dst": {probes_per_dst}
                }},"#
            ),
            1,
        );
        json::parse(&with_probing).expect("probing sample parses")
    }

    #[test]
    fn probing_self_compare_passes_and_absence_is_a_structured_skip() {
        let report = sample_report_with_probing(4000, 6.17);
        let outcome = compare::run(&report, &report, 0.5);
        assert!(outcome.passed(), "{outcome:?}");
        assert!(outcome.sections_skipped.is_empty(), "{outcome:?}");

        // A baseline predating the section: structured skip, not a failure.
        let outcome = compare::run(&report, &sample_report(200), 0.5);
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(
            outcome.sections_skipped,
            vec![compare::SectionSkip {
                section: "probing".to_string(),
                reason: "absent from baseline report".to_string(),
            }]
        );
    }

    #[test]
    fn doubled_probe_budget_is_a_regression() {
        let baseline = sample_report_with_probing(4000, 6.17);
        // Exact-count drift: strict mismatch even at a huge threshold.
        let outcome = compare::run(&sample_report_with_probing(8000, 6.17), &baseline, 10.0);
        assert!(!outcome.passed());
        assert!(outcome.mismatches.iter().any(|m| m.starts_with("probing.probes_sent:")));
        // The derived rate alone doubling: a threshold regression.
        let outcome = compare::run(&sample_report_with_probing(4000, 12.34), &baseline, 0.5);
        assert!(!outcome.passed());
        assert!(
            outcome.regressions.iter().any(|r| r.starts_with("probing.probes_per_dst:")),
            "{outcome:?}"
        );
    }

    #[test]
    fn probing_strategy_mismatch_is_a_structured_skip() {
        let baseline = sample_report_with_probing(4000, 6.17);
        let text = sample_report_with_probing(9999, 99.0)
            .render_pretty()
            .replace("\"strategy\": \"mda-lite\"", "\"strategy\": \"exhaustive\"");
        let outcome = compare::run(&json::parse(&text).unwrap(), &baseline, 0.5);
        // Different strategies are not comparable: no count mismatch.
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(outcome.sections_skipped[0].section, "probing");
        assert_eq!(
            outcome.sections_skipped[0].reason,
            "reports used different probing strategies"
        );
    }

    #[test]
    fn strip_keeps_the_probing_section_wholesale() {
        let stripped =
            compare::strip_nondeterministic(&sample_report_with_probing(4000, 6.17));
        let probing = stripped.get("probing").expect("probing survives the strip");
        assert_eq!(probing.get("probes_sent").and_then(|v| v.as_u64()), Some(4000));
        assert_eq!(probing.get("probes_per_dst").and_then(|v| v.as_f64()), Some(6.17));
        // The stripped form still count-checks strictly.
        let outcome = compare::run(&sample_report_with_probing(3999, 6.17), &stripped, 10.0);
        assert!(!outcome.passed());
    }

    #[test]
    fn doubled_allocations_are_flagged() {
        let baseline = sample_report(200);
        let text =
            sample_report(200).render_pretty().replace("\"allocs\": 1000", "\"allocs\": 2500");
        let outcome = compare::run(&json::parse(&text).unwrap(), &baseline, 0.5);
        assert!(!outcome.passed());
        assert!(outcome.regressions.iter().any(|r| r.contains("allocations")));
    }
}
