//! Property tests for the warts codec.
//!
//! 1. Arbitrary trace records survive a write→read roundtrip bit-exact.
//! 2. Arbitrary byte soup never panics the reader (it may error).
//! 3. Bit-flip corruption of a valid file never panics the reader.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use warts::{
    HopRecord, IcmpExt, PingRecord, PingReply, Record, StopReason, TraceRecord, WartsReader,
    WartsWriter,
};
use lpr_core::label::{LabelStack, Lse};

fn arb_addr() -> impl Strategy<Value = warts::Addr> {
    any::<u32>().prop_map(|v| warts::Addr::V4(Ipv4Addr::from(v)))
}

fn arb_stack() -> impl Strategy<Value = LabelStack> {
    proptest::collection::vec((0u32..=0xFFFFF, 0u8..8, any::<bool>(), any::<u8>()), 0..4)
        .prop_map(|entries| {
            entries
                .into_iter()
                .map(|(l, tc, s, ttl)| Lse::new(lpr_core::label::Label::new(l), tc, s, ttl))
                .collect()
        })
}

prop_compose! {
    fn arb_hop()(
        addr in arb_addr(),
        probe_ttl in 1u8..64,
        rtt in 0u32..10_000_000,
        reply_ttl in proptest::option::of(any::<u8>()),
        probe_id in proptest::option::of(any::<u8>()),
        icmp_tc in proptest::option::of(any::<u16>()),
        reply_size in proptest::option::of(any::<u16>()),
        quoted_ttl in proptest::option::of(any::<u8>()),
        stack in arb_stack(),
    ) -> HopRecord {
        let mut h = HopRecord::reply(probe_ttl, addr, rtt);
        h.reply_ttl = reply_ttl;
        h.probe_id = probe_id;
        h.icmp_type_code = icmp_tc;
        h.reply_size = reply_size;
        h.quoted_ttl = quoted_ttl;
        if !stack.is_empty() {
            h.icmp_exts = vec![IcmpExt::mpls(&stack)];
        }
        h
    }
}

prop_compose! {
    fn arb_trace()(
        src in arb_addr(),
        dst in arb_addr(),
        start in proptest::option::of((any::<u32>(), 0u32..1_000_000)),
        completed in any::<bool>(),
        hops in proptest::collection::vec(arb_hop(), 0..12),
    ) -> TraceRecord {
        let mut t = TraceRecord::new(src, dst);
        t.start = start;
        t.stop_reason = if completed { StopReason::Completed } else { StopReason::GapLimit };
        t.hops = hops;
        t
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn roundtrip_traces(traces in proptest::collection::vec(arb_trace(), 1..8)) {
        let mut w = WartsWriter::new();
        let list = w.list(1, "prop");
        let cycle = w.cycle_start(list, 1, 0);
        for t in &traces {
            w.trace(t).unwrap();
        }
        w.cycle_stop(cycle, 1);
        let bytes = w.into_bytes();

        let mut reader = WartsReader::new(&bytes);
        let mut got = Vec::new();
        while let Some(rec) = reader.next_record().unwrap() {
            if let Record::Trace(t) = rec {
                got.push(t);
            }
        }
        // list/cycle ids are filled in by the writer's defaults; compare
        // the payload fields.
        prop_assert_eq!(got.len(), traces.len());
        for (g, t) in got.iter().zip(&traces) {
            prop_assert_eq!(g.src, t.src);
            prop_assert_eq!(g.dst, t.dst);
            prop_assert_eq!(g.start, t.start);
            prop_assert_eq!(g.stop_reason, t.stop_reason);
            prop_assert_eq!(&g.hops, &t.hops);
        }
    }

    #[test]
    fn roundtrip_pings(
        src in arb_addr(),
        dst in arb_addr(),
        rtts in proptest::collection::vec(0u32..10_000_000, 0..6),
        stop in proptest::option::of(any::<u8>()),
    ) {
        let mut rec = PingRecord::new(src, dst);
        rec.stop_reason = stop;
        rec.ping_sent = Some(rtts.len() as u16);
        rec.replies = rtts
            .iter()
            .enumerate()
            .map(|(i, &rtt)| {
                let mut r = PingReply::echo(dst, rtt);
                r.probe_id = Some(i as u16);
                r
            })
            .collect();
        let mut w = WartsWriter::new();
        w.ping(&rec).unwrap();
        let bytes = w.into_bytes();
        let mut reader = WartsReader::new(&bytes);
        match reader.next_record().unwrap().unwrap() {
            Record::Ping(back) => prop_assert_eq!(back, rec),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut reader = WartsReader::new(&bytes);
        // Either records or an error — never a panic, never an infinite
        // loop (bounded by input length).
        let mut n = 0usize;
        loop {
            match reader.next_record() {
                Ok(None) => break,
                Ok(Some(_)) => n += 1,
                Err(_) => break,
            }
            prop_assert!(n <= bytes.len());
        }
    }

    #[test]
    fn corrupted_valid_file_never_panics(
        trace in arb_trace(),
        flip_at in any::<proptest::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut w = WartsWriter::new();
        w.trace(&trace).unwrap();
        let mut bytes = w.into_bytes();
        if !bytes.is_empty() {
            let i = flip_at.index(bytes.len());
            bytes[i] ^= 1 << flip_bit;
        }
        let mut reader = WartsReader::new(&bytes);
        while let Ok(Some(_)) = reader.next_record() {}
    }
}
