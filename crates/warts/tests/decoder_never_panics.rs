//! Decoder-never-panics: the warts readers survive arbitrary
//! corruption of real streams.
//!
//! `lpr-chaos` corrupts a realistic encoded stream (bit flips, cut
//! bodies, inflated lengths, smashed magics) across more than a
//! thousand seeded cases; the strict reader may error but must not
//! panic, and the lenient reader must additionally drain every stream
//! to a clean end with reconciling skip counts.

use lpr_chaos::corrupt_warts_bytes;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use warts::{
    HopRecord, IcmpExt, Record, SkipReason, TraceRecord, WartsReader, WartsStreamReader,
};
use lpr_core::label::Lse;

fn a(o: u8) -> warts::Addr {
    warts::Addr::V4(Ipv4Addr::new(10, 0, 0, o))
}

/// A realistic stream: list, cycle, MPLS-labelled traces sharing
/// dictionary addresses, cycle stop.
fn sample_stream() -> Vec<u8> {
    let mut w = warts::WartsWriter::new();
    let list = w.list(1, "chaos");
    let cycle = w.cycle_start(list, 1, 0);
    for i in 0..6u8 {
        let mut t = TraceRecord::new(a(1), a(200 + i % 8));
        let mut labelled = HopRecord::reply(2, a(20 + i), 900);
        labelled.icmp_exts = vec![IcmpExt::mpls(
            &[Lse::transit(1000 + i as u32, 254), Lse::transit(7, 253)]
                .into_iter()
                .collect(),
        )];
        t.hops = vec![
            HopRecord::reply(1, a(10 + i), 500),
            labelled,
            HopRecord::reply(3, a(200 + i % 8), 1500),
        ];
        w.trace(&t).unwrap();
    }
    w.cycle_stop(cycle, 6);
    w.into_bytes()
}

/// Drains a lenient reader; panics bubble to proptest, errors fail the
/// property (a byte slice cannot produce IO errors, so lenient mode
/// must always reach a clean end).
fn drain_lenient(bytes: &[u8]) -> (u64, u64) {
    let mut r = WartsStreamReader::new(bytes).lenient();
    let mut decoded = 0u64;
    while r.next_record().expect("lenient over in-memory bytes cannot error").is_some() {
        decoded += 1;
    }
    let per_reason: u64 = SkipReason::ALL
        .iter()
        .map(|rs| r.skip_counts().get(rs).copied().unwrap_or(0))
        .sum();
    assert_eq!(per_reason, r.skipped_total(), "per-reason counts cover every skip");
    (decoded, r.skipped_total())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(550))]

    /// ≥550 corrupted streams: strict may error, lenient must survive.
    #[test]
    fn corrupted_streams_never_panic(seed in any::<u64>(), rate in 0.01f64..1.0) {
        let (bytes, counts) = corrupt_warts_bytes(&sample_stream(), seed, rate);

        // Strict streaming: drain until first error or clean end.
        let mut strict = WartsStreamReader::new(bytes.as_slice());
        while let Ok(Some(_)) = strict.next_record() {}

        // Strict batch reader over the same bytes.
        let mut batch = WartsReader::new(&bytes);
        while let Ok(Some(_)) = batch.next_record() {}

        // Lenient streaming: always a clean end, and when corruption
        // actually landed somewhere, it is either absorbed by a skip or
        // harmless to decode — but never fatal.
        let (decoded, _skipped) = drain_lenient(&bytes);
        let total = 14u64; // list + cycle start/stop + 6 traces + addr use
        prop_assert!(decoded <= total);
        if counts.total() == 0 {
            let (all, skipped) = drain_lenient(&sample_stream());
            prop_assert_eq!(all, 9, "pristine stream decodes fully");
            prop_assert_eq!(skipped, 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(500))]

    /// ≥500 corrupted *trace-record* streams plus raw byte soup mixed
    /// in: lenient decode of whatever survives feeds the core
    /// conversion without panicking either.
    #[test]
    fn salvaged_records_convert_without_panicking(
        seed in any::<u64>(),
        rate in 0.05f64..0.6,
        soup in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut bytes = sample_stream();
        let split = bytes.len() / 2;
        // Splice garbage mid-stream, then corrupt the whole thing.
        let mut spliced = bytes[..split].to_vec();
        spliced.extend_from_slice(&soup);
        spliced.extend_from_slice(&bytes[split..]);
        bytes = corrupt_warts_bytes(&spliced, seed, rate).0;

        let mut r = WartsStreamReader::new(bytes.as_slice()).lenient();
        while let Some(rec) = r.next_record().expect("lenient cannot error on bytes") {
            if let Record::Trace(t) = rec {
                // Salvaged records may still carry nonsense; conversion
                // may reject them but must not panic.
                let _ = warts::trace_to_core(&t);
            }
        }
    }
}
