//! The warts dictionary-coded address scheme.
//!
//! Addresses appear many times in a trace file, so warts dictionary-
//! codes them per file: the first occurrence is embedded as
//! `u8 length ‖ u8 type ‖ bytes` and implicitly assigns the next
//! sequential table id; every later occurrence is `u8 0 ‖ u32 id`.
//! Reader and writer therefore both carry a table that persists across
//! records of the same file.

use crate::buf::Cursor;
use crate::error::WartsError;
use bytes::{BufMut, BytesMut};
use std::collections::HashMap;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Address type code for IPv4.
pub const ADDR_TYPE_IPV4: u8 = 1;
/// Address type code for IPv6.
pub const ADDR_TYPE_IPV6: u8 = 2;

/// A network address as stored in warts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Addr {
    /// An IPv4 address.
    V4(Ipv4Addr),
    /// An IPv6 address (carried for completeness; the LPR analysis is
    /// IPv4-only, like the paper's dataset).
    V6(Ipv6Addr),
}

impl Addr {
    /// The IPv4 address, when this is one.
    pub fn as_v4(&self) -> Option<Ipv4Addr> {
        match self {
            Addr::V4(a) => Some(*a),
            Addr::V6(_) => None,
        }
    }
}

impl From<Ipv4Addr> for Addr {
    fn from(a: Ipv4Addr) -> Self {
        Addr::V4(a)
    }
}

impl From<Ipv6Addr> for Addr {
    fn from(a: Ipv6Addr) -> Self {
        Addr::V6(a)
    }
}

/// Reader-side address table.
#[derive(Clone, Debug, Default)]
pub struct AddrTableReader {
    table: Vec<Addr>,
}

impl AddrTableReader {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// A table preloaded with a file's full dictionary, in table-id
    /// order (as captured by [`AddrTableReader::snapshot`] at the end
    /// of a sequential pass).
    ///
    /// Re-decoding any record of the same file against the preloaded
    /// table yields the addresses the sequential decode saw: reference
    /// ids always resolve (the full table is a superset of every
    /// prefix), and embed-form occurrences append duplicates past the
    /// preload, which nothing references.
    pub fn from_table(table: Vec<Addr>) -> Self {
        AddrTableReader { table }
    }

    /// The dictionary learned so far, in table-id order.
    pub fn snapshot(&self) -> Vec<Addr> {
        self.table.clone()
    }

    /// Number of addresses learned so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when no address has been learned.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Decodes one address parameter, updating the table on first
    /// occurrences.
    pub fn read(&mut self, cur: &mut Cursor<'_>) -> Result<Addr, WartsError> {
        let len = cur.u8("address length")?;
        if len == 0 {
            let id = cur.u32("address id")?;
            return self
                .table
                .get(id as usize)
                .copied()
                .ok_or(WartsError::UnknownAddrId { id });
        }
        let type_code = cur.u8("address type")?;
        let addr = match (type_code, len) {
            (ADDR_TYPE_IPV4, 4) => {
                let b = cur.bytes(4, "IPv4 address")?;
                Addr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3]))
            }
            (ADDR_TYPE_IPV6, 16) => {
                let b = cur.bytes(16, "IPv6 address")?;
                let mut oct = [0u8; 16];
                oct.copy_from_slice(b);
                Addr::V6(Ipv6Addr::from(oct))
            }
            _ => return Err(WartsError::BadAddrType { type_code, len }),
        };
        self.table.push(addr);
        Ok(addr)
    }
}

/// Writer-side address table.
#[derive(Clone, Debug, Default)]
pub struct AddrTableWriter {
    ids: HashMap<Addr, u32>,
}

impl AddrTableWriter {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes one address parameter, updating the table on first
    /// occurrences.
    pub fn write(&mut self, buf: &mut BytesMut, addr: Addr) {
        if let Some(&id) = self.ids.get(&addr) {
            buf.put_u8(0);
            buf.put_u32(id);
            return;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(addr, id);
        match addr {
            Addr::V4(a) => {
                buf.put_u8(4);
                buf.put_u8(ADDR_TYPE_IPV4);
                buf.put_slice(&a.octets());
            }
            Addr::V6(a) => {
                buf.put_u8(16);
                buf.put_u8(ADDR_TYPE_IPV6);
                buf.put_slice(&a.octets());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_occurrence_embeds_then_references() {
        let a: Addr = Ipv4Addr::new(10, 0, 0, 1).into();
        let b: Addr = Ipv4Addr::new(10, 0, 0, 2).into();
        let mut w = AddrTableWriter::new();
        let mut buf = BytesMut::new();
        w.write(&mut buf, a); // embedded: 6 bytes
        w.write(&mut buf, b); // embedded: 6 bytes
        w.write(&mut buf, a); // reference: 5 bytes
        assert_eq!(buf.len(), 6 + 6 + 5);

        let mut r = AddrTableReader::new();
        let mut cur = Cursor::new(&buf);
        assert_eq!(r.read(&mut cur).unwrap(), a);
        assert_eq!(r.read(&mut cur).unwrap(), b);
        assert_eq!(r.read(&mut cur).unwrap(), a);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn ipv6_roundtrip() {
        let a: Addr = "2001:db8::1".parse::<Ipv6Addr>().unwrap().into();
        let mut w = AddrTableWriter::new();
        let mut buf = BytesMut::new();
        w.write(&mut buf, a);
        let mut r = AddrTableReader::new();
        assert_eq!(r.read(&mut Cursor::new(&buf)).unwrap(), a);
        assert_eq!(a.as_v4(), None);
    }

    #[test]
    fn dangling_reference_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(0);
        buf.put_u32(3);
        let mut r = AddrTableReader::new();
        assert_eq!(
            r.read(&mut Cursor::new(&buf)),
            Err(WartsError::UnknownAddrId { id: 3 })
        );
    }

    #[test]
    fn bad_type_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u8(4);
        buf.put_u8(9); // bogus type code
        buf.put_slice(&[1, 2, 3, 4]);
        let mut r = AddrTableReader::new();
        assert_eq!(
            r.read(&mut Cursor::new(&buf)),
            Err(WartsError::BadAddrType { type_code: 9, len: 4 })
        );
    }

    #[test]
    fn table_state_is_shared_across_records() {
        // Simulates two records in one file: the second references an
        // address the first embedded.
        let a: Addr = Ipv4Addr::new(192, 0, 2, 1).into();
        let mut w = AddrTableWriter::new();
        let mut rec1 = BytesMut::new();
        w.write(&mut rec1, a);
        let mut rec2 = BytesMut::new();
        w.write(&mut rec2, a);
        assert_eq!(rec2.len(), 5);

        let mut r = AddrTableReader::new();
        r.read(&mut Cursor::new(&rec1)).unwrap();
        assert_eq!(r.read(&mut Cursor::new(&rec2)).unwrap(), a);
    }
}
