//! The warts *traceroute* record (type 0x06).
//!
//! A trace record is: a flag-encoded parameter block describing the
//! measurement (addresses, start time, stop reason, hop count, …),
//! followed by `hop count` flag-encoded hop records. Addresses use the
//! file-wide dictionary ([`crate::addr`]); MPLS label stacks ride in
//! the ICMP-extension hop parameter ([`crate::icmpext`]).
//!
//! Flag numbers follow scamper's `scamper_file_warts.c`. Deprecated
//! global-address-id parameters (trace flags 3/4, hop flag 1) are
//! recognised and rejected with [`WartsError::Unsupported`] rather than
//! misparsed.

use crate::addr::{Addr, AddrTableReader, AddrTableWriter};
use crate::buf::{put_timeval, Cursor};
use crate::error::WartsError;
use crate::flags::{read_params, ParamWriter};
use crate::icmpext::{read_exts, write_exts, IcmpExt};
use bytes::{BufMut, BytesMut};

// Trace parameter flags (1-based, scamper order).
const T_LIST_ID: u16 = 1;
const T_CYCLE_ID: u16 = 2;
const T_ADDR_SRC_GID: u16 = 3; // deprecated
const T_ADDR_DST_GID: u16 = 4; // deprecated
const T_START: u16 = 5;
const T_STOP_REASON: u16 = 6;
const T_STOP_DATA: u16 = 7;
const T_FLAGS: u16 = 8;
const T_ATTEMPTS: u16 = 9;
const T_HOPLIMIT: u16 = 10;
const T_TYPE: u16 = 11;
const T_PROBE_SIZE: u16 = 12;
const T_PORT_SRC: u16 = 13;
const T_PORT_DST: u16 = 14;
const T_FIRSTHOP: u16 = 15;
const T_TOS: u16 = 16;
const T_WAIT: u16 = 17;
const T_LOOPS: u16 = 18;
const T_HOPCOUNT: u16 = 19;
const T_GAPLIMIT: u16 = 20;
const T_GAPACTION: u16 = 21;
const T_LOOPACTION: u16 = 22;
const T_PROBEC: u16 = 23;
const T_WAITPROBE: u16 = 24;
const T_CONFIDENCE: u16 = 25;
const T_ADDR_SRC: u16 = 26;
const T_ADDR_DST: u16 = 27;
const T_USERID: u16 = 28;
const T_OFFSET: u16 = 29;

// Hop parameter flags (1-based, scamper order).
const H_ADDR_GID: u16 = 1; // deprecated
const H_PROBE_TTL: u16 = 2;
const H_REPLY_TTL: u16 = 3;
const H_FLAGS: u16 = 4;
const H_PROBE_ID: u16 = 5;
const H_RTT: u16 = 6;
const H_ICMP_TC: u16 = 7;
const H_PROBE_SIZE: u16 = 8;
const H_REPLY_SIZE: u16 = 9;
const H_REPLY_IPID: u16 = 10;
const H_REPLY_TOS: u16 = 11;
const H_NHMTU: u16 = 12;
const H_Q_IPLEN: u16 = 13;
const H_Q_IPTTL: u16 = 14;
const H_TCP_FLAGS: u16 = 15;
const H_Q_IPTOS: u16 = 16;
const H_ICMPEXT: u16 = 17;
const H_ADDR: u16 = 18;

/// Why a traceroute stopped (scamper `stop_reason` codes).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
#[repr(u8)]
pub enum StopReason {
    /// No stop reason recorded.
    #[default]
    None = 0,
    /// The destination replied: trace completed.
    Completed = 1,
    /// An ICMP destination-unreachable was received.
    Unreach = 2,
    /// Some other ICMP message stopped the trace.
    Icmp = 3,
    /// A forwarding loop was detected.
    Loop = 4,
    /// Too many consecutive unresponsive hops.
    GapLimit = 5,
    /// A measurement error occurred.
    Error = 6,
    /// The hop limit was exhausted.
    HopLimit = 7,
}

impl StopReason {
    /// Decodes a scamper stop-reason code (unknown codes map to
    /// [`StopReason::Error`]; the trace is still usable).
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => StopReason::None,
            1 => StopReason::Completed,
            2 => StopReason::Unreach,
            3 => StopReason::Icmp,
            4 => StopReason::Loop,
            5 => StopReason::GapLimit,
            7 => StopReason::HopLimit,
            _ => StopReason::Error,
        }
    }
}

/// One hop (one reply) of a trace record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HopRecord {
    /// Replying address.
    pub addr: Addr,
    /// TTL of the probe that elicited the reply.
    pub probe_ttl: u8,
    /// TTL of the reply packet when it arrived.
    pub reply_ttl: Option<u8>,
    /// Attempt number.
    pub probe_id: Option<u8>,
    /// Round-trip time in microseconds.
    pub rtt_us: u32,
    /// ICMP type (high byte) and code (low byte).
    pub icmp_type_code: Option<u16>,
    /// Probe size in bytes.
    pub probe_size: Option<u16>,
    /// Reply size in bytes.
    pub reply_size: Option<u16>,
    /// IP-ID of the reply.
    pub reply_ipid: Option<u16>,
    /// TOS byte of the reply.
    pub reply_tos: Option<u8>,
    /// Quoted TTL from the embedded packet.
    pub quoted_ttl: Option<u8>,
    /// ICMP extension objects (RFC 4884), including RFC 4950 MPLS.
    pub icmp_exts: Vec<IcmpExt>,
}

impl HopRecord {
    /// A plain reply hop with the fields every scamper hop carries.
    pub fn reply(probe_ttl: u8, addr: Addr, rtt_us: u32) -> Self {
        HopRecord {
            addr,
            probe_ttl,
            reply_ttl: None,
            probe_id: None,
            rtt_us,
            icmp_type_code: Some(0x0B00), // time-exceeded, code 0
            probe_size: None,
            reply_size: None,
            reply_ipid: None,
            reply_tos: None,
            quoted_ttl: None,
            icmp_exts: Vec::new(),
        }
    }

    /// Encodes one hop via `p`, a reusable (cleared) scratch writer.
    fn write(&self, out: &mut BytesMut, addrs: &mut AddrTableWriter, p: &mut ParamWriter) {
        p.param(H_PROBE_TTL).put_u8(self.probe_ttl);
        if let Some(v) = self.reply_ttl {
            p.param(H_REPLY_TTL).put_u8(v);
        }
        if let Some(v) = self.probe_id {
            p.param(H_PROBE_ID).put_u8(v);
        }
        p.param(H_RTT).put_u32(self.rtt_us);
        if let Some(v) = self.icmp_type_code {
            p.param(H_ICMP_TC).put_u16(v);
        }
        if let Some(v) = self.probe_size {
            p.param(H_PROBE_SIZE).put_u16(v);
        }
        if let Some(v) = self.reply_size {
            p.param(H_REPLY_SIZE).put_u16(v);
        }
        if let Some(v) = self.reply_ipid {
            p.param(H_REPLY_IPID).put_u16(v);
        }
        if let Some(v) = self.reply_tos {
            p.param(H_REPLY_TOS).put_u8(v);
        }
        if let Some(v) = self.quoted_ttl {
            p.param(H_Q_IPTTL).put_u8(v);
        }
        if !self.icmp_exts.is_empty() {
            write_exts(p.param(H_ICMPEXT), &self.icmp_exts);
        }
        addrs.write(p.param(H_ADDR), self.addr);
        p.finish_reset(out);
    }

    fn read(cur: &mut Cursor<'_>, addrs: &mut AddrTableReader) -> Result<Self, WartsError> {
        let (flags, mut params) = read_params(cur, "hop params")?;
        let mut addr = None;
        let mut hop = HopRecord {
            addr: Addr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            probe_ttl: 0,
            reply_ttl: None,
            probe_id: None,
            rtt_us: 0,
            icmp_type_code: None,
            probe_size: None,
            reply_size: None,
            reply_ipid: None,
            reply_tos: None,
            quoted_ttl: None,
            icmp_exts: Vec::new(),
        };
        for flag in flags.iter() {
            match flag {
                H_ADDR_GID => {
                    return Err(WartsError::Unsupported { feature: "hop global address id" })
                }
                H_PROBE_TTL => hop.probe_ttl = params.u8("hop probe ttl")?,
                H_REPLY_TTL => hop.reply_ttl = Some(params.u8("hop reply ttl")?),
                H_FLAGS => {
                    params.u8("hop flags")?;
                }
                H_PROBE_ID => hop.probe_id = Some(params.u8("hop probe id")?),
                H_RTT => hop.rtt_us = params.u32("hop rtt")?,
                H_ICMP_TC => hop.icmp_type_code = Some(params.u16("hop icmp tc")?),
                H_PROBE_SIZE => hop.probe_size = Some(params.u16("hop probe size")?),
                H_REPLY_SIZE => hop.reply_size = Some(params.u16("hop reply size")?),
                H_REPLY_IPID => hop.reply_ipid = Some(params.u16("hop reply ipid")?),
                H_REPLY_TOS => hop.reply_tos = Some(params.u8("hop reply tos")?),
                H_NHMTU => {
                    params.u16("hop nhmtu")?;
                }
                H_Q_IPLEN => {
                    params.u16("hop quoted iplen")?;
                }
                H_Q_IPTTL => hop.quoted_ttl = Some(params.u8("hop quoted ttl")?),
                H_TCP_FLAGS => {
                    params.u8("hop tcp flags")?;
                }
                H_Q_IPTOS => {
                    params.u8("hop quoted tos")?;
                }
                H_ICMPEXT => hop.icmp_exts = read_exts(&mut params)?,
                H_ADDR => addr = Some(addrs.read(&mut params)?),
                _ => return Err(WartsError::Unsupported { feature: "unknown hop flag" }),
            }
        }
        hop.addr = addr.ok_or(WartsError::Unsupported { feature: "hop without address" })?;
        Ok(hop)
    }
}

/// A full traceroute record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// File-local id of the list this trace belongs to.
    pub list_id: Option<u32>,
    /// File-local id of the cycle this trace belongs to.
    pub cycle_id: Option<u32>,
    /// Vantage-point address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Start time `(seconds, microseconds)`.
    pub start: Option<(u32, u32)>,
    /// Why the trace stopped.
    pub stop_reason: StopReason,
    /// Extra stop information (e.g. the ICMP code).
    pub stop_data: Option<u8>,
    /// TTL of the first probe.
    pub first_hop: Option<u8>,
    /// Probing attempts per hop.
    pub attempts: Option<u8>,
    /// Maximum probe TTL.
    pub hop_limit: Option<u8>,
    /// The hops (replies), in probe-TTL order.
    pub hops: Vec<HopRecord>,
}

impl TraceRecord {
    /// A new trace between two endpoints with scamper-like defaults.
    pub fn new(src: Addr, dst: Addr) -> Self {
        TraceRecord {
            list_id: Some(1),
            cycle_id: Some(1),
            src,
            dst,
            start: None,
            stop_reason: StopReason::None,
            stop_data: None,
            first_hop: Some(1),
            attempts: Some(1),
            hop_limit: None,
            hops: Vec::new(),
        }
    }

    /// Encodes the record body into `out`, threading the file's address
    /// table.
    pub fn write(&self, out: &mut BytesMut, addrs: &mut AddrTableWriter) {
        let mut p = ParamWriter::new();
        if let Some(v) = self.list_id {
            p.param(T_LIST_ID).put_u32(v);
        }
        if let Some(v) = self.cycle_id {
            p.param(T_CYCLE_ID).put_u32(v);
        }
        if let Some((s, us)) = self.start {
            put_timeval(p.param(T_START), s, us);
        }
        p.param(T_STOP_REASON).put_u8(self.stop_reason as u8);
        if let Some(v) = self.stop_data {
            p.param(T_STOP_DATA).put_u8(v);
        }
        if let Some(v) = self.attempts {
            p.param(T_ATTEMPTS).put_u8(v);
        }
        if let Some(v) = self.hop_limit {
            p.param(T_HOPLIMIT).put_u8(v);
        }
        if let Some(v) = self.first_hop {
            p.param(T_FIRSTHOP).put_u8(v);
        }
        p.param(T_HOPCOUNT).put_u16(self.hops.len() as u16);
        addrs.write(p.param(T_ADDR_SRC), self.src);
        addrs.write(p.param(T_ADDR_DST), self.dst);
        p.finish_reset(out);
        for hop in &self.hops {
            hop.write(out, addrs, &mut p);
        }
    }

    /// Decodes a record body, threading the file's address table.
    pub fn read(cur: &mut Cursor<'_>, addrs: &mut AddrTableReader) -> Result<Self, WartsError> {
        let (flags, mut params) = read_params(cur, "trace params")?;
        let mut src = None;
        let mut dst = None;
        let mut hop_count = 0u16;
        let mut rec = TraceRecord {
            list_id: None,
            cycle_id: None,
            src: Addr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            dst: Addr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            start: None,
            stop_reason: StopReason::None,
            stop_data: None,
            first_hop: None,
            attempts: None,
            hop_limit: None,
            hops: Vec::new(),
        };
        for flag in flags.iter() {
            match flag {
                T_LIST_ID => rec.list_id = Some(params.u32("trace list id")?),
                T_CYCLE_ID => rec.cycle_id = Some(params.u32("trace cycle id")?),
                T_ADDR_SRC_GID | T_ADDR_DST_GID => {
                    return Err(WartsError::Unsupported { feature: "trace global address id" })
                }
                T_START => rec.start = Some(params.timeval("trace start")?),
                T_STOP_REASON => {
                    rec.stop_reason = StopReason::from_u8(params.u8("trace stop reason")?)
                }
                T_STOP_DATA => rec.stop_data = Some(params.u8("trace stop data")?),
                T_FLAGS => {
                    params.u8("trace flags")?;
                }
                T_ATTEMPTS => rec.attempts = Some(params.u8("trace attempts")?),
                T_HOPLIMIT => rec.hop_limit = Some(params.u8("trace hoplimit")?),
                T_TYPE => {
                    params.u8("trace type")?;
                }
                T_PROBE_SIZE => {
                    params.u16("trace probe size")?;
                }
                T_PORT_SRC | T_PORT_DST => {
                    params.u16("trace port")?;
                }
                T_FIRSTHOP => rec.first_hop = Some(params.u8("trace firsthop")?),
                T_TOS => {
                    params.u8("trace tos")?;
                }
                T_WAIT => {
                    params.u8("trace wait")?;
                }
                T_LOOPS => {
                    params.u8("trace loops")?;
                }
                T_HOPCOUNT => hop_count = params.u16("trace hop count")?,
                T_GAPLIMIT => {
                    params.u8("trace gaplimit")?;
                }
                T_GAPACTION => {
                    params.u8("trace gapaction")?;
                }
                T_LOOPACTION => {
                    params.u8("trace loopaction")?;
                }
                T_PROBEC => {
                    params.u16("trace probec")?;
                }
                T_WAITPROBE => {
                    params.u8("trace waitprobe")?;
                }
                T_CONFIDENCE => {
                    params.u8("trace confidence")?;
                }
                T_ADDR_SRC => src = Some(addrs.read(&mut params)?),
                T_ADDR_DST => dst = Some(addrs.read(&mut params)?),
                T_USERID => {
                    params.u32("trace userid")?;
                }
                T_OFFSET => {
                    params.u16("trace offset")?;
                }
                _ => return Err(WartsError::Unsupported { feature: "unknown trace flag" }),
            }
        }
        rec.src = src.ok_or(WartsError::Unsupported { feature: "trace without source" })?;
        rec.dst = dst.ok_or(WartsError::Unsupported { feature: "trace without destination" })?;
        rec.hops.reserve(hop_count as usize);
        for _ in 0..hop_count {
            rec.hops.push(HopRecord::read(cur, addrs)?);
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmpext::IcmpExt;
    use lpr_core::label::{LabelStack, Lse};
    use std::net::Ipv4Addr;

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    fn roundtrip(rec: &TraceRecord) -> TraceRecord {
        let mut out = BytesMut::new();
        let mut wt = AddrTableWriter::new();
        rec.write(&mut out, &mut wt);
        let mut rt = AddrTableReader::new();
        let mut cur = Cursor::new(&out);
        let back = TraceRecord::read(&mut cur, &mut rt).unwrap();
        assert!(cur.is_empty(), "record fully consumed");
        back
    }

    #[test]
    fn minimal_trace_roundtrip() {
        let rec = TraceRecord::new(a(1), a(2));
        let back = roundtrip(&rec);
        assert_eq!(back.src, rec.src);
        assert_eq!(back.dst, rec.dst);
        assert!(back.hops.is_empty());
    }

    #[test]
    fn full_trace_roundtrip() {
        let mut rec = TraceRecord::new(a(1), a(100));
        rec.start = Some((1_400_000_000, 250_000));
        rec.stop_reason = StopReason::Completed;
        rec.stop_data = Some(0);
        rec.hop_limit = Some(32);
        let mut h1 = HopRecord::reply(1, a(2), 1500);
        h1.reply_ttl = Some(254);
        h1.quoted_ttl = Some(1);
        let mut h2 = HopRecord::reply(2, a(3), 2500);
        h2.icmp_exts = vec![IcmpExt::mpls(&LabelStack::from_entries(&[
            Lse::transit(300_017, 254),
            Lse::transit(16, 254),
        ]))];
        let h3 = HopRecord::reply(4, a(100), 9000); // TTL 3 unresponsive
        rec.hops = vec![h1, h2, h3];

        let back = roundtrip(&rec);
        assert_eq!(back, rec);
    }

    #[test]
    fn address_dictionary_is_reused_across_hops() {
        let mut rec = TraceRecord::new(a(1), a(2));
        // Destination also appears as final hop: second occurrence must
        // be dictionary-coded.
        rec.hops = vec![HopRecord::reply(1, a(2), 100)];
        let mut out = BytesMut::new();
        let mut wt = AddrTableWriter::new();
        rec.write(&mut out, &mut wt);
        let embedded = out
            .windows(6)
            .filter(|w| w[0] == 4 && w[1] == 1 && w[2..6] == [10, 0, 0, 2])
            .count();
        assert_eq!(embedded, 1, "10.0.0.2 must be embedded exactly once");
        let back = roundtrip(&rec);
        assert_eq!(back.hops[0].addr, a(2));
    }

    #[test]
    fn stop_reason_codes() {
        assert_eq!(StopReason::from_u8(1), StopReason::Completed);
        assert_eq!(StopReason::from_u8(42), StopReason::Error);
        assert_eq!(StopReason::from_u8(0), StopReason::None);
    }

    #[test]
    fn truncated_hop_is_an_error() {
        let mut rec = TraceRecord::new(a(1), a(2));
        rec.hops = vec![HopRecord::reply(1, a(3), 100)];
        let mut out = BytesMut::new();
        let mut wt = AddrTableWriter::new();
        rec.write(&mut out, &mut wt);
        let cut = &out[..out.len() - 3];
        let mut rt = AddrTableReader::new();
        assert!(TraceRecord::read(&mut Cursor::new(cut), &mut rt).is_err());
    }
}
