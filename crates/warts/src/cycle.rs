//! The warts *cycle* records (types 0x02 start and 0x04 stop).
//!
//! A cycle brackets one pass of a measurement list. Ark's "cycle" is
//! exactly the unit the paper iterates over (60 monthly cycles, §4.1).
//!
//! Cycle start layout: `u32 file-local id ‖ u32 list file-local id ‖
//! u32 cycle id ‖ u32 start time ‖ params` with optional parameters
//! 1 = stop time, 2 = hostname. Cycle stop layout: `u32 file-local id ‖
//! u32 stop time ‖ params` (no defined parameters).

use crate::buf::{put_cstring, put_u32, Cursor};
use crate::error::WartsError;
use crate::flags::{read_params, ParamWriter};
use bytes::{BufMut, BytesMut};

const FLAG_STOP_TIME: u16 = 1;
const FLAG_HOSTNAME: u16 = 2;

/// A cycle-start record.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CycleRecord {
    /// File-local identifier referenced by trace records.
    pub id: u32,
    /// File-local id of the list this cycle runs.
    pub list_id: u32,
    /// The cycle's own identifier.
    pub cycle_id: u32,
    /// Start time (Unix seconds).
    pub start: u32,
    /// Optional stop time (Unix seconds).
    pub stop: Option<u32>,
    /// Optional monitor hostname.
    pub hostname: Option<String>,
}

impl CycleRecord {
    /// Encodes the record body.
    pub fn write(&self, out: &mut BytesMut) {
        put_u32(out, self.id);
        put_u32(out, self.list_id);
        put_u32(out, self.cycle_id);
        put_u32(out, self.start);
        let mut p = ParamWriter::new();
        if let Some(s) = self.stop {
            p.param(FLAG_STOP_TIME).put_u32(s);
        }
        if let Some(h) = &self.hostname {
            put_cstring(p.param(FLAG_HOSTNAME), h);
        }
        p.finish(out);
    }

    /// Decodes the record body.
    pub fn read(cur: &mut Cursor<'_>) -> Result<Self, WartsError> {
        let id = cur.u32("cycle id")?;
        let list_id = cur.u32("cycle list id")?;
        let cycle_id = cur.u32("cycle cycle_id")?;
        let start = cur.u32("cycle start")?;
        let (flags, mut params) = read_params(cur, "cycle params")?;
        let mut rec =
            CycleRecord { id, list_id, cycle_id, start, stop: None, hostname: None };
        for flag in flags.iter() {
            match flag {
                FLAG_STOP_TIME => rec.stop = Some(params.u32("cycle stop time")?),
                FLAG_HOSTNAME => rec.hostname = Some(params.cstring()?),
                _ => return Err(WartsError::Unsupported { feature: "unknown cycle flag" }),
            }
        }
        Ok(rec)
    }
}

/// A cycle-stop record.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct CycleStopRecord {
    /// File-local id of the cycle being closed.
    pub id: u32,
    /// Stop time (Unix seconds).
    pub stop: u32,
}

impl CycleStopRecord {
    /// Encodes the record body.
    pub fn write(&self, out: &mut BytesMut) {
        put_u32(out, self.id);
        put_u32(out, self.stop);
        ParamWriter::new().finish(out);
    }

    /// Decodes the record body.
    pub fn read(cur: &mut Cursor<'_>) -> Result<Self, WartsError> {
        let id = cur.u32("cycle-stop id")?;
        let stop = cur.u32("cycle-stop time")?;
        let (flags, _params) = read_params(cur, "cycle-stop params")?;
        if !flags.is_empty() {
            return Err(WartsError::Unsupported { feature: "cycle-stop flags" });
        }
        Ok(CycleStopRecord { id, stop })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_roundtrip_minimal() {
        let rec = CycleRecord { id: 3, list_id: 1, cycle_id: 60, start: 1_417_392_000, ..Default::default() };
        let mut buf = BytesMut::new();
        rec.write(&mut buf);
        assert_eq!(CycleRecord::read(&mut Cursor::new(&buf)).unwrap(), rec);
    }

    #[test]
    fn cycle_roundtrip_full() {
        let rec = CycleRecord {
            id: 3,
            list_id: 1,
            cycle_id: 60,
            start: 1_417_392_000,
            stop: Some(1_417_478_400),
            hostname: Some("mon1.example.org".into()),
        };
        let mut buf = BytesMut::new();
        rec.write(&mut buf);
        assert_eq!(CycleRecord::read(&mut Cursor::new(&buf)).unwrap(), rec);
    }

    #[test]
    fn cycle_stop_roundtrip() {
        let rec = CycleStopRecord { id: 3, stop: 1_417_478_400 };
        let mut buf = BytesMut::new();
        rec.write(&mut buf);
        assert_eq!(CycleStopRecord::read(&mut Cursor::new(&buf)).unwrap(), rec);
    }
}
