//! File-level framing: record headers, [`WartsReader`], [`WartsWriter`].
//!
//! Every record starts with an 8-byte header, big-endian:
//!
//! ```text
//! u16 magic (0x1205) ‖ u16 type ‖ u32 body length
//! ```

use crate::addr::{AddrTableReader, AddrTableWriter};
use crate::buf::Cursor;
use crate::cycle::{CycleRecord, CycleStopRecord};
use crate::error::WartsError;
use crate::list::ListRecord;
use crate::ping::PingRecord;
use crate::trace::{StopReason, TraceRecord};
use bytes::{BufMut, BytesMut};

/// The warts magic number.
pub const WARTS_MAGIC: u16 = 0x1205;

/// Record type codes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u16)]
pub enum RecordType {
    /// List definition.
    List = 0x01,
    /// Cycle start.
    CycleStart = 0x02,
    /// Cycle definition (treated like a start).
    CycleDef = 0x03,
    /// Cycle stop.
    CycleStop = 0x04,
    /// Traceroute.
    Trace = 0x06,
    /// Ping.
    Ping = 0x07,
}

/// One decoded record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Record {
    /// A list definition.
    List(ListRecord),
    /// A cycle start (or cycle definition).
    CycleStart(CycleRecord),
    /// A cycle stop.
    CycleStop(CycleStopRecord),
    /// A traceroute.
    Trace(TraceRecord),
    /// A ping.
    Ping(PingRecord),
    /// A record type this implementation does not decode (e.g.
    /// tracelb, 0x0a). The body is preserved so tools can re-emit it.
    Unsupported {
        /// Raw record type code.
        record_type: u16,
        /// Raw body bytes.
        body: Vec<u8>,
    },
}

/// A streaming reader over an in-memory warts file.
///
/// Iterate it to obtain [`Record`]s; the file-wide address dictionary is
/// threaded automatically. Iteration stops at the first structural
/// error (warts gives no way to resynchronise after one).
pub struct WartsReader<'a> {
    data: &'a [u8],
    pos: usize,
    addrs: AddrTableReader,
    failed: bool,
}

impl<'a> WartsReader<'a> {
    /// Wraps a byte slice holding a warts file.
    pub fn new(data: &'a [u8]) -> Self {
        WartsReader { data, pos: 0, addrs: AddrTableReader::new(), failed: false }
    }

    /// Reads the next record, `Ok(None)` at end of file.
    pub fn next_record(&mut self) -> Result<Option<Record>, WartsError> {
        if self.failed || self.pos == self.data.len() {
            return Ok(None);
        }
        let header_offset = self.pos;
        let mut cur = Cursor::new(&self.data[self.pos..]);
        let magic = cur.u16("record magic")?;
        if magic != WARTS_MAGIC {
            self.failed = true;
            return Err(WartsError::BadMagic { offset: header_offset, found: magic });
        }
        let record_type = cur.u16("record type")?;
        let len = cur.u32("record length")? as usize;
        let body = cur.bytes(len, "record body").inspect_err(|_| {
            self.failed = true;
        })?;
        self.pos += 8 + len;

        let mut bcur = Cursor::new(body);
        let record = match record_type {
            x if x == RecordType::List as u16 => Record::List(ListRecord::read(&mut bcur)?),
            x if x == RecordType::CycleStart as u16 || x == RecordType::CycleDef as u16 => {
                Record::CycleStart(CycleRecord::read(&mut bcur)?)
            }
            x if x == RecordType::CycleStop as u16 => {
                Record::CycleStop(CycleStopRecord::read(&mut bcur)?)
            }
            x if x == RecordType::Trace as u16 => {
                Record::Trace(TraceRecord::read(&mut bcur, &mut self.addrs)?)
            }
            x if x == RecordType::Ping as u16 => {
                Record::Ping(PingRecord::read(&mut bcur, &mut self.addrs)?)
            }
            other => {
                return Ok(Some(Record::Unsupported { record_type: other, body: body.to_vec() }))
            }
        };
        if !bcur.is_empty() {
            self.failed = true;
            return Err(WartsError::LengthMismatch {
                record_type,
                declared: len,
                consumed: bcur.position(),
            });
        }
        Ok(Some(record))
    }

    /// Reads every remaining trace record, skipping list/cycle records.
    pub fn traces(&mut self) -> Result<Vec<TraceRecord>, WartsError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_record()? {
            if let Record::Trace(t) = rec {
                out.push(t);
            }
        }
        Ok(out)
    }
}

impl Iterator for WartsReader<'_> {
    type Item = Result<Record, WartsError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// A writer building an in-memory warts file.
pub struct WartsWriter {
    out: BytesMut,
    addrs: AddrTableWriter,
    next_list_file_id: u32,
    next_cycle_file_id: u32,
}

impl Default for WartsWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl WartsWriter {
    /// An empty file.
    pub fn new() -> Self {
        WartsWriter {
            out: BytesMut::new(),
            addrs: AddrTableWriter::new(),
            next_list_file_id: 1,
            next_cycle_file_id: 1,
        }
    }

    /// Writes a record header with a zero length placeholder; the body
    /// is then encoded straight into the file buffer (no per-record
    /// allocation) and [`Self::end_record`] backpatches the length.
    fn begin_record(&mut self, record_type: RecordType) -> usize {
        self.out.put_u16(WARTS_MAGIC);
        self.out.put_u16(record_type as u16);
        self.out.put_u32(0);
        self.out.len()
    }

    /// Backpatches the length placeholder of the record whose body
    /// started at `body_start`.
    fn end_record(&mut self, body_start: usize) {
        let len = (self.out.len() - body_start) as u32;
        self.out[body_start - 4..body_start].copy_from_slice(&len.to_be_bytes());
    }

    /// Appends a list definition; returns its file-local id.
    pub fn list(&mut self, list_id: u32, name: &str) -> u32 {
        let id = self.next_list_file_id;
        self.next_list_file_id += 1;
        let rec = ListRecord { id, list_id, name: to_owned(name), descr: None, monitor: None };
        self.list_record(&rec);
        id
    }

    /// Appends a full list record.
    pub fn list_record(&mut self, rec: &ListRecord) {
        let start = self.begin_record(RecordType::List);
        rec.write(&mut self.out);
        self.end_record(start);
    }

    /// Appends a cycle start; returns its file-local id.
    pub fn cycle_start(&mut self, list_file_id: u32, cycle_id: u32, start: u32) -> u32 {
        let id = self.next_cycle_file_id;
        self.next_cycle_file_id += 1;
        let rec = CycleRecord {
            id,
            list_id: list_file_id,
            cycle_id,
            start,
            stop: None,
            hostname: None,
        };
        let at = self.begin_record(RecordType::CycleStart);
        rec.write(&mut self.out);
        self.end_record(at);
        id
    }

    /// Appends a cycle stop for a cycle's file-local id.
    pub fn cycle_stop(&mut self, cycle_file_id: u32, stop: u32) {
        let rec = CycleStopRecord { id: cycle_file_id, stop };
        let at = self.begin_record(RecordType::CycleStop);
        rec.write(&mut self.out);
        self.end_record(at);
    }

    /// Appends a traceroute record.
    pub fn trace(&mut self, rec: &TraceRecord) -> Result<(), WartsError> {
        let at = self.begin_record(RecordType::Trace);
        rec.write(&mut self.out, &mut self.addrs);
        self.end_record(at);
        Ok(())
    }

    /// Appends a ping record.
    pub fn ping(&mut self, rec: &PingRecord) -> Result<(), WartsError> {
        let at = self.begin_record(RecordType::Ping);
        rec.write(&mut self.out, &mut self.addrs);
        self.end_record(at);
        Ok(())
    }

    /// Finishes the file and hands back its bytes (no copy).
    pub fn into_bytes(self) -> Vec<u8> {
        self.out.into_vec()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }
}

fn to_owned(s: &str) -> String {
    s.to_string()
}

/// Checks whether a trace completed (destination replied).
pub fn trace_completed(t: &TraceRecord) -> bool {
    t.stop_reason == StopReason::Completed
}

/// Reads every record of a warts file on disk.
pub fn read_path(path: impl AsRef<std::path::Path>) -> std::io::Result<Vec<Record>> {
    let bytes = std::fs::read(path)?;
    WartsReader::new(&bytes)
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

/// Writes a finished [`WartsWriter`]'s bytes to disk.
pub fn write_path(
    path: impl AsRef<std::path::Path>,
    writer: WartsWriter,
) -> std::io::Result<()> {
    std::fs::write(path, writer.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::trace::HopRecord;
    use std::net::Ipv4Addr;

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    fn sample_file() -> Vec<u8> {
        let mut w = WartsWriter::new();
        let list = w.list(1, "default");
        let cycle = w.cycle_start(list, 42, 1_400_000_000);
        let mut t = TraceRecord::new(a(1), a(9));
        t.stop_reason = StopReason::Completed;
        t.hops = vec![HopRecord::reply(1, a(2), 100), HopRecord::reply(2, a(9), 300)];
        w.trace(&t).unwrap();
        w.trace(&t).unwrap(); // same addresses -> dictionary reuse
        w.cycle_stop(cycle, 1_400_003_600);
        w.into_bytes()
    }

    #[test]
    fn read_back_all_records() {
        let bytes = sample_file();
        let mut r = WartsReader::new(&bytes);
        let recs: Vec<Record> = r.by_ref().collect::<Result<_, _>>().unwrap();
        assert_eq!(recs.len(), 5);
        assert!(matches!(recs[0], Record::List(_)));
        assert!(matches!(recs[1], Record::CycleStart(_)));
        assert!(matches!(recs[2], Record::Trace(_)));
        assert!(matches!(recs[3], Record::Trace(_)));
        assert!(matches!(recs[4], Record::CycleStop(_)));
        if let (Record::Trace(t1), Record::Trace(t2)) = (&recs[2], &recs[3]) {
            assert_eq!(t1, t2);
        }
    }

    #[test]
    fn traces_helper_skips_non_trace_records() {
        let bytes = sample_file();
        let traces = WartsReader::new(&bytes).traces().unwrap();
        assert_eq!(traces.len(), 2);
        assert!(trace_completed(&traces[0]));
    }

    #[test]
    fn second_trace_is_smaller_thanks_to_dictionary() {
        let mut w = WartsWriter::new();
        let mut t = TraceRecord::new(a(1), a(9));
        t.hops = vec![HopRecord::reply(1, a(2), 100)];
        w.trace(&t).unwrap();
        let after_first = w.len();
        w.trace(&t).unwrap();
        let second = w.len() - after_first;
        assert!(second < after_first, "{second} !< {after_first}");
    }

    #[test]
    fn bad_magic_reported_with_offset() {
        let mut bytes = sample_file();
        bytes[0] = 0xFF;
        let mut r = WartsReader::new(&bytes);
        assert_eq!(
            r.next_record().unwrap_err(),
            WartsError::BadMagic { offset: 0, found: 0xFF05 }
        );
        // Reader is poisoned afterwards.
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let bytes = sample_file();
        let cut = &bytes[..bytes.len() - 2];
        let r = WartsReader::new(cut);
        let result: Result<Vec<Record>, WartsError> = r.collect();
        assert!(result.is_err());
    }

    #[test]
    fn unsupported_record_is_preserved() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&0x0Au16.to_be_bytes()); // tracelb
        bytes.extend_from_slice(&3u32.to_be_bytes());
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut r = WartsReader::new(&bytes);
        match r.next_record().unwrap().unwrap() {
            Record::Unsupported { record_type, body } => {
                assert_eq!(record_type, 0x0A);
                assert_eq!(body, vec![1, 2, 3]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.next_record().unwrap(), None);
    }

    #[test]
    fn ping_records_interleave_with_traces() {
        let mut w = WartsWriter::new();
        let list = w.list(1, "mixed");
        let cycle = w.cycle_start(list, 1, 0);
        let mut t = TraceRecord::new(a(1), a(9));
        t.hops = vec![HopRecord::reply(1, a(2), 100)];
        w.trace(&t).unwrap();
        let mut p = crate::ping::PingRecord::new(a(1), a(9));
        // Ping reply reuses an address the trace embedded: the shared
        // dictionary must resolve it.
        p.replies = vec![crate::ping::PingReply::echo(a(9), 4242)];
        w.ping(&p).unwrap();
        w.cycle_stop(cycle, 1);
        let bytes = w.into_bytes();

        let mut r = WartsReader::new(&bytes);
        let recs: Vec<Record> = r.by_ref().collect::<Result<_, _>>().unwrap();
        assert!(matches!(recs[2], Record::Trace(_)));
        match &recs[3] {
            Record::Ping(ping) => {
                assert_eq!(ping.replies.len(), 1);
                assert_eq!(ping.replies[0].addr, a(9));
            }
            other => panic!("unexpected {other:?}"),
        }
        // `traces()` still skips pings.
        let traces = WartsReader::new(&bytes).traces().unwrap();
        assert_eq!(traces.len(), 1);
    }

    #[test]
    fn length_mismatch_detected() {
        // A list record with one stray trailing byte inside the body.
        let rec = ListRecord { id: 1, list_id: 1, name: "x".into(), ..Default::default() };
        let mut body = BytesMut::new();
        rec.write(&mut body);
        body.put_u8(0xEE);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&(RecordType::List as u16).to_be_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&body);
        let mut r = WartsReader::new(&bytes);
        assert!(matches!(
            r.next_record(),
            Err(WartsError::LengthMismatch { record_type: 1, .. })
        ));
    }

    #[test]
    fn path_io_roundtrip() {
        let bytes = sample_file();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("warts-pathio-{}.warts", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let records = read_path(&path).unwrap();
        assert_eq!(records.len(), 5);
        std::fs::remove_file(&path).unwrap();

        let mut w = WartsWriter::new();
        w.list(1, "x");
        let path2 = dir.join(format!("warts-pathio2-{}.warts", std::process::id()));
        write_path(&path2, w).unwrap();
        assert_eq!(read_path(&path2).unwrap().len(), 1);
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn read_path_surfaces_decode_errors() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("warts-bad-{}.warts", std::process::id()));
        std::fs::write(&path, [0xFFu8, 0x05, 0, 0]).unwrap();
        let err = read_path(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_yields_nothing() {
        let mut r = WartsReader::new(&[]);
        assert_eq!(r.next_record().unwrap(), None);
    }
}
