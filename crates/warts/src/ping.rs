//! The warts *ping* record (type 0x07).
//!
//! Archipelago monitors interleave ping campaigns with their trace
//! cycles, so real warts files contain ping records; decoding them
//! (rather than skipping `Unsupported` blobs) lets tools report
//! complete file inventories. Field order follows scamper's
//! `scamper_file_warts.c`: a flag-encoded parameter block, then a
//! 16-bit count of stored replies, then the reply records, each with
//! its own flag-encoded block.
//!
//! The LPR analysis itself never consumes pings; this module exists
//! for container completeness and is exercised by round-trip tests.

use crate::addr::{Addr, AddrTableReader, AddrTableWriter};
use crate::buf::{put_timeval, Cursor};
use crate::error::WartsError;
use crate::flags::{read_params, ParamWriter};
use bytes::{BufMut, BytesMut};

// Ping parameter flags (1-based, scamper order).
const P_LIST_ID: u16 = 1;
const P_CYCLE_ID: u16 = 2;
const P_ADDR_SRC_GID: u16 = 3; // deprecated
const P_ADDR_DST_GID: u16 = 4; // deprecated
const P_START: u16 = 5;
const P_STOP_REASON: u16 = 6;
const P_STOP_DATA: u16 = 7;
const P_PATTERN: u16 = 8;
const P_PROBE_COUNT: u16 = 9;
const P_PROBE_SIZE: u16 = 10;
const P_PROBE_WAIT: u16 = 11;
const P_PROBE_TTL: u16 = 12;
const P_REPLY_COUNT: u16 = 13;
const P_PING_SENT: u16 = 14;
const P_PROBE_METHOD: u16 = 15;
const P_PROBE_SPORT: u16 = 16;
const P_PROBE_DPORT: u16 = 17;
const P_USERID: u16 = 18;
const P_ADDR_SRC: u16 = 19;
const P_ADDR_DST: u16 = 20;

// Reply flags.
const R_ADDR_GID: u16 = 1; // deprecated
const R_FLAGS: u16 = 2;
const R_REPLY_TTL: u16 = 3;
const R_REPLY_SIZE: u16 = 4;
const R_ICMP_TC: u16 = 5;
const R_RTT: u16 = 6;
const R_PROBE_ID: u16 = 7;
const R_REPLY_IPID: u16 = 8;
const R_PROBE_IPID: u16 = 9;
const R_REPLY_PROTO: u16 = 10;
const R_TCP_FLAGS: u16 = 11;
const R_ADDR: u16 = 12;

/// One ping reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PingReply {
    /// Replying address.
    pub addr: Addr,
    /// Reply TTL on arrival.
    pub reply_ttl: Option<u8>,
    /// Reply size in bytes.
    pub reply_size: Option<u16>,
    /// ICMP type (high byte) / code (low byte).
    pub icmp_type_code: Option<u16>,
    /// Round-trip time in microseconds.
    pub rtt_us: u32,
    /// Which probe attempt elicited the reply.
    pub probe_id: Option<u16>,
    /// IP-ID of the reply packet.
    pub reply_ipid: Option<u16>,
    /// IP protocol of the reply.
    pub reply_proto: Option<u8>,
}

impl PingReply {
    /// A plain echo reply.
    pub fn echo(addr: Addr, rtt_us: u32) -> Self {
        PingReply {
            addr,
            reply_ttl: None,
            reply_size: None,
            icmp_type_code: Some(0x0000),
            rtt_us,
            probe_id: None,
            reply_ipid: None,
            reply_proto: Some(1), // ICMP
        }
    }

    fn write(&self, out: &mut BytesMut, addrs: &mut AddrTableWriter) {
        let mut p = ParamWriter::new();
        if let Some(v) = self.reply_ttl {
            p.param(R_REPLY_TTL).put_u8(v);
        }
        if let Some(v) = self.reply_size {
            p.param(R_REPLY_SIZE).put_u16(v);
        }
        if let Some(v) = self.icmp_type_code {
            p.param(R_ICMP_TC).put_u16(v);
        }
        p.param(R_RTT).put_u32(self.rtt_us);
        if let Some(v) = self.probe_id {
            p.param(R_PROBE_ID).put_u16(v);
        }
        if let Some(v) = self.reply_ipid {
            p.param(R_REPLY_IPID).put_u16(v);
        }
        if let Some(v) = self.reply_proto {
            p.param(R_REPLY_PROTO).put_u8(v);
        }
        addrs.write(p.param(R_ADDR), self.addr);
        p.finish(out);
    }

    fn read(cur: &mut Cursor<'_>, addrs: &mut AddrTableReader) -> Result<Self, WartsError> {
        let (flags, mut params) = read_params(cur, "ping reply params")?;
        let mut addr = None;
        let mut reply = PingReply {
            addr: Addr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            reply_ttl: None,
            reply_size: None,
            icmp_type_code: None,
            rtt_us: 0,
            probe_id: None,
            reply_ipid: None,
            reply_proto: None,
        };
        for flag in flags.iter() {
            match flag {
                R_ADDR_GID => {
                    return Err(WartsError::Unsupported { feature: "ping reply global addr id" })
                }
                R_FLAGS => {
                    params.u8("ping reply flags")?;
                }
                R_REPLY_TTL => reply.reply_ttl = Some(params.u8("ping reply ttl")?),
                R_REPLY_SIZE => reply.reply_size = Some(params.u16("ping reply size")?),
                R_ICMP_TC => reply.icmp_type_code = Some(params.u16("ping reply icmp")?),
                R_RTT => reply.rtt_us = params.u32("ping reply rtt")?,
                R_PROBE_ID => reply.probe_id = Some(params.u16("ping reply probe id")?),
                R_REPLY_IPID => reply.reply_ipid = Some(params.u16("ping reply ipid")?),
                R_PROBE_IPID => {
                    params.u16("ping reply probe ipid")?;
                }
                R_REPLY_PROTO => reply.reply_proto = Some(params.u8("ping reply proto")?),
                R_TCP_FLAGS => {
                    params.u8("ping reply tcp flags")?;
                }
                R_ADDR => addr = Some(addrs.read(&mut params)?),
                _ => return Err(WartsError::Unsupported { feature: "unknown ping reply flag" }),
            }
        }
        reply.addr =
            addr.ok_or(WartsError::Unsupported { feature: "ping reply without address" })?;
        Ok(reply)
    }
}

/// A ping measurement record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PingRecord {
    /// File-local list id.
    pub list_id: Option<u32>,
    /// File-local cycle id.
    pub cycle_id: Option<u32>,
    /// Source address.
    pub src: Addr,
    /// Destination address.
    pub dst: Addr,
    /// Start time `(seconds, microseconds)`.
    pub start: Option<(u32, u32)>,
    /// Stop reason code.
    pub stop_reason: Option<u8>,
    /// Configured probe count.
    pub probe_count: Option<u16>,
    /// Probe TTL.
    pub probe_ttl: Option<u8>,
    /// Probes actually sent.
    pub ping_sent: Option<u16>,
    /// Stored replies.
    pub replies: Vec<PingReply>,
}

impl PingRecord {
    /// A new ping between two endpoints.
    pub fn new(src: Addr, dst: Addr) -> Self {
        PingRecord {
            list_id: Some(1),
            cycle_id: Some(1),
            src,
            dst,
            start: None,
            stop_reason: None,
            probe_count: Some(4),
            probe_ttl: Some(64),
            ping_sent: None,
            replies: Vec::new(),
        }
    }

    /// Encodes the record body.
    pub fn write(&self, out: &mut BytesMut, addrs: &mut AddrTableWriter) {
        let mut p = ParamWriter::new();
        if let Some(v) = self.list_id {
            p.param(P_LIST_ID).put_u32(v);
        }
        if let Some(v) = self.cycle_id {
            p.param(P_CYCLE_ID).put_u32(v);
        }
        if let Some((s, us)) = self.start {
            put_timeval(p.param(P_START), s, us);
        }
        if let Some(v) = self.stop_reason {
            p.param(P_STOP_REASON).put_u8(v);
        }
        if let Some(v) = self.probe_count {
            p.param(P_PROBE_COUNT).put_u16(v);
        }
        if let Some(v) = self.probe_ttl {
            p.param(P_PROBE_TTL).put_u8(v);
        }
        if let Some(v) = self.ping_sent {
            p.param(P_PING_SENT).put_u16(v);
        }
        addrs.write(p.param(P_ADDR_SRC), self.src);
        addrs.write(p.param(P_ADDR_DST), self.dst);
        p.finish(out);
        out.put_u16(self.replies.len() as u16);
        for r in &self.replies {
            r.write(out, addrs);
        }
    }

    /// Decodes a record body.
    pub fn read(cur: &mut Cursor<'_>, addrs: &mut AddrTableReader) -> Result<Self, WartsError> {
        let (flags, mut params) = read_params(cur, "ping params")?;
        let mut src = None;
        let mut dst = None;
        let mut rec = PingRecord {
            list_id: None,
            cycle_id: None,
            src: Addr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            dst: Addr::V4(std::net::Ipv4Addr::UNSPECIFIED),
            start: None,
            stop_reason: None,
            probe_count: None,
            probe_ttl: None,
            ping_sent: None,
            replies: Vec::new(),
        };
        for flag in flags.iter() {
            match flag {
                P_LIST_ID => rec.list_id = Some(params.u32("ping list id")?),
                P_CYCLE_ID => rec.cycle_id = Some(params.u32("ping cycle id")?),
                P_ADDR_SRC_GID | P_ADDR_DST_GID => {
                    return Err(WartsError::Unsupported { feature: "ping global addr id" })
                }
                P_START => rec.start = Some(params.timeval("ping start")?),
                P_STOP_REASON => rec.stop_reason = Some(params.u8("ping stop reason")?),
                P_STOP_DATA => {
                    params.u8("ping stop data")?;
                }
                P_PATTERN => {
                    let len = params.u16("ping pattern len")? as usize;
                    params.bytes(len, "ping pattern")?;
                }
                P_PROBE_COUNT => rec.probe_count = Some(params.u16("ping probe count")?),
                P_PROBE_SIZE => {
                    params.u16("ping probe size")?;
                }
                P_PROBE_WAIT => {
                    params.u8("ping probe wait")?;
                }
                P_PROBE_TTL => rec.probe_ttl = Some(params.u8("ping probe ttl")?),
                P_REPLY_COUNT => {
                    params.u16("ping reply count")?;
                }
                P_PING_SENT => rec.ping_sent = Some(params.u16("ping sent")?),
                P_PROBE_METHOD => {
                    params.u8("ping method")?;
                }
                P_PROBE_SPORT | P_PROBE_DPORT => {
                    params.u16("ping port")?;
                }
                P_USERID => {
                    params.u32("ping userid")?;
                }
                P_ADDR_SRC => src = Some(addrs.read(&mut params)?),
                P_ADDR_DST => dst = Some(addrs.read(&mut params)?),
                _ => return Err(WartsError::Unsupported { feature: "unknown ping flag" }),
            }
        }
        rec.src = src.ok_or(WartsError::Unsupported { feature: "ping without source" })?;
        rec.dst = dst.ok_or(WartsError::Unsupported { feature: "ping without destination" })?;
        let n = cur.u16("ping stored reply count")?;
        rec.replies.reserve(n as usize);
        for _ in 0..n {
            rec.replies.push(PingReply::read(cur, addrs)?);
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    fn roundtrip(rec: &PingRecord) -> PingRecord {
        let mut out = BytesMut::new();
        let mut wt = AddrTableWriter::new();
        rec.write(&mut out, &mut wt);
        let mut rt = AddrTableReader::new();
        let mut cur = Cursor::new(&out);
        let back = PingRecord::read(&mut cur, &mut rt).unwrap();
        assert!(cur.is_empty());
        back
    }

    #[test]
    fn minimal_ping_roundtrip() {
        let rec = PingRecord::new(a(1), a(2));
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn ping_with_replies_roundtrip() {
        let mut rec = PingRecord::new(a(1), a(9));
        rec.start = Some((1_400_000_000, 42));
        rec.stop_reason = Some(1);
        rec.ping_sent = Some(4);
        let mut r1 = PingReply::echo(a(9), 12_345);
        r1.reply_ttl = Some(60);
        r1.probe_id = Some(0);
        let r2 = PingReply::echo(a(9), 13_999);
        rec.replies = vec![r1, r2];
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn truncated_reply_is_an_error() {
        let mut rec = PingRecord::new(a(1), a(9));
        rec.replies = vec![PingReply::echo(a(9), 1)];
        let mut out = BytesMut::new();
        let mut wt = AddrTableWriter::new();
        rec.write(&mut out, &mut wt);
        let cut = &out[..out.len() - 2];
        let mut rt = AddrTableReader::new();
        assert!(PingRecord::read(&mut Cursor::new(cut), &mut rt).is_err());
    }
}
