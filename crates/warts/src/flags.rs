//! The warts *flags* parameter mechanism.
//!
//! Record bodies start with a variable-length flag bitfield: a sequence
//! of bytes in which the seven low bits carry flags (flag numbers are
//! 1-based and increase from the least significant bit of the first
//! byte) and the high bit says another flag byte follows. When at least
//! one flag is set, a 16-bit *parameter length* follows the bitfield,
//! then the parameter values appear back-to-back in flag order.
//!
//! ```text
//! +---------+---------+ ... +-----------+------------------+
//! | flags₀  | flags₁  |     | param len | params in order  |
//! +---------+---------+ ... +-----------+------------------+
//!   bit7 = "more flag bytes follow"
//! ```

use crate::buf::Cursor;
use crate::error::WartsError;
use bytes::{BufMut, BytesMut};

/// A decoded flag set.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FlagSet {
    bits: Vec<u8>, // 7 usable bits per element, continuation bit stripped
}

impl FlagSet {
    /// An empty flag set.
    pub fn new() -> Self {
        FlagSet::default()
    }

    /// Sets 1-based flag `n`.
    pub fn set(&mut self, n: u16) {
        assert!(n >= 1, "flags are 1-based");
        let byte = ((n - 1) / 7) as usize;
        let bit = ((n - 1) % 7) as u8;
        if self.bits.len() <= byte {
            self.bits.resize(byte + 1, 0);
        }
        self.bits[byte] |= 1 << bit;
    }

    /// Tests 1-based flag `n`.
    pub fn is_set(&self, n: u16) -> bool {
        if n == 0 {
            return false;
        }
        let byte = ((n - 1) / 7) as usize;
        let bit = ((n - 1) % 7) as u8;
        self.bits.get(byte).is_some_and(|b| b & (1 << bit) != 0)
    }

    /// True when no flag is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Unsets every flag, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.clear();
    }

    /// Decodes a flag bitfield (not the parameter length) from a cursor.
    pub fn read(cur: &mut Cursor<'_>) -> Result<Self, WartsError> {
        let mut bits = Vec::new();
        loop {
            let b = cur.u8("flag byte")?;
            bits.push(b & 0x7f);
            if b & 0x80 == 0 {
                break;
            }
        }
        Ok(FlagSet { bits })
    }

    /// Encodes the flag bitfield into `buf`.
    pub fn write(&self, buf: &mut BytesMut) {
        if self.bits.is_empty() {
            buf.put_u8(0);
            return;
        }
        // Trim trailing zero bytes but always emit at least one byte.
        let mut last = self.bits.len();
        while last > 1 && self.bits[last - 1] == 0 {
            last -= 1;
        }
        for (i, &b) in self.bits[..last].iter().enumerate() {
            let cont = if i + 1 < last { 0x80 } else { 0 };
            buf.put_u8(b | cont);
        }
    }

    /// Iterates over the set flag numbers in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.bits.iter().enumerate().flat_map(|(byte, &b)| {
            (0..7u16).filter_map(move |bit| {
                if b & (1 << bit) != 0 {
                    Some(byte as u16 * 7 + bit + 1)
                } else {
                    None
                }
            })
        })
    }
}

/// A parameter block under construction: flag set plus parameter bytes,
/// finalised into `flags ‖ u16 len ‖ params`.
#[derive(Debug, Default)]
pub struct ParamWriter {
    flags: FlagSet,
    params: BytesMut,
}

impl ParamWriter {
    /// An empty block.
    pub fn new() -> Self {
        ParamWriter::default()
    }

    /// Marks flag `n` and returns the buffer to append its value to.
    /// Parameters **must** be added in increasing flag order; this is
    /// asserted in debug builds via the flag set shape.
    pub fn param(&mut self, n: u16) -> &mut BytesMut {
        debug_assert!(!self.flags.is_set(n), "parameter {n} added twice");
        self.flags.set(n);
        &mut self.params
    }

    /// Finalises into the on-disk layout.
    pub fn finish(mut self, out: &mut BytesMut) {
        self.finish_reset(out);
    }

    /// [`ParamWriter::finish`] for a long-lived writer: emits the block,
    /// then clears the flag set and parameter buffer while keeping both
    /// allocations, so one scratch writer serves every hop of a record
    /// (and every record of a file) without reallocating.
    pub fn finish_reset(&mut self, out: &mut BytesMut) {
        self.flags.write(out);
        if !self.flags.is_empty() {
            out.put_u16(self.params.len() as u16);
            out.put_slice(&self.params);
        }
        self.flags.clear();
        self.params.clear();
    }
}

/// Reads a flag set and, when non-empty, its parameter block; hands back
/// the flags and a sub-cursor bounded to exactly the parameter bytes.
pub fn read_params<'a>(
    cur: &mut Cursor<'a>,
    context: &'static str,
) -> Result<(FlagSet, Cursor<'a>), WartsError> {
    let flags = FlagSet::read(cur)?;
    if flags.is_empty() {
        return Ok((flags, Cursor::new(&[])));
    }
    let len = cur.u16(context)? as usize;
    let bytes = cur.bytes(len, context)?;
    Ok((flags, Cursor::new(bytes)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test() {
        let mut f = FlagSet::new();
        f.set(1);
        f.set(7);
        f.set(8);
        f.set(29);
        for n in [1, 7, 8, 29] {
            assert!(f.is_set(n), "flag {n}");
        }
        for n in [2, 6, 9, 28, 30] {
            assert!(!f.is_set(n), "flag {n}");
        }
    }

    #[test]
    fn wire_roundtrip_multibyte() {
        let mut f = FlagSet::new();
        f.set(3);
        f.set(14);
        f.set(15);
        let mut b = BytesMut::new();
        f.write(&mut b);
        // 15 flags need 3 bytes: first two carry the continuation bit.
        assert_eq!(b.len(), 3);
        assert_eq!(b[0] & 0x80, 0x80);
        assert_eq!(b[1] & 0x80, 0x80);
        assert_eq!(b[2] & 0x80, 0);
        let mut c = Cursor::new(&b);
        let g = FlagSet::read(&mut c).unwrap();
        assert_eq!(g, f);
    }

    #[test]
    fn empty_flagset_is_single_zero_byte() {
        let f = FlagSet::new();
        let mut b = BytesMut::new();
        f.write(&mut b);
        assert_eq!(&b[..], &[0]);
        let mut c = Cursor::new(&b);
        assert!(FlagSet::read(&mut c).unwrap().is_empty());
    }

    #[test]
    fn iter_in_order() {
        let mut f = FlagSet::new();
        for n in [9, 2, 17, 1] {
            f.set(n);
        }
        assert_eq!(f.iter().collect::<Vec<_>>(), vec![1, 2, 9, 17]);
    }

    #[test]
    fn param_writer_layout() {
        let mut w = ParamWriter::new();
        w.param(2).put_u8(0xAA);
        w.param(5).put_u16(0x0102);
        let mut out = BytesMut::new();
        w.finish(&mut out);
        // flags byte: bits for 2 and 5 => 0b0001_0010 = 0x12
        assert_eq!(out[0], 0x12);
        // param length = 3
        assert_eq!(u16::from_be_bytes([out[1], out[2]]), 3);
        assert_eq!(&out[3..], &[0xAA, 0x01, 0x02]);
    }

    #[test]
    fn empty_param_writer_writes_zero_flag_byte_only() {
        let w = ParamWriter::new();
        let mut out = BytesMut::new();
        w.finish(&mut out);
        assert_eq!(&out[..], &[0]);
    }

    #[test]
    fn read_params_bounds_subcursor() {
        let mut w = ParamWriter::new();
        w.param(1).put_u32(42);
        let mut out = BytesMut::new();
        w.finish(&mut out);
        out.put_u8(0xFF); // next structure

        let mut c = Cursor::new(&out);
        let (flags, mut params) = read_params(&mut c, "test").unwrap();
        assert!(flags.is_set(1));
        assert_eq!(params.u32("v").unwrap(), 42);
        assert!(params.is_empty());
        // Outer cursor sits right after the param block.
        assert_eq!(c.u8("tail").unwrap(), 0xFF);
    }
}
