//! The warts *list* record (type 0x01).
//!
//! A list names a measurement task (e.g. one Ark team's probing list).
//! Layout: `u32 file-local id ‖ u32 list id ‖ cstring name ‖ params`
//! with optional parameters 1 = description, 2 = monitor name.

use crate::buf::{put_cstring, put_u32, Cursor};
use crate::error::WartsError;
use crate::flags::{read_params, ParamWriter};
use bytes::BytesMut;

const FLAG_DESCR: u16 = 1;
const FLAG_MONITOR: u16 = 2;

/// A list definition record.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ListRecord {
    /// File-local identifier referenced by later records.
    pub id: u32,
    /// The list's own identifier.
    pub list_id: u32,
    /// List name.
    pub name: String,
    /// Optional description.
    pub descr: Option<String>,
    /// Optional monitor (vantage point) name.
    pub monitor: Option<String>,
}

impl ListRecord {
    /// Encodes the record body.
    pub fn write(&self, out: &mut BytesMut) {
        put_u32(out, self.id);
        put_u32(out, self.list_id);
        put_cstring(out, &self.name);
        let mut p = ParamWriter::new();
        if let Some(d) = &self.descr {
            put_cstring(p.param(FLAG_DESCR), d);
        }
        if let Some(m) = &self.monitor {
            put_cstring(p.param(FLAG_MONITOR), m);
        }
        p.finish(out);
    }

    /// Decodes the record body.
    pub fn read(cur: &mut Cursor<'_>) -> Result<Self, WartsError> {
        let id = cur.u32("list id")?;
        let list_id = cur.u32("list list_id")?;
        let name = cur.cstring()?;
        let (flags, mut params) = read_params(cur, "list params")?;
        let mut rec = ListRecord { id, list_id, name, descr: None, monitor: None };
        for flag in flags.iter() {
            match flag {
                FLAG_DESCR => rec.descr = Some(params.cstring()?),
                FLAG_MONITOR => rec.monitor = Some(params.cstring()?),
                _ => return Err(WartsError::Unsupported { feature: "unknown list flag" }),
            }
        }
        Ok(rec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_minimal() {
        let rec = ListRecord { id: 1, list_id: 7, name: "default".into(), ..Default::default() };
        let mut buf = BytesMut::new();
        rec.write(&mut buf);
        let back = ListRecord::read(&mut Cursor::new(&buf)).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn roundtrip_with_options() {
        let rec = ListRecord {
            id: 2,
            list_id: 9,
            name: "team-1".into(),
            descr: Some("Ark team 1".into()),
            monitor: Some("ams-nl".into()),
        };
        let mut buf = BytesMut::new();
        rec.write(&mut buf);
        assert_eq!(ListRecord::read(&mut Cursor::new(&buf)).unwrap(), rec);
    }
}
