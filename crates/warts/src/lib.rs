//! # warts — the scamper binary traceroute format
//!
//! CAIDA's Archipelago measurement infrastructure stores its traceroute
//! campaigns in **warts**, the binary format of
//! [scamper](https://www.caida.org/catalog/software/scamper/). The LPR
//! study (paper §4.1) consumes five years of such dumps; this crate
//! provides the reader the study needs and a writer so that simulated
//! campaigns can be serialised into the very same container.
//!
//! ## Format overview
//!
//! A warts file is a sequence of records, each preceded by an 8-byte
//! header: a magic (`0x1205`), a record type and a 32-bit length, all
//! big-endian. This crate supports the record types an Ark trace file
//! contains:
//!
//! | type | record |
//! |------|--------|
//! | 0x01 | list definition |
//! | 0x02 | cycle start |
//! | 0x04 | cycle stop |
//! | 0x06 | traceroute |
//! | 0x07 | ping |
//!
//! Record bodies use warts' *flags* mechanism: a variable-length flag
//! bitfield (7 flags per byte, high bit = continuation), followed — when
//! any flag is set — by a 16-bit parameter-block length and the
//! parameters in flag order ([`flags`]). Addresses are dictionary-coded
//! per file: the first occurrence embeds the raw bytes and implicitly
//! assigns the next table id, later occurrences are 32-bit references
//! ([`addr`]). ICMP extensions (RFC 4884), and in particular the MPLS
//! label-stack object of RFC 4950, ride on hop records ([`icmpext`]).
//!
//! The reader is strict about structure (truncated records, bad magics,
//! undecodable addresses are typed errors, never panics) but tolerant
//! about content: unknown *record types* are surfaced as
//! [`Record::Unsupported`] so callers can skip them, like scamper tools
//! do.
//!
//! ## Example
//!
//! ```
//! use warts::{WartsWriter, WartsReader, Record, TraceRecord, HopRecord};
//! use std::net::Ipv4Addr;
//!
//! let mut writer = WartsWriter::new();
//! writer.list(1, "default");
//! writer.cycle_start(1, 1, 1_400_000_000);
//! let mut trace = TraceRecord::new(
//!     Ipv4Addr::new(192, 0, 2, 1).into(),
//!     Ipv4Addr::new(198, 51, 100, 9).into(),
//! );
//! trace.hops.push(HopRecord::reply(1, Ipv4Addr::new(10, 0, 0, 1).into(), 1200));
//! writer.trace(&trace).unwrap();
//! writer.cycle_stop(1, 1_400_000_600);
//! let bytes = writer.into_bytes();
//!
//! let mut reader = WartsReader::new(&bytes);
//! let records: Vec<Record> = reader.by_ref().collect::<Result<_, _>>().unwrap();
//! assert_eq!(records.len(), 4);
//! assert!(matches!(records[2], Record::Trace(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod buf;
pub mod convert;
pub mod cycle;
pub mod error;
pub mod file;
pub mod flags;
pub mod icmpext;
pub mod list;
pub mod ping;
pub mod stream;
pub mod text;
pub mod trace;

pub use addr::{Addr, AddrTableReader};
pub use convert::{hop_to_core, trace_to_core, trace_to_record, traces_to_core_par};
pub use cycle::{CycleRecord, CycleStopRecord};
pub use error::WartsError;
pub use file::{read_path, write_path, Record, RecordType, WartsReader, WartsWriter, WARTS_MAGIC};
pub use icmpext::{IcmpExt, MPLS_EXT_CLASS, MPLS_EXT_TYPE};
pub use list::ListRecord;
pub use ping::{PingRecord, PingReply};
pub use stream::{
    decode_record_body, RecordSpan, SkipReason, StreamError, StreamMetrics, WartsStreamReader,
};
pub use text::{ping_to_text, trace_to_text};
pub use trace::{HopRecord, StopReason, TraceRecord};
