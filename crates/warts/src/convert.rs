//! Conversions between warts records and the `lpr-core` trace model.
//!
//! warts stores only *replies*; unresponsive probes appear as gaps in
//! the probe-TTL sequence. The conversion to [`lpr_core::trace::Trace`]
//! materialises those gaps as anonymous hops so the downstream tunnel
//! extraction sees the same picture a scamper text dump shows. IPv6
//! hops are skipped (the LPR analysis, like the paper's dataset, is
//! IPv4; a trace with an IPv6 endpoint converts to `None`).

use crate::addr::Addr;
use crate::error::WartsError;
use crate::icmpext::{mpls_stack_of, IcmpExt};
use crate::trace::{HopRecord, StopReason, TraceRecord};
use lpr_core::label::LabelStack;
use lpr_core::trace::{Hop, Trace};

/// Converts one warts hop into the core model, decoding its RFC 4950
/// extension if present.
pub fn hop_to_core(hop: &HopRecord) -> Result<Option<Hop>, WartsError> {
    let addr = match hop.addr.as_v4() {
        Some(a) => a,
        None => return Ok(None),
    };
    let stack = mpls_stack_of(&hop.icmp_exts)?.unwrap_or_else(LabelStack::empty);
    Ok(Some(Hop { probe_ttl: hop.probe_ttl, addr: Some(addr), rtt_us: hop.rtt_us, stack }))
}

/// Converts a warts trace record into the core trace model.
///
/// Returns `Ok(None)` for IPv6 traces. Multiple replies for the same
/// probe TTL (per-attempt duplicates) keep the first one, matching how
/// the paper's single-path Paris traceroute data behaves. TTL gaps
/// become anonymous hops.
pub fn trace_to_core(rec: &TraceRecord) -> Result<Option<Trace>, WartsError> {
    let (src, dst) = match (rec.src.as_v4(), rec.dst.as_v4()) {
        (Some(s), Some(d)) => (s, d),
        _ => return Ok(None),
    };
    let mut trace = Trace::new(src, dst);
    trace.reached = rec.stop_reason == StopReason::Completed;

    let mut expected_ttl = rec.first_hop.unwrap_or(1);
    let mut last_ttl = 0u8;
    for hop in &rec.hops {
        if hop.probe_ttl <= last_ttl {
            continue; // duplicate reply for an already-recorded TTL
        }
        let core = match hop_to_core(hop)? {
            Some(h) => h,
            None => continue,
        };
        while expected_ttl < hop.probe_ttl {
            trace.push_hop(Hop::anonymous(expected_ttl));
            expected_ttl += 1;
        }
        last_ttl = hop.probe_ttl;
        expected_ttl = hop.probe_ttl.saturating_add(1);
        trace.push_hop(core);
    }
    Ok(Some(trace))
}

/// Converts a batch of warts trace records to the core model in
/// parallel (`threads == 0` means the machine's available parallelism).
///
/// Record *decode* is inherently sequential — a warts file carries a
/// stateful address dictionary — but the conversion of decoded records
/// is stateless per record, so it shards cleanly. Results keep input
/// order: IPv6 traces are dropped, decode errors are returned (the
/// first one in input order wins, matching a sequential loop).
pub fn traces_to_core_par(
    records: &[TraceRecord],
    threads: usize,
) -> Result<Vec<Trace>, WartsError> {
    let run = lpr_par::map_shards(
        records,
        lpr_par::ShardOptions::new(threads),
        |_, shard| -> Result<Vec<Trace>, WartsError> {
            let mut traces = Vec::with_capacity(shard.len());
            for rec in shard {
                if let Some(t) = trace_to_core(rec)? {
                    traces.push(t);
                }
            }
            Ok(traces)
        },
    );
    let mut traces = Vec::with_capacity(records.len());
    for shard in run.outputs {
        traces.extend(shard?);
    }
    Ok(traces)
}

/// Converts a core trace into a warts record (the writer-side inverse
/// of [`trace_to_core`]). Anonymous hops are dropped — warts records
/// replies only. `list_id`/`cycle_id` are the file-local ids the trace
/// should reference.
pub fn trace_to_record(trace: &Trace, list_id: u32, cycle_id: u32) -> TraceRecord {
    let mut rec = TraceRecord::new(Addr::V4(trace.src), Addr::V4(trace.dst));
    rec.list_id = Some(list_id);
    rec.cycle_id = Some(cycle_id);
    rec.stop_reason = if trace.reached { StopReason::Completed } else { StopReason::GapLimit };
    for hop in &trace.hops {
        let addr = match hop.addr {
            Some(a) => a,
            None => continue,
        };
        let mut h = HopRecord::reply(hop.probe_ttl, Addr::V4(addr), hop.rtt_us);
        // Destination replies are echo replies, intermediate hops are
        // time-exceeded; both carry extensions only when labelled.
        let is_dst = addr == trace.dst;
        h.icmp_type_code = Some(if is_dst { 0x0000 } else { 0x0B00 });
        if !hop.stack.is_empty() {
            h.icmp_exts = vec![IcmpExt::mpls(&hop.stack)];
        }
        rec.hops.push(h);
    }
    rec
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpr_core::label::Lse;
    use std::net::Ipv4Addr;

    fn ip(o: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, o)
    }

    fn sample_core_trace() -> Trace {
        let mut t = Trace::new(ip(100), ip(200));
        t.push_hop(Hop::responsive(1, ip(1)));
        t.push_hop(Hop::labelled(2, ip(2), &[Lse::transit(300_000, 254)]));
        t.push_hop(Hop::anonymous(3));
        t.push_hop(Hop::responsive(4, ip(4)));
        t.push_hop(Hop::responsive(5, ip(200)));
        t.reached = true;
        t
    }

    #[test]
    fn core_to_record_to_core() {
        let t = sample_core_trace();
        let rec = trace_to_record(&t, 1, 1);
        assert_eq!(rec.hops.len(), 4); // anonymous hop dropped
        let back = trace_to_core(&rec).unwrap().unwrap();
        // The anonymous hop reappears as a TTL gap materialisation.
        assert_eq!(back.hops.len(), t.hops.len());
        assert_eq!(back, t);
    }

    #[test]
    fn leading_gap_materialises_anonymous_hops() {
        let mut rec = TraceRecord::new(Addr::V4(ip(100)), Addr::V4(ip(200)));
        rec.hops = vec![HopRecord::reply(3, Addr::V4(ip(3)), 500)];
        let t = trace_to_core(&rec).unwrap().unwrap();
        assert_eq!(t.hops.len(), 3);
        assert!(!t.hops[0].is_responsive());
        assert!(!t.hops[1].is_responsive());
        assert_eq!(t.hops[2].addr, Some(ip(3)));
    }

    #[test]
    fn duplicate_ttl_replies_keep_first() {
        let mut rec = TraceRecord::new(Addr::V4(ip(100)), Addr::V4(ip(200)));
        rec.hops = vec![
            HopRecord::reply(1, Addr::V4(ip(1)), 500),
            HopRecord::reply(1, Addr::V4(ip(7)), 700),
            HopRecord::reply(2, Addr::V4(ip(2)), 900),
        ];
        let t = trace_to_core(&rec).unwrap().unwrap();
        assert_eq!(t.hops.len(), 2);
        assert_eq!(t.hops[0].addr, Some(ip(1)));
    }

    #[test]
    fn ipv6_trace_is_skipped() {
        let rec = TraceRecord::new(
            Addr::V6("2001:db8::1".parse().unwrap()),
            Addr::V4(ip(200)),
        );
        assert_eq!(trace_to_core(&rec).unwrap(), None);
    }

    #[test]
    fn mpls_stack_survives_conversion() {
        let t = sample_core_trace();
        let rec = trace_to_record(&t, 1, 1);
        let labelled = rec.hops.iter().find(|h| !h.icmp_exts.is_empty()).unwrap();
        let stack = mpls_stack_of(&labelled.icmp_exts).unwrap().unwrap();
        assert_eq!(stack.top().unwrap().label.value(), 300_000);
    }

    #[test]
    fn parallel_conversion_matches_sequential() {
        let mut records = Vec::new();
        for i in 0..500u32 {
            let mut t = sample_core_trace();
            t.dst = Ipv4Addr::new(192, 0, (i >> 8) as u8, i as u8);
            records.push(trace_to_record(&t, 1, 1));
        }
        // An IPv6 record interleaved: skipped by both paths.
        records.insert(
            250,
            TraceRecord::new(Addr::V6("2001:db8::1".parse().unwrap()), Addr::V4(ip(200))),
        );
        let seq: Vec<Trace> =
            records.iter().filter_map(|r| trace_to_core(r).unwrap()).collect();
        for threads in [1usize, 2, 4] {
            let par = traces_to_core_par(&records, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn stop_reason_maps_to_reached() {
        let mut t = sample_core_trace();
        t.reached = false;
        let rec = trace_to_record(&t, 1, 1);
        assert_eq!(rec.stop_reason, StopReason::GapLimit);
        let back = trace_to_core(&rec).unwrap().unwrap();
        assert!(!back.reached);
    }
}
