//! Incremental reading from any [`std::io::Read`].
//!
//! Ark cycle dumps run to gigabytes; [`WartsStreamReader`] reads one
//! record at a time from a buffered source instead of slurping the file
//! — pairing naturally with `lpr_core::stream::CycleAccumulator` for a
//! bounded-memory end-to-end pipeline:
//!
//! ```no_run
//! use warts::{Record, WartsStreamReader};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let file = std::fs::File::open("cycle.warts")?;
//! let mut reader = WartsStreamReader::new(std::io::BufReader::new(file));
//! while let Some(record) = reader.next_record()? {
//!     if let Record::Trace(t) = record {
//!         // feed a CycleAccumulator…
//!         let _ = t;
//!     }
//! }
//! # Ok(())
//! # }
//! ```

use crate::addr::AddrTableReader;
use crate::buf::Cursor;
use crate::cycle::{CycleRecord, CycleStopRecord};
use crate::error::WartsError;
use crate::file::{Record, RecordType, WARTS_MAGIC};
use crate::list::ListRecord;
use crate::ping::PingRecord;
use crate::trace::TraceRecord;
use lpr_obs::{Counter, Registry};
use std::io::Read;
use std::sync::Arc;

/// Largest record body this reader will buffer (64 MiB — far above any
/// real scamper record; a larger length indicates corruption).
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// Ingest counters for a warts stream, registered under `warts.*`.
///
/// Hand one to [`WartsStreamReader::with_metrics`] and the reader tallies
/// what it sees; the same counters can be read back later from the
/// registry (or a `Recorder`) that created them.
#[derive(Clone)]
pub struct StreamMetrics {
    /// Records decoded successfully (`warts.records`).
    pub records: Arc<Counter>,
    /// Bytes consumed, headers included (`warts.bytes`).
    pub bytes: Arc<Counter>,
    /// Trace records among them (`warts.traces`).
    pub traces: Arc<Counter>,
    /// Records whose body failed to decode and were skipped in lenient
    /// mode (`warts.malformed_records`).
    pub malformed: Arc<Counter>,
    /// Records of a type this crate does not parse
    /// (`warts.unsupported_records`).
    pub unsupported: Arc<Counter>,
    /// ICMP extension objects that are not RFC 4950 MPLS stacks
    /// (`warts.unknown_icmp_ext`).
    pub unknown_icmp_ext: Arc<Counter>,
}

impl StreamMetrics {
    /// Binds the `warts.*` counters in `registry` (creating them at
    /// zero on first use).
    pub fn from_registry(registry: &Registry) -> Self {
        StreamMetrics {
            records: registry.counter("warts.records"),
            bytes: registry.counter("warts.bytes"),
            traces: registry.counter("warts.traces"),
            malformed: registry.counter("warts.malformed_records"),
            unsupported: registry.counter("warts.unsupported_records"),
            unknown_icmp_ext: registry.counter("warts.unknown_icmp_ext"),
        }
    }

    fn observe(&self, wire_len: usize, record: &Record) {
        self.records.inc();
        self.bytes.add(wire_len as u64);
        match record {
            Record::Trace(t) => {
                self.traces.inc();
                for hop in &t.hops {
                    for ext in &hop.icmp_exts {
                        if !ext.is_mpls() {
                            self.unknown_icmp_ext.inc();
                        }
                    }
                }
            }
            Record::Unsupported { .. } => self.unsupported.inc(),
            _ => {}
        }
    }
}

/// A record-at-a-time reader over any byte source.
pub struct WartsStreamReader<R: Read> {
    source: R,
    addrs: AddrTableReader,
    offset: usize,
    failed: bool,
    metrics: Option<StreamMetrics>,
    lenient: bool,
}

/// Errors from streaming reads: IO or decode.
#[derive(Debug)]
pub enum StreamError {
    /// The underlying source failed.
    Io(std::io::Error),
    /// The bytes did not decode as warts.
    Decode(WartsError),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Io(e) => write!(f, "io: {e}"),
            StreamError::Decode(e) => write!(f, "warts: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<WartsError> for StreamError {
    fn from(e: WartsError) -> Self {
        StreamError::Decode(e)
    }
}

impl<R: Read> WartsStreamReader<R> {
    /// Wraps a byte source (wrap files in a `BufReader`).
    pub fn new(source: R) -> Self {
        WartsStreamReader {
            source,
            addrs: AddrTableReader::new(),
            offset: 0,
            failed: false,
            metrics: None,
            lenient: false,
        }
    }

    /// Tallies everything read into `metrics` (see [`StreamMetrics`]).
    pub fn with_metrics(mut self, metrics: StreamMetrics) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Skips records whose *body* fails to decode instead of aborting
    /// the stream: the declared header length keeps the reader aligned
    /// on the next record boundary, and `warts.malformed_records`
    /// counts the skip (silently without [`WartsStreamReader::with_metrics`]).
    ///
    /// Header-level corruption (bad magic, truncated header or body,
    /// insane length) stays fatal — there is no boundary to resync on.
    /// Note a skipped trace/ping may have carried address-dictionary
    /// entries; later references to them then fail too (and are counted
    /// in turn).
    pub fn lenient(mut self) -> Self {
        self.lenient = true;
        self
    }

    /// Reads the next record; `Ok(None)` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<Record>, StreamError> {
        loop {
            if self.failed {
                return Ok(None);
            }
            // Header: 8 bytes, but EOF exactly at a record boundary is a
            // clean end.
            let mut header = [0u8; 8];
            let mut got = 0usize;
            while got < 8 {
                let n = self.source.read(&mut header[got..])?;
                if n == 0 {
                    if got == 0 {
                        return Ok(None);
                    }
                    self.failed = true;
                    return Err(WartsError::Truncated { context: "record header" }.into());
                }
                got += n;
            }
            let magic = u16::from_be_bytes([header[0], header[1]]);
            if magic != WARTS_MAGIC {
                self.failed = true;
                return Err(WartsError::BadMagic { offset: self.offset, found: magic }.into());
            }
            let record_type = u16::from_be_bytes([header[2], header[3]]);
            let len = u32::from_be_bytes([header[4], header[5], header[6], header[7]]) as usize;
            if len > MAX_RECORD_LEN {
                self.failed = true;
                return Err(WartsError::Truncated { context: "record length sanity" }.into());
            }
            let mut body = vec![0u8; len];
            self.source.read_exact(&mut body).inspect_err(|_| {
                self.failed = true;
            })?;
            self.offset += 8 + len;

            match decode_body(record_type, len, body, &mut self.addrs) {
                Ok(record) => {
                    if let Some(m) = &self.metrics {
                        m.observe(8 + len, &record);
                    }
                    return Ok(Some(record));
                }
                Err(e) => {
                    if self.lenient {
                        // The body was fully consumed, so the source is
                        // already positioned on the next header.
                        if let Some(m) = &self.metrics {
                            m.malformed.inc();
                        }
                        continue;
                    }
                    self.failed = true;
                    return Err(e.into());
                }
            }
        }
    }
}

/// Decodes one record body (already fully read off the wire).
fn decode_body(
    record_type: u16,
    len: usize,
    body: Vec<u8>,
    addrs: &mut AddrTableReader,
) -> Result<Record, WartsError> {
    let mut cur = Cursor::new(&body);
    let record = match record_type {
        x if x == RecordType::List as u16 => Record::List(ListRecord::read(&mut cur)?),
        x if x == RecordType::CycleStart as u16 || x == RecordType::CycleDef as u16 => {
            Record::CycleStart(CycleRecord::read(&mut cur)?)
        }
        x if x == RecordType::CycleStop as u16 => {
            Record::CycleStop(CycleStopRecord::read(&mut cur)?)
        }
        x if x == RecordType::Trace as u16 => {
            Record::Trace(TraceRecord::read(&mut cur, addrs)?)
        }
        x if x == RecordType::Ping as u16 => {
            Record::Ping(PingRecord::read(&mut cur, addrs)?)
        }
        other => return Ok(Record::Unsupported { record_type: other, body }),
    };
    if !cur.is_empty() {
        return Err(WartsError::LengthMismatch {
            record_type,
            declared: len,
            consumed: cur.position(),
        });
    }
    Ok(record)
}

impl<R: Read> Iterator for WartsStreamReader<R> {
    type Item = Result<Record, StreamError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::file::WartsWriter;
    use crate::trace::HopRecord;
    use std::net::Ipv4Addr;

    fn a(o: u8) -> Addr {
        Addr::V4(Ipv4Addr::new(10, 0, 0, o))
    }

    fn sample_bytes() -> Vec<u8> {
        let mut w = WartsWriter::new();
        let list = w.list(1, "stream");
        let cycle = w.cycle_start(list, 1, 0);
        let mut t = TraceRecord::new(a(1), a(9));
        t.hops = vec![HopRecord::reply(1, a(2), 100)];
        w.trace(&t).unwrap();
        w.trace(&t).unwrap(); // dictionary reference crosses records
        w.cycle_stop(cycle, 1);
        w.into_bytes()
    }

    /// A reader that returns one byte at a time (worst-case chunking).
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn streaming_matches_in_memory() {
        let bytes = sample_bytes();
        let batch: Vec<Record> =
            crate::file::WartsReader::new(&bytes).collect::<Result<_, _>>().unwrap();
        let streamed: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed, batch);
    }

    #[test]
    fn one_byte_chunks_are_fine() {
        let bytes = sample_bytes();
        let streamed: Vec<Record> = WartsStreamReader::new(Trickle(&bytes))
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(streamed.len(), 5);
    }

    #[test]
    fn clean_eof_vs_truncation() {
        let bytes = sample_bytes();
        // Clean end.
        let mut r = WartsStreamReader::new(bytes.as_slice());
        while r.next_record().unwrap().is_some() {}
        // Truncated mid-record.
        let cut = &bytes[..bytes.len() - 3];
        let r = WartsStreamReader::new(cut);
        let res: Result<Vec<Record>, _> = r.collect();
        assert!(res.is_err());
        // Truncated mid-header.
        let cut = &bytes[..3];
        let mut r = WartsStreamReader::new(cut);
        assert!(matches!(r.next_record(), Err(StreamError::Decode(_))));
    }

    #[test]
    fn lenient_mode_skips_malformed_record_and_counts_it() {
        // A valid header declaring a 4-byte trace body that cannot
        // decode (truncated content), followed by a fully valid stream.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&(RecordType::Trace as u16).to_be_bytes());
        bytes.extend_from_slice(&4u32.to_be_bytes());
        bytes.extend_from_slice(&[0xFF; 4]);
        bytes.extend_from_slice(&sample_bytes());

        // Strict mode aborts on the malformed body.
        let strict: Result<Vec<Record>, _> =
            WartsStreamReader::new(bytes.as_slice()).collect();
        assert!(strict.is_err());

        // Lenient mode counts the skip and keeps going.
        let registry = Registry::new();
        let metrics = StreamMetrics::from_registry(&registry);
        let records: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .with_metrics(metrics.clone())
            .lenient()
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(records.len(), 5, "all valid records still stream");
        assert_eq!(metrics.malformed.get(), 1);
        assert_eq!(metrics.records.get(), 5);
        assert_eq!(metrics.traces.get(), 2);
        assert_eq!(registry.counter("warts.malformed_records").get(), 1);
    }

    #[test]
    fn metrics_tally_records_bytes_and_unknown_extensions() {
        let mut w = WartsWriter::new();
        let list = w.list(1, "metrics");
        let cycle = w.cycle_start(list, 1, 0);
        let mut t = TraceRecord::new(a(1), a(9));
        let mut hop = HopRecord::reply(1, a(2), 100);
        // One MPLS object and one vendor-specific object: only the
        // latter is "unknown".
        hop.icmp_exts.push(crate::icmpext::IcmpExt {
            class: crate::icmpext::MPLS_EXT_CLASS,
            kind: crate::icmpext::MPLS_EXT_TYPE,
            data: vec![0, 1, 2, 3],
        });
        hop.icmp_exts.push(crate::icmpext::IcmpExt { class: 9, kind: 9, data: vec![1] });
        t.hops = vec![hop];
        w.trace(&t).unwrap();
        w.cycle_stop(cycle, 1);
        let bytes = w.into_bytes();

        let registry = Registry::new();
        let metrics = StreamMetrics::from_registry(&registry);
        let records: Vec<Record> = WartsStreamReader::new(bytes.as_slice())
            .with_metrics(metrics.clone())
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(metrics.records.get(), records.len() as u64);
        assert_eq!(metrics.bytes.get(), bytes.len() as u64);
        assert_eq!(metrics.traces.get(), 1);
        assert_eq!(metrics.unknown_icmp_ext.get(), 1);
        assert_eq!(metrics.unsupported.get(), 0);
    }

    #[test]
    fn insane_length_is_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WARTS_MAGIC.to_be_bytes());
        bytes.extend_from_slice(&6u16.to_be_bytes());
        bytes.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut r = WartsStreamReader::new(bytes.as_slice());
        assert!(r.next_record().is_err());
    }
}
